//! Span timing helpers for phase breakdowns.
//!
//! Wall-clock phases (measure/schedule/ship in the live path) use the RAII
//! [`SpanGuard`]; simulated phases (transfer/execute in the engine) already
//! know their duration and call
//! [`MetricsRegistry::observe`](crate::MetricsRegistry::observe) directly.

use std::time::Instant;

use crate::metrics::MetricsRegistry;

/// RAII wall-clock timer: records elapsed microseconds into a histogram
/// when dropped (or when [`SpanGuard::finish`] is called for the value).
#[must_use = "a span records on drop; binding to `_` drops immediately"]
pub struct SpanGuard {
    registry: MetricsRegistry,
    name: String,
    start: Instant,
    armed: bool,
}

impl SpanGuard {
    /// Starts timing; `name` is the histogram the duration lands in
    /// (convention: suffix `_us`, e.g. `span.schedule_us`).
    pub fn start(registry: &MetricsRegistry, name: impl Into<String>) -> Self {
        SpanGuard {
            registry: registry.clone(),
            name: name.into(),
            start: Instant::now(),
            armed: true,
        }
    }

    /// Elapsed microseconds so far, without stopping the span.
    pub fn elapsed_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    /// Stops the span now, records it, and returns the elapsed microseconds.
    pub fn finish(mut self) -> u64 {
        let us = self.elapsed_us();
        self.registry.observe(&self.name, us as f64);
        self.armed = false;
        us
    }

    /// Drops the span without recording anything.
    pub fn cancel(mut self) {
        self.armed = false;
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.armed {
            let us = self.elapsed_us();
            self.registry.observe(&self.name, us as f64);
        }
    }
}

/// Times `f` on the wall clock and records the duration into histogram
/// `name`; returns `f`'s result.
pub fn timed<R>(registry: &MetricsRegistry, name: &str, f: impl FnOnce() -> R) -> R {
    let span = SpanGuard::start(registry, name);
    let out = f();
    span.finish();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_on_drop() {
        let m = MetricsRegistry::new();
        {
            let _span = SpanGuard::start(&m, "span.test_us");
        }
        assert_eq!(m.histogram("span.test_us").count(), 1);
    }

    #[test]
    fn finish_returns_elapsed_and_records_once() {
        let m = MetricsRegistry::new();
        let span = SpanGuard::start(&m, "span.test_us");
        let us = span.finish();
        let h = m.histogram("span.test_us");
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), us as f64);
    }

    #[test]
    fn cancel_records_nothing() {
        let m = MetricsRegistry::new();
        SpanGuard::start(&m, "span.test_us").cancel();
        assert_eq!(m.histogram("span.test_us").count(), 0);
    }

    #[test]
    fn timed_wraps_a_closure() {
        let m = MetricsRegistry::new();
        let v = timed(&m, "span.closure_us", || 7);
        assert_eq!(v, 7);
        assert_eq!(m.histogram("span.closure_us").count(), 1);
    }
}
