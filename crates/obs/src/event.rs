//! Structured event records.
//!
//! An [`Event`] is one timestamped, named observation with free-form
//! key/value fields. Events are produced everywhere in the stack (engine,
//! scheduler, live server, worker, throttle) and fanned out to sinks by the
//! [`EventBus`](crate::EventBus).

use std::fmt;

use crate::json::{self, JsonValue};

/// Which clock a timestamp was read from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Clock {
    /// Simulated time (deterministic engine runs): microseconds since the
    /// start of the simulation.
    Sim,
    /// Wall-clock time: microseconds since the process' `Obs` was created.
    Wall,
}

impl Clock {
    /// Short lowercase label used in the JSONL encoding.
    pub fn as_str(self) -> &'static str {
        match self {
            Clock::Sim => "sim",
            Clock::Wall => "wall",
        }
    }

    /// Inverse of [`Clock::as_str`].
    pub fn parse(s: &str) -> Option<Clock> {
        match s {
            "sim" => Some(Clock::Sim),
            "wall" => Some(Clock::Wall),
            _ => None,
        }
    }
}

/// Event severity, lowest to highest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// High-volume diagnostics (per-segment, per-frame).
    Debug,
    /// Normal run narration.
    Info,
    /// Something degraded (keep-alive miss, worker lost).
    Warn,
    /// Something failed outright.
    Error,
}

impl Severity {
    /// Short lowercase label used in the JSONL encoding.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Debug => "debug",
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }

    /// Inverse of [`Severity::as_str`].
    pub fn parse(s: &str) -> Option<Severity> {
        match s {
            "debug" => Some(Severity::Debug),
            "info" => Some(Severity::Info),
            "warn" => Some(Severity::Warn),
            "error" => Some(Severity::Error),
            _ => None,
        }
    }
}

/// A field value. Deliberately small: everything the CWC stack reports is a
/// number, a flag, or a short string.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Boolean flag.
    Bool(bool),
    /// Unsigned integer (ids, counts, kilobytes, microseconds).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (rates, percentages, milliseconds-per-kilobyte).
    F64(f64),
    /// Short string (labels, phone names, paths).
    Str(String),
}

impl Value {
    /// The value as `f64` if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(v) => Some(v as f64),
            Value::I64(v) => Some(v as f64),
            Value::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(v) => Some(v),
            Value::I64(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    /// The value as `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::I64(i64::from(v))
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(v) => write!(f, "{v}"),
            Value::U64(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v}"),
        }
    }
}

/// One structured observation.
///
/// Build with [`Event::sim`] or [`Event::wall`], chain [`Event::field`] for
/// payload, then hand it to [`EventBus::emit`](crate::EventBus::emit), which
/// assigns the global sequence number.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Global emission order, assigned by the bus (0 until emitted).
    pub seq: u64,
    /// Timestamp in microseconds on `clock`.
    pub time_us: u64,
    /// Which clock `time_us` was read from.
    pub clock: Clock,
    /// Severity level.
    pub severity: Severity,
    /// Subsystem that produced the event (`engine`, `sched`, `net`, ...).
    pub scope: String,
    /// Dotted event name within the scope (`job.complete`, `phone.offline`).
    pub name: String,
    /// Ordered key/value payload.
    pub fields: Vec<(String, Value)>,
}

impl Event {
    /// A sim-time event at `time_us` microseconds of simulated time.
    pub fn sim(time_us: u64, scope: impl Into<String>, name: impl Into<String>) -> Self {
        Event {
            seq: 0,
            time_us,
            clock: Clock::Sim,
            severity: Severity::Info,
            scope: scope.into(),
            name: name.into(),
            fields: Vec::new(),
        }
    }

    /// A wall-clock event at `time_us` microseconds since process start.
    pub fn wall(time_us: u64, scope: impl Into<String>, name: impl Into<String>) -> Self {
        Event {
            clock: Clock::Wall,
            ..Event::sim(time_us, scope, name)
        }
    }

    /// Sets the severity (builder style).
    pub fn severity(mut self, severity: Severity) -> Self {
        self.severity = severity;
        self
    }

    /// Appends a key/value field (builder style).
    pub fn field(mut self, key: impl Into<String>, value: impl Into<Value>) -> Self {
        self.fields.push((key.into(), value.into()));
        self
    }

    /// Looks up a field by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// A one-line human summary: the `msg` field if present, otherwise the
    /// event name followed by its fields.
    pub fn message(&self) -> String {
        if let Some(Value::Str(msg)) = self.get("msg") {
            return msg.clone();
        }
        let mut out = self.name.clone();
        for (k, v) in &self.fields {
            out.push_str(&format!(" {k}={v}"));
        }
        out
    }

    /// Encodes the event as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"seq\":");
        out.push_str(&self.seq.to_string());
        out.push_str(",\"t_us\":");
        out.push_str(&self.time_us.to_string());
        out.push_str(",\"clock\":\"");
        out.push_str(self.clock.as_str());
        out.push_str("\",\"sev\":\"");
        out.push_str(self.severity.as_str());
        out.push_str("\",\"scope\":");
        json::write_str(&mut out, &self.scope);
        out.push_str(",\"name\":");
        json::write_str(&mut out, &self.name);
        out.push_str(",\"fields\":{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_str(&mut out, k);
            out.push(':');
            match v {
                Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
                Value::U64(n) => out.push_str(&n.to_string()),
                Value::I64(n) => out.push_str(&n.to_string()),
                Value::F64(n) => json::write_f64(&mut out, *n),
                Value::Str(s) => json::write_str(&mut out, s),
            }
        }
        out.push_str("}}");
        out
    }

    /// Decodes an event from one JSONL line produced by [`Event::to_json`].
    pub fn from_json(line: &str) -> Result<Event, String> {
        let root = json::parse(line).map_err(|e| e.to_string())?;
        let obj = root.as_object().ok_or("event line is not a JSON object")?;
        let get = |key: &str| -> Result<&JsonValue, String> {
            obj.iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing key `{key}`"))
        };
        let seq = get("seq")?.as_u64().ok_or("`seq` is not an integer")?;
        let time_us = get("t_us")?.as_u64().ok_or("`t_us` is not an integer")?;
        let clock = get("clock")?
            .as_str()
            .and_then(Clock::parse)
            .ok_or("bad `clock`")?;
        let severity = get("sev")?
            .as_str()
            .and_then(Severity::parse)
            .ok_or("bad `sev`")?;
        let scope = get("scope")?.as_str().ok_or("bad `scope`")?.to_string();
        let name = get("name")?.as_str().ok_or("bad `name`")?.to_string();
        let raw_fields = get("fields")?
            .as_object()
            .ok_or("`fields` is not an object")?;
        let mut fields = Vec::with_capacity(raw_fields.len());
        for (k, v) in raw_fields {
            let value = match v {
                JsonValue::Bool(b) => Value::Bool(*b),
                JsonValue::Int(n) => {
                    if *n >= 0 {
                        Value::U64(*n as u64)
                    } else {
                        Value::I64(*n)
                    }
                }
                JsonValue::UInt(n) => Value::U64(*n),
                JsonValue::Float(n) => Value::F64(*n),
                JsonValue::Str(s) => Value::Str(s.clone()),
                other => return Err(format!("unsupported field value {other:?}")),
            };
            fields.push((k.clone(), value));
        }
        Ok(Event {
            seq,
            time_us,
            clock,
            severity,
            scope,
            name,
            fields,
        })
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let secs = self.time_us as f64 / 1e6;
        let clock = match self.clock {
            Clock::Sim => "s",
            Clock::Wall => "w",
        };
        write!(
            f,
            "[{secs:>11.3}{clock}] {:<5} {:<8} {}",
            self.severity.as_str(),
            self.scope,
            self.message()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_collects_fields_in_order() {
        let e = Event::sim(1_500_000, "engine", "job.complete")
            .field("job", 7u64)
            .field("phone", "phone-3")
            .field("ok", true);
        assert_eq!(e.clock, Clock::Sim);
        assert_eq!(e.get("job"), Some(&Value::U64(7)));
        assert_eq!(e.get("phone").and_then(Value::as_str), Some("phone-3"));
        assert_eq!(e.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(e.get("missing"), None);
    }

    #[test]
    fn message_prefers_msg_field() {
        let e = Event::sim(0, "sched", "schedule.initial").field("msg", "initial schedule ready");
        assert_eq!(e.message(), "initial schedule ready");
        let e2 = Event::sim(0, "sched", "schedule.initial").field("rounds", 3u64);
        assert_eq!(e2.message(), "schedule.initial rounds=3");
    }

    #[test]
    fn display_includes_time_and_severity() {
        let e = Event::sim(2_000_000, "engine", "start").severity(Severity::Warn);
        let line = format!("{e}");
        assert!(line.contains("2.000s"), "{line}");
        assert!(line.contains("warn"), "{line}");
        assert!(line.contains("engine"), "{line}");
    }

    #[test]
    fn severity_orders_low_to_high() {
        assert!(Severity::Debug < Severity::Info);
        assert!(Severity::Info < Severity::Warn);
        assert!(Severity::Warn < Severity::Error);
    }
}
