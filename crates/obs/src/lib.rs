//! # cwc-obs — observability for the CWC workspace
//!
//! A dependency-free (std-only) observability layer shared by every crate in
//! the workspace:
//!
//! 1. **Event bus** ([`EventBus`]): structured [`Event`] records — sim-time
//!    or wall-time stamped, severity-tagged, with key/value fields — fanned
//!    out to pluggable sinks ([`MemorySink`], [`RingSink`], [`TextSink`],
//!    [`JsonlSink`]). With no sinks attached, emission is a near-free no-op,
//!    so instrumentation stays always-on in library code.
//! 2. **Metrics registry** ([`MetricsRegistry`]): named counters, gauges and
//!    fixed-bucket histograms with p50/p95/p99 summaries. Counters and
//!    histogram recording are lock-free atomics.
//! 3. **Span timing** ([`SpanGuard`], [`timed`]): RAII wall-clock phase
//!    timers; simulated phases record their known durations directly.
//! 4. **Causal tracing & forensics** ([`TraceCtx`], [`FlightRecorder`]):
//!    per-chunk trace contexts stamped onto events so a chunk lifecycle is
//!    one span tree, and a bounded per-phone flight recorder with
//!    anomaly-triggered JSONL dumps.
//!
//! The [`Obs`] bundle ties one bus and one registry together and is what the
//! rest of the stack passes around (e.g. in `EngineConfig`). It is `Clone`
//! (shared handles) and `Default` (silent: no sinks, empty registry).
//!
//! ```
//! use cwc_obs::{Event, MemorySink, Obs};
//! use std::sync::Arc;
//!
//! let obs = Obs::new();
//! let sink = Arc::new(MemorySink::new());
//! obs.bus.attach(sink.clone());
//!
//! obs.emit(Event::sim(1_000_000, "engine", "job.complete").field("job", 3u64));
//! obs.metrics.inc("engine.jobs_completed");
//! obs.metrics.observe("span.execute_ms", 1250.0);
//!
//! assert_eq!(sink.len(), 1);
//! assert_eq!(obs.metrics.counter_value("engine.jobs_completed"), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bus;
mod event;
mod flight;
pub mod json;
mod metrics;
mod span;
mod trace;

pub use bus::{EventBus, EventSink, JsonlSink, MemorySink, RingSink, SinkId, TextSink};
pub use event::{Clock, Event, Severity, Value};
pub use flight::{
    read_dump_events, FlightRecorder, FlightRecorderConfig, MetricsSnapshot, ANOMALY_EVENTS,
};
pub use metrics::{Counter, Histogram, HistogramSummary, MetricsRegistry, MetricsReport};
pub use span::{timed, SpanGuard};
pub use trace::{TraceCtx, PARENT_FIELD, SPAN_FIELD, TRACE_FIELD};

use std::io;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// The bundle the rest of the workspace passes around: one event bus plus
/// one metrics registry, and a process-start epoch for wall-clock events.
///
/// Cloning shares the underlying bus/registry. The `Default` value is
/// silent — no sinks, empty registry — so library code can emit
/// unconditionally at negligible cost.
#[derive(Clone, Debug)]
pub struct Obs {
    /// The shared event bus.
    pub bus: EventBus,
    /// The shared metrics registry.
    pub metrics: MetricsRegistry,
    epoch: Instant,
}

impl Default for Obs {
    fn default() -> Self {
        Obs {
            bus: EventBus::new(),
            metrics: MetricsRegistry::new(),
            epoch: Instant::now(),
        }
    }
}

impl Obs {
    /// A silent observability bundle (no sinks attached).
    pub fn new() -> Self {
        Self::default()
    }

    /// An `Obs` logging human-readable lines (Info and above) to stdout —
    /// the default for the CLI binaries.
    pub fn to_stdout() -> Self {
        let obs = Obs::new();
        obs.bus.attach(Arc::new(TextSink::stdout()));
        obs
    }

    /// Microseconds of wall time since this `Obs` was created.
    pub fn wall_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// A wall-clock [`Event`] stamped "now", ready for fields and
    /// [`Obs::emit`].
    pub fn wall_event(&self, scope: impl Into<String>, name: impl Into<String>) -> Event {
        Event::wall(self.wall_us(), scope, name)
    }

    /// Emits an event onto the bus.
    pub fn emit(&self, event: Event) {
        self.bus.emit(event);
    }

    /// Starts a wall-clock span recording into histogram `name` on drop.
    pub fn span(&self, name: impl Into<String>) -> SpanGuard {
        SpanGuard::start(&self.metrics, name)
    }

    /// Attaches a JSONL file sink at `path`; every subsequent event is
    /// appended as one JSON object per line.
    pub fn attach_jsonl(&self, path: impl AsRef<Path>) -> io::Result<SinkId> {
        let sink = JsonlSink::create(path)?;
        Ok(self.bus.attach(Arc::new(sink)))
    }

    /// Flushes all sinks (call before process exit so buffered JSONL/text
    /// output reaches disk).
    pub fn flush(&self) {
        self.bus.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_obs_is_silent_and_cheap() {
        let obs = Obs::new();
        assert!(!obs.bus.has_sinks());
        obs.emit(Event::sim(0, "t", "ignored"));
        obs.metrics.inc("still.counts");
        assert_eq!(obs.metrics.counter_value("still.counts"), 1);
    }

    #[test]
    fn clones_share_state() {
        let obs = Obs::new();
        let clone = obs.clone();
        let sink = Arc::new(MemorySink::new());
        obs.bus.attach(sink.clone());
        clone.emit(Event::sim(0, "t", "via-clone"));
        clone.metrics.inc("shared");
        assert_eq!(sink.len(), 1);
        assert_eq!(obs.metrics.counter_value("shared"), 1);
    }

    #[test]
    fn wall_event_uses_wall_clock() {
        let obs = Obs::new();
        let e = obs.wall_event("bin", "start");
        assert_eq!(e.clock, Clock::Wall);
    }
}
