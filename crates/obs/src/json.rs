//! Minimal JSON writer/parser used by the JSONL sink and its round-trip
//! tests. Hand-rolled so the crate stays dependency-free; supports exactly
//! the subset the event encoding needs (objects, arrays, strings, numbers,
//! booleans, null, `\uXXXX` escapes).

use std::fmt;

/// Parsed JSON value. Integers are kept distinct from floats so `u64`
/// timestamps and sequence numbers survive a round trip exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Negative integer in `i64` range.
    Int(i64),
    /// Non-negative integer in `u64` range.
    UInt(u64),
    /// Any other number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<JsonValue>),
    /// Object, in source order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            JsonValue::UInt(n) => Some(n),
            JsonValue::Int(n) if n >= 0 => Some(n as u64),
            _ => None,
        }
    }

    /// The value as `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            JsonValue::UInt(n) => Some(n as f64),
            JsonValue::Int(n) => Some(n as f64),
            JsonValue::Float(n) => Some(n),
            _ => None,
        }
    }

    /// The object's key/value pairs, if it is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Looks up `key` in an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// Parse error: byte offset plus message.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Writes `s` as a JSON string literal (with quotes) onto `out`.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Writes `v` as a JSON number onto `out`. Integral finite floats keep a
/// trailing `.0` so they parse back as floats; non-finite values (invalid in
/// JSON) become `null`.
pub fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e15 {
        out.push_str(&format!("{v:.1}"));
    } else {
        out.push_str(&format!("{v}"));
    }
}

/// Parses one JSON document; trailing whitespace is allowed, trailing
/// garbage is an error.
pub fn parse(src: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            at: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self.hex4()?;
                            if (0xd800..0xdc00).contains(&hex) {
                                // High surrogate: a low surrogate must
                                // follow as another \u escape; together they
                                // name one supplementary-plane code point.
                                // A lone surrogate decodes to U+FFFD.
                                let mark = self.pos;
                                if self.bytes.get(self.pos..self.pos + 2) == Some(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if (0xdc00..0xe000).contains(&lo) {
                                        let combined =
                                            0x10000 + ((hex - 0xd800) << 10) + (lo - 0xdc00);
                                        out.push(char::from_u32(combined).unwrap_or('\u{fffd}'));
                                        continue;
                                    }
                                    // Not a low surrogate: rewind and let the
                                    // escape be parsed on its own.
                                    self.pos = mark;
                                }
                                out.push('\u{fffd}');
                            } else {
                                // Lone low surrogates also decode to U+FFFD.
                                out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            }
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-sync to char boundary for multi-byte UTF-8.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xc0) == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    /// Reads exactly four hex digits (one `\uXXXX` payload).
    fn hex4(&mut self) -> Result<u32, JsonError> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .filter(|h| h.iter().all(u8::is_ascii_hexdigit))
            .and_then(|h| std::str::from_utf8(h).ok())
            .and_then(|h| u32::from_str_radix(h, 16).ok())
            .ok_or_else(|| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(hex)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Some(rest) = text.strip_prefix('-') {
                if rest.parse::<u64>().is_ok() {
                    if let Ok(n) = text.parse::<i64>() {
                        return Ok(JsonValue::Int(n));
                    }
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(JsonValue::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a": [1, -2, 3.5, true, null], "b": {"c": "x\ny"}}"#).unwrap();
        assert_eq!(
            v.get("a").unwrap(),
            &JsonValue::Arr(vec![
                JsonValue::UInt(1),
                JsonValue::Int(-2),
                JsonValue::Float(3.5),
                JsonValue::Bool(true),
                JsonValue::Null,
            ])
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn big_u64_survives() {
        let v = parse(&format!("{}", u64::MAX)).unwrap();
        assert_eq!(v, JsonValue::UInt(u64::MAX));
        assert_eq!(v.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "tab\t newline\n quote\" backslash\\ unicode é 札幌 ctrl\u{1}";
        let mut encoded = String::new();
        write_str(&mut encoded, original);
        let v = parse(&encoded).unwrap();
        assert_eq!(v.as_str(), Some(original));
    }

    #[test]
    fn pathological_payloads_round_trip() {
        // Every control character, DEL, C1 controls, non-BMP code points
        // (emoji, CJK extension, musical symbols), combining marks, and a
        // lone replacement char — the worst strings an event payload can
        // legally carry.
        let controls: String = (0u32..0x20).filter_map(char::from_u32).collect();
        let cases = [
            controls.as_str(),
            "\u{7f}\u{80}\u{9f}",
            "😀 🚀 \u{1F600}\u{10FFFF}",
            "𝄞 music, 𠀀 CJK-B, 🏴 flags",
            "e\u{301} combining, \u{fffd} replacement",
            "mixed \u{0} nul and 😀 emoji and \t tab",
        ];
        for original in cases {
            let mut encoded = String::new();
            write_str(&mut encoded, original);
            let v = parse(&encoded).unwrap_or_else(|e| panic!("{encoded:?}: {e}"));
            assert_eq!(v.as_str(), Some(original), "encoded as {encoded:?}");
        }
    }

    #[test]
    fn surrogate_pairs_from_external_writers_decode() {
        // Our writer emits non-BMP code points as raw UTF-8, but external
        // JSONL (canonical JSON encoders) uses \u surrogate pairs; both
        // spellings must parse to the same string.
        let v = parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600}"));
        let v = parse("\"\\ud834\\udd1e clef\"").unwrap();
        assert_eq!(v.as_str(), Some("\u{1D11E} clef"));
        // The raw UTF-8 spelling lands on the same string.
        assert_eq!(parse("\"\u{1F600}\"").unwrap().as_str(), Some("\u{1F600}"));
        // Lone surrogates (either half) degrade to U+FFFD, not an error.
        assert_eq!(parse(r#""\ud800""#).unwrap().as_str(), Some("\u{fffd}"));
        assert_eq!(parse(r#""\udc00""#).unwrap().as_str(), Some("\u{fffd}"));
        // High surrogate followed by a non-surrogate escape: the second
        // escape survives on its own.
        assert_eq!(parse(r#""\ud800A""#).unwrap().as_str(), Some("\u{fffd}A"));
        // Malformed hex in the low half is still an error.
        assert!(parse(r#""\ud83d\uzzzz""#).is_err());
        assert!(parse(r#""\u12"#).is_err());
        assert!(parse(r#""\u+123""#).is_err());
    }

    #[test]
    fn float_writer_keeps_float_type() {
        let mut s = String::new();
        write_f64(&mut s, 3.0);
        assert_eq!(s, "3.0");
        assert_eq!(parse(&s).unwrap(), JsonValue::Float(3.0));

        let mut s = String::new();
        write_f64(&mut s, 0.125);
        assert_eq!(parse(&s).unwrap(), JsonValue::Float(0.125));

        let mut s = String::new();
        write_f64(&mut s, f64::NAN);
        assert_eq!(s, "null");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
    }
}
