//! Event bus: fan-out of [`Event`]s to pluggable sinks.
//!
//! The bus is always safe to emit into. With zero sinks attached, `emit` is
//! a single relaxed atomic load and a drop — recording can therefore stay
//! always-on in library code, with the caller deciding whether anything
//! listens. Sequence numbers are assigned under the sink lock so every sink
//! observes events in one global order, even with concurrent emitters.

use std::collections::VecDeque;
use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::event::{Event, Severity};

/// A destination for events. Implementations must tolerate concurrent calls.
pub trait EventSink: Send + Sync {
    /// Receives one event. `event.seq` is already assigned.
    fn accept(&self, event: &Event);

    /// Flushes buffered output, if any.
    fn flush(&self) {}
}

/// Handle returned by [`EventBus::attach`]; pass to [`EventBus::detach`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SinkId(u64);

#[derive(Default)]
struct BusInner {
    /// Mirrors `sinks.len()` so `emit` can bail without taking the lock.
    sink_count: AtomicUsize,
    next_id: AtomicU64,
    /// Sink list plus the sequence counter; sharing one lock makes
    /// (assign seq, deliver) atomic, giving sinks a total event order.
    sinks: Mutex<(u64, SinkList)>,
}

type SinkList = Vec<(SinkId, Arc<dyn EventSink>)>;

/// Cheaply clonable handle to a shared event bus.
#[derive(Clone, Default)]
pub struct EventBus {
    inner: Arc<BusInner>,
}

impl fmt::Debug for EventBus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventBus")
            .field("sinks", &self.inner.sink_count.load(Ordering::Relaxed))
            .finish()
    }
}

impl EventBus {
    /// A bus with no sinks.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a sink; it receives every subsequent event.
    pub fn attach(&self, sink: Arc<dyn EventSink>) -> SinkId {
        let id = SinkId(self.inner.next_id.fetch_add(1, Ordering::Relaxed));
        let mut guard = self.inner.sinks.lock().unwrap_or_else(|e| e.into_inner());
        guard.1.push((id, sink));
        self.inner
            .sink_count
            .store(guard.1.len(), Ordering::Relaxed);
        id
    }

    /// Detaches a sink previously attached; returns whether it was found.
    pub fn detach(&self, id: SinkId) -> bool {
        let mut guard = self.inner.sinks.lock().unwrap_or_else(|e| e.into_inner());
        let before = guard.1.len();
        guard.1.retain(|(sid, _)| *sid != id);
        self.inner
            .sink_count
            .store(guard.1.len(), Ordering::Relaxed);
        guard.1.len() != before
    }

    /// Whether at least one sink is attached. Emission is a no-op otherwise.
    pub fn has_sinks(&self) -> bool {
        self.inner.sink_count.load(Ordering::Relaxed) > 0
    }

    /// Assigns the event a global sequence number and delivers it to every
    /// attached sink. With no sinks this is a near-free no-op.
    pub fn emit(&self, mut event: Event) {
        if !self.has_sinks() {
            return;
        }
        let mut guard = self.inner.sinks.lock().unwrap_or_else(|e| e.into_inner());
        guard.0 += 1;
        event.seq = guard.0;
        for (_, sink) in guard.1.iter() {
            sink.accept(&event);
        }
    }

    /// Flushes every attached sink.
    pub fn flush(&self) {
        let guard = self.inner.sinks.lock().unwrap_or_else(|e| e.into_inner());
        for (_, sink) in guard.1.iter() {
            sink.flush();
        }
    }
}

/// Unbounded in-memory collector, mainly for tests and for building run
/// traces after the fact.
#[derive(Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies out everything collected so far.
    pub fn snapshot(&self) -> Vec<Event> {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Removes and returns everything collected so far.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Number of events collected.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether nothing has been collected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl EventSink for MemorySink {
    fn accept(&self, event: &Event) {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(event.clone());
    }
}

/// Bounded ring buffer keeping only the newest `capacity` events — a cheap
/// "flight recorder" for long-running processes.
pub struct RingSink {
    capacity: usize,
    buf: Mutex<VecDeque<Event>>,
}

impl RingSink {
    /// A ring holding at most `capacity` events (`capacity >= 1`).
    pub fn with_capacity(capacity: usize) -> Self {
        RingSink {
            capacity: capacity.max(1),
            buf: Mutex::new(VecDeque::with_capacity(capacity.max(1))),
        }
    }

    /// Copies out the retained events, oldest first.
    pub fn snapshot(&self) -> Vec<Event> {
        self.buf
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect()
    }

    /// The maximum number of events retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl EventSink for RingSink {
    fn accept(&self, event: &Event) {
        let mut buf = self.buf.lock().unwrap_or_else(|e| e.into_inner());
        if buf.len() == self.capacity {
            buf.pop_front();
        }
        buf.push_back(event.clone());
    }
}

/// Human-readable line-per-event sink over any writer (typically stdout).
/// Events below `min_severity` are dropped.
pub struct TextSink {
    min_severity: Severity,
    out: Mutex<Box<dyn Write + Send>>,
}

impl TextSink {
    /// A text sink over an arbitrary writer, reporting Info and above.
    pub fn new(out: Box<dyn Write + Send>) -> Self {
        TextSink {
            min_severity: Severity::Info,
            out: Mutex::new(out),
        }
    }

    /// A text sink writing to stdout.
    pub fn stdout() -> Self {
        Self::new(Box::new(io::stdout()))
    }

    /// Sets the minimum severity to report (builder style).
    pub fn with_min_severity(mut self, min: Severity) -> Self {
        self.min_severity = min;
        self
    }
}

impl EventSink for TextSink {
    fn accept(&self, event: &Event) {
        if event.severity < self.min_severity {
            return;
        }
        let mut out = self.out.lock().unwrap_or_else(|e| e.into_inner());
        let _ = writeln!(out, "{event}");
    }

    fn flush(&self) {
        let _ = self.out.lock().unwrap_or_else(|e| e.into_inner()).flush();
    }
}

/// JSON-lines file sink: one [`Event::to_json`] object per line. This is the
/// machine-readable run log (e.g. for reconstructing the Fig. 12 timeline).
pub struct JsonlSink {
    path: PathBuf,
    out: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Creates (truncating) the log file at `path`.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = File::create(&path)?;
        Ok(JsonlSink {
            path,
            out: Mutex::new(BufWriter::new(file)),
        })
    }

    /// Where the log is being written.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl EventSink for JsonlSink {
    fn accept(&self, event: &Event) {
        let mut out = self.out.lock().unwrap_or_else(|e| e.into_inner());
        let _ = writeln!(out, "{}", event.to_json());
    }

    fn flush(&self) {
        let _ = self.out.lock().unwrap_or_else(|e| e.into_inner()).flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        EventSink::flush(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn emit_without_sinks_is_a_no_op() {
        let bus = EventBus::new();
        assert!(!bus.has_sinks());
        bus.emit(Event::sim(0, "t", "nothing.listens"));
        // Attaching later starts from a clean slate.
        let sink = Arc::new(MemorySink::new());
        bus.attach(sink.clone());
        assert!(bus.has_sinks());
        bus.emit(Event::sim(1, "t", "heard"));
        assert_eq!(sink.len(), 1);
    }

    #[test]
    fn detach_stops_delivery() {
        let bus = EventBus::new();
        let sink = Arc::new(MemorySink::new());
        let id = bus.attach(sink.clone());
        bus.emit(Event::sim(0, "t", "one"));
        assert!(bus.detach(id));
        assert!(!bus.detach(id));
        bus.emit(Event::sim(1, "t", "two"));
        assert_eq!(sink.len(), 1);
    }

    #[test]
    fn fan_out_reaches_every_sink() {
        let bus = EventBus::new();
        let a = Arc::new(MemorySink::new());
        let b = Arc::new(RingSink::with_capacity(8));
        bus.attach(a.clone());
        bus.attach(b.clone());
        for i in 0..3u64 {
            bus.emit(Event::sim(i, "t", "tick"));
        }
        assert_eq!(a.len(), 3);
        assert_eq!(b.snapshot().len(), 3);
    }

    #[test]
    fn ring_keeps_only_newest() {
        let bus = EventBus::new();
        let ring = Arc::new(RingSink::with_capacity(2));
        bus.attach(ring.clone());
        for i in 0..5u64 {
            bus.emit(Event::sim(i, "t", format!("tick-{i}")));
        }
        let kept = ring.snapshot();
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0].name, "tick-3");
        assert_eq!(kept[1].name, "tick-4");
    }

    #[test]
    fn concurrent_emitters_get_a_total_order() {
        // Satellite test: event ordering under concurrent emitters. Each
        // sink must see strictly increasing sequence numbers with no gaps
        // in the union, i.e. (seq assignment, delivery) is atomic.
        let bus = EventBus::new();
        let sink = Arc::new(MemorySink::new());
        bus.attach(sink.clone());
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 200;
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let bus = bus.clone();
                thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        bus.emit(Event::sim(i, "thread", format!("t{t}")).field("i", i));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let events = sink.snapshot();
        assert_eq!(events.len(), (THREADS * PER_THREAD) as usize);
        for w in events.windows(2) {
            assert!(
                w[0].seq < w[1].seq,
                "sink saw seq {} before {}",
                w[0].seq,
                w[1].seq
            );
        }
        assert_eq!(events[0].seq, 1);
        assert_eq!(events.last().unwrap().seq, THREADS * PER_THREAD);
        // Per-thread emission order is preserved within the total order.
        for t in 0..THREADS {
            let name = format!("t{t}");
            let mine: Vec<u64> = events
                .iter()
                .filter(|e| e.name == name)
                .map(|e| e.get("i").unwrap().as_u64().unwrap())
                .collect();
            let sorted: Vec<u64> = (0..PER_THREAD).collect();
            assert_eq!(mine, sorted);
        }
    }
}
