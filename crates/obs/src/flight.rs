//! Fleet flight recorder: bounded per-phone event rings, periodic metrics
//! snapshots, and anomaly-triggered JSONL dumps.
//!
//! A [`FlightRecorder`] is an [`EventSink`](crate::EventSink): attach it to
//! a bus and it retains the last `per_key_capacity` events for every phone
//! it hears about (events without a `phone` field share a `fleet` ring),
//! plus a bounded ring of [`MetricsReport`] snapshots taken every
//! `snapshot_every` accepted events. Memory is bounded by construction —
//! rings never grow past their configured capacity, and the set of ring
//! keys is bounded by the fleet size.
//!
//! When an anomaly event arrives (stall-watchdog fire, circuit-breaker
//! quarantine, fleet loss, chaos unplug/crash), the recorder dumps its
//! retained state to a JSONL file in `dump_dir` — the last seconds of
//! context *before* the failure, which is exactly what a post-mortem
//! needs. Dump count is bounded by `max_dumps`.

use std::collections::{BTreeMap, VecDeque};
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::bus::EventSink;
use crate::event::Event;
use crate::metrics::{MetricsRegistry, MetricsReport};

/// Event names that trigger a flight-recorder dump.
pub const ANOMALY_EVENTS: [&str; 5] = [
    "task.stalled",
    "worker.quarantined",
    "worker.lost",
    "fleet.lost",
    "phone.unplugged",
];

/// Ring key for events that carry no `phone` field.
const FLEET_KEY: &str = "fleet";

/// Sizing and dump policy for a [`FlightRecorder`].
#[derive(Debug, Clone)]
pub struct FlightRecorderConfig {
    /// Events retained per ring key (per phone, plus the shared `fleet`
    /// ring). Clamped to at least 1.
    pub per_key_capacity: usize,
    /// Take a metrics snapshot every this many accepted events
    /// (0 disables snapshots).
    pub snapshot_every: u64,
    /// Snapshots retained (oldest evicted first). Clamped to at least 1.
    pub snapshot_capacity: usize,
    /// Directory anomaly dumps are written into (`None` disables dumps).
    pub dump_dir: Option<PathBuf>,
    /// Maximum number of dump files written over the recorder's lifetime.
    pub max_dumps: usize,
}

impl Default for FlightRecorderConfig {
    fn default() -> Self {
        FlightRecorderConfig {
            per_key_capacity: 256,
            snapshot_every: 512,
            snapshot_capacity: 16,
            dump_dir: None,
            max_dumps: 8,
        }
    }
}

/// One retained metrics snapshot.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Bus sequence number of the event that triggered the snapshot.
    pub at_seq: u64,
    /// Timestamp (on the triggering event's clock) of the snapshot.
    pub at_time_us: u64,
    /// The registry contents at that moment.
    pub report: MetricsReport,
}

#[derive(Default)]
struct RecorderInner {
    rings: BTreeMap<String, VecDeque<Event>>,
    snapshots: VecDeque<MetricsSnapshot>,
    accepted: u64,
    dumps_written: Vec<PathBuf>,
}

/// Bounded always-on recorder of recent per-phone history. See the module
/// docs for the retention and dump model.
pub struct FlightRecorder {
    cfg: FlightRecorderConfig,
    metrics: MetricsRegistry,
    inner: Mutex<RecorderInner>,
}

impl FlightRecorder {
    /// A recorder snapshotting `metrics` under the given policy.
    pub fn new(cfg: FlightRecorderConfig, metrics: MetricsRegistry) -> Self {
        FlightRecorder {
            cfg,
            metrics,
            inner: Mutex::new(RecorderInner::default()),
        }
    }

    /// The configured per-ring capacity (after clamping).
    pub fn per_key_capacity(&self) -> usize {
        self.cfg.per_key_capacity.max(1)
    }

    /// Total events accepted so far (including evicted ones).
    pub fn accepted(&self) -> u64 {
        self.lock().accepted
    }

    /// Current (ring key, retained length) pairs, sorted by key.
    pub fn ring_lens(&self) -> Vec<(String, usize)> {
        self.lock()
            .rings
            .iter()
            .map(|(k, r)| (k.clone(), r.len()))
            .collect()
    }

    /// Everything currently retained across all rings, in bus order.
    pub fn retained(&self) -> Vec<Event> {
        let inner = self.lock();
        let mut all: Vec<Event> = inner.rings.values().flatten().cloned().collect();
        all.sort_by_key(|e| e.seq);
        all
    }

    /// Number of metrics snapshots currently retained.
    pub fn snapshots_retained(&self) -> usize {
        self.lock().snapshots.len()
    }

    /// Paths of every anomaly dump written so far.
    pub fn dumps(&self) -> Vec<PathBuf> {
        self.lock().dumps_written.clone()
    }

    /// Forces a dump of the current state (same format as an anomaly
    /// dump), tagged with `reason`. Respects the `max_dumps` bound.
    pub fn dump_now(&self, reason: &str) -> io::Result<Option<PathBuf>> {
        let mut inner = self.lock();
        self.write_dump(&mut inner, reason, 0)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RecorderInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Writes one JSONL dump: a header line, every retained event in bus
    /// order, then the retained metrics snapshots. Returns `Ok(None)` when
    /// dumps are disabled or the `max_dumps` budget is spent.
    fn write_dump(
        &self,
        inner: &mut RecorderInner,
        reason: &str,
        at_seq: u64,
    ) -> io::Result<Option<PathBuf>> {
        let Some(dir) = self.cfg.dump_dir.as_deref() else {
            return Ok(None);
        };
        if inner.dumps_written.len() >= self.cfg.max_dumps {
            return Ok(None);
        }
        std::fs::create_dir_all(dir)?;
        let slug: String = reason
            .chars()
            .map(|c| if c.is_alphanumeric() { c } else { '-' })
            .collect();
        let path = dir.join(format!(
            "flight-{:03}-seq{:08}-{slug}.jsonl",
            inner.dumps_written.len(),
            at_seq
        ));
        let mut out = BufWriter::new(File::create(&path)?);
        writeln!(
            out,
            "{{\"flight_dump\":{{\"reason\":{},\"at_seq\":{at_seq},\"accepted\":{}}}}}",
            {
                let mut s = String::new();
                crate::json::write_str(&mut s, reason);
                s
            },
            inner.accepted
        )?;
        let mut all: Vec<&Event> = inner.rings.values().flatten().collect();
        all.sort_by_key(|e| e.seq);
        for e in all {
            writeln!(out, "{}", e.to_json())?;
        }
        for s in &inner.snapshots {
            writeln!(
                out,
                "{{\"metrics_snapshot\":{{\"at_seq\":{},\"at_t_us\":{},\"report\":{}}}}}",
                s.at_seq,
                s.at_time_us,
                s.report.to_json()
            )?;
        }
        out.flush()?;
        inner.dumps_written.push(path.clone());
        Ok(Some(path))
    }

    fn ring_key(event: &Event) -> String {
        match event.get("phone") {
            Some(v) => v.to_string(),
            None => FLEET_KEY.to_string(),
        }
    }
}

impl EventSink for FlightRecorder {
    fn accept(&self, event: &Event) {
        let cap = self.per_key_capacity();
        let mut inner = self.lock();
        inner.accepted += 1;
        let ring = inner
            .rings
            .entry(Self::ring_key(event))
            .or_insert_with(|| VecDeque::with_capacity(cap));
        if ring.len() == cap {
            ring.pop_front();
        }
        ring.push_back(event.clone());

        if self.cfg.snapshot_every > 0 && inner.accepted.is_multiple_of(self.cfg.snapshot_every) {
            let snap = MetricsSnapshot {
                at_seq: event.seq,
                at_time_us: event.time_us,
                report: self.metrics.report(),
            };
            let snap_cap = self.cfg.snapshot_capacity.max(1);
            if inner.snapshots.len() == snap_cap {
                inner.snapshots.pop_front();
            }
            inner.snapshots.push_back(snap);
        }

        if ANOMALY_EVENTS.contains(&event.name.as_str()) {
            // Dump failures must never take the run down; the recorder is
            // best-effort by design.
            let _ = self.write_dump(&mut inner, &event.name, event.seq);
        }
    }
}

/// Loads the event lines back out of a dump file written by
/// [`FlightRecorder`], skipping the header and snapshot lines.
pub fn read_dump_events(path: impl AsRef<Path>) -> io::Result<Vec<Event>> {
    let text = std::fs::read_to_string(path)?;
    Ok(text
        .lines()
        .filter_map(|l| Event::from_json(l).ok())
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::EventBus;
    use std::sync::Arc;

    fn recorder(cfg: FlightRecorderConfig) -> (EventBus, Arc<FlightRecorder>, MetricsRegistry) {
        let bus = EventBus::new();
        let metrics = MetricsRegistry::new();
        let rec = Arc::new(FlightRecorder::new(cfg, metrics.clone()));
        bus.attach(rec.clone());
        (bus, rec, metrics)
    }

    #[test]
    fn memory_stays_bounded_under_a_10k_event_soak() {
        let cfg = FlightRecorderConfig {
            per_key_capacity: 32,
            snapshot_every: 100,
            snapshot_capacity: 5,
            dump_dir: None,
            max_dumps: 0,
        };
        let (bus, rec, metrics) = recorder(cfg);
        for i in 0..10_000u64 {
            metrics.inc("soak.events");
            bus.emit(
                Event::sim(i, "engine", "segment.execute")
                    .field("phone", format!("phone-{}", i % 7))
                    .field("i", i),
            );
        }
        assert_eq!(rec.accepted(), 10_000);
        let lens = rec.ring_lens();
        assert_eq!(lens.len(), 7, "one ring per phone: {lens:?}");
        for (key, len) in &lens {
            assert!(
                *len <= rec.per_key_capacity(),
                "ring {key} holds {len} > capacity {}",
                rec.per_key_capacity()
            );
        }
        assert!(rec.snapshots_retained() <= 5);
        assert_eq!(rec.snapshots_retained(), 5);
        // Retention is newest-first eviction: the last event per ring is
        // the last one emitted to it.
        let retained = rec.retained();
        assert_eq!(retained.len(), 7 * 32);
        assert_eq!(
            retained.last().and_then(|e| e.get("i")).cloned(),
            Some(crate::Value::U64(9_999))
        );
    }

    #[test]
    fn events_without_a_phone_share_the_fleet_ring() {
        let (bus, rec, _) = recorder(FlightRecorderConfig {
            per_key_capacity: 4,
            snapshot_every: 0,
            ..FlightRecorderConfig::default()
        });
        bus.emit(Event::sim(0, "engine", "run.start"));
        bus.emit(Event::sim(1, "engine", "run.start"));
        bus.emit(Event::sim(2, "engine", "segment.execute").field("phone", "phone-0"));
        let lens = rec.ring_lens();
        assert_eq!(
            lens,
            vec![("fleet".to_string(), 2), ("phone-0".to_string(), 1)]
        );
        assert_eq!(rec.snapshots_retained(), 0, "snapshots disabled");
    }

    #[test]
    fn anomalies_trigger_bounded_dumps() {
        let dir = std::env::temp_dir().join(format!("cwc-flight-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (bus, rec, metrics) = recorder(FlightRecorderConfig {
            per_key_capacity: 8,
            snapshot_every: 2,
            snapshot_capacity: 2,
            dump_dir: Some(dir.clone()),
            max_dumps: 2,
        });
        metrics.inc("chaos.crashes");
        for i in 0..4u64 {
            bus.emit(Event::sim(i, "engine", "segment.transfer").field("phone", "phone-1"));
        }
        // Three anomalies, but only two dumps allowed.
        for i in 0..3u64 {
            bus.emit(
                Event::sim(100 + i, "failure", "task.stalled")
                    .field("phone", "phone-1")
                    .field("job", i),
            );
        }
        let dumps = rec.dumps();
        assert_eq!(dumps.len(), 2, "max_dumps caps the output");
        for path in &dumps {
            let events = read_dump_events(path).unwrap();
            assert!(!events.is_empty(), "dump {path:?} has retained events");
            assert!(events.iter().any(|e| e.name == "task.stalled"));
            let text = std::fs::read_to_string(path).unwrap();
            assert!(text.lines().next().unwrap().contains("flight_dump"));
            assert!(
                text.contains("metrics_snapshot"),
                "dump carries metrics snapshots"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dump_now_writes_a_manual_dump() {
        let dir = std::env::temp_dir().join(format!("cwc-flight-manual-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (bus, rec, _) = recorder(FlightRecorderConfig {
            dump_dir: Some(dir.clone()),
            ..FlightRecorderConfig::default()
        });
        bus.emit(Event::sim(0, "engine", "run.start"));
        let path = rec.dump_now("end of run").unwrap().expect("dump written");
        assert!(path.exists());
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        assert!(name.contains("end-of-run"), "file name is slugged: {name}");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"reason\":\"end of run\""), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
