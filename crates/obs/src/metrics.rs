//! Metrics registry: named counters, gauges, and fixed-bucket histograms.
//!
//! The hot path is lock-free: a [`Counter`] handle is one `Arc<AtomicU64>`,
//! and histogram recording touches only atomics. Name lookup takes a
//! read-lock on a `BTreeMap`; callers that care should resolve a handle once
//! and reuse it.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crate::json;

/// Lock-free counter handle; cheap to clone.
#[derive(Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl fmt::Debug for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Counter({})", self.get())
    }
}

/// Fixed-bucket histogram over `f64` observations.
///
/// Buckets are defined by ascending upper bounds; an implicit overflow
/// bucket catches everything above the last bound. Recording is atomic
/// adds only, so concurrent observers never block each other.
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<AtomicU64>,
    total: AtomicU64,
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Histogram {
    /// A histogram with the given ascending upper bounds.
    pub fn new(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        let counts = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds,
            counts,
            total: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    /// Exponential bounds: `first, first*factor, ...`, `n` bounds total.
    pub fn exponential(first: f64, factor: f64, n: usize) -> Self {
        assert!(first > 0.0 && factor > 1.0 && n >= 1);
        let mut bounds = Vec::with_capacity(n);
        let mut b = first;
        for _ in 0..n {
            bounds.push(b);
            b *= factor;
        }
        Histogram::new(bounds)
    }

    /// Default bucketing: 48 powers of two starting at 0.001, covering
    /// microsecond spans up to multi-hour runs in any of the units the
    /// stack reports (us, ms, KB, KB/s).
    pub fn default_buckets() -> Self {
        Histogram::exponential(0.001, 2.0, 48)
    }

    /// Index of the bucket an observation falls into (first bound >= v,
    /// else the overflow bucket).
    fn bucket_index(&self, v: f64) -> usize {
        self.bounds.partition_point(|&b| b < v)
    }

    /// Records one observation.
    pub fn record(&self, v: f64) {
        if v.is_nan() {
            return;
        }
        self.counts[self.bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        atomic_f64_update(&self.sum_bits, |cur| cur + v);
        atomic_f64_update(&self.min_bits, |cur| cur.min(v));
        atomic_f64_update(&self.max_bits, |cur| cur.max(v));
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Estimates the `p`-th percentile (0..=100) by linear interpolation
    /// within the containing bucket. Returns `None` with no observations.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let min = f64::from_bits(self.min_bits.load(Ordering::Relaxed));
        let max = f64::from_bits(self.max_bits.load(Ordering::Relaxed));
        Some(quantile_from_buckets(&self.buckets(), total, min, max, p))
    }

    /// Snapshot of the summary statistics.
    pub fn summary(&self) -> HistogramSummary {
        let count = self.count();
        let (min, max, mean) = if count == 0 {
            (0.0, 0.0, 0.0)
        } else {
            (
                f64::from_bits(self.min_bits.load(Ordering::Relaxed)),
                f64::from_bits(self.max_bits.load(Ordering::Relaxed)),
                self.sum() / count as f64,
            )
        };
        let mut summary = HistogramSummary {
            count,
            sum: self.sum(),
            min,
            max,
            mean,
            p50: 0.0,
            p90: 0.0,
            p95: 0.0,
            p99: 0.0,
            buckets: self.buckets(),
        };
        summary.p50 = summary.quantile(50.0).unwrap_or(0.0);
        summary.p90 = summary.quantile(90.0).unwrap_or(0.0);
        summary.p95 = summary.quantile(95.0).unwrap_or(0.0);
        summary.p99 = summary.quantile(99.0).unwrap_or(0.0);
        summary
    }

    /// (upper bound, count) pairs for the non-overflow buckets, plus the
    /// overflow count last with bound `f64::INFINITY`.
    pub fn buckets(&self) -> Vec<(f64, u64)> {
        let mut out: Vec<(f64, u64)> = self
            .bounds
            .iter()
            .zip(self.counts.iter())
            .map(|(&b, c)| (b, c.load(Ordering::Relaxed)))
            .collect();
        out.push((
            f64::INFINITY,
            self.counts[self.bounds.len()].load(Ordering::Relaxed),
        ));
        out
    }
}

fn atomic_f64_update(bits: &AtomicU64, f: impl Fn(f64) -> f64) {
    let mut cur = bits.load(Ordering::Relaxed);
    loop {
        let next = f(f64::from_bits(cur)).to_bits();
        match bits.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// Shared quantile estimator over captured `(upper bound, count)` buckets
/// (the last entry's bound is `f64::INFINITY` for the overflow bucket):
/// linear interpolation within the containing bucket, clamped to the
/// observed `[min, max]`.
fn quantile_from_buckets(buckets: &[(f64, u64)], total: u64, min: f64, max: f64, p: f64) -> f64 {
    let rank = ((p / 100.0) * total as f64).ceil().clamp(1.0, total as f64);
    let mut cum = 0u64;
    for (i, &(bound, c)) in buckets.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let next = cum + c;
        if (next as f64) >= rank {
            let lo = if i == 0 {
                min.min(0.0)
            } else {
                buckets[i - 1].0
            };
            let hi = if bound.is_finite() { bound } else { max };
            let frac = (rank - cum as f64) / c as f64;
            return (lo + (hi - lo) * frac).clamp(min, max);
        }
        cum = next;
    }
    max
}

/// Point-in-time summary of a [`Histogram`], carrying its bucket counts so
/// arbitrary quantiles can still be estimated after the snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation (0 when empty).
    pub min: f64,
    /// Largest observation (0 when empty).
    pub max: f64,
    /// Mean observation (0 when empty).
    pub mean: f64,
    /// Estimated median.
    pub p50: f64,
    /// Estimated 90th percentile.
    pub p90: f64,
    /// Estimated 95th percentile.
    pub p95: f64,
    /// Estimated 99th percentile.
    pub p99: f64,
    /// `(upper bound, count)` pairs captured at snapshot time; the last
    /// entry is the overflow bucket with bound `f64::INFINITY`.
    pub buckets: Vec<(f64, u64)>,
}

impl HistogramSummary {
    /// Estimates the `p`-th percentile (0..=100) by linear interpolation
    /// within the snapshot's buckets. Returns `None` with no observations.
    pub fn quantile(&self, p: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        Some(quantile_from_buckets(
            &self.buckets,
            self.count,
            self.min,
            self.max,
            p,
        ))
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: RwLock<BTreeMap<String, Counter>>,
    gauges: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

/// Shared, cheaply clonable registry of named metrics.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<RegistryInner>,
}

impl fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = read(&self.inner.counters).len();
        let g = read(&self.inner.gauges).len();
        let h = read(&self.inner.histograms).len();
        write!(
            f,
            "MetricsRegistry {{ counters: {c}, gauges: {g}, histograms: {h} }}"
        )
    }
}

fn read<T>(lock: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|e| e.into_inner())
}

fn write<T>(lock: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(|e| e.into_inner())
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resolves (creating if needed) a counter handle for `name`.
    pub fn counter(&self, name: &str) -> Counter {
        if let Some(c) = read(&self.inner.counters).get(name) {
            return c.clone();
        }
        write(&self.inner.counters)
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Adds `n` to the counter `name`.
    pub fn add(&self, name: &str, n: u64) {
        self.counter(name).add(n);
    }

    /// Adds one to the counter `name`.
    pub fn inc(&self, name: &str) {
        self.add(name, 1);
    }

    /// Current value of counter `name` (0 if never touched).
    pub fn counter_value(&self, name: &str) -> u64 {
        read(&self.inner.counters).get(name).map_or(0, Counter::get)
    }

    /// Sets the gauge `name` to `v`.
    pub fn set_gauge(&self, name: &str, v: f64) {
        if let Some(g) = read(&self.inner.gauges).get(name) {
            g.store(v.to_bits(), Ordering::Relaxed);
            return;
        }
        write(&self.inner.gauges)
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)))
            .store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value of gauge `name`.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        read(&self.inner.gauges)
            .get(name)
            .map(|g| f64::from_bits(g.load(Ordering::Relaxed)))
    }

    /// Resolves (creating with [`Histogram::default_buckets`] if needed) the
    /// histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = read(&self.inner.histograms).get(name) {
            return h.clone();
        }
        write(&self.inner.histograms)
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::default_buckets()))
            .clone()
    }

    /// Records one observation into histogram `name`.
    pub fn observe(&self, name: &str, v: f64) {
        self.histogram(name).record(v);
    }

    /// All counters whose name starts with `prefix`, sorted by name.
    pub fn counters_with_prefix(&self, prefix: &str) -> Vec<(String, u64)> {
        read(&self.inner.counters)
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(k, c)| (k.clone(), c.get()))
            .collect()
    }

    /// Point-in-time snapshot of everything, sorted by name.
    pub fn report(&self) -> MetricsReport {
        MetricsReport {
            counters: read(&self.inner.counters)
                .iter()
                .map(|(k, c)| (k.clone(), c.get()))
                .collect(),
            gauges: read(&self.inner.gauges)
                .iter()
                .map(|(k, g)| (k.clone(), f64::from_bits(g.load(Ordering::Relaxed))))
                .collect(),
            histograms: read(&self.inner.histograms)
                .iter()
                .map(|(k, h)| (k.clone(), h.summary()))
                .collect(),
        }
    }
}

/// Snapshot of a [`MetricsRegistry`], ready for rendering.
#[derive(Debug, Clone, Default)]
pub struct MetricsReport {
    /// (name, value), sorted by name.
    pub counters: Vec<(String, u64)>,
    /// (name, value), sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// (name, summary), sorted by name.
    pub histograms: Vec<(String, HistogramSummary)>,
}

impl MetricsReport {
    /// Whether the report contains no metrics at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Renders an aligned plain-text table (the end-of-run report).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            let width = self
                .counters
                .iter()
                .map(|(k, _)| k.len())
                .max()
                .unwrap_or(0);
            for (k, v) in &self.counters {
                out.push_str(&format!("  {k:<width$}  {v}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            let width = self.gauges.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
            for (k, v) in &self.gauges {
                out.push_str(&format!("  {k:<width$}  {v:.3}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            let width = self
                .histograms
                .iter()
                .map(|(k, _)| k.len())
                .max()
                .unwrap_or(0);
            for (k, s) in &self.histograms {
                out.push_str(&format!(
                    "  {k:<width$}  n={} mean={:.3} min={:.3} p50={:.3} p90={:.3} p95={:.3} p99={:.3} max={:.3}\n",
                    s.count, s.mean, s.min, s.p50, s.p90, s.p95, s.p99, s.max
                ));
            }
        }
        out
    }

    /// Renders the report as one JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_str(&mut out, k);
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_str(&mut out, k);
            out.push(':');
            json::write_f64(&mut out, *v);
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, s)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_str(&mut out, k);
            out.push_str(":{\"count\":");
            out.push_str(&s.count.to_string());
            for (label, v) in [
                ("sum", s.sum),
                ("min", s.min),
                ("max", s.max),
                ("mean", s.mean),
                ("p50", s.p50),
                ("p90", s.p90),
                ("p95", s.p95),
                ("p99", s.p99),
            ] {
                out.push_str(&format!(",\"{label}\":"));
                json::write_f64(&mut out, v);
            }
            out.push('}');
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counters_accumulate_and_share() {
        let m = MetricsRegistry::new();
        m.inc("a");
        m.add("a", 4);
        let handle = m.counter("a");
        handle.inc();
        assert_eq!(m.counter_value("a"), 6);
        assert_eq!(m.counter_value("never"), 0);
    }

    #[test]
    fn gauges_overwrite() {
        let m = MetricsRegistry::new();
        assert_eq!(m.gauge_value("g"), None);
        m.set_gauge("g", 1.5);
        m.set_gauge("g", -2.25);
        assert_eq!(m.gauge_value("g"), Some(-2.25));
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive_upper() {
        // Satellite test: bucket boundary behaviour. Bounds 1, 2, 4:
        // values <= 1 land in bucket 0, (1, 2] in bucket 1, (2, 4] in
        // bucket 2, > 4 in the overflow bucket.
        let h = Histogram::new(vec![1.0, 2.0, 4.0]);
        for v in [0.5, 1.0, 1.5, 2.0, 2.1, 4.0, 4.1, 100.0] {
            h.record(v);
        }
        let buckets = h.buckets();
        assert_eq!(buckets.len(), 4);
        assert_eq!(buckets[0], (1.0, 2)); // 0.5, 1.0
        assert_eq!(buckets[1], (2.0, 2)); // 1.5, 2.0
        assert_eq!(buckets[2], (4.0, 2)); // 2.1, 4.0
        assert_eq!(buckets[3].1, 2); // 4.1, 100.0
        assert_eq!(h.count(), 8);
    }

    #[test]
    fn percentile_summaries_bracket_the_data() {
        // Satellite test: percentile summaries. 1..=1000 uniformly into
        // power-of-two buckets: the interpolated estimates must stay within
        // one bucket of the exact percentiles.
        let h = Histogram::default_buckets();
        for v in 1..=1000 {
            h.record(v as f64);
        }
        let s = h.summary();
        assert_eq!(s.count, 1000);
        assert!((s.mean - 500.5).abs() < 1e-9);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 1000.0);
        // Exact p50 = 500, containing bucket (262.144, 524.288].
        assert!(s.p50 > 262.1 && s.p50 <= 524.3, "p50={}", s.p50);
        // Exact p95 = 950, containing bucket (524.288, ...], capped at max.
        assert!(s.p95 > 524.2 && s.p95 <= 1000.0, "p95={}", s.p95);
        assert!(s.p99 >= s.p95, "p99={} p95={}", s.p99, s.p95);
        assert!(s.p99 <= 1000.0);
    }

    #[test]
    fn summary_quantile_helper_matches_the_live_histogram() {
        let h = Histogram::default_buckets();
        for v in 1..=1000 {
            h.record(v as f64);
        }
        let s = h.summary();
        // The precomputed fields are exactly what the helper reports.
        assert_eq!(s.quantile(50.0), Some(s.p50));
        assert_eq!(s.quantile(90.0), Some(s.p90));
        assert_eq!(s.quantile(95.0), Some(s.p95));
        assert_eq!(s.quantile(99.0), Some(s.p99));
        // Arbitrary quantiles agree with the live histogram after the
        // snapshot — the buckets travelled with the summary.
        for p in [10.0, 25.0, 75.0, 99.9] {
            assert_eq!(s.quantile(p), h.percentile(p), "p{p}");
        }
        // Monotone and bracketed by the exact values' buckets.
        assert!(s.p50 <= s.p90 && s.p90 <= s.p95 && s.p95 <= s.p99);
        assert!(s.p90 > 524.2 && s.p90 <= 1000.0, "p90={}", s.p90);
        // An empty summary estimates nothing.
        let empty = Histogram::default_buckets().summary();
        assert_eq!(empty.quantile(50.0), None);
        assert_eq!(empty.p90, 0.0);
    }

    #[test]
    fn percentile_of_single_value_is_that_value() {
        let h = Histogram::default_buckets();
        h.record(42.0);
        let s = h.summary();
        assert_eq!(s.p50, 42.0);
        assert_eq!(s.p99, 42.0);
        assert_eq!(s.min, 42.0);
        assert_eq!(s.max, 42.0);
    }

    #[test]
    fn empty_histogram_has_no_percentiles() {
        let h = Histogram::default_buckets();
        assert_eq!(h.percentile(50.0), None);
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.p50, 0.0);
    }

    #[test]
    fn concurrent_counting_loses_nothing() {
        let m = MetricsRegistry::new();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = m.clone();
                thread::spawn(move || {
                    for _ in 0..1000 {
                        m.inc("hits");
                        m.observe("lat", 1.0);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.counter_value("hits"), 8000);
        assert_eq!(m.histogram("lat").count(), 8000);
        assert_eq!(m.histogram("lat").sum(), 8000.0);
    }

    #[test]
    fn report_is_sorted_and_renders() {
        let m = MetricsRegistry::new();
        m.inc("z.last");
        m.inc("a.first");
        m.set_gauge("mid", 3.0);
        m.observe("h", 5.0);
        let r = m.report();
        assert_eq!(r.counters[0].0, "a.first");
        assert_eq!(r.counters[1].0, "z.last");
        let text = r.render_text();
        assert!(text.contains("a.first"));
        assert!(text.contains("counters:"));
        assert!(text.contains("histograms:"));
        let parsed = crate::json::parse(&r.to_json()).unwrap();
        assert_eq!(
            parsed
                .get("counters")
                .unwrap()
                .get("a.first")
                .unwrap()
                .as_u64(),
            Some(1)
        );
        assert!(parsed.get("histograms").unwrap().get("h").is_some());
    }

    #[test]
    fn counters_with_prefix_filters() {
        let m = MetricsRegistry::new();
        m.add("net.kb.phone-0", 10);
        m.add("net.kb.phone-1", 20);
        m.inc("engine.other");
        let kb = m.counters_with_prefix("net.kb.");
        assert_eq!(kb.len(), 2);
        assert_eq!(kb[0], ("net.kb.phone-0".to_string(), 10));
    }
}
