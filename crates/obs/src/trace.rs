//! Causal trace contexts.
//!
//! A [`TraceCtx`] identifies one unit of shipped work (a chunk) inside a
//! causally-linked span tree. The trace id groups every chunk descended
//! from one catalog job; the span id names this chunk; the parent link
//! points at the chunk this one continues (a requeued remainder, a
//! migrated partition, a reschedule split). Contexts are minted by the
//! coordinator kernel from a deterministic counter, so a replayed run
//! reproduces the exact ids of the live run it was recorded from.
//!
//! On the wire and in event payloads the context is three integers; a
//! parent of `0` encodes "root" (span ids are minted starting at 1, so
//! `0` is never a valid span).

use crate::event::{Event, Value};

/// Field key carrying the trace id on stamped events.
pub const TRACE_FIELD: &str = "trace";
/// Field key carrying the span id on stamped events.
pub const SPAN_FIELD: &str = "span";
/// Field key carrying the parent span id on stamped events (absent on
/// root spans).
pub const PARENT_FIELD: &str = "parent";

/// Causal identity of one chunk of work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceCtx {
    /// Groups all chunks descended from one catalog job.
    pub trace_id: u64,
    /// This chunk's span. Minted from a deterministic counter, never 0.
    pub span_id: u64,
    /// Span this chunk continues (`None` for the job's first placement).
    pub parent: Option<u64>,
}

impl TraceCtx {
    /// A root context: the first placement of a job's input.
    pub fn root(trace_id: u64, span_id: u64) -> Self {
        TraceCtx {
            trace_id,
            span_id,
            parent: None,
        }
    }

    /// A continuation of `self` (requeue, migration, reschedule split)
    /// under a freshly-minted span id.
    pub fn child(&self, span_id: u64) -> Self {
        TraceCtx {
            trace_id: self.trace_id,
            span_id,
            parent: Some(self.span_id),
        }
    }

    /// The parent span id in its wire encoding (`0` = root).
    pub fn parent_or_zero(&self) -> u64 {
        self.parent.unwrap_or(0)
    }

    /// Reconstructs a context from its wire encoding (`parent == 0` maps
    /// back to `None`).
    pub fn from_wire(trace_id: u64, span_id: u64, parent: u64) -> Self {
        TraceCtx {
            trace_id,
            span_id,
            parent: (parent != 0).then_some(parent),
        }
    }

    /// Stamps the context onto an event (builder style): appends `trace`
    /// and `span` fields, plus `parent` when this span has one.
    pub fn stamp(&self, event: Event) -> Event {
        let event = event
            .field(TRACE_FIELD, self.trace_id)
            .field(SPAN_FIELD, self.span_id);
        match self.parent {
            Some(p) => event.field(PARENT_FIELD, p),
            None => event,
        }
    }

    /// Recovers a context from a stamped event, if one is present.
    pub fn from_event(event: &Event) -> Option<TraceCtx> {
        let trace_id = event.get(TRACE_FIELD).and_then(Value::as_u64)?;
        let span_id = event.get(SPAN_FIELD).and_then(Value::as_u64)?;
        let parent = event.get(PARENT_FIELD).and_then(Value::as_u64);
        Some(TraceCtx {
            trace_id,
            span_id,
            parent,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn child_links_to_parent_and_keeps_the_trace() {
        let root = TraceCtx::root(7, 1);
        assert_eq!(root.parent, None);
        let kid = root.child(2);
        assert_eq!(kid.trace_id, 7);
        assert_eq!(kid.span_id, 2);
        assert_eq!(kid.parent, Some(1));
        let grandkid = kid.child(3);
        assert_eq!(grandkid.parent, Some(2));
    }

    #[test]
    fn wire_encoding_round_trips() {
        for ctx in [TraceCtx::root(4, 9), TraceCtx::root(4, 9).child(10)] {
            let back = TraceCtx::from_wire(ctx.trace_id, ctx.span_id, ctx.parent_or_zero());
            assert_eq!(back, ctx);
        }
    }

    #[test]
    fn stamp_and_recover_round_trip_through_an_event() {
        let ctx = TraceCtx::root(3, 5).child(6);
        let e = ctx.stamp(Event::sim(10, "sched", "task.assigned").field("phone", 2u64));
        assert_eq!(TraceCtx::from_event(&e), Some(ctx));
        // Root spans omit the parent field entirely.
        let root = TraceCtx::root(3, 5);
        let e = root.stamp(Event::sim(10, "sched", "task.assigned"));
        assert_eq!(e.get(PARENT_FIELD), None);
        assert_eq!(TraceCtx::from_event(&e), Some(root));
    }

    #[test]
    fn unstamped_events_yield_no_context() {
        let e = Event::sim(0, "engine", "run.start");
        assert_eq!(TraceCtx::from_event(&e), None);
    }
}
