//! Satellite test: events written through the JSONL sink parse back into
//! identical `Event` values (full round trip through the file format).

use std::fs;
use std::sync::Arc;

use cwc_obs::{Event, EventBus, EventSink, JsonlSink, Severity};

fn temp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("cwc-obs-{}-{name}", std::process::id()))
}

fn sample_events() -> Vec<Event> {
    vec![
        Event::sim(0, "engine", "run.start").field("phones", 18u64),
        Event::sim(1_500_000, "sched", "schedule.initial")
            .field("msg", "initial schedule ready")
            .field("makespan_ms", 1234.5)
            .field("jobs", 40u64),
        Event::sim(30_000_000, "engine", "phone.offline")
            .severity(Severity::Warn)
            .field("phone", "phone-3")
            .field("detected", true),
        Event::wall(42, "serverd", "listening")
            .field("addr", "127.0.0.1:7000")
            .field("delta_c", -3i64),
        Event::sim(60_000_000, "net", "probe")
            .field("kb_per_sec", 512.25)
            .field("path", "logs/run \"a\"\nline2"),
    ]
}

#[test]
fn jsonl_file_round_trips_exactly() {
    let path = temp_path("roundtrip.jsonl");
    let bus = EventBus::new();
    let sink = Arc::new(JsonlSink::create(&path).unwrap());
    bus.attach(sink.clone());

    let originals = sample_events();
    for e in &originals {
        bus.emit(e.clone());
    }
    sink.flush();

    let text = fs::read_to_string(&path).unwrap();
    let decoded: Vec<Event> = text
        .lines()
        .map(|line| Event::from_json(line).unwrap())
        .collect();
    assert_eq!(decoded.len(), originals.len());
    for (i, (got, want)) in decoded.iter().zip(&originals).enumerate() {
        // The bus assigned seq on emission; everything else must match.
        assert_eq!(got.seq, i as u64 + 1);
        let mut want = want.clone();
        want.seq = got.seq;
        assert_eq!(*got, want, "event {i} did not round-trip");
    }
    fs::remove_file(&path).ok();
}

#[test]
fn single_event_json_round_trips_without_a_file() {
    for e in sample_events() {
        let line = e.to_json();
        let back = Event::from_json(&line).unwrap();
        assert_eq!(back, e);
    }
}

#[test]
fn from_json_rejects_malformed_lines() {
    assert!(Event::from_json("not json").is_err());
    assert!(Event::from_json("{}").is_err());
    assert!(Event::from_json(r#"{"seq":1,"t_us":0,"clock":"lunar"}"#).is_err());
}
