//! Mutation self-test: with the feature-gated double-credit bug planted
//! in the kernel (`--features mutation`, which turns on
//! `cwc-server/check-mutation`), the explorer must detect it, shrink the
//! trace, and emit a counterexample script that replays byte-identically.
//!
//! The planted bug credits a grouped (replicated) chunk twice on
//! success. In release builds the `exactly_once_credit` /
//! `byte_conservation` oracles catch the doubled delta; in debug builds
//! the kernel's own `debug_assert` in `credit()` fires first and
//! surfaces as a `no_panic` violation. All three verdicts prove
//! detection.

#![cfg(feature = "mutation")]

use cwc_check::{cex, explore, replay_breach, replay_commands, scenario_run, shrink, Options};

const CAUGHT_BY: [&str; 3] = ["exactly_once_credit", "byte_conservation", "no_panic"];

fn find_violation() -> (cwc_check::ScenarioRun, cwc_check::Violation) {
    let run = scenario_run("replicated-atomic", 1).expect("known scenario");
    let report = explore(&run, &Options::default());
    let v = report
        .violations
        .first()
        .expect("planted double-credit bug must be detected")
        .clone();
    (run, v)
}

#[test]
fn planted_double_credit_is_detected() {
    let (_, v) = find_violation();
    assert!(
        CAUGHT_BY.contains(&v.oracle),
        "unexpected oracle {} for the double-credit mutation: {}",
        v.oracle,
        v.detail
    );
}

#[test]
fn violation_shrinks_and_replays() {
    let (run, v) = find_violation();
    let (small, breach) = shrink(&run, &v.trace, v.oracle);
    assert!(
        small.len() <= v.trace.len(),
        "shrinking grew the trace ({} -> {})",
        v.trace.len(),
        small.len()
    );
    assert_eq!(
        breach.oracle, v.oracle,
        "shrinking changed the verdict: {} -> {} ({})",
        v.oracle, breach.oracle, breach.detail
    );
    // The shrunk trace still reproduces the breach from a fresh kernel.
    let (at, replayed) = replay_breach(&run, &small).expect("shrunk trace must still violate");
    assert_eq!(replayed.oracle, v.oracle);
    assert_eq!(at + 1, small.len(), "violating step must be the last event");
}

#[test]
fn counterexample_script_round_trips() {
    let (run, v) = find_violation();
    let (small, breach) = shrink(&run, &v.trace, v.oracle);
    let text = cex::to_script(&run, breach.oracle, &breach.detail, &small);
    let (meta, events) = cex::parse_script(&text).expect("own script must parse");
    assert_eq!(meta.scenario, run.name);
    assert_eq!(meta.seed, run.seed);
    assert_eq!(meta.oracle, breach.oracle);
    assert_eq!(events, small, "decode(encode(trace)) must be identity");
    // And the scenario the header names rebuilds the same state space.
    let rebuilt = cex::run_of(&meta).expect("header names a known scenario");
    let (at, b) = replay_breach(&rebuilt, &events).expect("replay from parsed script");
    assert_eq!(b.oracle, breach.oracle);
    assert_eq!(at + 1, events.len());
}

#[test]
fn replayed_command_stream_is_deterministic() {
    let (run, v) = find_violation();
    let (small, _) = shrink(&run, &v.trace, v.oracle);
    let first = replay_commands(&run, &small);
    let second = replay_commands(&run, &small);
    assert!(!first.is_empty(), "replay produced no commands at all");
    assert_eq!(first, second, "replay is not byte-identical across runs");
}
