//! The three scenario templates must explore clean: every admissible
//! event ordering up to the bounded depth satisfies every oracle.
//!
//! Depth here is modest because these run in debug builds on every
//! `cargo test`; CI additionally runs the release binary at depth 8+
//! (see the model-check workflow job).

// The `mutation` build plants a double-credit bug on purpose; these
// clean-exploration guarantees only hold without it.
#![cfg(not(feature = "mutation"))]

use cwc_check::{explore, scenario_run, Options, SCENARIOS};

fn opts(depth: usize, por: bool) -> Options {
    Options {
        depth,
        por,
        ..Options::default()
    }
}

#[test]
fn all_scenarios_clean_at_depth_6() {
    for name in SCENARIOS {
        for seed in [1, 2] {
            let run = scenario_run(name, seed).expect("known scenario");
            let report = explore(&run, &opts(6, true));
            assert!(
                report.clean(),
                "{name} seed={seed}: {:?}",
                report.violations
            );
            assert!(
                report.stats.transitions > 0,
                "{name} seed={seed}: explored nothing"
            );
            assert!(
                report.stats.quiescent > 0,
                "{name} seed={seed}: no quiescent state reached — the \
                 termination oracle never ran"
            );
        }
    }
}

/// Partial-order reduction must not change the verdict: with POR off the
/// explorer visits a superset of interleavings and must stay clean too.
#[test]
fn por_does_not_mask_violations() {
    for name in SCENARIOS {
        let run = scenario_run(name, 1).expect("known scenario");
        let with_por = explore(&run, &opts(5, true));
        let without = explore(&run, &opts(5, false));
        assert!(
            with_por.clean(),
            "{name} with POR: {:?}",
            with_por.violations
        );
        assert!(
            without.clean(),
            "{name} without POR: {:?}",
            without.violations
        );
        // Transition counts are NOT comparable across the two modes: the
        // sleep set is folded into the visited key when POR is on (for
        // soundness), which can split states that plain dedup merges.
        // The verdict equivalence above is the property that matters.
    }
}

/// Exploration is deterministic: same (scenario, seed, options) must
/// produce identical counters, or counterexample scripts would not be
/// reproducible.
#[test]
fn exploration_is_deterministic() {
    let run = scenario_run("speculative-straggler", 3).expect("known scenario");
    let a = explore(&run, &opts(6, true));
    let b = explore(&run, &opts(6, true));
    assert_eq!(a.stats.transitions, b.stats.transitions);
    assert_eq!(a.stats.dedup_hits, b.stats.dedup_hits);
    assert_eq!(a.stats.por_skips, b.stats.por_skips);
    assert_eq!(a.stats.quiescent, b.stats.quiescent);
}

#[test]
fn unknown_scenario_is_none() {
    assert!(scenario_run("no-such-template", 1).is_none());
}
