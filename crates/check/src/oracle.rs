//! Invariant oracles, run after every explored transition and at every
//! quiescent state.
//!
//! Oracles read only the kernel's [`CheckView`] snapshots and the
//! emitted command stream — never the shared obs metrics, which cloned
//! kernels from different branches would corrupt for each other.

use crate::harness::{Harness, Ship};
use cwc_server::coord::{CheckView, CoordCommand, CoordEvent, TimerKind};

/// One invariant violation: which oracle, and a human-readable account.
#[derive(Debug, Clone)]
pub struct Breach {
    /// Stable oracle name (recorded in counterexample scripts).
    pub oracle: &'static str,
    /// What exactly went wrong.
    pub detail: String,
}

fn breach(oracle: &'static str, detail: String) -> Option<Breach> {
    Some(Breach { oracle, detail })
}

/// Everything one transition exposes to the step oracles.
pub struct StepCtx<'a> {
    /// The delivered event.
    pub event: &'a CoordEvent,
    /// Kernel snapshot before the event.
    pub pre: &'a CheckView,
    /// Kernel snapshot after the event.
    pub post: &'a CheckView,
    /// Commands the kernel emitted for the event.
    pub commands: &'a [CoordCommand],
    /// Driver bookkeeping for the reported ship, if the event was a
    /// report (looked up *before* the harness dropped the entry).
    pub ship: Option<&'a Ship>,
    /// Total `Finished` commands seen on this path so far.
    pub finished_cmds: u32,
    /// `Start` has been delivered (byte conservation's lower bound only
    /// binds once the batch has been distributed).
    pub started: bool,
}

/// Runs every step oracle; the first breach wins.
pub fn check_step(ctx: &StepCtx<'_>) -> Option<Breach> {
    no_halt(ctx)
        .or_else(|| exactly_once_credit(ctx))
        .or_else(|| byte_conservation(ctx.post, ctx.started))
        .or_else(|| cancel_safety(ctx))
        .or_else(|| slo_latch_once(ctx))
        .or_else(|| timer_sanity(ctx))
        .or_else(|| group_sanity(ctx.post))
}

/// A feasible scenario configuration must never produce a fatal
/// (`Halt`) kernel error mid-run.
fn no_halt(ctx: &StepCtx<'_>) -> Option<Breach> {
    if ctx.commands.iter().any(|c| matches!(c, CoordCommand::Halt)) {
        return breach(
            "no_halt",
            format!("kernel halted on {:?} under a feasible scenario", ctx.event),
        );
    }
    None
}

/// Each job's credited bytes may only grow by exactly what the delivered
/// report vouched for: the reported chunk's full length on success, its
/// claimed processed prefix on failure, and nothing on any other event.
/// A replica double-credit shows up here as `delta > allowed`.
fn exactly_once_credit(ctx: &StepCtx<'_>) -> Option<Breach> {
    let (target, allowed) = match ctx.event {
        CoordEvent::ReportOk { job, .. } => {
            let ok = ctx.ship.filter(|s| !s.cancelled);
            (Some(*job), ok.map(|s| s.len_kb).unwrap_or(0))
        }
        CoordEvent::ReportFailed {
            job, processed_kb, ..
        } => {
            let ok = ctx.ship.filter(|s| !s.cancelled);
            (
                Some(*job),
                ok.map(|s| (*processed_kb).min(s.len_kb)).unwrap_or(0),
            )
        }
        _ => (None, 0),
    };
    for (&job, &after) in &ctx.post.progress {
        let before = ctx.pre.progress.get(&job).copied().unwrap_or(0);
        if after < before {
            return breach(
                "exactly_once_credit",
                format!("{job}: credited bytes went backwards ({before} -> {after} KB)"),
            );
        }
        let delta = after - before;
        if delta == 0 {
            continue;
        }
        if Some(job) != target {
            return breach(
                "exactly_once_credit",
                format!(
                    "{job} gained {delta} KB on {:?}, which reported a different job",
                    ctx.event
                ),
            );
        }
        if delta != allowed {
            return breach(
                "exactly_once_credit",
                format!(
                    "{job} gained {delta} KB on {:?}, but the report vouched for {allowed} KB",
                    ctx.event
                ),
            );
        }
    }
    None
}

/// No job is ever credited past its input size, and — until the fleet is
/// lost — every uncredited byte is still held somewhere (queued, in
/// flight, parked, or on the failed list), with redundancy groups
/// counted once.
fn byte_conservation(view: &CheckView, started: bool) -> Option<Breach> {
    let outstanding = view.outstanding_kb();
    for (&job, &size) in &view.job_size {
        let done = view.progress.get(&job).copied().unwrap_or(0);
        if done > size {
            return breach(
                "byte_conservation",
                format!("{job}: {done} KB credited for a {size} KB input"),
            );
        }
        let held = outstanding.get(&job).copied().unwrap_or(0);
        if started && !view.fleet_lost && !view.fatal && done + held < size {
            return breach(
                "byte_conservation",
                format!(
                    "{job}: {done} KB credited + {held} KB outstanding < {size} KB input \
                     ({} bytes vanished without a fleet loss)",
                    (size - done - held) * 1024
                ),
            );
        }
    }
    None
}

/// A retired (cancelled) ship's late report must be absorbed without
/// effect: no result recorded, nothing credited (the credit side is
/// already covered by [`exactly_once_credit`] with `allowed = 0`).
fn cancel_safety(ctx: &StepCtx<'_>) -> Option<Breach> {
    let late =
        matches!(ctx.event, CoordEvent::ReportOk { .. }) && ctx.ship.is_some_and(|s| s.cancelled);
    if !late {
        return None;
    }
    if ctx
        .commands
        .iter()
        .any(|c| matches!(c, CoordCommand::RecordResult { .. }))
    {
        return breach(
            "cancel_safety",
            format!(
                "late report for a cancelled ship was accepted as a result: {:?}",
                ctx.event
            ),
        );
    }
    None
}

/// Completion latches exactly once: the completed set only grows, the
/// finished flag never clears, and `Finished` is emitted at most once
/// per run.
fn slo_latch_once(ctx: &StepCtx<'_>) -> Option<Breach> {
    for job in &ctx.pre.completed {
        if !ctx.post.completed.contains(job) {
            return breach(
                "slo_latch_once",
                format!("{job} un-completed on {:?}", ctx.event),
            );
        }
    }
    if ctx.pre.finished && !ctx.post.finished {
        return breach(
            "slo_latch_once",
            format!("finished flag cleared on {:?}", ctx.event),
        );
    }
    if ctx.finished_cmds > 1 {
        return breach(
            "slo_latch_once",
            format!("Finished emitted {} times", ctx.finished_cmds),
        );
    }
    None
}

/// A `Speculate` timer that outlived its chunk (the token no longer
/// names this slot's in-flight or parked-in-flight work, or the batch
/// already finished) must be ignored outright.
fn timer_sanity(ctx: &StepCtx<'_>) -> Option<Breach> {
    let CoordEvent::TimerFired {
        kind: TimerKind::Speculate,
        slot,
        token,
    } = ctx.event
    else {
        return None;
    };
    let live = !ctx.pre.finished
        && ctx.pre.slots.get(slot).is_some_and(|s| {
            s.busy.as_ref().is_some_and(|(q, _)| q == token)
                || s.parked_inflight_seq == Some(*token)
        });
    if !live && !ctx.commands.is_empty() {
        return breach(
            "timer_sanity",
            format!(
                "stale Speculate timer (slot {slot}, token {token}) produced {} command(s): {:?}",
                ctx.commands.len(),
                ctx.commands
            ),
        );
    }
    None
}

/// Structural redundancy-group invariant: every live group has 1–2
/// members actually present in the state, matching its outstanding
/// count, and no resolved (won) group lingers.
fn group_sanity(view: &CheckView) -> Option<Breach> {
    use std::collections::BTreeMap;
    let mut members: BTreeMap<u32, u32> = BTreeMap::new();
    let mut count = |group: Option<u32>| {
        if let Some(g) = group {
            *members.entry(g).or_insert(0) += 1;
        }
    };
    for slot in view.slots.values() {
        if let Some((_, c)) = &slot.busy {
            count(c.group);
        }
        for c in &slot.queue {
            count(c.group);
        }
        for c in &slot.parked {
            count(c.group);
        }
    }
    for c in &view.failed {
        count(c.group);
    }
    for (&g, grp) in &view.groups {
        if grp.won {
            return breach("group_sanity", format!("resolved group {g} still live"));
        }
        let present = members.get(&g).copied().unwrap_or(0);
        if present != grp.outstanding || !(1..=2).contains(&grp.outstanding) {
            return breach(
                "group_sanity",
                format!(
                    "group {g}: {present} member(s) present, {} outstanding",
                    grp.outstanding
                ),
            );
        }
    }
    for &g in members.keys() {
        if !view.groups.contains_key(&g) {
            return breach(
                "group_sanity",
                format!("chunk references resolved/unknown group {g}"),
            );
        }
    }
    None
}

/// Quiescence oracle: when no mandatory event remains (all live reports,
/// probe replies, and offline/reschedule timers drained), the batch must
/// have terminated — finished with every byte credited, or latched a
/// fleet loss.
pub fn check_quiescent(view: &CheckView, harness: &Harness) -> Option<Breach> {
    if view.fleet_lost {
        return None;
    }
    if !view.finished {
        return breach(
            "termination",
            format!(
                "quiescent but not finished: progress {:?}, {} armed timer(s), \
                 {} ship(s) held",
                view.progress,
                harness.timers.len(),
                harness.ships.len()
            ),
        );
    }
    for (&job, &size) in &view.job_size {
        let done = view.progress.get(&job).copied().unwrap_or(0);
        if done != size {
            return breach(
                "termination",
                format!("finished, but {job} credited {done} of {size} KB"),
            );
        }
    }
    None
}
