//! The model of a conforming driver.
//!
//! The kernel's contract is "execute every command, feed the resulting
//! events back in" — so the harness is pure bookkeeping over the command
//! stream: which ships are in flight (and which of those were cancelled
//! and may still report late), which probes await replies, which timers
//! are armed, which slots have gone dark, and how much fault budget the
//! scenario has left. From that bookkeeping it derives the set of events
//! a real driver could deliver next; the explorer branches over exactly
//! that set.
//!
//! Time is logical: the n-th delivered event carries `now = (n+1) ms`.
//! Armed timers are treated as firable in any order — a superset of real
//! schedules, since event gaps are unconstrained (see DESIGN.md §13 for
//! the one refinement this skips).

use crate::scenario::{Faults, ScenarioRun};
use cwc_server::coord::{CheckView, CoordCommand, CoordEvent, TimerKind};
use cwc_types::{JobId, Micros};
use std::collections::{BTreeMap, BTreeSet};

/// One shipped partition the driver still holds a handle to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ship {
    /// Job the partition belongs to.
    pub job: JobId,
    /// Partition length, KB.
    pub len_kb: u64,
    /// Partition offset, KB.
    pub offset_kb: u64,
    /// Shipped via `ShipReplica`.
    pub replica: bool,
    /// A `CancelTask` retired this ship; the worker may still report it
    /// late exactly once.
    pub cancelled: bool,
}

/// One deliverable next event, in canonical order. The `Ord` derive is
/// the exploration order (and the sleep-set "earlier than" relation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Action {
    /// Probe reply for an outstanding `SendProbe`.
    Probe { slot: usize },
    /// Successful report for a live in-flight ship.
    Ok { slot: usize, seq: u64 },
    /// Late successful report for a cancelled ship.
    LateOk { slot: usize, seq: u64 },
    /// Injected online failure for a live in-flight ship.
    /// `mode` 0: nothing processed, no checkpoint; `mode` 1: half
    /// processed with a checkpoint (breakable, ungrouped chunks only).
    Fail { slot: usize, seq: u64, mode: u8 },
    /// Injected silent unplug.
    Dark { slot: usize },
    /// An armed timer elapses.
    Timer { kind: u8, slot: usize, token: u64 },
}

/// Dependency footprint of one action: the state it can read or write.
/// Two non-global actions with disjoint key sets commute.
#[derive(Debug, Clone, Default)]
pub struct Footprint {
    /// Touches solver/fleet-wide state: never commutes.
    pub global: bool,
    /// Fine-grained keys (slots, jobs, predictor programs, the ship-seq
    /// mint).
    pub keys: BTreeSet<Key>,
}

/// Footprint key space.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Key {
    /// Per-slot state (queue, busy, keep-alive counters).
    Slot(usize),
    /// Per-job byte accounting.
    Job(u32),
    /// The §4.1 predictor's per-program estimator.
    Prog(String),
    /// The global ship sequence mint (`next_seq`).
    Mint,
}

impl Footprint {
    fn global() -> Self {
        Footprint {
            global: true,
            keys: BTreeSet::new(),
        }
    }

    /// Whether `self` and `other` commute (disjoint, neither global).
    pub fn independent(&self, other: &Footprint) -> bool {
        !self.global && !other.global && self.keys.is_disjoint(&other.keys)
    }
}

const TIMER_KINDS: [TimerKind; 5] = [
    TimerKind::KeepAlive,
    TimerKind::Stall,
    TimerKind::OfflineDetect,
    TimerKind::Reschedule,
    TimerKind::Speculate,
];

fn timer_index(kind: TimerKind) -> u8 {
    match kind {
        TimerKind::KeepAlive => 0,
        TimerKind::Stall => 1,
        TimerKind::OfflineDetect => 2,
        TimerKind::Reschedule => 3,
        TimerKind::Speculate => 4,
    }
}

/// Driver-side bookkeeping, cloned alongside the kernel at every branch.
#[derive(Debug, Clone)]
pub struct Harness {
    /// Events delivered so far (prefix included); the logical clock.
    pub steps: u64,
    /// In-flight ships by `(slot, seq)`, including cancelled ones whose
    /// late report has not been delivered yet.
    pub ships: BTreeMap<(usize, u64), Ship>,
    /// Slots with an outstanding `SendProbe`.
    pub probes: BTreeSet<usize>,
    /// Armed timers `(kind index, slot, token)`.
    pub timers: BTreeSet<(u8, usize, u64)>,
    /// Slots that went silently dark.
    pub dark: BTreeSet<usize>,
    /// Remaining silent-unplug budget.
    pub dark_budget: u32,
    /// Remaining online-failure budget.
    pub fail_budget: u32,
    /// `Finished` commands seen (the latch-once oracle reads this).
    pub finished_cmds: u32,
    /// A `Halt` command was seen.
    pub halted: bool,
    /// `Start` has been delivered: byte conservation only binds once the
    /// kernel has actually distributed the batch.
    pub started: bool,
}

impl Harness {
    /// Fresh harness for a scenario's fault envelope.
    pub fn new(faults: &Faults) -> Self {
        Harness {
            steps: 0,
            ships: BTreeMap::new(),
            probes: BTreeSet::new(),
            timers: BTreeSet::new(),
            dark: BTreeSet::new(),
            dark_budget: faults.dark_budget,
            fail_budget: faults.fail_budget,
            finished_cmds: 0,
            halted: false,
            started: false,
        }
    }

    /// The logical timestamp the next delivered event carries.
    pub fn next_now(&self) -> Micros {
        Micros((self.steps + 1) * 1_000)
    }

    /// Folds one delivered event into the bookkeeping (call before
    /// stepping the kernel).
    pub fn observe_event(&mut self, ev: &CoordEvent) {
        self.steps += 1;
        match ev {
            CoordEvent::Probe { slot, .. } => {
                self.probes.remove(slot);
            }
            CoordEvent::ReportOk { slot, seq, .. } => {
                self.ships.remove(&(*slot, *seq));
            }
            CoordEvent::ReportFailed { slot, seq, .. } => {
                self.ships.remove(&(*slot, *seq));
                self.fail_budget = self.fail_budget.saturating_sub(1);
            }
            CoordEvent::WentDark { slot } => {
                self.dark.insert(*slot);
                self.dark_budget = self.dark_budget.saturating_sub(1);
                // A silently-unplugged worker never reports again.
                self.ships.retain(|(s, _), _| s != slot);
            }
            CoordEvent::TimerFired { kind, slot, token } => {
                self.timers.remove(&(timer_index(*kind), *slot, *token));
            }
            CoordEvent::Start => self.started = true,
            CoordEvent::KeepAliveSeen { .. }
            | CoordEvent::ConnectionLost { .. }
            | CoordEvent::Misbehaved { .. }
            | CoordEvent::Replugged { .. } => {}
        }
    }

    /// Folds the kernel's response into the bookkeeping (call after
    /// stepping the kernel).
    pub fn apply_commands(&mut self, cmds: &[CoordCommand]) {
        for cmd in cmds {
            match cmd {
                CoordCommand::ShipInput {
                    slot,
                    seq,
                    job,
                    offset_kb,
                    len_kb,
                    ..
                } => {
                    self.ships.insert(
                        (*slot, *seq),
                        Ship {
                            job: *job,
                            len_kb: *len_kb,
                            offset_kb: *offset_kb,
                            replica: false,
                            cancelled: false,
                        },
                    );
                }
                CoordCommand::ShipReplica {
                    slot,
                    seq,
                    job,
                    offset_kb,
                    len_kb,
                    ..
                } => {
                    self.ships.insert(
                        (*slot, *seq),
                        Ship {
                            job: *job,
                            len_kb: *len_kb,
                            offset_kb: *offset_kb,
                            replica: true,
                            cancelled: false,
                        },
                    );
                }
                CoordCommand::CancelTask { slot, seq, .. } => {
                    if let Some(ship) = self.ships.get_mut(&(*slot, *seq)) {
                        ship.cancelled = true;
                    }
                }
                CoordCommand::SendProbe { slot } => {
                    self.probes.insert(*slot);
                }
                CoordCommand::StartTimer {
                    kind, slot, token, ..
                } => {
                    self.timers.insert((timer_index(*kind), *slot, *token));
                }
                CoordCommand::Finished => self.finished_cmds += 1,
                CoordCommand::Halt => self.halted = true,
                CoordCommand::RecordResult { .. } | CoordCommand::SendKeepAlive { .. } => {}
            }
        }
    }

    /// All events a conforming driver could deliver next, in canonical
    /// order.
    ///
    /// Silent unplugs are only injected while no probe of that slot is
    /// outstanding: a probed-then-dark slot would wedge the solver round
    /// forever (the kernel waits for every reply), which is a driver
    /// integration question, not a kernel-interleaving one.
    pub fn enabled(&self, view: &CheckView, run: &ScenarioRun) -> Vec<Action> {
        let mut out = Vec::new();
        for &slot in &self.probes {
            out.push(Action::Probe { slot });
        }
        for (&(slot, seq), ship) in &self.ships {
            if ship.cancelled {
                out.push(Action::LateOk { slot, seq });
                continue;
            }
            out.push(Action::Ok { slot, seq });
            if self.fail_budget > 0 {
                out.push(Action::Fail { slot, seq, mode: 0 });
                let grouped = view
                    .slots
                    .get(&slot)
                    .and_then(|s| s.busy.as_ref())
                    .is_some_and(|(_, c)| c.group.is_some());
                if !grouped && run.breakable.contains(&ship.job) && ship.len_kb >= 2 {
                    out.push(Action::Fail { slot, seq, mode: 1 });
                }
            }
        }
        if self.dark_budget > 0 {
            for &slot in &run.faults.dark_slots {
                let alive = view.slots.get(&slot).is_none_or(|s| s.alive);
                if alive && !self.dark.contains(&slot) && !self.probes.contains(&slot) {
                    out.push(Action::Dark { slot });
                }
            }
        }
        for &(kind, slot, token) in &self.timers {
            out.push(Action::Timer { kind, slot, token });
        }
        out.sort();
        out
    }

    /// Whether a real driver is *guaranteed* to eventually deliver this
    /// event (live reports and probe replies always arrive; armed
    /// offline-detection and reschedule timers always elapse). A state
    /// with no mandatory events left is quiescent: the termination oracle
    /// runs there.
    pub fn mandatory(action: &Action) -> bool {
        match action {
            Action::Probe { .. } | Action::Ok { .. } => true,
            Action::Timer { kind, .. } => {
                *kind == timer_index(TimerKind::OfflineDetect)
                    || *kind == timer_index(TimerKind::Reschedule)
            }
            Action::LateOk { .. } | Action::Fail { .. } | Action::Dark { .. } => false,
        }
    }

    /// Materialises an action as the event the driver would deliver.
    pub fn to_event(&self, action: &Action, run: &ScenarioRun) -> CoordEvent {
        match *action {
            Action::Probe { slot } => CoordEvent::Probe {
                slot,
                info: run.infos[slot],
            },
            Action::Ok { slot, seq } | Action::LateOk { slot, seq } => {
                let job = self
                    .ships
                    .get(&(slot, seq))
                    .map(|s| s.job)
                    .unwrap_or(JobId(0));
                CoordEvent::ReportOk {
                    slot,
                    seq,
                    job,
                    // Deterministic measured runtime: slot-dependent so
                    // predictor updates for the same program do not
                    // accidentally commute.
                    exec_ms: 8.0 + slot as f64,
                }
            }
            Action::Fail { slot, seq, mode } => {
                let ship = self.ships.get(&(slot, seq));
                let job = ship.map(|s| s.job).unwrap_or(JobId(0));
                let len = ship.map(|s| s.len_kb).unwrap_or(0);
                let (processed_kb, checkpoint) = if mode == 1 {
                    (len / 2, Some(vec![0xCD]))
                } else {
                    (0, None)
                };
                CoordEvent::ReportFailed {
                    slot,
                    seq,
                    job,
                    processed_kb,
                    checkpoint,
                }
            }
            Action::Dark { slot } => CoordEvent::WentDark { slot },
            Action::Timer { kind, slot, token } => CoordEvent::TimerFired {
                kind: TIMER_KINDS[kind as usize],
                slot,
                token,
            },
        }
    }

    /// Dependency footprint of an action at the current state. Used by
    /// the sleep-set partial-order reduction; conservatively global for
    /// anything that can reach solver or fleet-wide state.
    pub fn footprint(&self, action: &Action, view: &CheckView, run: &ScenarioRun) -> Footprint {
        match *action {
            Action::Probe { slot } => {
                // The last awaited reply triggers a full solver round.
                if view.probing.len() <= 1 && view.probing.contains(&slot) {
                    Footprint::global()
                } else {
                    Footprint {
                        global: false,
                        keys: BTreeSet::from([Key::Slot(slot)]),
                    }
                }
            }
            Action::Ok { slot, seq } => {
                let Some(slot_view) = view.slots.get(&slot) else {
                    return Footprint::global();
                };
                let Some((_, chunk)) = slot_view.busy.as_ref().filter(|(s, _)| *s == seq) else {
                    // Not actually in flight kernel-side: stale no-op.
                    return Footprint {
                        global: false,
                        keys: BTreeSet::from([Key::Slot(slot)]),
                    };
                };
                if chunk.group.is_some() {
                    // Group resolution cancels the twin on another slot.
                    return Footprint::global();
                }
                let done = view.progress.get(&chunk.job).copied().unwrap_or(0);
                let size = view.job_size.get(&chunk.job).copied().unwrap_or(u64::MAX);
                if done + chunk.kb >= size {
                    // Completion latch reads every job's progress.
                    return Footprint::global();
                }
                let mut keys = BTreeSet::from([Key::Slot(slot), Key::Job(chunk.job.0)]);
                if let Some(p) = run.programs.get(&chunk.job) {
                    keys.insert(Key::Prog(p.clone()));
                }
                if !slot_view.queue.is_empty() {
                    // The report frees the slot: the next ship mints a
                    // global sequence number.
                    keys.insert(Key::Mint);
                }
                Footprint {
                    global: false,
                    keys,
                }
            }
            Action::LateOk { slot, .. } => Footprint {
                global: false,
                keys: BTreeSet::from([Key::Slot(slot)]),
            },
            Action::Fail { .. } | Action::Dark { .. } => Footprint::global(),
            Action::Timer { kind, slot, token } => {
                if kind == timer_index(TimerKind::Speculate) {
                    let live = view.slots.get(&slot).is_some_and(|s| {
                        s.busy.as_ref().is_some_and(|(q, _)| *q == token)
                            || s.parked_inflight_seq == Some(token)
                    });
                    if live && !view.finished {
                        Footprint::global()
                    } else {
                        // Stale straggler check: a pure no-op.
                        Footprint::default()
                    }
                } else {
                    Footprint::global()
                }
            }
        }
    }

    /// FNV-1a digest of the driver-side state that can influence future
    /// transitions. Combined (XOR) with [`Kernel::digest`] for the
    /// explorer's visited set. Excludes `steps`: merging states that
    /// differ only in elapsed logical time is the point of the
    /// abstraction (DESIGN.md §13).
    ///
    /// [`Kernel::digest`]: cwc_server::coord::Kernel::digest
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for (&(slot, seq), ship) in &self.ships {
            eat(slot as u64);
            eat(seq);
            eat(u64::from(ship.job.0));
            eat(ship.len_kb);
            eat(ship.offset_kb);
            eat(u64::from(u8::from(ship.replica)));
            eat(u64::from(u8::from(ship.cancelled)));
        }
        eat(0xF0);
        for &slot in &self.probes {
            eat(slot as u64);
        }
        eat(0xF1);
        for &(kind, slot, token) in &self.timers {
            eat(u64::from(kind));
            eat(slot as u64);
            eat(token);
        }
        eat(0xF2);
        for &slot in &self.dark {
            eat(slot as u64);
        }
        eat(u64::from(self.dark_budget));
        eat(u64::from(self.fail_budget));
        eat(u64::from(self.finished_cmds));
        eat(u64::from(u8::from(self.halted)));
        h
    }
}
