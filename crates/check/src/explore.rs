//! The bounded state-space explorer.
//!
//! Depth-first search over `(Kernel, Harness)` pairs. The kernel is
//! `Clone` under the `check` feature, so branching checkpoints the state
//! directly instead of replaying the prefix. Two reductions keep the
//! frontier tractable:
//!
//! - **visited-state deduplication** over a 64-bit digest of the
//!   behavior-relevant state (kernel digest ⊕ harness digest), keyed to
//!   the best remaining depth already explored from that state, and
//! - **sleep-set partial-order reduction**: after exploring action `a`
//!   from a node, sibling subtrees skip re-exploring `a` first whenever
//!   it commutes with the sibling's action (disjoint dependency
//!   footprints). When POR is on, the sleep set is folded into the
//!   visited key, which keeps the combination of the two reductions
//!   sound.
//!
//! Every transition runs the full oracle library; a breach stops that
//! path and records the exact event trace that produced it.

use crate::harness::{Action, Harness};
use crate::oracle::{self, Breach, StepCtx};
use crate::scenario::ScenarioRun;
use cwc_server::coord::{CoordEvent, Kernel};
use cwc_types::Micros;
use std::collections::HashMap;

/// Exploration limits and switches.
#[derive(Debug, Clone)]
pub struct Options {
    /// Events explored past the initialisation prefix, per path.
    pub depth: usize,
    /// Hard cap on explored transitions (safety valve; 0 = unlimited).
    pub max_states: u64,
    /// Partial-order reduction on/off (`--no-por` sets false).
    pub por: bool,
    /// Stop after this many violations (0 = collect all).
    pub max_violations: usize,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            depth: 8,
            max_states: 5_000_000,
            por: true,
            max_violations: 1,
        }
    }
}

/// Exploration counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct Stats {
    /// Transitions executed (kernel steps).
    pub transitions: u64,
    /// Branches skipped because the target state was already explored
    /// at least as deeply.
    pub dedup_hits: u64,
    /// Branches skipped by the sleep-set reduction.
    pub por_skips: u64,
    /// Quiescent states reached (termination oracle ran).
    pub quiescent: u64,
    /// Paths cut by the depth bound.
    pub depth_bound_hits: u64,
    /// Kernel panics caught (each is also a violation).
    pub panics: u64,
}

/// One invariant violation with its full reproducing event trace
/// (initialisation prefix included).
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which oracle tripped.
    pub oracle: &'static str,
    /// Human-readable account.
    pub detail: String,
    /// The `(now, event)` trace that reproduces the breach; the last
    /// entry is the violating step.
    pub trace: Vec<(Micros, CoordEvent)>,
}

/// Result of one exploration.
#[derive(Debug, Clone)]
pub struct Report {
    /// Counters.
    pub stats: Stats,
    /// Violations found (bounded by [`Options::max_violations`]).
    pub violations: Vec<Violation>,
}

impl Report {
    /// No breach anywhere in the explored space.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Restores the previous panic hook on drop. The explorer steps the
/// kernel under `catch_unwind` (a panic is a reportable violation, not a
/// crash), and a planted bug would otherwise spray thousands of panic
/// backtraces across the output while every violating path is explored.
struct QuietPanics;

impl QuietPanics {
    fn install() -> Self {
        std::panic::set_hook(Box::new(|_| {}));
        QuietPanics
    }
}

impl Drop for QuietPanics {
    fn drop(&mut self) {
        let _ = std::panic::take_hook();
    }
}

/// The outcome of stepping one event: either the kernel's response, or
/// the panic payload it blew up with.
pub(crate) fn step_caught(
    kernel: &mut Kernel,
    now: Micros,
    ev: CoordEvent,
) -> Result<Vec<cwc_server::coord::CoordCommand>, String> {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| kernel.step(now, ev)));
    result.map_err(|payload| {
        payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "opaque panic payload".to_string())
    })
}

struct Ctx<'a> {
    run: &'a ScenarioRun,
    opts: &'a Options,
    visited: HashMap<u64, usize>,
    stats: Stats,
    violations: Vec<Violation>,
    trace: Vec<(Micros, CoordEvent)>,
}

impl Ctx<'_> {
    fn done(&self) -> bool {
        (self.opts.max_violations > 0 && self.violations.len() >= self.opts.max_violations)
            || (self.opts.max_states > 0 && self.stats.transitions >= self.opts.max_states)
    }

    fn breach(&mut self, b: Breach) {
        self.violations.push(Violation {
            oracle: b.oracle,
            detail: b.detail,
            trace: self.trace.clone(),
        });
    }
}

fn sleep_digest(sleep: &[Action]) -> u64 {
    let mut h: u64 = 0x100_0193;
    for a in sleep {
        // Debug formatting of a small Copy enum: cheap and collision-free
        // enough for a secondary key.
        for b in format!("{a:?}").bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Explores a scenario instance exhaustively to the configured depth.
pub fn explore(run: &ScenarioRun, opts: &Options) -> Report {
    let _quiet = QuietPanics::install();
    let mut ctx = Ctx {
        run,
        opts,
        visited: HashMap::new(),
        stats: Stats::default(),
        violations: Vec::new(),
        trace: Vec::new(),
    };

    // Fixed initialisation prefix: probe every slot, then Start. Probe
    // replies before Start trivially commute (each writes only its own
    // slot), so branching over their order would explore nothing new.
    let mut kernel = match Kernel::new(run.cfg.clone()) {
        Ok(k) => k,
        Err(e) => {
            ctx.breach(Breach {
                oracle: "no_halt",
                detail: format!("kernel construction failed: {e}"),
            });
            return Report {
                stats: ctx.stats,
                violations: ctx.violations,
            };
        }
    };
    let mut harness = Harness::new(&run.faults);
    let mut prefix: Vec<CoordEvent> = (0..run.infos.len())
        .map(|slot| CoordEvent::Probe {
            slot,
            info: run.infos[slot],
        })
        .collect();
    prefix.push(CoordEvent::Start);
    for ev in prefix {
        let now = harness.next_now();
        harness.observe_event(&ev);
        let pre = kernel.check_view();
        match step_caught(&mut kernel, now, ev.clone()) {
            Ok(cmds) => {
                harness.apply_commands(&cmds);
                ctx.trace.push((now, ev.clone()));
                ctx.stats.transitions += 1;
                let post = kernel.check_view();
                let step = StepCtx {
                    event: &ev,
                    pre: &pre,
                    post: &post,
                    commands: &cmds,
                    ship: None,
                    finished_cmds: harness.finished_cmds,
                    started: harness.started,
                };
                if let Some(b) = oracle::check_step(&step) {
                    ctx.breach(b);
                    return Report {
                        stats: ctx.stats,
                        violations: ctx.violations,
                    };
                }
            }
            Err(msg) => {
                ctx.stats.panics += 1;
                ctx.trace.push((now, ev));
                ctx.breach(Breach {
                    oracle: "no_panic",
                    detail: format!("kernel panicked during initialisation: {msg}"),
                });
                return Report {
                    stats: ctx.stats,
                    violations: ctx.violations,
                };
            }
        }
    }

    dfs(&kernel, &harness, opts.depth, &[], &mut ctx);
    Report {
        stats: ctx.stats,
        violations: ctx.violations,
    }
}

fn dfs(kernel: &Kernel, harness: &Harness, depth_left: usize, sleep: &[Action], ctx: &mut Ctx<'_>) {
    if ctx.done() {
        return;
    }
    let view = kernel.check_view();
    let actions = harness.enabled(&view, ctx.run);
    if !actions.iter().any(Harness::mandatory) {
        ctx.stats.quiescent += 1;
        if let Some(b) = oracle::check_quiescent(&view, harness) {
            ctx.breach(b);
            return;
        }
        // Optional events (late reports, stale timers) are still
        // explored below: quiescence must be stable under them.
    }
    if actions.is_empty() {
        return;
    }
    if depth_left == 0 {
        ctx.stats.depth_bound_hits += 1;
        return;
    }

    let footprints: Vec<_> = actions
        .iter()
        .map(|a| harness.footprint(a, &view, ctx.run))
        .collect();
    let mut explored: Vec<usize> = Vec::new();
    for (i, action) in actions.iter().enumerate() {
        if ctx.done() {
            return;
        }
        if ctx.opts.por && sleep.contains(action) {
            ctx.stats.por_skips += 1;
            continue;
        }
        let mut child_kernel = kernel.clone();
        let mut child_harness = harness.clone();
        let ev = child_harness.to_event(action, ctx.run);
        let now = child_harness.next_now();
        let ship = harness
            .ships
            .get(&match *action {
                Action::Ok { slot, seq }
                | Action::LateOk { slot, seq }
                | Action::Fail { slot, seq, .. } => (slot, seq),
                _ => (usize::MAX, u64::MAX),
            })
            .cloned();
        child_harness.observe_event(&ev);
        ctx.stats.transitions += 1;
        ctx.trace.push((now, ev.clone()));
        match step_caught(&mut child_kernel, now, ev.clone()) {
            Ok(cmds) => {
                child_harness.apply_commands(&cmds);
                let post = child_kernel.check_view();
                let step = StepCtx {
                    event: &ev,
                    pre: &view,
                    post: &post,
                    commands: &cmds,
                    ship: ship.as_ref(),
                    finished_cmds: child_harness.finished_cmds,
                    started: child_harness.started,
                };
                if let Some(b) = oracle::check_step(&step) {
                    ctx.breach(b);
                } else {
                    // Sleep set for the child: everything this node
                    // already explored (plus inherited sleepers) that
                    // commutes with the action just taken.
                    let child_sleep: Vec<Action> = if ctx.opts.por {
                        sleep
                            .iter()
                            .copied()
                            .chain(explored.iter().map(|&j| actions[j]))
                            .filter(|s| {
                                // Keep a sleeper only when it provably
                                // commutes with the action just taken; a
                                // sleeper that is not enabled here has no
                                // footprint, so it is dropped (sound —
                                // shrinking a sleep set only costs
                                // pruning).
                                actions
                                    .iter()
                                    .position(|a| a == s)
                                    .map(|j| footprints[j].independent(&footprints[i]))
                                    .unwrap_or(false)
                            })
                            .collect()
                    } else {
                        Vec::new()
                    };
                    let mut key = child_kernel.digest() ^ child_harness.digest();
                    if ctx.opts.por {
                        key ^= sleep_digest(&child_sleep);
                    }
                    let remaining = depth_left - 1;
                    let seen = ctx.visited.get(&key).copied();
                    if seen.is_some_and(|d| d >= remaining) {
                        ctx.stats.dedup_hits += 1;
                    } else {
                        ctx.visited.insert(key, remaining);
                        dfs(&child_kernel, &child_harness, remaining, &child_sleep, ctx);
                    }
                }
            }
            Err(msg) => {
                ctx.stats.panics += 1;
                ctx.breach(Breach {
                    oracle: "no_panic",
                    detail: format!("kernel panicked on {ev:?}: {msg}"),
                });
            }
        }
        ctx.trace.pop();
        explored.push(i);
    }
}
