//! Counterexample script files.
//!
//! A counterexample is an ordinary `coord::script` event stream — one
//! encoded event per line, byte-exact under decode∘encode — preceded by
//! `#` comment lines that pin the scenario template, seed, and tripped
//! oracle. That makes every counterexample self-describing: `cwc-check
//! replay <file>` rebuilds the exact kernel configuration and reproduces
//! the violation (and its command stream) byte-identically.

use crate::scenario::{scenario_run, ScenarioRun};
use cwc_server::coord::{script, CoordEvent};
use cwc_types::{CwcError, CwcResult, Micros};

/// Parsed `#` header of a counterexample script.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Meta {
    /// Scenario template name.
    pub scenario: String,
    /// Seed the scenario was instantiated with.
    pub seed: u64,
    /// Oracle the trace trips (empty for hand-written scripts).
    pub oracle: String,
}

/// Renders a counterexample as a replayable script file.
pub fn to_script(
    run: &ScenarioRun,
    oracle: &str,
    detail: &str,
    trace: &[(Micros, CoordEvent)],
) -> String {
    let mut out = String::new();
    out.push_str("# cwc-check counterexample v1\n");
    out.push_str(&format!(
        "# scenario={} seed={} oracle={}\n",
        run.name, run.seed, oracle
    ));
    for line in detail.lines() {
        out.push_str(&format!("# {line}\n"));
    }
    for (now, ev) in trace {
        out.push_str(&script::encode(*now, ev));
        out.push('\n');
    }
    out
}

/// Parses a counterexample script: header metadata plus the decoded
/// event stream.
pub fn parse_script(text: &str) -> CwcResult<(Meta, Vec<(Micros, CoordEvent)>)> {
    let mut meta = Meta::default();
    let mut events = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            for token in comment.split_whitespace() {
                if let Some(v) = token.strip_prefix("scenario=") {
                    meta.scenario = v.to_string();
                } else if let Some(v) = token.strip_prefix("seed=") {
                    meta.seed = v.parse().map_err(|_| {
                        CwcError::Config(format!("bad seed in script header: {token:?}"))
                    })?;
                } else if let Some(v) = token.strip_prefix("oracle=") {
                    meta.oracle = v.to_string();
                }
            }
            continue;
        }
        events.push(script::decode(line)?);
    }
    Ok((meta, events))
}

/// Rebuilds the scenario a parsed script names.
pub fn run_of(meta: &Meta) -> CwcResult<ScenarioRun> {
    scenario_run(&meta.scenario, meta.seed).ok_or_else(|| {
        CwcError::Config(format!("script names unknown scenario {:?}", meta.scenario))
    })
}
