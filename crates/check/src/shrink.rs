//! Counterexample minimisation.
//!
//! A violating trace out of the explorer carries every event along its
//! DFS path. Most of them are irrelevant. The shrinker replays candidate
//! subsequences against a fresh kernel — the kernel ignores reports and
//! timers that no longer correspond to anything, so event removal always
//! yields a *conforming-enough* stream to test — and keeps a removal
//! whenever the same oracle still trips. Greedy single-event removal
//! passes run to a fixed point, then the trace is truncated at the
//! violating step.

use crate::explore::step_caught;
use crate::harness::Harness;
use crate::oracle::{self, Breach, StepCtx};
use crate::scenario::ScenarioRun;
use cwc_server::coord::{CoordEvent, Kernel};
use cwc_types::Micros;

/// Replays an event sequence and returns the first oracle breach, with
/// the index of the violating step.
pub fn replay_breach(
    run: &ScenarioRun,
    events: &[(Micros, CoordEvent)],
) -> Option<(usize, Breach)> {
    let mut kernel = Kernel::new(run.cfg.clone()).ok()?;
    let mut harness = Harness::new(&run.faults);
    for (i, (now, ev)) in events.iter().enumerate() {
        let ship = match ev {
            CoordEvent::ReportOk { slot, seq, .. } | CoordEvent::ReportFailed { slot, seq, .. } => {
                harness.ships.get(&(*slot, *seq)).cloned()
            }
            _ => None,
        };
        let pre = kernel.check_view();
        harness.observe_event(ev);
        match step_caught(&mut kernel, *now, ev.clone()) {
            Ok(cmds) => {
                harness.apply_commands(&cmds);
                let post = kernel.check_view();
                let step = StepCtx {
                    event: ev,
                    pre: &pre,
                    post: &post,
                    commands: &cmds,
                    ship: ship.as_ref(),
                    finished_cmds: harness.finished_cmds,
                    started: harness.started,
                };
                if let Some(b) = oracle::check_step(&step) {
                    return Some((i, b));
                }
            }
            Err(msg) => {
                return Some((
                    i,
                    Breach {
                        oracle: "no_panic",
                        detail: format!("kernel panicked on {ev:?}: {msg}"),
                    },
                ));
            }
        }
    }
    // The explorer checks quiescence at the node the trace ends on, so a
    // `termination` breach lives *after* the last step — recheck it here
    // or the shrinker could never reproduce one.
    let view = kernel.check_view();
    if !harness.enabled(&view, run).iter().any(Harness::mandatory) {
        if let Some(b) = oracle::check_quiescent(&view, &harness) {
            return Some((events.len().saturating_sub(1), b));
        }
    }
    None
}

/// Replays an event sequence and returns the kernel's full command
/// stream, one `Debug`-formatted line per command (panic steps
/// contribute a `panic:` line and stop the replay). Used to assert that
/// a counterexample reproduces byte-identically.
pub fn replay_commands(run: &ScenarioRun, events: &[(Micros, CoordEvent)]) -> Vec<String> {
    let mut lines = Vec::new();
    let Ok(mut kernel) = Kernel::new(run.cfg.clone()) else {
        return lines;
    };
    for (now, ev) in events {
        match step_caught(&mut kernel, *now, ev.clone()) {
            Ok(cmds) => lines.extend(cmds.iter().map(|c| format!("{c:?}"))),
            Err(msg) => {
                lines.push(format!("panic: {msg}"));
                break;
            }
        }
    }
    lines
}

/// Minimises a violating trace: greedy single-event removal over the
/// branch suffix (the probe/start initialisation prefix is load-bearing
/// and never touched), to a fixed point, preserving the tripped oracle.
/// Returns the shrunk trace and its breach.
pub fn shrink(
    run: &ScenarioRun,
    trace: &[(Micros, CoordEvent)],
    oracle_name: &str,
) -> (Vec<(Micros, CoordEvent)>, Breach) {
    let prefix = run.prefix_len().min(trace.len());
    let mut best: Vec<(Micros, CoordEvent)> = trace.to_vec();
    // Truncate at the violating step first: everything after it is noise.
    if let Some((i, _)) = replay_breach(run, &best).filter(|(_, b)| b.oracle == oracle_name) {
        best.truncate(i + 1);
    }
    loop {
        let mut improved = false;
        let mut i = best.len().saturating_sub(2);
        while i + 1 > prefix {
            let mut candidate = best.clone();
            candidate.remove(i);
            if let Some((at, b)) = replay_breach(run, &candidate) {
                if b.oracle == oracle_name {
                    candidate.truncate(at + 1);
                    best = candidate;
                    improved = true;
                }
            }
            i = i.saturating_sub(1);
        }
        if !improved {
            break;
        }
    }
    let breach = replay_breach(run, &best).map(|(_, b)| b).unwrap_or(Breach {
        oracle: "shrink_lost_breach",
        detail: "shrunk trace no longer violates (shrinker bug)".to_string(),
    });
    (best, breach)
}
