//! Scenario templates: small, fully-specified kernel configurations
//! whose admissible event orderings the explorer enumerates exhaustively.
//!
//! Each template pins the fleet shape and the fault envelope (which slots
//! may go silently dark, how many online failures may be injected) and
//! varies sizes/bandwidths/deadlines deterministically from a seed, so a
//! `(scenario, seed)` pair names one exact state space — which is what
//! makes counterexample scripts replayable byte-for-byte.

use cwc_server::coord::{DriverStyle, KernelConfig, ReschedulePolicy};
use cwc_types::{
    CpuSpec, JobId, JobSpec, KiloBytes, Micros, MsPerKb, PhoneId, PhoneInfo, RadioTech, SloClass,
};
use std::collections::{BTreeMap, BTreeSet};

/// Fault envelope the harness may inject along a path.
#[derive(Debug, Clone)]
pub struct Faults {
    /// Slots allowed to go silently dark ([`WentDark`]).
    ///
    /// [`WentDark`]: cwc_server::coord::CoordEvent::WentDark
    pub dark_slots: Vec<usize>,
    /// Total silent unplugs allowed along one path.
    pub dark_budget: u32,
    /// Total online failures (`ReportFailed`) allowed along one path.
    pub fail_budget: u32,
}

/// One concrete, explorable instance: `(scenario template, seed)`.
pub struct ScenarioRun {
    /// Template name (stable — recorded in counterexample scripts).
    pub name: &'static str,
    /// Seed the sizes/bandwidths/deadlines were derived from.
    pub seed: u64,
    /// Kernel construction parameters. Cloned per kernel instantiation;
    /// clones share the obs bus, which the oracles never read.
    pub cfg: KernelConfig,
    /// Per-slot probe replies (slot index = vector index).
    pub infos: Vec<PhoneInfo>,
    /// Fault envelope.
    pub faults: Faults,
    /// Jobs that may checkpoint mid-partition (breakable kind).
    pub breakable: BTreeSet<JobId>,
    /// Input size per job, KB (for oracle messages).
    pub sizes: BTreeMap<JobId, u64>,
    /// Program per job (predictor footprint keys).
    pub programs: BTreeMap<JobId, String>,
}

impl ScenarioRun {
    /// The fixed initialisation prefix: probe every slot, then `Start`.
    /// Probe orderings commute trivially, so the explorer does not branch
    /// over them; the prefix is part of every trace and every script.
    pub fn prefix_len(&self) -> usize {
        self.infos.len() + 1
    }
}

/// Tiny deterministic generator (xorshift64*) for seed-derived variation.
/// Dependency-free on purpose: the vendored `rand` stub is not needed for
/// a handful of bounded draws.
pub struct SplitRng(u64);

impl SplitRng {
    /// Seeds the stream (zero is remapped to a fixed odd constant).
    pub fn new(seed: u64) -> Self {
        SplitRng(if seed == 0 {
            0x9e37_79b9_7f4a_7c15
        } else {
            seed
        })
    }

    /// Next raw draw.
    pub fn draw(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform draw in `[lo, hi]`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.draw() % (hi - lo + 1)
    }
}

/// All template names, in the order `list` prints them.
pub const SCENARIOS: [&str; 3] = [
    "replicated-atomic",
    "speculative-straggler",
    "slo-deadline-mix",
];

/// Builds the named scenario at a seed. `None` for unknown names.
pub fn scenario_run(name: &str, seed: u64) -> Option<ScenarioRun> {
    match name {
        "replicated-atomic" => Some(replicated_atomic(seed)),
        "speculative-straggler" => Some(speculative_straggler(seed)),
        "slo-deadline-mix" => Some(slo_deadline_mix(seed)),
        _ => None,
    }
}

fn phone(slot: usize, bw: f64) -> PhoneInfo {
    PhoneInfo::new(
        PhoneId(slot as u32 + 1),
        CpuSpec::new(800 + 200 * slot as u32, 2),
        RadioTech::ThreeG,
        MsPerKb(bw),
    )
    .with_ram_kb(262_144)
}

fn base_cfg(jobs: Vec<JobSpec>, program: &str) -> KernelConfig {
    KernelConfig {
        scheduler: cwc_core::SchedulerKind::Greedy,
        jobs,
        baselines: BTreeMap::from([(program.to_string(), 30.0)]),
        keepalive_period: Micros::from_millis(2),
        tolerated_misses: 2,
        reschedule: ReschedulePolicy::Solver {
            delay: Micros::from_millis(5),
        },
        stall_timeout: None,
        breaker: None,
        reliability: None,
        slo: BTreeMap::new(),
        replication: None,
        speculation: None,
        bandwidth_blind: false,
        style: DriverStyle::Sim,
        obs: cwc_obs::Obs::new(),
    }
}

/// Template 1 — **replicated-atomic**: two atomic jobs on a 3-slot fleet
/// where slot 0 is fast but flaky (p_fail 0.9), so risk-driven
/// replication pairs its atomic placements with copies on the most
/// reliable slot. Exercises first-result-wins resolution, loser
/// cancellation, late/duplicate replica reports, and solver reschedule
/// rounds — the regime where double-credit bugs live.
fn replicated_atomic(seed: u64) -> ScenarioRun {
    let mut rng = SplitRng::new(seed ^ 0xA1);
    // Slot 0 is the fastest link so the packer places work there.
    let bws = [
        3.0 + rng.range(0, 2) as f64,
        8.0 + rng.range(0, 4) as f64,
        9.0 + rng.range(0, 4) as f64,
    ];
    let size_a = 2 * rng.range(8, 20);
    let size_b = 2 * rng.range(8, 20);
    let jobs = vec![
        JobSpec::atomic(JobId(1), "primecount", KiloBytes(10), KiloBytes(size_a)),
        JobSpec::atomic(JobId(2), "primecount", KiloBytes(10), KiloBytes(size_b)),
    ];
    let mut cfg = base_cfg(jobs, "primecount");
    // Aggressiveness 0 keeps the packer risk-blind: the flaky-but-fast
    // slot 0 actually receives the atomic placements, so replication
    // (not avoidance) is the mitigation whose orderings get explored.
    cfg.reliability = Some((vec![0.9, 0.05, 0.05], 0.0));
    cfg.replication = Some(cwc_core::ReplicationPolicy { threshold: 0.5 });
    ScenarioRun {
        name: "replicated-atomic",
        seed,
        cfg,
        infos: (0..3).map(|i| phone(i, bws[i])).collect(),
        faults: Faults {
            dark_slots: vec![0],
            dark_budget: 1,
            fail_budget: 1,
        },
        breakable: BTreeSet::new(),
        sizes: BTreeMap::from([(JobId(1), size_a), (JobId(2), size_b)]),
        programs: BTreeMap::from([
            (JobId(1), "primecount".to_string()),
            (JobId(2), "primecount".to_string()),
        ]),
    }
}

/// Template 2 — **speculative-straggler**: breakable work on a 3-slot
/// fleet with a one-launch speculation budget. Exercises the straggler
/// watchdog, speculation onto the least-loaded slot, the parked-chunk
/// rescue path after a silent unplug, and stale `Speculate` timers
/// firing after their chunk already completed.
fn speculative_straggler(seed: u64) -> ScenarioRun {
    let mut rng = SplitRng::new(seed ^ 0xB2);
    let bws = [
        5.0 + rng.range(0, 3) as f64,
        7.0 + rng.range(0, 3) as f64,
        11.0 + rng.range(0, 4) as f64,
    ];
    let size_a = 2 * rng.range(12, 30);
    let size_b = 2 * rng.range(12, 30);
    let jobs = vec![
        JobSpec::breakable(JobId(1), "wordcount", KiloBytes(8), KiloBytes(size_a)),
        JobSpec::breakable(JobId(2), "wordcount", KiloBytes(8), KiloBytes(size_b)),
    ];
    let mut cfg = base_cfg(jobs, "wordcount");
    cfg.speculation = Some(cwc_core::SpeculationPolicy {
        slack: 1.5,
        budget: 1,
    });
    ScenarioRun {
        name: "speculative-straggler",
        seed,
        cfg,
        infos: (0..3).map(|i| phone(i, bws[i])).collect(),
        faults: Faults {
            dark_slots: vec![1],
            dark_budget: 1,
            fail_budget: 0,
        },
        breakable: BTreeSet::from([JobId(1), JobId(2)]),
        sizes: BTreeMap::from([(JobId(1), size_a), (JobId(2), size_b)]),
        programs: BTreeMap::from([
            (JobId(1), "wordcount".to_string()),
            (JobId(2), "wordcount".to_string()),
        ]),
    }
}

/// Template 3 — **slo-deadline-mix**: a deadline-class atomic job next to
/// a best-effort breakable one on a 2-slot fleet with round-robin
/// migration. The logical clock (1 ms per event) makes both the met and
/// missed deadline verdicts reachable; the fault envelope is large
/// enough to kill every slot, so the graceful-degradation
/// (`fleet_lost`) latch is explored too.
fn slo_deadline_mix(seed: u64) -> ScenarioRun {
    let mut rng = SplitRng::new(seed ^ 0xC3);
    let bws = [4.0 + rng.range(0, 3) as f64, 9.0 + rng.range(0, 4) as f64];
    let size_a = 2 * rng.range(6, 14);
    let size_b = 2 * rng.range(10, 24);
    let deadline_ms = rng.range(5, 9);
    let jobs = vec![
        JobSpec::atomic(JobId(1), "primecount", KiloBytes(6), KiloBytes(size_a)),
        JobSpec::breakable(JobId(2), "primecount", KiloBytes(6), KiloBytes(size_b)),
    ];
    let mut cfg = base_cfg(jobs, "primecount");
    cfg.reschedule = ReschedulePolicy::RoundRobin;
    cfg.slo = BTreeMap::from([
        (JobId(1), SloClass::Deadline(deadline_ms)),
        (JobId(2), SloClass::BestEffort),
    ]);
    ScenarioRun {
        name: "slo-deadline-mix",
        seed,
        cfg,
        infos: (0..2).map(|i| phone(i, bws[i])).collect(),
        faults: Faults {
            dark_slots: vec![1],
            dark_budget: 1,
            fail_budget: 1,
        },
        breakable: BTreeSet::from([JobId(2)]),
        sizes: BTreeMap::from([(JobId(1), size_a), (JobId(2), size_b)]),
        programs: BTreeMap::from([
            (JobId(1), "primecount".to_string()),
            (JobId(2), "primecount".to_string()),
        ]),
    }
}
