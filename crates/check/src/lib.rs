//! `cwc-check` — a bounded model checker for the coordinator kernel.
//!
//! The sans-IO [`Kernel`] is a pure event-in/command-out state machine,
//! which makes it model-checkable without mocking a single socket or
//! clock: this crate enumerates **all admissible orderings** of the
//! events a conforming driver could deliver — worker probes, progress
//! reports, completions, online failures, silent unplugs, timer
//! firings, duplicate/late replica results — up to a configurable
//! depth, and checks a library of invariant oracles at every step:
//!
//! | oracle | invariant |
//! |---|---|
//! | `byte_conservation` | credited + held bytes always account for every input byte |
//! | `exactly_once_credit` | a report credits exactly what it vouched for, once |
//! | `cancel_safety` | a retired replica's late result never credits, never panics |
//! | `slo_latch_once` | completion/deadline verdicts latch exactly once |
//! | `timer_sanity` | no `Speculate` timer outlives its chunk |
//! | `group_sanity` | redundancy groups always match their live members |
//! | `termination` | a drained event set means finished (or fleet lost) |
//! | `no_panic` / `no_halt` | the kernel neither panics nor halts on feasible runs |
//!
//! On a violation the trace is shrunk (greedy event removal + prefix
//! truncation) and emitted as a replayable [`coord::script`] file, so
//! every counterexample reproduces byte-identically in `tests/` and CI
//! artifacts. See DESIGN.md §13 for the state digest, the independence
//! relation behind the partial-order reduction, and the abstractions
//! (logical clock, timer-order superset) the state space is built on.
//!
//! [`Kernel`]: cwc_server::coord::Kernel
//! [`coord::script`]: cwc_server::coord::script

pub mod cex;
pub mod explore;
pub mod harness;
pub mod oracle;
pub mod scenario;
pub mod shrink;

pub use explore::{explore, Options, Report, Stats, Violation};
pub use scenario::{scenario_run, ScenarioRun, SCENARIOS};
pub use shrink::{replay_breach, replay_commands, shrink};
