//! `cwc-check` CLI: explore kernel state spaces, replay counterexamples.
//!
//! ```text
//! cwc-check list
//! cwc-check explore [--scenario NAME|all] [--depth N] [--seed S[,S..]]
//!                   [--no-por] [--max-states N] [--out DIR]
//! cwc-check replay FILE
//! ```
//!
//! `explore` exits 1 if any invariant was violated (after writing the
//! shrunk counterexample scripts to `--out`, default `check-out/`).
//! `replay` exits 0 when the file reproduces what its header claims.

use cwc_check::{cex, explore, scenario_run, shrink, Options, SCENARIOS};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            for name in SCENARIOS {
                println!("{name}");
            }
            ExitCode::SUCCESS
        }
        Some("explore") => cmd_explore(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        _ => {
            eprintln!(
                "usage: cwc-check list\n       cwc-check explore [--scenario NAME|all] \
                 [--depth N] [--seed S[,S..]] [--no-por] [--max-states N] [--out DIR]\n       \
                 cwc-check replay FILE"
            );
            ExitCode::from(2)
        }
    }
}

fn cmd_explore(args: &[String]) -> ExitCode {
    let mut scenario = "all".to_string();
    let mut seeds: Vec<u64> = vec![1];
    let mut opts = Options::default();
    let mut out_dir = "check-out".to_string();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let missing = |flag: &str| {
            eprintln!("cwc-check: {flag} needs a value");
            ExitCode::from(2)
        };
        match arg.as_str() {
            "--scenario" => match it.next() {
                Some(v) => scenario = v.clone(),
                None => return missing("--scenario"),
            },
            "--depth" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => opts.depth = v,
                None => return missing("--depth"),
            },
            "--seed" => match it.next() {
                Some(v) => {
                    let parsed: Result<Vec<u64>, _> =
                        v.split(',').map(str::trim).map(str::parse).collect();
                    match parsed {
                        Ok(s) if !s.is_empty() => seeds = s,
                        _ => return missing("--seed"),
                    }
                }
                None => return missing("--seed"),
            },
            "--max-states" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => opts.max_states = v,
                None => return missing("--max-states"),
            },
            "--no-por" => opts.por = false,
            "--out" => match it.next() {
                Some(v) => out_dir = v.clone(),
                None => return missing("--out"),
            },
            other => {
                eprintln!("cwc-check: unknown flag {other:?}");
                return ExitCode::from(2);
            }
        }
    }
    let names: Vec<&str> = if scenario == "all" {
        SCENARIOS.to_vec()
    } else {
        match SCENARIOS.iter().find(|n| **n == scenario) {
            Some(n) => vec![*n],
            None => {
                eprintln!(
                    "cwc-check: unknown scenario {scenario:?} (try: {})",
                    SCENARIOS.join(", ")
                );
                return ExitCode::from(2);
            }
        }
    };

    let mut dirty = false;
    for name in names {
        for &seed in &seeds {
            let Some(run) = scenario_run(name, seed) else {
                continue;
            };
            let report = explore(&run, &opts);
            let s = report.stats;
            println!(
                "{name} seed={seed} depth={}: {} transitions, {} dedup, {} por-skips, \
                 {} quiescent, {} depth-bound, {} panics -> {}",
                opts.depth,
                s.transitions,
                s.dedup_hits,
                s.por_skips,
                s.quiescent,
                s.depth_bound_hits,
                s.panics,
                if report.clean() {
                    "clean".to_string()
                } else {
                    format!("{} VIOLATION(S)", report.violations.len())
                }
            );
            for v in &report.violations {
                dirty = true;
                let (small, breach) = shrink(&run, &v.trace, v.oracle);
                println!(
                    "  VIOLATION oracle={} events={} (shrunk from {})",
                    v.oracle,
                    small.len(),
                    v.trace.len()
                );
                println!("    {}", breach.detail);
                let text = cex::to_script(&run, breach.oracle, &breach.detail, &small);
                let path = format!("{out_dir}/cex-{name}-{seed}-{}.script", breach.oracle);
                if let Err(e) =
                    std::fs::create_dir_all(&out_dir).and_then(|()| std::fs::write(&path, text))
                {
                    eprintln!("cwc-check: cannot write {path}: {e}");
                } else {
                    println!("    counterexample written to {path}");
                }
            }
        }
    }
    if dirty {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_replay(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        eprintln!("usage: cwc-check replay FILE");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cwc-check: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let (meta, events) = match cex::parse_script(&text) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("cwc-check: cannot parse {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let run = match cex::run_of(&meta) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cwc-check: {e}");
            return ExitCode::from(2);
        }
    };
    for line in shrink::replay_commands(&run, &events) {
        println!("{line}");
    }
    match shrink::replay_breach(&run, &events) {
        Some((at, b)) => {
            println!(
                "replay: {} violated at step {}: {}",
                b.oracle,
                at + 1,
                b.detail
            );
            if meta.oracle.is_empty() || meta.oracle == b.oracle {
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "replay: header claims oracle={}, but {} tripped",
                    meta.oracle, b.oracle
                );
                ExitCode::FAILURE
            }
        }
        None => {
            println!("replay: clean ({} events)", events.len());
            if meta.oracle.is_empty() {
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "replay: header claims oracle={}, but the trace is clean",
                    meta.oracle
                );
                ExitCode::FAILURE
            }
        }
    }
}
