//! Chaos acceptance gate for the proactive-reliability stack
//! (DESIGN.md §12, recorded in the committed `BENCH_reliability.json`).
//!
//! On the tracked 10/20/30%-silent-failure scenarios, the proactive arm
//! (risk-driven replication + speculative re-execution + SLO classes)
//! must beat the reactive baseline's makespan strictly, both arms must
//! finish the whole batch, and the (comfortably feasible) deadline-class
//! jobs must meet their deadlines.

use cwc_bench::reliability::{run_acceptance, ATOMIC_JOBS, BREAKABLE_JOBS, DEADLINE_JOBS};

#[test]
fn proactive_stack_strictly_beats_reactive_recovery() {
    let scenarios = run_acceptance(41);
    assert_eq!(scenarios.len(), 3, "10/20/30% ladder");

    let total_jobs = BREAKABLE_JOBS + ATOMIC_JOBS;
    let mut planned = 0u64;
    let mut launched = 0u64;
    for s in &scenarios {
        assert_eq!(
            s.baseline_completed,
            total_jobs,
            "baseline arm must finish the batch at {:.0}% failure",
            s.failure_fraction * 100.0
        );
        assert_eq!(
            s.proactive_completed,
            total_jobs,
            "proactive arm must finish the batch at {:.0}% failure",
            s.failure_fraction * 100.0
        );
        assert!(
            s.proactive_ms < s.baseline_ms,
            "proactive must strictly beat reactive at {:.0}% failure: {} vs {} ms",
            s.failure_fraction * 100.0,
            s.proactive_ms,
            s.baseline_ms
        );
        assert_eq!(
            s.deadline_met,
            DEADLINE_JOBS as u64,
            "feasible deadlines must be met at {:.0}% failure",
            s.failure_fraction * 100.0
        );
        assert_eq!(s.deadline_missed, 0);
        planned += s.replicas_planned;
        launched += s.speculation_launched;
    }
    // The win must come from the proactive mechanisms actually firing.
    assert!(planned > 0, "no replicas were ever planned");
    assert!(launched > 0, "no speculative copies were ever launched");
}
