//! Byte-identity gate for `cwc-trace`: the forensic report computed from
//! a live capture must equal, byte for byte, the report computed from a
//! script replay of the same run. The analysis only reads kernel-causal
//! events (whose timestamps come from the recorded `(now, event)` script)
//! and ignores bus sequence numbers, so the two streams — live bus with
//! interleaved driver events, and a fresh replayed kernel — must render
//! identically.

#![allow(clippy::unwrap_used)]

use cwc_bench::trace::{analyze, record_demo_run, replay_capture};

fn soak_seed() -> u64 {
    std::env::var("CWC_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FFEE)
}

fn assert_byte_identical(drop_rate: Option<f64>) {
    let seed = soak_seed();
    let (out, events) = record_demo_run(seed, 4, drop_rate, |_| Vec::new()).expect("live run");
    assert!(
        out.failure.is_none(),
        "run degraded (seed {seed}): {:?}",
        out.failure
    );
    let live_report = analyze(&events);
    assert!(
        live_report.contains("critical chain"),
        "live report has no critical chain:\n{live_report}"
    );
    assert!(live_report.contains("per-phone utilization"));

    let replayed = replay_capture(&events, seed).expect("replay");
    let replay_report = analyze(&replayed);
    assert_eq!(
        live_report.as_bytes(),
        replay_report.as_bytes(),
        "live and replayed forensics diverged:\n--- live ---\n{live_report}\n--- replay ---\n{replay_report}"
    );
}

/// Fault-free capture: every span completes, the waterfall is empty, and
/// the replayed report is byte-identical.
#[test]
fn fault_free_report_is_byte_identical_under_replay() {
    assert_byte_identical(None);
}

/// Chaos capture (server-side frame drops): stalls, requeues, and
/// migrations land in the span tree, and the replayed report is still
/// byte-identical.
#[test]
fn chaos_report_is_byte_identical_under_replay() {
    assert_byte_identical(Some(0.15));
}
