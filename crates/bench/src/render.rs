//! Plain-text rendering helpers for the figure harness.

/// Renders an empirical CDF as a fixed set of quantile rows:
/// `p10 p25 p50 p75 p90 p99 max`.
pub fn cdf_quantiles(sorted: &[f64]) -> String {
    if sorted.is_empty() {
        return "  (empty series)".into();
    }
    let q = |p: f64| {
        let idx = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
        sorted[idx.min(sorted.len() - 1)]
    };
    format!(
        "  p10={:<10.1} p25={:<10.1} p50={:<10.1} p75={:<10.1} p90={:<10.1} p99={:<10.1} max={:<10.1}",
        q(10.0),
        q(25.0),
        q(50.0),
        q(75.0),
        q(90.0),
        q(99.0),
        sorted[sorted.len() - 1]
    )
}

/// Renders a horizontal ASCII bar scaled to `max`.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    let filled = if max > 0.0 {
        ((value / max) * width as f64).round() as usize
    } else {
        0
    };
    let filled = filled.min(width);
    format!("{}{}", "#".repeat(filled), " ".repeat(width - filled))
}

/// Renders a two-column sparkline-ish series for hourly data.
pub fn hourly_profile(values: &[f64; 24]) -> String {
    let mut out = String::new();
    for (h, v) in values.iter().enumerate() {
        out.push_str(&format!(
            "  {h:02}:00  {:>6.2}  |{}|\n",
            v,
            bar(*v, 1.0, 30)
        ));
    }
    out
}

/// Section header.
pub fn header(title: &str) -> String {
    format!(
        "\n=== {title} {}\n",
        "=".repeat(66usize.saturating_sub(title.len()))
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_of_known_series() {
        let s: Vec<f64> = (1..=100).map(f64::from).collect();
        let text = cdf_quantiles(&s);
        assert!(text.contains("p50=51"), "{text}");
        assert!(text.contains("max=100"), "{text}");
    }

    #[test]
    fn empty_series_safe() {
        assert!(cdf_quantiles(&[]).contains("empty"));
    }

    #[test]
    fn bar_is_clamped() {
        assert_eq!(bar(2.0, 1.0, 10), "##########");
        assert_eq!(bar(0.0, 1.0, 4), "    ");
        assert_eq!(bar(0.5, 1.0, 4), "##  ");
        assert_eq!(bar(1.0, 0.0, 3), "   ");
    }

    #[test]
    fn hourly_profile_has_24_lines() {
        let v = [0.5f64; 24];
        assert_eq!(hourly_profile(&v).lines().count(), 24);
    }
}
