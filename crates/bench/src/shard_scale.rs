//! Sharded-coordination scale benchmark (DESIGN.md §15).
//!
//! One greedy CBP kernel packs a |P|·|J| cost matrix per capacity probe,
//! so a single coordinator caps scheduling throughput long before a
//! million-phone fleet. Sharding shrinks the problem in *both*
//! dimensions: N shards of |P|/N phones schedule |J|/N-job slices, so
//! the aggregate pack work falls ~N× even before thread-level
//! parallelism — which is exactly what this bench measures.
//!
//! Per ladder point (1/2/4/8 shards over the same ≥100k-phone synthetic
//! fleet): wall-clock of phone partitioning + job splitting, wall-clock
//! of the per-shard subproblem builds + greedy packs on the
//! work-stealing [`cwc_server::WorkerPool`], and the aggregate
//! scheduling throughput in jobs/s — the `--compare` CI gate. A
//! mass-unplug scenario then runs the full sharded *simulation* driver
//! ([`cwc_server::FleetEngine`]) with one whole shard's phones dying
//! mid-run and reports the cross-shard residual stealing that recovers
//! the shortfall.

use cwc_core::{partition_jobs, GreedyScheduler, SchedProblem};
use cwc_server::coord::{charging_cluster_keys, plan_shards};
use cwc_server::engine::FailureInjection;
use cwc_server::{FleetBuilder, FleetEngine, ShardConfig, WorkerPool, WorkloadBuilder};
use cwc_types::{
    CpuSpec, CwcError, CwcResult, JobId, JobSpec, KiloBytes, Micros, MsPerKb, PhoneId, PhoneInfo,
    RadioTech,
};
use std::time::Instant;

/// The shard ladder every report carries.
pub const SHARD_LADDER: [usize; 4] = [1, 2, 4, 8];

/// Default fleet size for the ladder (the acceptance floor is 100k).
pub const LADDER_PHONES: usize = 100_000;

/// Default job-batch size for the ladder.
pub const LADDER_JOBS: usize = 400;

/// One measured ladder point.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ShardPoint {
    /// Kernel shard count.
    pub shards: usize,
    /// Fleet size.
    pub phones: usize,
    /// Jobs in the batch.
    pub jobs: usize,
    /// Jobs the partitioner divided across more than one shard.
    pub split_jobs: usize,
    /// Wall-clock of phone planning + job splitting, ms.
    pub plan_ms: f64,
    /// Wall-clock of per-shard subproblem builds + greedy packs on the
    /// pool, ms.
    pub pack_ms: f64,
    /// Aggregate scheduling throughput, jobs per second of pack time —
    /// the regression-gated metric.
    pub jobs_per_sec: f64,
    /// Largest single-shard pack input, |P_s|·|J_s| cells (the serial
    /// critical path a thread pool cannot shrink).
    pub max_shard_cells: u64,
    /// Tasks the pool's workers stole from siblings while packing.
    pub pool_steals: u64,
    /// Assignments across all shard schedules.
    pub assignments: usize,
}

/// Outcome of the mass-unplug stealing scenario.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct MassUnplugOutcome {
    /// Kernel shard count.
    pub shards: usize,
    /// Fleet size.
    pub phones: usize,
    /// Jobs in the batch.
    pub jobs: usize,
    /// Phones of the killed shard (all unplug, offline, mid-run).
    pub killed: usize,
    /// Residual chunks redistributed to survivor shards.
    pub stolen_chunks: u64,
    /// Steal rounds that ran.
    pub steal_rounds: u32,
    /// Jobs fully completed after stealing.
    pub completed_jobs: usize,
    /// Jobs in the batch.
    pub total_jobs: usize,
    /// Workers the fleet summary accounts as lost.
    pub workers_lost: usize,
    /// Fleet makespan (initial epoch + steal epochs), µs of sim time.
    pub makespan_us: u64,
}

/// Deterministic synthetic fleet for the ladder: heterogeneous clocks
/// and bandwidths, four phones per site, profiler-style unplug
/// probabilities cycling the quartiles — the statistics
/// [`charging_cluster_keys`] buckets by.
pub fn synth_phones(n: usize) -> (Vec<PhoneInfo>, Vec<u64>) {
    let phones: Vec<PhoneInfo> = (0..n)
        .map(|i| {
            PhoneInfo::new(
                PhoneId::from_index(i),
                CpuSpec::new(806 + (i as u32 * 97) % 700, 2),
                RadioTech::Wifi80211g,
                MsPerKb(1.0 + (i as f64 * 7.3) % 69.0),
            )
        })
        .collect();
    let sites: Vec<u64> = (0..n as u64).map(|i| i / 4).collect();
    let unplug: Vec<f64> = (0..n).map(|i| f64::from((i % 20) as u32) / 20.0).collect();
    let keys = charging_cluster_keys(&sites, Some(&unplug));
    (phones, keys)
}

/// Deterministic synthetic batch, every third job atomic (mirrors the
/// `cwc-bench-sched` instance family).
pub fn synth_jobs(n: usize) -> Vec<JobSpec> {
    (0..n)
        .map(|j| {
            let id = JobId::from_index(j);
            let size = KiloBytes(200 + (j as u64 * 131) % 1_800);
            if j % 3 == 2 {
                JobSpec::atomic(id, "photoblur", KiloBytes(40), size)
            } else {
                JobSpec::breakable(id, "primecount", KiloBytes(30), size)
            }
        })
        .collect()
}

/// The bench cost model: 150 ms/KB on the 806 MHz reference, scaled by
/// clock (the `cwc-bench-sched` convention).
fn clock_scaled_costs(phones: &[PhoneInfo], num_jobs: usize) -> Vec<Vec<f64>> {
    phones
        .iter()
        .map(|p| {
            (0..num_jobs)
                .map(|_| 150.0 * 806.0 / f64::from(p.cpu.clock_mhz))
                .collect()
        })
        .collect()
}

/// Runs one ladder point: partition `phones`/`jobs` into `shards`
/// shards, then build + pack every shard subproblem on the pool.
pub fn run_point(
    phones: &[PhoneInfo],
    keys: &[u64],
    jobs: &[JobSpec],
    shards: usize,
) -> CwcResult<ShardPoint> {
    let plan_started = Instant::now();
    let plan = plan_shards(keys, shards);
    let weights: Vec<f64> = plan
        .members
        .iter()
        .map(|m| {
            m.iter()
                .map(|&i| {
                    let cpu = &phones[i].cpu;
                    f64::from(cpu.clock_mhz) * f64::from(cpu.cores)
                })
                .sum()
        })
        .collect();
    let split = partition_jobs(jobs, &weights)?;
    let plan_ms = plan_started.elapsed().as_secs_f64() * 1e3;

    let max_shard_cells = plan
        .members
        .iter()
        .zip(&split.per_shard)
        .map(|(m, j)| m.len() as u64 * j.len() as u64)
        .max()
        .unwrap_or(0);

    // Subproblem construction (including the per-shard cost matrix) runs
    // inside the pooled task: a real shard builds its own cost model, and
    // the build shrinks quadratically with the shard count just like the
    // pack does.
    let pool = WorkerPool::new(shards);
    let tasks: Vec<_> = (0..shards)
        .map(|s| {
            let members = &plan.members[s];
            let shard_jobs = &split.per_shard[s];
            move || -> CwcResult<usize> {
                if members.is_empty() || shard_jobs.is_empty() {
                    return Ok(0);
                }
                let sub_phones: Vec<PhoneInfo> =
                    members.iter().map(|&i| phones[i].clone()).collect();
                let c = clock_scaled_costs(&sub_phones, shard_jobs.len());
                let problem = SchedProblem::new(sub_phones, shard_jobs.to_vec(), c)?;
                let schedule = GreedyScheduler::default().schedule(&problem)?;
                Ok(schedule.num_assignments())
            }
        })
        .collect();
    let pack_started = Instant::now();
    let (results, stats) = pool.run(tasks);
    let pack_ms = pack_started.elapsed().as_secs_f64() * 1e3;
    let mut assignments = 0;
    for r in results {
        assignments += r?;
    }

    Ok(ShardPoint {
        shards,
        phones: phones.len(),
        jobs: jobs.len(),
        split_jobs: split.split_jobs(),
        plan_ms,
        pack_ms,
        jobs_per_sec: jobs.len() as f64 / (pack_ms / 1e3).max(1e-9),
        max_shard_cells,
        pool_steals: stats.steals,
        assignments,
    })
}

/// Runs the whole ladder over one shared instance.
pub fn run_ladder(num_phones: usize, num_jobs: usize) -> CwcResult<Vec<ShardPoint>> {
    let (phones, keys) = synth_phones(num_phones);
    let jobs = synth_jobs(num_jobs);
    SHARD_LADDER
        .iter()
        .map(|&s| run_point(&phones, &keys, &jobs, s))
        .collect()
}

/// The stealing scenario: a 4-shard simulated fleet loses every phone of
/// one shard mid-run; the allocator must recover the shortfall through
/// survivor shards and still complete the batch.
pub fn run_mass_unplug() -> CwcResult<MassUnplugOutcome> {
    const SHARDS: usize = 4;
    const KILLED_SHARD: usize = 1;
    let fleet = FleetBuilder::new(11).houses(8).build();
    let jobs = WorkloadBuilder::new(7)
        .breakable(24, "primecount", 30, 1_500, 2_500)
        .atomic(6, "photoblur", 40, 1_500, 2_500)
        .build();
    let cfg = ShardConfig {
        shards: SHARDS,
        seed: 77,
        ..Default::default()
    };
    let probe = FleetEngine::new(fleet.clone(), jobs.clone(), Vec::new(), cfg.clone())?;
    let injections: Vec<FailureInjection> = probe.plan().members[KILLED_SHARD]
        .iter()
        .map(|&i| FailureInjection {
            at: Micros::from_secs(30),
            phone: fleet[i].id(),
            offline: true,
            replug_at: None,
        })
        .collect();
    let killed = injections.len();
    let phones = fleet.len();
    let out = FleetEngine::new(fleet, jobs.clone(), injections, cfg)?.run()?;
    if out.completed_jobs != out.total_jobs {
        return Err(CwcError::Config(format!(
            "mass-unplug scenario failed to recover: {}/{} jobs",
            out.completed_jobs, out.total_jobs
        )));
    }
    Ok(MassUnplugOutcome {
        shards: SHARDS,
        phones,
        jobs: jobs.len(),
        killed,
        stolen_chunks: out.stolen_chunks,
        steal_rounds: out.steal_rounds,
        completed_jobs: out.completed_jobs,
        total_jobs: out.total_jobs,
        workers_lost: out.fleet_loss.as_ref().map(|l| l.workers_lost).unwrap_or(0),
        makespan_us: out.makespan.0,
    })
}

/// Compares a fresh report against the committed baseline: per shard
/// count, aggregate scheduling throughput (`jobs_per_sec`) must not drop
/// more than `tolerance`. Wall-clock noise on shared CI hosts is why the
/// gate is throughput-relative rather than absolute.
pub fn compare_reports(
    baseline: &serde_json::Value,
    fresh: &serde_json::Value,
    tolerance: f64,
) -> Vec<String> {
    let mut regressions = Vec::new();
    fn lookup<'v>(v: &'v serde_json::Value, name: &str) -> Option<&'v serde_json::Value> {
        v.as_object().and_then(|m| m.get(name))
    }
    let points_of = |v: &serde_json::Value| -> Vec<serde_json::Value> {
        lookup(v, "points")
            .and_then(|p| p.as_array().cloned())
            .unwrap_or_default()
    };
    let base_points = points_of(baseline);
    let fresh_points = points_of(fresh);
    for bp in &base_points {
        let shards = lookup(bp, "shards")
            .and_then(|v| v.as_u64())
            .unwrap_or_default();
        let Some(fp) = fresh_points
            .iter()
            .find(|p| lookup(p, "shards").and_then(|v| v.as_u64()) == Some(shards))
        else {
            regressions.push(format!("shard point {shards}: missing from fresh report"));
            continue;
        };
        let metric = "jobs_per_sec";
        let was = lookup(bp, metric).and_then(|v| v.as_f64()).unwrap_or(0.0);
        let now = lookup(fp, metric).and_then(|v| v.as_f64()).unwrap_or(0.0);
        if was > 0.0 && now < was * (1.0 - tolerance) {
            regressions.push(format!(
                "shard point {shards}: {metric} regressed {was:.0} -> {now:.0} \
                 (>{:.0}% drop)",
                tolerance * 100.0
            ));
        }
    }
    if base_points.is_empty() {
        regressions.push("baseline has no shard points".into());
    }
    regressions
}

/// Loads a report file for [`compare_reports`].
pub fn load_report(path: &str) -> CwcResult<serde_json::Value> {
    let text =
        std::fs::read_to_string(path).map_err(|e| CwcError::Config(format!("read {path}: {e}")))?;
    serde_json::from_str(&text).map_err(|e| CwcError::Config(format!("parse {path}: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_ladder_point_schedules_everything() {
        let (phones, keys) = synth_phones(400);
        let jobs = synth_jobs(40);
        let one = run_point(&phones, &keys, &jobs, 1).unwrap();
        let four = run_point(&phones, &keys, &jobs, 4).unwrap();
        assert!(one.assignments >= jobs.len());
        assert!(four.assignments >= jobs.len());
        assert_eq!(one.split_jobs, 0, "1 shard never divides a job");
        assert!(four.max_shard_cells < one.max_shard_cells);
    }

    #[test]
    fn mass_unplug_scenario_reports_stealing() {
        let out = run_mass_unplug().unwrap();
        assert!(out.stolen_chunks > 0);
        assert!(out.steal_rounds >= 1);
        assert_eq!(out.completed_jobs, out.total_jobs);
        assert_eq!(out.workers_lost, out.killed);
    }

    #[test]
    fn compare_gates_throughput_regressions() {
        let report =
            |jps: f64| serde_json::json!({ "points": [ { "shards": 4, "jobs_per_sec": jps } ] });
        assert!(compare_reports(&report(100.0), &report(95.0), 0.2).is_empty());
        let r = compare_reports(&report(100.0), &report(60.0), 0.2);
        assert_eq!(r.len(), 1, "{r:?}");
        assert!(r[0].contains("jobs_per_sec"));
    }
}
