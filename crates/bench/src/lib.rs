//! # cwc-bench — figure and table regeneration for the CWC reproduction
//!
//! One function per figure/table in the paper's evaluation. Each returns
//! plain data; the `figures` binary renders it as text, and the Criterion
//! benches reuse the same builders. Seeds default to the values used in
//! EXPERIMENTS.md so the recorded numbers are reproducible bit-for-bit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod live_scale;
pub mod reliability;
pub mod render;
pub mod sched_perf;
pub mod shard_scale;
pub mod trace;

pub use figures::*;
