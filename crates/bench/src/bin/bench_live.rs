//! `cwc-bench-live` — event-loop scale artifact (DESIGN.md §14).
//!
//! Measures the single-threaded live path against simulated fleets of
//! 100 / 1k / 10k workers (a child process plays the fleet; see
//! `cwc_bench::live_scale`) plus a 10k-worker chaos-soak smoke point,
//! and writes `BENCH_live.json`. Modes:
//!
//! ```text
//! cargo run --release -p cwc-bench --bin cwc-bench-live [-- OUT.json]
//! cwc-bench-live --compare BASELINE.json FRESH.json [TOLERANCE]
//! cwc-bench-live fleet ADDR WORKERS DIE        # internal child mode
//! ```
//!
//! `--compare` exits nonzero if ship throughput at any scale point
//! regressed by more than TOLERANCE (default 0.2) — the CI gate.
//! Accept throughput is reported but never gates: it is dominated by
//! the host kernel's per-connect latency, not by the event loop.

use cwc_bench::live_scale::{
    compare_reports, fleet_main, load_report, run_point, run_soak, PointConfig, SCALE_LADDER,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("fleet") => fleet_mode(&args),
        Some("--compare") => compare_mode(&args),
        _ => generate(args.first().cloned()),
    }
}

/// Child mode: play the simulated fleet, print one JSON summary line.
fn fleet_mode(args: &[String]) {
    let usage = "usage: cwc-bench-live fleet ADDR WORKERS DIE";
    let addr = args
        .get(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(|| die(usage));
    let workers = args
        .get(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(|| die(usage));
    let dead = args
        .get(3)
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(|| die(usage));
    match fleet_main(addr, workers, dead) {
        Ok(summary) => match serde_json::to_string(&summary) {
            Ok(line) => println!("{line}"),
            Err(e) => die(&format!("fleet summary serialization failed: {e}")),
        },
        Err(e) => die(&format!("fleet failed: {e}")),
    }
}

/// CI gate: diff a fresh report against the committed baseline.
fn compare_mode(args: &[String]) {
    let usage = "usage: cwc-bench-live --compare BASELINE.json FRESH.json [TOLERANCE]";
    let (Some(base_path), Some(fresh_path)) = (args.get(1), args.get(2)) else {
        die(usage)
    };
    let tolerance = args
        .get(3)
        .map(|t| t.parse().unwrap_or_else(|_| die(usage)))
        .unwrap_or(0.2);
    let baseline = load_report(base_path).unwrap_or_else(|e| die(&format!("{e}")));
    let fresh = load_report(fresh_path).unwrap_or_else(|e| die(&format!("{e}")));
    let regressions = compare_reports(&baseline, &fresh, tolerance);
    if regressions.is_empty() {
        eprintln!(
            "cwc-bench-live: no throughput regression beyond {:.0}% at any scale point",
            tolerance * 100.0
        );
        return;
    }
    for r in &regressions {
        eprintln!("cwc-bench-live: REGRESSION: {r}");
    }
    std::process::exit(1);
}

/// Default mode: run the ladder + soak and write the artifact.
fn generate(out_path: Option<String>) {
    let out_path = out_path.unwrap_or_else(|| "BENCH_live.json".to_string());
    let mut points = Vec::new();
    for &workers in &SCALE_LADDER {
        let cfg = PointConfig::throughput(workers);
        let p = run_point(&cfg).unwrap_or_else(|e| die(&format!("scale point {workers}: {e}")));
        eprintln!(
            "{:>6} workers: setup {:>7.0} ms ({:>6.0} accepts/s), ships {:>7.0}/s, \
             keepalive acks {:>6}, loop p50 {:>6.0} us p99 {:>7.0} us max {:>8.0} us",
            p.workers,
            p.setup_ms,
            p.accepts_per_sec,
            p.ships_per_sec,
            p.keepalives_acked,
            p.loop_p50_us,
            p.loop_p99_us,
            p.loop_max_us,
        );
        points.push(p);
    }
    let soak = run_soak().unwrap_or_else(|e| die(&format!("chaos soak: {e}")));
    eprintln!(
        "  soak {:>5} workers (seed {}, {} died, drop chaos): {:.0} ms, {} migrated, \
         {} retries, {} lost, completed={}",
        soak.workers,
        soak.seed,
        soak.died,
        soak.wall_ms,
        soak.migrated,
        soak.retries,
        soak.workers_lost,
        soak.completed,
    );
    if !soak.completed {
        die("chaos soak failed to complete the batch");
    }
    let report = serde_json::json!({
        "bench": "live_scale",
        "description": "single-threaded event-loop live path vs simulated fleet size; \
                        fleet child connects in parallel batches (4 connector threads)",
        "points": points,
        "soak": soak,
    });
    let text = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, text + "\n").expect("report path is writable");
    eprintln!("wrote {out_path}");
}

fn die(msg: &str) -> ! {
    eprintln!("cwc-bench-live: {msg}");
    std::process::exit(2);
}
