//! `cwc-bench-shard` — sharded-coordination scale artifact (DESIGN.md
//! §15).
//!
//! Packs one deterministic 100k-phone, 400-job instance through 1/2/4/8
//! kernel shards on the work-stealing pool, runs the mass-unplug
//! stealing scenario, and writes `BENCH_shard.json`. Modes:
//!
//! ```text
//! cargo run --release -p cwc-bench --bin cwc-bench-shard [-- OUT.json]
//! cwc-bench-shard --compare BASELINE.json FRESH.json [TOLERANCE]
//! ```
//!
//! `--compare` exits nonzero if aggregate scheduling throughput at any
//! shard count regressed by more than TOLERANCE (default 0.2) — the CI
//! gate.

use cwc_bench::shard_scale::{
    compare_reports, load_report, run_ladder, run_mass_unplug, LADDER_JOBS, LADDER_PHONES,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--compare") => compare_mode(&args),
        _ => generate(args.first().cloned()),
    }
}

/// CI gate: diff a fresh report against the committed baseline.
fn compare_mode(args: &[String]) {
    let usage = "usage: cwc-bench-shard --compare BASELINE.json FRESH.json [TOLERANCE]";
    let (Some(base_path), Some(fresh_path)) = (args.get(1), args.get(2)) else {
        die(usage)
    };
    let tolerance = args
        .get(3)
        .map(|t| t.parse().unwrap_or_else(|_| die(usage)))
        .unwrap_or(0.2);
    let baseline = load_report(base_path).unwrap_or_else(|e| die(&format!("{e}")));
    let fresh = load_report(fresh_path).unwrap_or_else(|e| die(&format!("{e}")));
    let regressions = compare_reports(&baseline, &fresh, tolerance);
    if regressions.is_empty() {
        eprintln!(
            "cwc-bench-shard: no scheduling-throughput regression beyond {:.0}% at any shard count",
            tolerance * 100.0
        );
        return;
    }
    for r in &regressions {
        eprintln!("cwc-bench-shard: REGRESSION: {r}");
    }
    std::process::exit(1);
}

/// Default mode: run the ladder + steal scenario and write the artifact.
fn generate(out_path: Option<String>) {
    let out_path = out_path.unwrap_or_else(|| "BENCH_shard.json".to_string());
    let points =
        run_ladder(LADDER_PHONES, LADDER_JOBS).unwrap_or_else(|e| die(&format!("ladder: {e}")));
    let base = points[0].jobs_per_sec;
    for p in &points {
        eprintln!(
            "{} shard(s): plan {:>6.0} ms, pack {:>7.0} ms, {:>6.0} jobs/s \
             ({:>4.1}x), max shard {:>10} cells, {} pool steals",
            p.shards,
            p.plan_ms,
            p.pack_ms,
            p.jobs_per_sec,
            p.jobs_per_sec / base.max(1e-9),
            p.max_shard_cells,
            p.pool_steals,
        );
    }
    let steal = run_mass_unplug().unwrap_or_else(|e| die(&format!("mass unplug: {e}")));
    eprintln!(
        "  mass unplug: {} of {} phones die; {} chunk(s) stolen over {} round(s), \
         {}/{} jobs recovered, makespan {:.0} s",
        steal.killed,
        steal.phones,
        steal.stolen_chunks,
        steal.steal_rounds,
        steal.completed_jobs,
        steal.total_jobs,
        steal.makespan_us as f64 / 1e6,
    );
    let report = serde_json::json!({
        "bench": "shard_scale",
        "description": "sharded multi-kernel scheduling throughput vs shard count",
        "points": points,
        "mass_unplug": steal,
    });
    let text = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, text + "\n").expect("report path is writable");
    eprintln!("wrote {out_path}");
}

fn die(msg: &str) -> ! {
    eprintln!("cwc-bench-shard: {msg}");
    std::process::exit(2);
}
