//! `cwc-trace` — record, replay, and analyze CWC run traces.
//!
//! Three modes:
//!
//! - `record --out DIR [--seed N] [--workers N] [--drop P]` — run the
//!   reference live batch in-process (loopback TCP workers), writing
//!   `DIR/trace.jsonl` (every bus event), anomaly-triggered flight-recorder
//!   dumps (`DIR/flight-*.jsonl`), and `DIR/critical-path.txt`.
//! - `analyze FILE` — print the forensic report for a recorded JSONL trace.
//! - `replay FILE [--seed N]` — re-run the coordinator script embedded in
//!   the trace through a fresh kernel and print the report computed from
//!   the *replayed* events. Byte-identical to `analyze` of the original
//!   capture (the replay gate relies on this).

use cwc_bench::trace::{analyze, record_demo_run, replay_capture};
use cwc_obs::{Event, EventSink, FlightRecorder, FlightRecorderConfig, JsonlSink};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  cwc-trace record --out DIR [--seed N] [--workers N] [--drop P]\n  \
         cwc-trace analyze FILE\n  cwc-trace replay FILE [--seed N]"
    );
    ExitCode::FAILURE
}

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn read_events(path: &str) -> Result<Vec<Event>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let events: Vec<Event> = text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .filter_map(|l| Event::from_json(l).ok())
        .collect();
    if events.is_empty() {
        return Err(format!("{path}: no parseable events"));
    }
    Ok(events)
}

fn record(args: &[String]) -> Result<(), String> {
    let out: PathBuf = parse_flag::<String>(args, "--out")
        .ok_or("record requires --out DIR")?
        .into();
    let seed: u64 = parse_flag(args, "--seed").unwrap_or(0xC0FFEE);
    let workers: u32 = parse_flag(args, "--workers").unwrap_or(4);
    let drop_rate: Option<f64> = parse_flag(args, "--drop");
    std::fs::create_dir_all(&out).map_err(|e| format!("create {}: {e}", out.display()))?;

    let jsonl = JsonlSink::create(out.join("trace.jsonl"))
        .map_err(|e| format!("create trace.jsonl: {e}"))?;
    let cfg = FlightRecorderConfig {
        dump_dir: Some(out.clone()),
        ..FlightRecorderConfig::default()
    };
    let mut recorder: Option<Arc<FlightRecorder>> = None;
    let (outcome, events) = record_demo_run(seed, workers, drop_rate, |obs| {
        let rec = Arc::new(FlightRecorder::new(cfg, obs.metrics.clone()));
        recorder = Some(rec.clone());
        vec![Arc::new(jsonl) as Arc<dyn EventSink>, rec]
    })
    .map_err(|e| e.to_string())?;
    let recorder = recorder.ok_or("flight recorder was not attached")?;
    // Always leave one dump behind, even on a fault-free run: the CI
    // artifact is the run's black box.
    if let Err(e) = recorder.dump_now("end of run") {
        eprintln!("cwc-trace: end-of-run dump failed: {e}");
    }

    let report = analyze(&events);
    std::fs::write(out.join("critical-path.txt"), &report)
        .map_err(|e| format!("write critical-path.txt: {e}"))?;
    println!("{report}");
    println!(
        "recorded seed={seed} workers={workers} drop={:?}: {} events, {} job(s) done, \
         {} migrated, {} dump(s) in {}",
        drop_rate,
        events.len(),
        outcome.results.len(),
        outcome.migrated,
        recorder.dumps().len(),
        out.display()
    );
    match outcome.failure {
        None => Ok(()),
        Some(f) => Err(format!("run degraded: {}", f.detail)),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("record") => record(&args[1..]),
        Some("analyze") => match args.get(1) {
            Some(path) => read_events(path).map(|events| println!("{}", analyze(&events))),
            None => return usage(),
        },
        Some("replay") => match args.get(1) {
            Some(path) => {
                let seed: u64 = parse_flag(&args[2..], "--seed").unwrap_or(0xC0FFEE);
                read_events(path).and_then(|events| {
                    replay_capture(&events, seed)
                        .map(|replayed| println!("{}", analyze(&replayed)))
                        .map_err(|e| e.to_string())
                })
            }
            None => return usage(),
        },
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("cwc-trace: {e}");
            ExitCode::FAILURE
        }
    }
}
