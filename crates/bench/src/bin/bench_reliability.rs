//! `cwc-bench-reliability` — speculation/replication acceptance artifact.
//!
//! Runs the proactive-reliability acceptance ladder (10/20/30% of the
//! fleet unplugging silently mid-run; see `cwc_bench::reliability`) and
//! writes the makespan comparison to `BENCH_reliability.json` so the
//! reliability trajectory is recorded alongside the code. Run with:
//!
//! ```text
//! cargo run --release -p cwc-bench --bin cwc-bench-reliability [-- OUT.json]
//! ```

use cwc_bench::reliability::{
    run_acceptance, ATOMIC_JOBS, BREAKABLE_JOBS, DEADLINE_JOBS, DEADLINE_MS, FLEET,
};

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_reliability.json".to_string());
    let seed = 41;
    let scenarios: Vec<serde_json::Value> = run_acceptance(seed)
        .into_iter()
        .map(|s| {
            let speedup = s.baseline_ms / s.proactive_ms;
            eprintln!(
                "failure {:>4.0}% ({} phones): baseline {:>9.0} ms, proactive {:>9.0} ms \
                 ({speedup:.2}x; {} replicas planned, {} speculations, SLO {}/{} met)",
                s.failure_fraction * 100.0,
                s.phones_failed,
                s.baseline_ms,
                s.proactive_ms,
                s.replicas_planned,
                s.speculation_launched,
                s.deadline_met,
                s.deadline_met + s.deadline_missed,
            );
            serde_json::json!({
                "failure_fraction": s.failure_fraction,
                "phones_failed": s.phones_failed,
                "baseline_makespan_ms": s.baseline_ms,
                "proactive_makespan_ms": s.proactive_ms,
                "speedup": speedup,
                "baseline_completed": s.baseline_completed,
                "proactive_completed": s.proactive_completed,
                "replicas_planned": s.replicas_planned,
                "speculation_launched": s.speculation_launched,
                "deadline_met": s.deadline_met,
                "deadline_missed": s.deadline_missed,
            })
        })
        .collect();

    let report = serde_json::json!({
        "schema": 1,
        "bench": "reliability",
        "fleet_phones": FLEET,
        "workload": {
            "breakable_jobs": BREAKABLE_JOBS,
            "atomic_jobs": ATOMIC_JOBS,
            "deadline_jobs": DEADLINE_JOBS,
            "deadline_ms": DEADLINE_MS,
        },
        "seed": seed,
        "scenarios": scenarios,
    });
    let text = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, text + "\n").expect("report path is writable");
    eprintln!("wrote {out_path}");
}
