//! Regenerates every table and figure from the paper's evaluation.
//!
//! ```text
//! figures [--seed N] [--configs N] [--json DIR] [fig1 fig2 ... all]
//! ```
//!
//! With no figure arguments, everything runs. Output is plain text with
//! the paper's expected values alongside the measured ones; `--json DIR`
//! additionally dumps machine-readable results per figure.

use cwc_bench::render::{bar, cdf_quantiles, header, hourly_profile};
use cwc_bench::*;
use cwc_profiler::stats::{cdf_at, median_of_sorted};
use serde_json::json;
use std::collections::BTreeMap;

struct Options {
    seed: u64,
    configs: usize,
    json_dir: Option<String>,
    dat_dir: Option<String>,
    which: Vec<String>,
}

/// Writes a gnuplot-ready two-column (or more) data file.
fn write_dat(dir: &str, name: &str, header: &str, rows: impl IntoIterator<Item = String>) {
    std::fs::create_dir_all(dir).expect("create dat dir");
    let mut out = String::from("# ");
    out.push_str(header);
    out.push('\n');
    for r in rows {
        out.push_str(&r);
        out.push('\n');
    }
    let path = format!("{dir}/{name}.dat");
    std::fs::write(&path, out).expect("write dat");
    println!("  wrote {path}");
}

/// Renders a sorted series as CDF rows `value fraction`.
fn cdf_rows(sorted: &[f64]) -> Vec<String> {
    let n = sorted.len().max(1) as f64;
    sorted
        .iter()
        .enumerate()
        .map(|(i, v)| format!("{v} {}", (i + 1) as f64 / n))
        .collect()
}

fn parse_args() -> Options {
    let mut opts = Options {
        seed: DEFAULT_SEED,
        configs: 300,
        json_dir: None,
        dat_dir: None,
        which: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => {
                opts.seed = args
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("seed must be an integer");
            }
            "--configs" => {
                opts.configs = args
                    .next()
                    .expect("--configs needs a value")
                    .parse()
                    .expect("configs must be an integer");
            }
            "--json" => {
                opts.json_dir = Some(args.next().expect("--json needs a directory"));
            }
            "--dat" => {
                opts.dat_dir = Some(args.next().expect("--dat needs a directory"));
            }
            other => opts.which.push(other.to_string()),
        }
    }
    opts
}

fn main() {
    let opts = parse_args();
    let run_all = opts.which.is_empty() || opts.which.iter().any(|w| w == "all");
    let wants = |name: &str| run_all || opts.which.iter().any(|w| w == name);
    let mut json_out: BTreeMap<String, serde_json::Value> = BTreeMap::new();

    println!("CWC reproduction — figure harness (seed {})", opts.seed);

    if wants("fig1") {
        print!("{}", header("Fig. 1 — CoreMark CPU comparison"));
        println!("paper shape: Tegra 3 edges out the Core 2 Duo; the Core 2 Duo leads");
        println!("every dual-core phone CPU by >50%.\n");
        let scores = fig1();
        let max = scores.iter().map(|s| s.1).fold(0.0f64, f64::max);
        for (name, score, is_ref) in &scores {
            let marker = if *is_ref { " <- reference" } else { "" };
            println!(
                "  {name:<38} {score:>10.0}  |{}|{marker}",
                bar(*score, max, 28)
            );
        }
        json_out.insert(
            "fig1".into(),
            json!(scores
                .iter()
                .map(|(n, s, r)| json!({"cpu": n, "score": s, "reference": r}))
                .collect::<Vec<_>>()),
        );
    }

    if wants("fig2") || wants("fig3") {
        let stats = fig2_fig3(opts.seed, STUDY_DAYS);
        if wants("fig2") {
            print!("{}", header("Fig. 2a — charging interval lengths (hours)"));
            println!("paper: night median ≈ 7 h, day median ≈ 0.5 h; fewer night intervals.\n");
            println!(
                "  night ({} intervals, median {:.1} h):",
                stats.night_lengths_h.len(),
                median_of_sorted(&stats.night_lengths_h)
            );
            println!("{}", cdf_quantiles(&stats.night_lengths_h));
            println!(
                "  day   ({} intervals, median {:.2} h):",
                stats.day_lengths_h.len(),
                median_of_sorted(&stats.day_lengths_h)
            );
            println!("{}", cdf_quantiles(&stats.day_lengths_h));

            print!("{}", header("Fig. 2b — night-interval data transfer (MB)"));
            println!("paper: ~80% of night intervals transfer < 2 MB.\n");
            println!(
                "  P(transfer < 2 MB) = {:.2}",
                cdf_at(&stats.night_transfers_mb, 2.0)
            );
            println!("{}", cdf_quantiles(&stats.night_transfers_mb));

            print!(
                "{}",
                header("Fig. 2c — idle night charging per user (h/day)")
            );
            println!("paper: ≥3 h average; users 3, 4, 8 reach 8–9 h with low variability.\n");
            for s in &stats.idle {
                println!(
                    "  {:<8} mean {:>5.2} h  sd {:>5.2}  |{}|",
                    s.user.to_string(),
                    s.mean_hours_per_day,
                    s.std_dev,
                    bar(s.mean_hours_per_day, 10.0, 30)
                );
            }
            if let Some(dir) = &opts.dat_dir {
                write_dat(
                    dir,
                    "fig2a_night",
                    "interval_hours cdf",
                    cdf_rows(&stats.night_lengths_h),
                );
                write_dat(
                    dir,
                    "fig2a_day",
                    "interval_hours cdf",
                    cdf_rows(&stats.day_lengths_h),
                );
                write_dat(
                    dir,
                    "fig2b_transfer",
                    "mb cdf",
                    cdf_rows(&stats.night_transfers_mb),
                );
                write_dat(
                    dir,
                    "fig2c_idle",
                    "user mean_h sd",
                    stats
                        .idle
                        .iter()
                        .map(|s| format!("{} {} {}", s.user.0, s.mean_hours_per_day, s.std_dev)),
                );
            }
            json_out.insert(
                "fig2".into(),
                json!({
                    "night_median_h": median_of_sorted(&stats.night_lengths_h),
                    "day_median_h": median_of_sorted(&stats.day_lengths_h),
                    "p_under_2mb": cdf_at(&stats.night_transfers_mb, 2.0),
                    "idle_mean_h": stats.idle.iter().map(|s| s.mean_hours_per_day).collect::<Vec<_>>(),
                }),
            );
        }
        if wants("fig3") {
            print!("{}", header("Fig. 3a — unplug-event CDF by hour of day"));
            println!("paper: <30% of unplug events occur between midnight and 8 a.m.\n");
            println!("  CDF at 08:00 = {:.2}", stats.unplug_cdf[7]);
            for h in (0..24).step_by(3) {
                println!(
                    "  by {h:02}:00  {:>5.2}  |{}|",
                    stats.unplug_cdf[h],
                    bar(stats.unplug_cdf[h], 1.0, 30)
                );
            }
            print!(
                "{}",
                header("Fig. 3b/c — per-user hourly unplug likelihood")
            );
            println!("paper: very low 12–6 a.m., rising 6–9 a.m., high during the day.\n");
            for (user, lik) in fig3bc(opts.seed, STUDY_DAYS) {
                println!("  user-{user}:");
                print!("{}", hourly_profile(&lik));
            }
            json_out.insert(
                "fig3".into(),
                json!({"unplug_cdf_8am": stats.unplug_cdf[7], "cdf": stats.unplug_cdf.to_vec()}),
            );
        }
    }

    if wants("fig4") {
        print!(
            "{}",
            header("Fig. 4 — WiFi bandwidth stability (600 s iperf)")
        );
        println!("paper: variation over a stationary WiFi link is very low.\n");
        let mut rows = Vec::new();
        for (name, report) in fig4(opts.seed) {
            println!(
                "  {name:<22} mean {:>7.1} KB/s  sd {:>6.1}  CV {:>5.3}  b_i {:>6.2} ms/KB",
                report.mean_kb_per_sec,
                report.std_dev,
                report.coefficient_of_variation(),
                report.ms_per_kb().0
            );
            rows.push(json!({
                "location": name,
                "mean_kbps": report.mean_kb_per_sec,
                "cv": report.coefficient_of_variation(),
            }));
        }
        json_out.insert("fig4".into(), json!(rows));
    }

    if wants("fig5") {
        print!(
            "{}",
            header("Fig. 5 — FCFS file processing turnaround (ms)")
        );
        println!("paper: 6 phones → p90 ≈ 1200 ms; dropping the two slowest links");
        println!("improves p90 to ≈ 700 ms (queueing delay rises).\n");
        let f = fig5(opts.seed);
        println!("  all 6 phones : p90 = {:>7.0} ms", f.p90.0);
        println!("{}", cdf_quantiles(&f.all6_ms));
        println!("  4 fast links : p90 = {:>7.0} ms", f.p90.1);
        println!("{}", cdf_quantiles(&f.fast4_ms));
        println!(
            "\n  p90 improvement factor: {:.2}x (paper ≈ 1200/700 ≈ 1.7x)",
            f.p90.0 / f.p90.1
        );
        if let Some(dir) = &opts.dat_dir {
            write_dat(dir, "fig5_all6", "turnaround_ms cdf", cdf_rows(&f.all6_ms));
            write_dat(
                dir,
                "fig5_fast4",
                "turnaround_ms cdf",
                cdf_rows(&f.fast4_ms),
            );
        }
        json_out.insert(
            "fig5".into(),
            json!({"p90_all6_ms": f.p90.0, "p90_fast4_ms": f.p90.1}),
        );
    }

    if wants("fig6") {
        print!("{}", header("Fig. 6 — predicted vs measured speedup"));
        println!("paper: points cluster on y = x; a few phones beat the prediction.\n");
        let pts = fig6(opts.seed);
        let mut within = 0usize;
        let mut faster = 0usize;
        for &(p, m) in &pts {
            if (m - p).abs() / p < 0.10 {
                within += 1;
            }
            if m > p * 1.10 {
                faster += 1;
            }
        }
        println!("  {} phone-task points", pts.len());
        println!("  within 10% of y=x : {within}");
        println!("  >10% faster       : {faster} (the paper's outliers)");
        for &(p, m) in pts.iter().take(10) {
            println!("    predicted {p:>5.2}  measured {m:>5.2}");
        }
        if let Some(dir) = &opts.dat_dir {
            write_dat(
                dir,
                "fig6_speedup",
                "predicted measured",
                pts.iter().map(|(p, m)| format!("{p} {m}")),
            );
        }
        json_out.insert(
            "fig6".into(),
            json!({"points": pts, "within_10pct": within, "faster_outliers": faster}),
        );
    }

    if wants("fig10") {
        print!("{}", header("Fig. 10 — charging profiles (HTC Sensation)"));
        println!("paper: idle ≈ 100 min; heavy ≈ 135 min (+35%); MIMD throttle ≈ idle");
        println!("with ≈24.5% compute-time overhead vs heavy.\n");
        let f = fig10();
        let mins = |o: &cwc_device::throttle::ChargeOutcome| o.full_at.as_hours_f64() * 60.0;
        println!("  idle      : full at {:>6.1} min", mins(&f.idle));
        println!(
            "  heavy     : full at {:>6.1} min  (stretch {:+.1}%)",
            mins(&f.heavy),
            f.heavy_stretch() * 100.0
        );
        println!(
            "  throttled : full at {:>6.1} min  (compute overhead vs heavy {:+.1}%)",
            mins(&f.throttled),
            f.throttle_compute_overhead() * 100.0
        );
        println!("\n  charge curves (% at 20-minute marks):");
        for o in [
            (&f.idle, "idle"),
            (&f.heavy, "heavy"),
            (&f.throttled, "throttled"),
        ] {
            let series: Vec<String> =
                o.0.timeline
                    .iter()
                    .filter(|(t, _)| t.0 % (20 * 60_000_000) < 2 * 60_000_000)
                    .map(|(t, pct)| format!("{:.0}min:{pct:.0}%", t.as_hours_f64() * 60.0))
                    .collect();
            println!("    {:<10} {}", o.1, series.join("  "));
        }
        if let Some(dir) = &opts.dat_dir {
            for (outcome, name) in [
                (&f.idle, "idle"),
                (&f.heavy, "heavy"),
                (&f.throttled, "throttled"),
            ] {
                write_dat(
                    dir,
                    &format!("fig10_{name}"),
                    "minutes charge_pct",
                    outcome
                        .timeline
                        .iter()
                        .map(|(t, pct)| format!("{} {pct}", t.as_hours_f64() * 60.0)),
                );
            }
        }
        json_out.insert(
            "fig10".into(),
            json!({
                "idle_min": mins(&f.idle),
                "heavy_min": mins(&f.heavy),
                "throttled_min": mins(&f.throttled),
                "heavy_stretch": f.heavy_stretch(),
                "compute_overhead": f.throttle_compute_overhead(),
            }),
        );
    }

    if wants("fig12a") {
        print!("{}", header("Fig. 12a — task execution timeline (greedy)"));
        println!("paper: makespan ≈ 1100 s, predicted 1120 s (≈2% off); earliest phone");
        println!("finishes ≈ 20% before the last (fast outliers).\n");
        let out = fig12a(opts.seed);
        println!(
            "  completed {}/{} jobs; makespan {:.0} s; predicted {:.0} s ({:+.1}%)",
            out.completed_jobs,
            out.total_jobs,
            out.makespan.as_secs_f64(),
            out.predicted_makespan_ms / 1e3,
            (out.predicted_makespan_ms / 1e3 / out.makespan.as_secs_f64() - 1.0) * 100.0
        );
        let mut finishes: Vec<f64> = out
            .phone_completion
            .iter()
            .map(|t| t.as_secs_f64())
            .filter(|&t| t > 0.0)
            .collect();
        finishes.sort_by(|a, b| a.partial_cmp(b).unwrap());
        println!(
            "  earliest phone done at {:.0} s, last at {:.0} s (spread {:.0}%)",
            finishes.first().unwrap(),
            finishes.last().unwrap(),
            (finishes.last().unwrap() - finishes.first().unwrap()) / finishes.last().unwrap()
                * 100.0
        );
        println!("\n  per-phone timelines (T=transfer-heavy, #=executing, scaled):");
        render_timeline(&out, 6);
        if let Some(dir) = &opts.dat_dir {
            write_dat(
                dir,
                "fig12a_segments",
                "phone start_s end_s kind rescheduled job",
                out.segments.iter().map(|s| {
                    format!(
                        "{} {} {} {} {} {}",
                        s.phone.0,
                        s.start.as_secs_f64(),
                        s.end.as_secs_f64(),
                        match s.kind {
                            cwc_server::SegmentKind::Transfer => "T",
                            cwc_server::SegmentKind::Execute => "E",
                        },
                        u8::from(s.rescheduled),
                        s.job.0
                    )
                }),
            );
        }
        json_out.insert(
            "fig12a".into(),
            json!({
                "makespan_s": out.makespan.as_secs_f64(),
                "predicted_s": out.predicted_makespan_ms / 1e3,
                "completed": out.completed_jobs,
            }),
        );
    }

    if wants("fig12b") {
        print!("{}", header("Fig. 12b — input partitions per task (CDF)"));
        println!("paper: ≈90% of the 150 tasks are unpartitioned under greedy;");
        println!("equal-split explodes every breakable task into |P| pieces.\n");
        let f = fig12b(opts.seed);
        let frac_unsplit =
            f.greedy.iter().filter(|&&s| s == 0).count() as f64 / f.greedy.len() as f64;
        println!("  greedy      : {:.0}% unpartitioned", frac_unsplit * 100.0);
        println!(
            "  greedy splits      {}",
            cdf_quantiles(&f.greedy.iter().map(|&s| s as f64).collect::<Vec<_>>())
        );
        println!(
            "  equal-split splits {}",
            cdf_quantiles(&f.equal_split.iter().map(|&s| s as f64).collect::<Vec<_>>())
        );
        json_out.insert(
            "fig12b".into(),
            json!({"greedy_unsplit_frac": frac_unsplit}),
        );
    }

    if wants("fig12c") {
        print!("{}", header("Fig. 12c — failure recovery timeline"));
        println!("paper: phones 1, 6, 17 unplugged mid-run; failed work lands mostly on");
        println!("fast phones; recovery extends the makespan by ≈113 s.\n");
        let out = fig12c(opts.seed);
        let original = out.original_work_makespan().as_secs_f64();
        let total = out.makespan.as_secs_f64();
        println!(
            "  completed {}/{} jobs; original work done at {:.0} s; recovery pushed the",
            out.completed_jobs, out.total_jobs, original
        );
        println!(
            "  makespan to {:.0} s (+{:.0} s); {} work items migrated",
            total,
            total - original,
            out.rescheduled_items
        );
        render_timeline(&out, 6);
        json_out.insert(
            "fig12c".into(),
            json!({
                "makespan_s": total,
                "original_s": original,
                "recovery_extra_s": total - original,
                "migrated_items": out.rescheduled_items,
            }),
        );
    }

    if wants("table") {
        print!("{}", header("§6 table — makespan by scheduler"));
        println!("paper: greedy 1100 s vs equal-split 1720 s vs round-robin 1805 s (≈1.6x).\n");
        let rows = table_makespan(opts.seed);
        let greedy = rows
            .iter()
            .find(|r| r.0 == "greedy")
            .map(|r| r.1)
            .unwrap_or(1.0);
        let mut json_rows = Vec::new();
        for (label, makespan, predicted, completed) in &rows {
            println!(
                "  {label:<12} makespan {makespan:>7.0} s  predicted {predicted:>7.0} s  \
                 completed {completed:>3}  ({:.2}x greedy)",
                makespan / greedy
            );
            json_rows.push(json!({
                "scheduler": label,
                "makespan_s": makespan,
                "predicted_s": predicted,
                "vs_greedy": makespan / greedy,
            }));
        }
        json_out.insert("table_makespan".into(), json!(json_rows));
    }

    if wants("fig13") {
        print!(
            "{}",
            header("Fig. 13 — greedy vs LP-relaxation lower bound")
        );
        println!("paper: over 1000 random b_i configurations, the greedy median makespan is");
        println!(
            "≈18% above the (loose) relaxation bound. Running {} configs.\n",
            opts.configs
        );
        let pts = fig13(opts.seed, opts.configs);
        let gaps: Vec<f64> = {
            let mut g: Vec<f64> = pts.iter().map(|p| p.gap() * 100.0).collect();
            g.sort_by(|a, b| a.partial_cmp(b).unwrap());
            g
        };
        println!("  optimality gap (%):");
        println!("{}", cdf_quantiles(&gaps));
        println!(
            "  median gap: {:.1}% (paper ≈ 18%)",
            fig13_median_gap(&pts) * 100.0
        );
        let greedy_ms: Vec<f64> = {
            let mut v: Vec<f64> = pts.iter().map(|p| p.greedy_ms / 1e3).collect();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v
        };
        let relaxed_ms: Vec<f64> = {
            let mut v: Vec<f64> = pts.iter().map(|p| p.relaxed_ms / 1e3).collect();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v
        };
        println!("  greedy makespan (s): {}", cdf_quantiles(&greedy_ms));
        println!("  relaxed bound   (s): {}", cdf_quantiles(&relaxed_ms));
        if let Some(dir) = &opts.dat_dir {
            write_dat(dir, "fig13_gap", "gap_pct cdf", cdf_rows(&gaps));
            write_dat(dir, "fig13_greedy", "makespan_s cdf", cdf_rows(&greedy_ms));
            write_dat(
                dir,
                "fig13_relaxed",
                "makespan_s cdf",
                cdf_rows(&relaxed_ms),
            );
        }
        json_out.insert(
            "fig13".into(),
            json!({
                "configs": opts.configs,
                "median_gap": fig13_median_gap(&pts),
            }),
        );
    }

    if wants("energy") {
        print!("{}", header("§3.2 — annual energy cost"));
        println!("paper: Core 2 Duo server ≈ $74.5/yr (PUE 2.5), Nehalem ≈ $689/yr,");
        println!("smartphone ≈ $1.33/yr — an order of magnitude apart.\n");
        let e = energy();
        println!(
            "  Core 2 Duo server : ${:>7.2}/year",
            e.core2duo_usd_per_year
        );
        println!(
            "  Nehalem server    : ${:>7.2}/year",
            e.nehalem_usd_per_year
        );
        println!("  smartphone        : ${:>7.2}/year", e.phone_usd_per_year);
        println!(
            "  phones per server energy budget: {:.0}",
            e.phones_per_server()
        );
        json_out.insert(
            "energy".into(),
            json!({
                "core2duo": e.core2duo_usd_per_year,
                "nehalem": e.nehalem_usd_per_year,
                "phone": e.phone_usd_per_year,
            }),
        );
    }

    if wants("ablations") {
        print!(
            "{}",
            header("Ablation — bandwidth-aware vs bandwidth-blind")
        );
        println!("the paper's core design argument: ignoring b_i (Condor-style CPU-only");
        println!("scheduling) inflates the makespan on a wireless fleet.\n");
        let (aware, blind) = ablation_bandwidth_blind(opts.seed);
        println!("  bandwidth-aware : {aware:>7.0} s");
        println!(
            "  bandwidth-blind : {blind:>7.0} s  ({:+.0}%)",
            (blind / aware - 1.0) * 100.0
        );

        print!("{}", header("Ablation — MIMD multiplier sweep"));
        println!("paper's factors are x2 (backoff) and x0.75 (ramp).\n");
        for (inc, dec, full_min, overhead) in ablation_throttle_factors() {
            println!(
                "  inc x{inc:<4} dec x{dec:<5} full charge {full_min:>6.1} min  \
                 compute overhead {:+.1}%",
                overhead * 100.0
            );
        }
        json_out.insert(
            "ablation_bandwidth".into(),
            json!({"aware_s": aware, "blind_s": blind}),
        );
    }

    if wants("overnight") {
        print!(
            "{}",
            header("Extension — behavior-driven nights, failure prediction")
        );
        println!("phones follow the study's plug/unplug behavior; the scheduler either");
        println!("ignores per-phone unplug risk (paper baseline) or prices it in (§3.1's");
        println!("suggested extension). In the stable night window risk pricing is moot;");
        println!("in the morning unplug wave it trades makespan (work concentrates on the");
        println!("few safe phones) for markedly less migration churn.\n");
        for (label, start_hour) in [
            ("1 a.m. window (the paper's regime)", 25u64),
            ("6 a.m. window (morning unplug wave)", 30u64),
        ] {
            println!("  -- {label} --");
            let rows = extension_reliability(opts.seed, 5, start_hour);
            let mut tot = (0f64, 0usize, 0f64, 0usize);
            for (night, n_mk, n_mig, a_mk, a_mig) in &rows {
                println!(
                    "  night {night}: neutral {n_mk:>6.0} s / {n_mig:>2} migrations   \
                     risk-aware {a_mk:>6.0} s / {a_mig:>2} migrations"
                );
                tot = (tot.0 + n_mk, tot.1 + n_mig, tot.2 + a_mk, tot.3 + a_mig);
            }
            let n = rows.len().max(1) as f64;
            println!(
                "  mean   : neutral {:>6.0} s / {:>4.1} migrations   risk-aware {:>6.0} s / {:>4.1} migrations\n",
                tot.0 / n,
                tot.1 as f64 / n,
                tot.2 / n,
                tot.3 as f64 / n
            );
            json_out.insert(
                format!("extension_reliability_h{start_hour}"),
                json!(rows
                    .iter()
                    .map(|(night, nm, nmig, am, amig)| json!({
                        "night": night,
                        "neutral_makespan_s": nm,
                        "neutral_migrations": nmig,
                        "aware_makespan_s": am,
                        "aware_migrations": amig,
                    }))
                    .collect::<Vec<_>>()),
            );
        }
    }

    if wants("scaling") {
        print!("{}", header("Extension — makespan vs fleet size"));
        println!("the 150-task workload on growing fleets: bandwidth-aware packing keeps");
        println!("paying as phones join; round-robin flattens once slow phones dominate.\n");
        let rows = extension_scaling(opts.seed);
        let base = rows.first().map(|r| r.1).unwrap_or(1.0);
        for (n, greedy, rr) in &rows {
            println!(
                "  {n:>3} phones: greedy {greedy:>6.0} s (speedup {:>4.1}x)   round-robin {rr:>6.0} s",
                base / greedy
            );
        }
        json_out.insert(
            "extension_scaling".into(),
            json!(rows
                .iter()
                .map(|(n, g, r)| json!({"phones": n, "greedy_s": g, "round_robin_s": r}))
                .collect::<Vec<_>>()),
        );
    }

    if let Some(dir) = opts.json_dir {
        std::fs::create_dir_all(&dir).expect("create json dir");
        let path = format!("{dir}/figures-seed{}.json", opts.seed);
        std::fs::write(&path, serde_json::to_string_pretty(&json_out).unwrap())
            .expect("write json");
        println!("\nwrote {path}");
    }
}

/// Compact ASCII timeline for a subset of phones.
fn render_timeline(out: &cwc_server::EngineOutcome, phones: usize) {
    use cwc_server::SegmentKind;
    let makespan = out.makespan.as_secs_f64().max(1.0);
    let width = 72usize;
    let ids: Vec<u32> = {
        let mut seen: Vec<u32> = out.segments.iter().map(|s| s.phone.0).collect();
        seen.sort_unstable();
        seen.dedup();
        seen.into_iter().take(phones).collect()
    };
    for id in ids {
        let mut row = vec![' '; width];
        for s in out.segments.iter().filter(|s| s.phone.0 == id) {
            let a = ((s.start.as_secs_f64() / makespan) * width as f64) as usize;
            let b = ((s.end.as_secs_f64() / makespan) * width as f64).ceil() as usize;
            let ch = match (s.kind, s.rescheduled) {
                (SegmentKind::Transfer, false) => 'T',
                (SegmentKind::Execute, false) => '#',
                (SegmentKind::Transfer, true) => 't',
                (SegmentKind::Execute, true) => 'x',
            };
            for cell in row.iter_mut().take(b.min(width)).skip(a.min(width)) {
                *cell = ch;
            }
        }
        println!("  phone-{id:<3} |{}|", row.iter().collect::<String>());
    }
    println!("             0s{}{:.0}s", " ".repeat(width - 8), makespan);
}
