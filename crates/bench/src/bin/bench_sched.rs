//! `cwc-bench-sched` — scheduler performance tracking across PRs.
//!
//! Times the greedy scheduler on the standard instance ladder plus the
//! warm-vs-cold rescheduling scenario (fail 10% of the fleet, re-pack
//! the residuals) and writes the medians to `BENCH_scheduler.json` so
//! the perf trajectory is recorded alongside the code. Run with:
//!
//! ```text
//! cargo run --release -p cwc-bench --bin cwc-bench-sched [-- OUT.json]
//! ```

use cwc_bench::sched_perf::{residual_after_failures, synth_instance};
use cwc_core::{GreedyScheduler, SchedProblem, WarmStart};
use std::hint::black_box;
use std::time::Instant;

/// (phones, jobs, timed runs) — fewer runs for the big instances.
const LADDER: [(usize, usize, usize); 4] = [
    (18, 150, 20),
    (50, 500, 10),
    (100, 1_000, 5),
    (500, 5_000, 3),
];

fn median_ns(mut samples: Vec<u64>) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Times `runs` schedules of `problem`, returning (median ns, pack_calls).
fn time_schedule(
    sched: &GreedyScheduler,
    problem: &SchedProblem,
    warm: Option<WarmStart>,
    runs: usize,
) -> (u64, u64) {
    let mut samples = Vec::with_capacity(runs);
    let mut pack_calls = 0;
    for _ in 0..runs {
        let start = Instant::now();
        let (_, stats, _) = sched
            .schedule_warm_with_stats(black_box(problem), warm)
            .expect("bench instance is schedulable");
        samples.push(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
        pack_calls = stats.pack_calls;
    }
    (median_ns(samples), pack_calls)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_scheduler.json".to_string());
    let sched = GreedyScheduler::default();

    let mut instances = Vec::new();
    for (phones, jobs, runs) in LADDER {
        let problem = synth_instance(phones, jobs);
        let (median, pack_calls) = time_schedule(&sched, &problem, None, runs);
        eprintln!("schedule/greedy/{phones}x{jobs}: {median} ns ({pack_calls} pack calls)");
        instances.push(serde_json::json!({
            "phones": phones,
            "jobs": jobs,
            "median_ns": median,
            "pack_calls": pack_calls,
        }));
    }

    // Warm-vs-cold rescheduling: 100×1000, 10% of phones fail.
    let problem = synth_instance(100, 1_000);
    let (schedule, _, warm) = sched
        .schedule_warm_with_stats(&problem, None)
        .expect("initial schedule");
    let residual =
        residual_after_failures(&problem, &schedule, 10).expect("failed phones held work");
    let (cold_ns, cold_packs) = time_schedule(&sched, &residual, None, 10);
    let (warm_ns, warm_packs) = time_schedule(&sched, &residual, Some(warm), 10);
    let ratio = cold_packs as f64 / warm_packs.max(1) as f64;
    eprintln!(
        "reschedule/cold: {cold_ns} ns ({cold_packs} pack calls); \
         reschedule/warm: {warm_ns} ns ({warm_packs} pack calls); \
         pack-call ratio {ratio:.2}x"
    );

    let report = serde_json::json!({
        "schema": 1,
        "bench": "scheduler",
        "instances": instances,
        "reschedule": {
            "phones": 100,
            "jobs": 1_000,
            "failed_phone_fraction": 0.1,
            "cold": { "median_ns": cold_ns, "pack_calls": cold_packs },
            "warm": { "median_ns": warm_ns, "pack_calls": warm_packs },
            "pack_call_ratio": ratio,
        },
    });
    let text = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, text + "\n").expect("report path is writable");
    eprintln!("wrote {out_path}");
}
