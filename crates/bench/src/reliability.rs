//! Proactive-reliability acceptance scenarios (DESIGN.md §12).
//!
//! Pits the reactive baseline (the paper's recovery path: keep-alive
//! timeout, then migrate) against the proactive stack — risk-driven
//! replication + speculative re-execution + SLO classes — on fleets
//! where 10–30% of the phones unplug silently late in the run with
//! perfect failure prediction. Both runs see identical workloads and identical
//! injections; the only difference is whether the kernel acts on the
//! prediction before the failure. Used by the committed
//! `BENCH_reliability.json` artifact (`cwc-bench-reliability`) and the
//! `reliability_acceptance` test gate.

use cwc_core::{ReplicationPolicy, SpeculationPolicy};
use cwc_obs::Obs;
use cwc_server::workload::WorkloadBuilder;
use cwc_server::{Engine, EngineConfig, FailureInjection};
use cwc_types::{JobId, JobSpec, Micros, PhoneId, SloClass};
use std::collections::BTreeMap;

/// Phones in the standard testbed fleet.
pub const FLEET: usize = 18;

/// Breakable jobs in the scenario workload.
pub const BREAKABLE_JOBS: usize = 20;
/// Atomic jobs in the scenario workload (the replication beneficiaries).
pub const ATOMIC_JOBS: usize = 8;
/// Jobs admitted under a (comfortably feasible) deadline.
pub const DEADLINE_JOBS: usize = 2;
/// The deadline, far above either run's makespan: feasible by design.
pub const DEADLINE_MS: u64 = 1_800_000;

/// One failure-rate scenario, both arms.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Fraction of the fleet that unplugs silently mid-run.
    pub failure_fraction: f64,
    /// How many phones that rounds to.
    pub phones_failed: usize,
    /// Reactive-recovery makespan (ms).
    pub baseline_ms: f64,
    /// Proactive-stack makespan (ms).
    pub proactive_ms: f64,
    /// Jobs completed by the reactive arm (must be the full batch).
    pub baseline_completed: usize,
    /// Jobs completed by the proactive arm (must be the full batch).
    pub proactive_completed: usize,
    /// Replicas the proactive arm planned at the initial schedule.
    pub replicas_planned: u64,
    /// Speculative copies the proactive arm launched.
    pub speculation_launched: u64,
    /// Deadline-class jobs that finished inside their deadline.
    pub deadline_met: u64,
    /// Deadline-class jobs that finished late.
    pub deadline_missed: u64,
}

fn workload(seed: u64) -> Vec<JobSpec> {
    WorkloadBuilder::new(seed)
        .breakable(BREAKABLE_JOBS, "primecount", 30, 1_000, 2_000)
        .atomic(ATOMIC_JOBS, "photoblur", 40, 400, 900)
        .build()
}

/// The doomed phone indices for a given count, spread across the fleet
/// so failures hit different houses, deterministically.
fn doomed(count: usize) -> Vec<usize> {
    (0..count).map(|k| (k * FLEET) / count).collect()
}

/// Staggered silent unplugs late in the run, while final chunks are in
/// flight. Late failures are the expensive ones for reactive recovery:
/// the fleet is nearly drained, so the lost chunk re-executes only
/// after the keep-alive timeout (90 s) plus the §5 grace period (60 s),
/// and that dead time lands directly on the makespan instead of being
/// absorbed by the remaining queue. Early failures are nearly free for
/// both arms — the redistributed work just folds into the backlog.
fn injections(doomed: &[usize]) -> Vec<FailureInjection> {
    doomed
        .iter()
        .enumerate()
        .map(|(k, &i)| FailureInjection {
            at: Micros::from_secs(260 + 8 * k as u64),
            phone: PhoneId(i as u32),
            offline: true,
            replug_at: None,
        })
        .collect()
}

fn deadline_map() -> BTreeMap<JobId, SloClass> {
    (0..DEADLINE_JOBS as u32)
        .map(|j| (JobId(j), SloClass::Deadline(DEADLINE_MS)))
        .collect()
}

/// Runs both arms of one failure-rate scenario.
pub fn run_scenario(seed: u64, failure_fraction: f64) -> ScenarioOutcome {
    let phones_failed = ((FLEET as f64) * failure_fraction).round() as usize;
    let doomed = doomed(phones_failed);
    let inj = injections(&doomed);

    let baseline =
        Engine::run_on_testbed(seed, workload(seed), inj.clone(), EngineConfig::default())
            .expect("baseline scenario runs");

    // Perfect prediction of exactly the phones that will fail; zero
    // aggressiveness keeps placement identical to the baseline so the
    // delta is attributable to replication + speculation alone.
    let mut probs = vec![0.0f64; FLEET];
    for &i in &doomed {
        probs[i] = 0.9;
    }
    let obs = Obs::new();
    let proactive = Engine::run_on_testbed(
        seed,
        workload(seed),
        inj,
        EngineConfig {
            obs: obs.clone(),
            reliability: Some((probs, 0.0)),
            replication: Some(ReplicationPolicy::new(0.5).expect("valid threshold")),
            // Tight slack: the sim predictor is near-exact, so 5% past
            // the predicted finish is already a strong straggler signal
            // and catches silently-dark slots well inside the keep-alive
            // window.
            speculation: Some(SpeculationPolicy::new(1.05, 16).expect("valid policy")),
            slo: deadline_map(),
            ..Default::default()
        },
    )
    .expect("proactive scenario runs");

    ScenarioOutcome {
        failure_fraction,
        phones_failed,
        baseline_ms: baseline.makespan.as_ms_f64(),
        proactive_ms: proactive.makespan.as_ms_f64(),
        baseline_completed: baseline.completed_jobs,
        proactive_completed: proactive.completed_jobs,
        replicas_planned: obs.metrics.counter_value("sched.replica.planned"),
        speculation_launched: obs.metrics.counter_value("sched.speculation.launched"),
        deadline_met: obs.metrics.counter_value("slo.deadline.met"),
        deadline_missed: obs.metrics.counter_value("slo.deadline.missed"),
    }
}

/// The standard acceptance ladder: 10%, 20%, 30% of the fleet fails.
pub fn run_acceptance(seed: u64) -> Vec<ScenarioOutcome> {
    [0.1, 0.2, 0.3]
        .into_iter()
        .map(|f| run_scenario(seed, f))
        .collect()
}
