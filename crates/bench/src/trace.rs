//! Critical-path analysis and run forensics over recorded CWC traces.
//!
//! The coordinator kernel mints a [`cwc_obs::TraceCtx`] per placed chunk
//! and stamps it onto every event the chunk touches, so a recorded run is
//! a forest of span trees: one trace per original job, one span per
//! placement, child spans for every requeue/migration. This module turns
//! a captured event stream into a forensic report:
//!
//! - the **makespan-critical chain** — the span whose completion ends the
//!   run, walked back through its re-placement ancestry,
//! - **per-phone utilization timelines** — assigned→terminal intervals
//!   per phone,
//! - the **reschedule waterfall** — the chronological failure/recovery
//!   story (offline detections, losses, migrations, solver rounds).
//!
//! The analysis is a pure function of the *kernel-emitted* causal events:
//! it filters by event name and ignores bus sequence numbers, which is
//! what makes the report byte-identical whether it is computed from a
//! live capture or from a script replay of the same run (the live bus
//! interleaves driver events that shift `seq`; the kernel events
//! themselves are deterministic given the recorded `(now, event)` script).

use cwc_chaos::{FaultKind, FaultPlan, FaultProfile};
use cwc_core::SchedulerKind;
use cwc_obs::{Event, EventSink, MemorySink, Obs, Value, PARENT_FIELD, SPAN_FIELD, TRACE_FIELD};
use cwc_server::coord::{script, Kernel};
use cwc_server::live::{
    live_kernel_config, run_live_server_with, run_worker_chaos, LiveJob, LiveOutcome, LivePolicy,
    WorkerConfig,
};
use cwc_server::resilience::BreakerConfig;
use cwc_tasks::{inputs, standard_registry};
use cwc_types::{CwcResult, JobId, JobKind, PhoneId};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::net::TcpListener;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Kernel-emitted per-chunk lifecycle events (carry a span stamp).
const CHUNK_EVENTS: [&str; 6] = [
    "task.assigned",
    "task.complete",
    "task.failed",
    "task.stalled",
    "segment.transfer",
    "segment.execute",
];

/// Kernel-emitted fleet-level events that narrate the reschedule story.
const WATERFALL_EVENTS: [&str; 7] = [
    "schedule.initial",
    "phone.offline_detected",
    "worker.lost",
    "worker.quarantined",
    "migration",
    "schedule.round",
    "fleet.lost",
];

/// Whether an event participates in the causal analysis (chunk lifecycle
/// or reschedule waterfall). Everything else on the bus — driver
/// narration, worker-side events, scheduler internals — is ignored, as
/// is the bus-assigned `seq`.
pub fn is_causal(event: &Event) -> bool {
    CHUNK_EVENTS.contains(&event.name.as_str()) || WATERFALL_EVENTS.contains(&event.name.as_str())
}

fn u64_field(event: &Event, key: &str) -> Option<u64> {
    event.get(key).and_then(Value::as_u64)
}

fn display_field(event: &Event, key: &str) -> Option<String> {
    event.get(key).map(|v| v.to_string())
}

/// One placement's reconstructed lifecycle.
#[derive(Debug, Clone)]
struct Span {
    trace: u64,
    parent: Option<u64>,
    job: String,
    phone: String,
    len_kb: u64,
    offset_kb: u64,
    rescheduled: bool,
    assigned_us: u64,
    /// `(time, verb)` of the terminal event, if the span ended.
    end: Option<(u64, &'static str)>,
}

/// Reconstructs the span table from a causal event stream.
fn spans_of(events: &[&Event]) -> BTreeMap<u64, Span> {
    let mut spans: BTreeMap<u64, Span> = BTreeMap::new();
    for e in events {
        let Some(span_id) = u64_field(e, SPAN_FIELD) else {
            continue;
        };
        match e.name.as_str() {
            "task.assigned" => {
                spans.insert(
                    span_id,
                    Span {
                        trace: u64_field(e, TRACE_FIELD).unwrap_or(0),
                        parent: u64_field(e, PARENT_FIELD),
                        job: display_field(e, "job").unwrap_or_default(),
                        phone: display_field(e, "phone").unwrap_or_default(),
                        len_kb: u64_field(e, "len_kb").unwrap_or(0),
                        offset_kb: u64_field(e, "offset_kb").unwrap_or(0),
                        rescheduled: matches!(e.get("rescheduled"), Some(Value::Bool(true))),
                        assigned_us: e.time_us,
                        end: None,
                    },
                );
            }
            "task.complete" | "segment.execute" => {
                if let Some(s) = spans.get_mut(&span_id) {
                    s.end = Some((e.time_us, "completed"));
                }
            }
            "task.failed" => {
                if let Some(s) = spans.get_mut(&span_id) {
                    s.end = Some((e.time_us, "failed"));
                }
            }
            "task.stalled" => {
                if let Some(s) = spans.get_mut(&span_id) {
                    s.end = Some((e.time_us, "stalled"));
                }
            }
            _ => {}
        }
    }
    spans
}

fn write_span_line(out: &mut String, id: u64, s: &Span) {
    let _ = write!(
        out,
        "  span {id} trace {} job {} phone {} [{}..{}] kb {} @{}",
        s.trace,
        s.job,
        s.phone,
        s.offset_kb,
        s.offset_kb + s.len_kb,
        s.len_kb,
        s.assigned_us
    );
    match s.end {
        Some((t, verb)) => {
            let _ = write!(
                out,
                " -> {verb} @{t} ({} us)",
                t.saturating_sub(s.assigned_us)
            );
        }
        None => out.push_str(" -> (no terminal event)"),
    }
    if s.rescheduled {
        out.push_str(" [rescheduled]");
    }
    if let Some(p) = s.parent {
        let _ = write!(out, " <- parent {p}");
    }
    out.push('\n');
}

/// Renders the full forensic report for a captured event stream.
///
/// Pure and deterministic: only kernel-causal events (see [`is_causal`])
/// contribute, in stream order, and bus `seq` numbers are never read —
/// so a live capture and a script replay of the same run yield
/// byte-identical reports.
pub fn analyze(events: &[Event]) -> String {
    let causal: Vec<&Event> = events.iter().filter(|e| is_causal(e)).collect();
    let spans = spans_of(&causal);
    let mut out = String::new();
    out.push_str("== cwc-trace run forensics ==\n");
    let roots = spans.values().filter(|s| s.parent.is_none()).count();
    let traces: std::collections::BTreeSet<u64> = spans.values().map(|s| s.trace).collect();
    let _ = writeln!(
        out,
        "causal events: {}  spans: {}  roots: {}  traces: {}",
        causal.len(),
        spans.len(),
        roots,
        traces.len()
    );

    // --- critical path -------------------------------------------------
    out.push_str("\n-- critical path --\n");
    let first_assign = spans.values().map(|s| s.assigned_us).min();
    let last = spans
        .iter()
        .filter_map(|(&id, s)| match s.end {
            Some((t, "completed")) => Some((t, id)),
            _ => None,
        })
        .max();
    match (first_assign, last) {
        (Some(t0), Some((t1, last_id))) => {
            let _ = writeln!(out, "makespan window: {t0}..{t1} us ({} us)", t1 - t0);
            // Walk the re-placement ancestry of the chunk that finished
            // last: this chain *is* the makespan-critical path.
            let mut chain = Vec::new();
            let mut cursor = Some(last_id);
            while let Some(id) = cursor {
                let Some(s) = spans.get(&id) else { break };
                chain.push(id);
                cursor = s.parent;
            }
            let _ = writeln!(
                out,
                "critical chain ({} placement(s), root last):",
                chain.len()
            );
            for id in &chain {
                if let Some(s) = spans.get(id) {
                    write_span_line(&mut out, *id, s);
                }
            }
        }
        _ => out.push_str("no completed span: nothing to chain\n"),
    }

    // --- per-phone utilization -----------------------------------------
    out.push_str("\n-- per-phone utilization --\n");
    let mut per_phone: BTreeMap<String, Vec<(u64, &Span)>> = BTreeMap::new();
    for (&id, s) in &spans {
        per_phone.entry(s.phone.clone()).or_default().push((id, s));
    }
    let window = match (first_assign, last) {
        (Some(t0), Some((t1, _))) => (t1 - t0).max(1),
        _ => 1,
    };
    for (phone, mut items) in per_phone {
        items.sort_by_key(|(id, s)| (s.assigned_us, *id));
        let busy: u64 = items
            .iter()
            .filter_map(|(_, s)| s.end.map(|(t, _)| t.saturating_sub(s.assigned_us)))
            .sum();
        let _ = writeln!(
            out,
            "phone {phone}: chunks {}  busy {} us  window-share {:.1}%",
            items.len(),
            busy,
            100.0 * busy as f64 / window as f64
        );
        for (id, s) in items {
            write_span_line(&mut out, id, s);
        }
    }

    // --- reschedule waterfall ------------------------------------------
    out.push_str("\n-- reschedule waterfall --\n");
    let mut any = false;
    for e in &causal {
        if !WATERFALL_EVENTS.contains(&e.name.as_str()) {
            continue;
        }
        any = true;
        let _ = write!(out, "@{} {}", e.time_us, e.name);
        for (k, v) in &e.fields {
            if k == "msg" {
                continue;
            }
            let _ = write!(out, " {k}={v}");
        }
        out.push('\n');
        // Show which placements each recovery action minted: children
        // assigned at or after this instant whose parent ended before it.
        if e.name == "migration" || e.name == "schedule.round" {
            for (&id, s) in &spans {
                if s.parent.is_some() && s.assigned_us >= e.time_us && s.rescheduled {
                    // Only attribute spans not claimed by a later action.
                    let later = causal.iter().any(|e2| {
                        (e2.name == "migration" || e2.name == "schedule.round")
                            && e2.time_us > e.time_us
                            && s.assigned_us >= e2.time_us
                    });
                    if !later {
                        write_span_line(&mut out, id, s);
                    }
                }
            }
        }
    }
    if !any {
        out.push_str("(no failures: the initial schedule ran to completion)\n");
    }
    out
}

// --- record / replay harness -------------------------------------------
//
// The same three-job batch and policy the live replay gate uses, exposed
// so the `cwc-trace` binary and the byte-identity test share one recipe:
// a recorded capture can always be replayed against an identically
// configured kernel.

/// The reference batch recorded by `cwc-trace record`: two breakable
/// jobs plus one atomic job, inputs derived from `seed`.
pub fn demo_batch(seed: u64) -> Vec<LiveJob> {
    vec![
        LiveJob::new(
            JobId(0),
            JobKind::Breakable,
            "primecount",
            30,
            inputs::number_file(96, seed ^ 5),
        ),
        LiveJob::new(
            JobId(1),
            JobKind::Breakable,
            "wordcount",
            25,
            inputs::text_file(64, seed ^ 6, "lowes"),
        ),
        LiveJob::new(
            JobId(2),
            JobKind::Atomic,
            "photoblur",
            40,
            inputs::image_file(96, 64, seed ^ 7),
        ),
    ]
}

/// The live policy paired with [`demo_batch`]: tight keep-alives and a
/// 2 s stall watchdog, so loopback runs actually exercise the recovery
/// machinery.
pub fn demo_policy() -> LivePolicy {
    LivePolicy {
        stall_timeout: Duration::from_secs(2),
        keepalive_period: Duration::from_millis(200),
        breaker: BreakerConfig {
            threshold: 4,
            window: Duration::from_secs(30),
        },
        ..Default::default()
    }
}

/// Runs [`demo_batch`] over `workers` in-process loopback workers and
/// captures the full event stream (the kernel's causal events plus the
/// recorded coordinator script). `drop_rate` installs server-side frame
/// drops; `extra_sinks` builds additional sinks to attach alongside the
/// capture sink (e.g. a JSONL file, or a flight recorder sharing the
/// run's metrics registry).
pub fn record_demo_run(
    seed: u64,
    workers: u32,
    drop_rate: Option<f64>,
    extra_sinks: impl FnOnce(&Obs) -> Vec<Arc<dyn EventSink>>,
) -> CwcResult<(LiveOutcome, Vec<Event>)> {
    let listener = TcpListener::bind("127.0.0.1:0")
        .map_err(|e| cwc_types::CwcError::Config(format!("bind: {e}")))?;
    let addr = listener
        .local_addr()
        .map_err(|e| cwc_types::CwcError::Config(format!("local addr: {e}")))?;
    for i in 0..workers {
        let cfg = WorkerConfig::new(PhoneId(i), 1200, 500.0);
        let unplug = Arc::new(AtomicBool::new(false));
        let registry = standard_registry();
        thread::spawn(move || {
            let obs = Obs::new();
            let _ = run_worker_chaos(addr, cfg, registry, unplug, &obs, None);
        });
    }
    let obs = Obs::new();
    let sink = Arc::new(MemorySink::new());
    obs.bus.attach(sink.clone());
    for extra in extra_sinks(&obs) {
        obs.bus.attach(extra);
    }
    let mut pol = demo_policy();
    pol.chaos = drop_rate.map(|p| FaultPlan::new(seed, FaultProfile::single(FaultKind::Drop, p)));
    let out = run_live_server_with(
        listener,
        workers as usize,
        demo_batch(seed),
        standard_registry(),
        SchedulerKind::Greedy,
        Duration::from_secs(120),
        pol,
        &obs,
    )?;
    obs.flush();
    Ok((out, sink.snapshot()))
}

/// Replays the coordinator script embedded in a capture through a fresh,
/// identically configured kernel and returns the events *that kernel*
/// emits. [`analyze`] of the result is byte-identical to [`analyze`] of
/// the original capture.
pub fn replay_capture(events: &[Event], seed: u64) -> CwcResult<Vec<Event>> {
    let steps = script::harvest(events)?;
    let obs = Obs::new();
    let sink = Arc::new(MemorySink::new());
    obs.bus.attach(sink.clone());
    let cfg = live_kernel_config(
        &demo_batch(seed),
        &standard_registry(),
        SchedulerKind::Greedy,
        &demo_policy(),
        obs,
    )?;
    let mut kernel = Kernel::new(cfg)?;
    for (now, ev) in steps {
        kernel.step(now, ev);
    }
    Ok(sink.snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwc_obs::TraceCtx;

    fn assigned(t: u64, ctx: TraceCtx, phone: u64, job: u64, off: u64, len: u64) -> Event {
        ctx.stamp(Event::sim(t, "sched", "task.assigned"))
            .field("phone", phone)
            .field("slot", phone)
            .field("seq", 1u64)
            .field("job", job)
            .field("offset_kb", off)
            .field("len_kb", len)
            .field("rescheduled", ctx.parent.is_some())
    }

    fn completed(t: u64, ctx: TraceCtx, phone: u64, job: u64) -> Event {
        ctx.stamp(Event::sim(t, "live", "task.complete"))
            .field("phone", phone)
            .field("job", job)
    }

    #[test]
    fn critical_chain_walks_the_replacement_ancestry() {
        let root = TraceCtx::root(7, 1);
        let child = root.child(2);
        let other = TraceCtx::root(8, 3);
        let events = vec![
            assigned(100, root, 0, 7, 0, 64),
            assigned(150, other, 1, 8, 0, 32),
            completed(400, other, 1, 8),
            root.stamp(Event::sim(500, "failure", "task.failed"))
                .field("phone", 0u64)
                .field("job", 7u64)
                .field("processed_kb", 16u64),
            Event::sim(510, "live", "migration")
                .field("residuals", 1u64)
                .field("survivors", 1u64),
            assigned(520, child, 1, 7, 16, 48),
            completed(900, child, 1, 7),
        ];
        let report = analyze(&events);
        assert!(report.contains("spans: 3  roots: 2  traces: 2"));
        assert!(report.contains("makespan window: 100..900 us (800 us)"));
        assert!(report.contains("critical chain (2 placement(s), root last):"));
        let chain_at = report.find("critical chain").expect("chain section");
        let span2 = report[chain_at..].find("span 2 ").expect("child first");
        let span1 = report[chain_at..].find("span 1 ").expect("root second");
        assert!(span2 < span1, "chain must be printed child -> root");
        assert!(report.contains("@510 migration residuals=1 survivors=1"));
        assert!(report.contains("[rescheduled] <- parent 1"));
    }

    #[test]
    fn analysis_ignores_bus_seq_and_foreign_events() {
        let ctx = TraceCtx::root(1, 1);
        let mut a = vec![assigned(100, ctx, 0, 1, 0, 10), completed(300, ctx, 0, 1)];
        let mut b = vec![
            Event::wall(42, "driver", "run.start").field("jobs", 1u64),
            a[0].clone(),
            Event::wall(77, "worker", "input.buffered").field("job", 1u64),
            a[1].clone(),
        ];
        // Different bus seq numbers on the two streams.
        for (i, e) in a.iter_mut().enumerate() {
            e.seq = i as u64 + 1;
        }
        for (i, e) in b.iter_mut().enumerate() {
            e.seq = (i as u64 + 1) * 10;
        }
        assert_eq!(analyze(&a), analyze(&b));
    }

    #[test]
    fn fault_free_run_reports_an_empty_waterfall() {
        let ctx = TraceCtx::root(3, 1);
        let report = analyze(&[assigned(10, ctx, 2, 3, 0, 8), completed(50, ctx, 2, 3)]);
        assert!(report.contains("(no failures: the initial schedule ran to completion)"));
        assert!(report.contains("phone 2: chunks 1  busy 40 us"));
    }
}
