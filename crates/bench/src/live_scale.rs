//! Event-loop scale benchmark: one coordinator thread vs. a simulated
//! fleet (DESIGN.md §14, ROADMAP "serving system" gap).
//!
//! The live path's claim is that a single readiness-driven thread can
//! serve fleets far past OS-thread scale. This module measures it: a
//! child process (`cwc-bench-live fleet ...`) plays N workers on its own
//! client-side reactor — real sockets, real registration and bandwidth
//! probes, synthetic instant task results — while the parent runs the
//! real [`cwc_server::run_live_server_with`] event loop and reads its
//! own metrics. Two processes because each side holds one fd per worker
//! and `ulimit -n` applies per process.
//!
//! Reported per scale point: accept+register+probe throughput
//! (workers/s of setup), ship throughput (task inputs delivered/s),
//! keep-alive ack volume, and the `live.loop_iter_us` histogram's
//! p50/p99/max — the event-loop iteration latency the tentpole
//! acceptance asks for. A chaos soak point re-runs the largest fleet
//! with frame-drop injection and a slice of the fleet dying mid-run.

use cwc_chaos::{FaultKind, FaultPlan, FaultProfile};
use cwc_core::SchedulerKind;
use cwc_net::{
    raise_nofile_limit, Conn, FlushStatus, Frame, Interest, PollEvent, Poller, ReadStatus,
};
use cwc_server::{run_live_server_with, LiveJob, LivePolicy};
use cwc_types::{CwcError, CwcResult, JobId, JobKind, PhoneId, RadioTech};
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// The standard scale ladder: thread-per-connection territory, past it,
/// and the 10k tentpole point.
pub const SCALE_LADDER: [usize; 3] = [100, 1_000, 10_000];

/// Workers in the chaos-soak smoke point.
pub const SOAK_WORKERS: usize = 10_000;

/// Chaos seed the soak runs under (one of the CI soak seeds).
pub const SOAK_SEED: u64 = 7;

/// What the fleet child observed, reported as one JSON line on stdout.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct FleetSummary {
    /// Connections successfully established and registered.
    pub connected: usize,
    /// `ShipInput` frames received across the fleet.
    pub inputs_received: u64,
    /// `TaskComplete` frames sent back.
    pub completes_sent: u64,
    /// Keep-alive probes answered.
    pub keepalive_acks_sent: u64,
    /// Workers that died abruptly on their first data-phase frame (the
    /// `die` knob).
    pub died: usize,
}

/// One measured scale point.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ScalePoint {
    /// Fleet size.
    pub workers: usize,
    /// Wall-clock accept+register+probe phase, ms (`live.setup_ms`).
    pub setup_ms: f64,
    /// Workers brought from TCP connect to measured-and-scheduled, per
    /// second of setup.
    pub accepts_per_sec: f64,
    /// Wall-clock of the whole run, ms.
    pub wall_ms: f64,
    /// Task inputs delivered to workers per second of post-setup run.
    pub ships_per_sec: f64,
    /// Keep-alive acks the kernel credited.
    pub keepalives_acked: usize,
    /// Keep-alive acks per second of post-setup run.
    pub keepalive_acks_per_sec: f64,
    /// Event-loop iteration work time, µs: median.
    pub loop_p50_us: f64,
    /// Event-loop iteration work time, µs: 99th percentile.
    pub loop_p99_us: f64,
    /// Event-loop iteration work time, µs: worst observed.
    pub loop_max_us: f64,
    /// Iterations that did nonzero work (the histogram's population).
    pub loop_iters: u64,
    /// Partitions migrated after worker loss.
    pub migrated: usize,
    /// Send retries the backoff schedule performed.
    pub retries: u64,
    /// What the fleet child saw from its side.
    pub fleet: FleetSummary,
}

/// Outcome of the chaos-soak smoke point.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct SoakOutcome {
    /// Fleet size.
    pub workers: usize,
    /// Chaos seed driving the frame-drop script.
    pub seed: u64,
    /// Workers told to die abruptly mid-run.
    pub died: usize,
    /// Wall-clock of the run, ms.
    pub wall_ms: f64,
    /// Partitions migrated after worker loss.
    pub migrated: usize,
    /// Send retries performed.
    pub retries: u64,
    /// Workers the server lost over the run (`live.workers_lost`).
    pub workers_lost: u64,
    /// Whether the batch still aggregated fully (no fleet loss).
    pub completed: bool,
    /// Event-loop iteration p99, µs, under chaos.
    pub loop_p99_us: f64,
}

/// Tuning for one benchmark point.
#[derive(Debug, Clone)]
pub struct PointConfig {
    /// Fleet size.
    pub workers: usize,
    /// How many workers die abruptly on their first data-phase frame.
    pub die: usize,
    /// Server-side frame-drop chaos seed (`None` = fault-free).
    pub chaos_seed: Option<u64>,
    /// Keep-alive period (short, so acks actually flow in a short run).
    pub keepalive: Duration,
    /// Stall watchdog (short under chaos so dropped ships requeue fast).
    pub stall_timeout: Duration,
    /// Whole-run safety net.
    pub deadline: Duration,
    /// Input KB shipped per worker (the job's total input is
    /// `workers * input_kb_per_worker`).
    pub input_kb_per_worker: usize,
}

impl PointConfig {
    /// The fault-free throughput configuration for one ladder point.
    pub fn throughput(workers: usize) -> Self {
        PointConfig {
            workers,
            die: 0,
            chaos_seed: None,
            keepalive: Duration::from_millis(250),
            stall_timeout: Duration::from_secs(5),
            deadline: Duration::from_secs(120),
            input_kb_per_worker: 2,
        }
    }

    /// The chaos-soak smoke configuration.
    pub fn soak() -> Self {
        PointConfig {
            workers: SOAK_WORKERS,
            die: SOAK_WORKERS / 100,
            chaos_seed: Some(SOAK_SEED),
            keepalive: Duration::from_millis(500),
            stall_timeout: Duration::from_secs(2),
            deadline: Duration::from_secs(300),
            input_kb_per_worker: 2,
        }
    }
}

fn spawn_fleet(addr: SocketAddr, workers: usize, die: usize) -> CwcResult<Child> {
    let exe = std::env::current_exe()
        .map_err(|e| CwcError::Config(format!("cannot locate own binary: {e}")))?;
    Command::new(exe)
        .arg("fleet")
        .arg(addr.to_string())
        .arg(workers.to_string())
        .arg(die.to_string())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| CwcError::Config(format!("cannot spawn fleet child: {e}")))
}

fn read_fleet_summary(child: Child) -> CwcResult<FleetSummary> {
    let out = child
        .wait_with_output()
        .map_err(|e| CwcError::Transport(format!("fleet child: {e}")))?;
    if !out.status.success() {
        return Err(CwcError::Transport(format!(
            "fleet child exited with {}",
            out.status
        )));
    }
    let text = String::from_utf8_lossy(&out.stdout);
    let line = text
        .lines()
        .rev()
        .find(|l| l.trim_start().starts_with('{'))
        .ok_or_else(|| CwcError::Transport("fleet child printed no summary".into()))?;
    serde_json::from_str(line)
        .map_err(|e| CwcError::Transport(format!("fleet summary unparsable: {e}")))
}

/// Runs one parent-side benchmark point against a spawned fleet child.
pub fn run_point(cfg: &PointConfig) -> CwcResult<ScalePoint> {
    raise_nofile_limit()?;
    let listener =
        TcpListener::bind("127.0.0.1:0").map_err(|e| CwcError::Transport(format!("bind: {e}")))?;
    let addr = listener
        .local_addr()
        .map_err(|e| CwcError::Transport(format!("local_addr: {e}")))?;
    let child = spawn_fleet(addr, cfg.workers, cfg.die)?;

    // Real input bytes (digits parse as primecount numbers), synthetic
    // results: the fleet answers every ship instantly, so the measurement
    // is pure coordination throughput.
    let input = vec![b'7'; cfg.workers * cfg.input_kb_per_worker * 1024];
    let jobs = vec![LiveJob::new(
        JobId(0),
        JobKind::Breakable,
        "primecount",
        30,
        input,
    )];
    let mut policy = LivePolicy {
        keepalive_period: cfg.keepalive,
        stall_timeout: cfg.stall_timeout,
        ..LivePolicy::default()
    };
    if let Some(seed) = cfg.chaos_seed {
        policy.chaos = Some(FaultPlan::new(
            seed,
            FaultProfile::single(FaultKind::Drop, 0.02),
        ));
    }
    let obs = cwc_obs::Obs::new();
    let out = run_live_server_with(
        listener,
        cfg.workers,
        jobs,
        cwc_tasks::standard_registry(),
        SchedulerKind::Greedy,
        cfg.deadline,
        policy,
        &obs,
    )?;
    let fleet = read_fleet_summary(child)?;

    let wall_ms = out.wall.as_secs_f64() * 1e3;
    let setup_ms = obs
        .metrics
        .gauge_value("live.setup_ms")
        .unwrap_or(wall_ms)
        .max(f64::MIN_POSITIVE);
    let run_ms = (wall_ms - setup_ms).max(f64::MIN_POSITIVE);
    let hist = obs.metrics.histogram("live.loop_iter_us").summary();
    Ok(ScalePoint {
        workers: cfg.workers,
        setup_ms,
        accepts_per_sec: cfg.workers as f64 / (setup_ms / 1e3),
        wall_ms,
        ships_per_sec: fleet.inputs_received as f64 / (run_ms / 1e3),
        keepalives_acked: out.keepalives_acked,
        keepalive_acks_per_sec: out.keepalives_acked as f64 / (run_ms / 1e3),
        loop_p50_us: hist.p50,
        loop_p99_us: hist.p99,
        loop_max_us: hist.max,
        loop_iters: hist.count,
        migrated: out.migrated,
        retries: out.retries,
        fleet,
    })
}

/// Runs the chaos-soak smoke point (10k workers, frame drops, 1% of the
/// fleet dying on first input) and distills the recovery story.
pub fn run_soak() -> CwcResult<SoakOutcome> {
    let cfg = PointConfig::soak();
    raise_nofile_limit()?;
    let listener =
        TcpListener::bind("127.0.0.1:0").map_err(|e| CwcError::Transport(format!("bind: {e}")))?;
    let addr = listener
        .local_addr()
        .map_err(|e| CwcError::Transport(format!("local_addr: {e}")))?;
    let child = spawn_fleet(addr, cfg.workers, cfg.die)?;
    let input = vec![b'7'; cfg.workers * cfg.input_kb_per_worker * 1024];
    let jobs = vec![LiveJob::new(
        JobId(0),
        JobKind::Breakable,
        "primecount",
        30,
        input,
    )];
    let policy = LivePolicy {
        keepalive_period: cfg.keepalive,
        stall_timeout: cfg.stall_timeout,
        chaos: cfg
            .chaos_seed
            .map(|seed| FaultPlan::new(seed, FaultProfile::single(FaultKind::Drop, 0.02))),
        ..LivePolicy::default()
    };
    let obs = cwc_obs::Obs::new();
    let out = run_live_server_with(
        listener,
        cfg.workers,
        jobs,
        cwc_tasks::standard_registry(),
        SchedulerKind::Greedy,
        cfg.deadline,
        policy,
        &obs,
    )?;
    // The child's summary is read for its side effects (join + sanity).
    let fleet = read_fleet_summary(child)?;
    if fleet.connected != cfg.workers {
        return Err(CwcError::Transport(format!(
            "soak fleet connected {}/{} workers",
            fleet.connected, cfg.workers
        )));
    }
    let hist = obs.metrics.histogram("live.loop_iter_us").summary();
    Ok(SoakOutcome {
        workers: cfg.workers,
        seed: cfg.chaos_seed.unwrap_or_default(),
        died: cfg.die,
        wall_ms: out.wall.as_secs_f64() * 1e3,
        migrated: out.migrated,
        retries: out.retries,
        workers_lost: obs
            .metrics
            .gauge_value("live.workers_lost")
            .unwrap_or_default() as u64,
        completed: out.failure.is_none() && out.results.contains_key(&JobId(0)),
        loop_p99_us: hist.p99,
    })
}

// ---------------------------------------------------------------------------
// The fleet child: N simulated workers on one client-side reactor.
// ---------------------------------------------------------------------------

/// Per-connection protocol automaton for a simulated worker. It answers
/// whatever the server sends — registration ack, bandwidth probe, input
/// ships, keep-alives — with canned instant responses, so the benchmark
/// measures the coordinator, not task execution.
struct FleetConn {
    conn: Conn,
    write_interest: bool,
    /// Close (gracefully) once the write queue drains.
    finishing: bool,
}

/// Mutable per-event bookkeeping shared by the fleet loop and its
/// connection handler.
struct FleetState {
    conns: Vec<Option<FleetConn>>,
    open: usize,
    summary: FleetSummary,
    workers: usize,
    die: usize,
}

impl FleetState {
    fn close(&mut self, poller: &Poller, idx: usize) {
        if let Some(fc) = self.conns.get_mut(idx).and_then(Option::take) {
            // The fd closes with the dropped stream; a failed deregister
            // means the kernel already forgot it.
            // cwc-lint: allow(error_swallowing)
            poller.deregister(fc.conn.fd()).ok();
            self.open -= 1;
        }
    }

    /// Reconciles poller interest with the connection's queue state.
    fn reconcile(&mut self, poller: &Poller, idx: usize) {
        let Some(fc) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
            return;
        };
        match fc.conn.flush() {
            Ok(FlushStatus::Clean) => {
                if fc.finishing {
                    self.close(poller, idx);
                    return;
                }
                if fc.write_interest {
                    fc.write_interest = false;
                    // cwc-lint: allow(error_swallowing)
                    poller
                        .reregister(fc.conn.fd(), idx as u64, Interest::READ)
                        .ok();
                }
            }
            Ok(FlushStatus::Blocked) => {
                if !fc.write_interest {
                    fc.write_interest = true;
                    // cwc-lint: allow(error_swallowing)
                    poller
                        .reregister(fc.conn.fd(), idx as u64, Interest::READ_WRITE)
                        .ok();
                }
            }
            Ok(FlushStatus::Paused(_)) | Ok(FlushStatus::Held) => {
                // The fleet never queues pauses; treat as clean.
                fc.conn.resume();
            }
            Ok(FlushStatus::Closed) | Err(_) => self.close(poller, idx),
        }
    }

    /// The last `die` workers suffer an abrupt offline failure on their
    /// first data-phase frame (input ship or keep-alive — whichever the
    /// schedule sends them first): the socket just vanishes, as when a
    /// phone is unplugged and walks away. The *last* indices because they
    /// advertise the fastest links, so the scheduler reliably ships to
    /// them early. Returns `true` if it died.
    fn maybe_die(&mut self, poller: &Poller, idx: usize) -> bool {
        if idx + self.die < self.workers {
            return false;
        }
        // A closed connection never sees another frame, so this fires at
        // most once per doomed worker.
        self.summary.died += 1;
        self.close(poller, idx);
        true
    }

    fn queue(&mut self, idx: usize, frame: &Frame) {
        if let Some(fc) = self.conns.get_mut(idx).and_then(Option::as_mut) {
            let mut buf = bytes::BytesMut::new();
            frame.encode(&mut buf);
            fc.conn.queue_bytes(buf.to_vec());
        }
    }

    fn handle_readable(&mut self, poller: &Poller, idx: usize) {
        let filled = match self.conns.get_mut(idx).and_then(Option::as_mut) {
            Some(fc) => fc.conn.fill(),
            None => return,
        };
        let eof = match filled {
            Ok(ReadStatus::Open) => false,
            Ok(ReadStatus::Eof) => true,
            Err(_) => {
                self.close(poller, idx);
                return;
            }
        };
        loop {
            let decoded = match self.conns.get_mut(idx).and_then(Option::as_mut) {
                Some(fc) => fc.conn.next_frame(),
                None => return,
            };
            match decoded {
                Ok(Some(frame)) => {
                    if !self.handle_frame(poller, idx, frame) {
                        return;
                    }
                }
                Ok(None) => break,
                Err(_) => {
                    self.close(poller, idx);
                    return;
                }
            }
        }
        self.reconcile(poller, idx);
        if eof {
            self.close(poller, idx);
        }
    }

    /// Returns `false` once the connection is gone.
    fn handle_frame(&mut self, poller: &Poller, idx: usize, frame: Frame) -> bool {
        match frame {
            Frame::BandwidthProbe { probe_id, .. } => {
                // Heterogeneous reported links, as on the real testbed.
                self.queue(
                    idx,
                    &Frame::BandwidthReport {
                        probe_id,
                        kb_per_sec: 100.0 + (idx % 64) as f64 * 10.0,
                    },
                );
            }
            Frame::ShipInput { job, seq, .. } => {
                self.summary.inputs_received += 1;
                if self.maybe_die(poller, idx) {
                    return false;
                }
                self.summary.completes_sent += 1;
                self.queue(
                    idx,
                    &Frame::TaskComplete {
                        job,
                        seq,
                        exec_ms: 1,
                        result: bytes::Bytes::from_static(&[0u8; 8]),
                    },
                );
            }
            Frame::KeepAlive { seq } => {
                if self.maybe_die(poller, idx) {
                    return false;
                }
                self.summary.keepalive_acks_sent += 1;
                self.queue(idx, &Frame::KeepAliveAck { seq });
            }
            Frame::Shutdown => {
                self.queue(idx, &Frame::Shutdown);
                if let Some(fc) = self.conns.get_mut(idx).and_then(Option::as_mut) {
                    fc.finishing = true;
                }
            }
            // RegisterAck, ShipExecutable, CancelTask, duplicates: the
            // simulated worker has nothing to do with them.
            _ => {}
        }
        true
    }
}

/// Threads the fleet child connects from. Connect latency is dominated
/// by per-connect kernel work (~1.5 ms serialized on the reference
/// container), not CPU, so a few overlapping connectors cut the setup
/// phase even on a single-core host.
const CONNECT_THREADS: usize = 4;

/// Connects one contiguous stripe of worker indices and queues each
/// worker's `Register` frame. The worker's identity is the `PhoneId` in
/// the frame — not the connection order — so stripes from different
/// threads may interleave arbitrarily at the server.
fn connect_stripe(
    addr: SocketAddr,
    range: std::ops::Range<usize>,
) -> CwcResult<Vec<(usize, Conn)>> {
    let mut out = Vec::with_capacity(range.len());
    for i in range {
        let stream = TcpStream::connect(addr)
            .map_err(|e| CwcError::Transport(format!("fleet connect {i}: {e}")))?;
        let mut conn = Conn::from_stream(stream)?;
        let mut buf = bytes::BytesMut::new();
        Frame::Register {
            phone: PhoneId(i as u32),
            clock_mhz: 800 + (i as u32 % 16) * 100,
            cores: 2,
            radio: RadioTech::Wifi80211g,
            ram_kb: 1 << 20,
        }
        .encode(&mut buf);
        conn.queue_bytes(buf.to_vec());
        // Registration overlaps the connect phase: push it out now so the
        // server can register early workers while late ones still connect.
        // cwc-lint: allow(error_swallowing)
        conn.flush().ok();
        out.push((i, conn));
    }
    Ok(out)
}

/// The child side of the benchmark: connects `workers` simulated workers
/// to `addr` in parallel batches from [`CONNECT_THREADS`] threads,
/// serves the protocol until every connection closes, and returns what
/// it saw. The last `die` workers close abruptly on their first
/// data-phase frame (input ship or keep-alive).
pub fn fleet_main(addr: SocketAddr, workers: usize, die: usize) -> CwcResult<FleetSummary> {
    raise_nofile_limit()?;
    let mut poller = Poller::new()?;
    let mut state = FleetState {
        conns: Vec::with_capacity(workers),
        open: 0,
        summary: FleetSummary {
            connected: 0,
            inputs_received: 0,
            completes_sent: 0,
            keepalive_acks_sent: 0,
            died: 0,
        },
        workers,
        die,
    };
    // Batched parallel connect: each thread owns a contiguous stripe;
    // the main thread is one of the connectors, then registers every
    // connection with the poller in worker order.
    let threads = CONNECT_THREADS.min(workers.max(1));
    let per = workers.div_ceil(threads);
    let mut connected: Vec<Option<Conn>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (1..threads)
            .map(|t| {
                let range = (t * per)..((t + 1) * per).min(workers);
                scope.spawn(move || connect_stripe(addr, range))
            })
            .collect();
        let mut stripes = vec![connect_stripe(addr, 0..per.min(workers))];
        for h in handles {
            match h.join() {
                Ok(r) => stripes.push(r),
                Err(_) => {
                    return Err(CwcError::Transport(
                        "fleet connector thread panicked".into(),
                    ))
                }
            }
        }
        let mut connected: Vec<Option<Conn>> = (0..workers).map(|_| None).collect();
        for stripe in stripes {
            for (i, conn) in stripe? {
                connected[i] = Some(conn);
            }
        }
        Ok(connected)
    })?;
    for (i, slot) in connected.iter_mut().enumerate() {
        let Some(conn) = slot.take() else {
            return Err(CwcError::Transport(format!(
                "fleet worker {i} never connected"
            )));
        };
        poller.register(conn.fd(), i as u64, Interest::READ)?;
        state.conns.push(Some(FleetConn {
            conn,
            write_interest: false,
            finishing: false,
        }));
        state.open += 1;
        state.summary.connected += 1;
    }

    let gave_up = Instant::now() + Duration::from_secs(600);
    let mut events: Vec<PollEvent> = Vec::new();
    while state.open > 0 {
        if Instant::now() > gave_up {
            return Err(CwcError::Transport(format!(
                "fleet still has {} open connections at the safety deadline",
                state.open
            )));
        }
        events.clear();
        poller.wait(&mut events, Some(Duration::from_millis(500)))?;
        for ev in &events {
            let idx = ev.token as usize;
            if ev.readable || ev.hangup {
                state.handle_readable(&poller, idx);
            }
            if ev.writable {
                state.reconcile(&poller, idx);
            }
        }
    }
    Ok(state.summary)
}

// ---------------------------------------------------------------------------
// Baseline comparison (the CI regression gate).
// ---------------------------------------------------------------------------

/// Compares a freshly generated `BENCH_live.json` against the committed
/// baseline: per matching scale point, `ships_per_sec` may not regress
/// by more than `tolerance` (fractional, e.g. `0.2`). Returns the list
/// of human-readable regressions (empty = pass).
///
/// Only ship throughput gates: it measures the event loop itself.
/// `accepts_per_sec` stays in the artifact for the record but is
/// dominated by per-connect kernel latency (~1.5 ms serialized on the
/// reference container, unaffected by connector parallelism), so it
/// tracks the host, not the code.
pub fn compare_reports(
    baseline: &serde_json::Value,
    fresh: &serde_json::Value,
    tolerance: f64,
) -> Vec<String> {
    let mut regressions = Vec::new();
    fn lookup<'v>(v: &'v serde_json::Value, name: &str) -> Option<&'v serde_json::Value> {
        v.as_object().and_then(|m| m.get(name))
    }
    let points_of = |v: &serde_json::Value| -> Vec<serde_json::Value> {
        lookup(v, "points")
            .and_then(|p| p.as_array().cloned())
            .unwrap_or_default()
    };
    let base_points = points_of(baseline);
    let fresh_points = points_of(fresh);
    let field = |p: &serde_json::Value, name: &str| -> f64 {
        lookup(p, name).and_then(|v| v.as_f64()).unwrap_or_default()
    };
    for bp in &base_points {
        let workers = lookup(bp, "workers")
            .and_then(|v| v.as_u64())
            .unwrap_or_default();
        let Some(fp) = fresh_points
            .iter()
            .find(|p| lookup(p, "workers").and_then(|v| v.as_u64()) == Some(workers))
        else {
            regressions.push(format!("scale point {workers}: missing from fresh report"));
            continue;
        };
        let metric = "ships_per_sec";
        let was = field(bp, metric);
        let now = field(fp, metric);
        if was > 0.0 && now < was * (1.0 - tolerance) {
            regressions.push(format!(
                "scale point {workers}: {metric} regressed {was:.0} -> {now:.0} \
                 (>{:.0}% drop)",
                tolerance * 100.0
            ));
        }
    }
    if base_points.is_empty() {
        regressions.push("baseline has no scale points".into());
    }
    regressions
}

/// Loads a report file for [`compare_reports`].
pub fn load_report(path: &str) -> CwcResult<serde_json::Value> {
    let mut text = String::new();
    std::fs::File::open(path)
        .and_then(|mut f| f.read_to_string(&mut text))
        .map_err(|e| CwcError::Config(format!("{path}: {e}")))?;
    serde_json::from_str(&text).map_err(|e| CwcError::Config(format!("{path}: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_small_fleet_round_trips_in_process() {
        // The child normally runs as a separate process (fd budget); for a
        // small fleet a thread exercises the identical protocol automaton.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        // 12 workers: advertised clock and bandwidth both rise with the
        // index, so the doomed last two are the scheduler's favourites
        // and reliably receive a ship to die on.
        let fleet = std::thread::spawn(move || fleet_main(addr, 12, 2));
        let input = vec![b'7'; 48 * 1024];
        let jobs = vec![LiveJob::new(
            JobId(0),
            JobKind::Breakable,
            "primecount",
            30,
            input,
        )];
        let policy = LivePolicy {
            keepalive_period: Duration::from_millis(200),
            ..LivePolicy::default()
        };
        let obs = cwc_obs::Obs::new();
        let out = run_live_server_with(
            listener,
            12,
            jobs,
            cwc_tasks::standard_registry(),
            SchedulerKind::Greedy,
            Duration::from_secs(60),
            policy,
            &obs,
        )
        .unwrap();
        let summary = fleet.join().unwrap().unwrap();
        assert_eq!(summary.connected, 12);
        assert_eq!(summary.died, 2);
        assert!(summary.inputs_received >= 1, "{summary:?}");
        assert!(out.failure.is_none(), "{:?}", out.failure);
        let hist = obs.metrics.histogram("live.loop_iter_us").summary();
        assert!(hist.count > 0, "loop iteration latency must be recorded");
    }

    #[test]
    fn comparison_flags_large_regressions_only() {
        let base = serde_json::json!({"points": [
            {"workers": 100, "ships_per_sec": 1000.0, "accepts_per_sec": 500.0},
        ]});
        let same = serde_json::json!({"points": [
            {"workers": 100, "ships_per_sec": 900.0, "accepts_per_sec": 450.0},
        ]});
        assert!(compare_reports(&base, &same, 0.2).is_empty());
        // Accept throughput tracks the host's connect latency, not the
        // event loop — a collapse there must not gate.
        let slow_accepts = serde_json::json!({"points": [
            {"workers": 100, "ships_per_sec": 1000.0, "accepts_per_sec": 50.0},
        ]});
        assert!(compare_reports(&base, &slow_accepts, 0.2).is_empty());
        let worse = serde_json::json!({"points": [
            {"workers": 100, "ships_per_sec": 700.0, "accepts_per_sec": 450.0},
        ]});
        let r = compare_reports(&base, &worse, 0.2);
        assert_eq!(r.len(), 1, "{r:?}");
        assert!(r[0].contains("ships_per_sec"));
    }
}
