//! Data builders, one per figure/table of the paper.

use cwc_core::economics::EnergyComparison;
use cwc_core::{relaxed_lower_bound, GreedyScheduler, SchedProblem, SchedulerKind};
use cwc_device::throttle::{simulate_charge, ChargeOutcome, ChargePolicy, ThrottleConfig};
use cwc_device::{coremark, BatteryParams, CpuModel, Phone, PhoneSpec};
use cwc_net::link::{LinkConfig, LinkModel};
use cwc_net::measure::{measure_link, MeasurementReport};
use cwc_profiler::{
    generate_study, parse_intervals, study_population, unplug_likelihood_by_hour, StudyStats,
};
use cwc_server::engine::paper_baselines;
use cwc_server::feasibility::{fcfs_dispatch, percentile, turnaround_cdf_ms};
use cwc_server::{
    paper_workload, testbed_fleet, Engine, EngineConfig, EngineOutcome, FailureInjection,
    FleetBuilder,
};
use cwc_sim::RngStreams;
use cwc_types::{
    CpuSpec, JobSpec, KiloBytes, Micros, MsPerKb, PhoneId, PhoneInfo, RadioTech, UserId,
};
use rand::Rng;

/// Default master seed for every recorded experiment.
pub const DEFAULT_SEED: u64 = 2012;

/// Days of simulated charging logs for the §3.1 study.
pub const STUDY_DAYS: u32 = 28;

// ---------------------------------------------------------------- Fig. 1

/// Fig. 1: CoreMark-style CPU comparison. `(name, score, is_reference)`.
pub fn fig1() -> Vec<(&'static str, f64, bool)> {
    coremark::scaled_scores(200_000)
}

// ------------------------------------------------------------- Figs. 2–3

/// The full §3.1 charging-behavior study statistics (Figs. 2a–c, 3a).
pub fn fig2_fig3(seed: u64, days: u32) -> StudyStats {
    let streams = RngStreams::new(seed);
    let mut rng = streams.stream("users");
    let profiles = study_population(&mut rng);
    let intervals = parse_intervals(&generate_study(&profiles, days, &streams));
    StudyStats::compute(&intervals, profiles.len(), days)
}

/// Fig. 3b/c: per-hour unplug likelihood for two representative users
/// (a regular one and an irregular one).
pub fn fig3bc(seed: u64, days: u32) -> [(u32, [f64; 24]); 2] {
    let streams = RngStreams::new(seed);
    let mut rng = streams.stream("users");
    let profiles = study_population(&mut rng);
    let intervals = parse_intervals(&generate_study(&profiles, days, &streams));
    [
        (3, unplug_likelihood_by_hour(&intervals, UserId(3), days)),
        (11, unplug_likelihood_by_hour(&intervals, UserId(11), days)),
    ]
}

// ---------------------------------------------------------------- Fig. 4

/// Fig. 4: 600-second iperf sessions at the three houses' WiFi APs.
pub fn fig4(seed: u64) -> Vec<(&'static str, MeasurementReport)> {
    let streams = RngStreams::new(seed);
    let locations = [
        ("house-1 (802.11g)", RadioTech::Wifi80211g),
        ("house-2 (802.11g)", RadioTech::Wifi80211g),
        ("house-3 (802.11a)", RadioTech::Wifi80211a),
    ];
    locations
        .iter()
        .enumerate()
        .map(|(i, &(name, tech))| {
            let mut link =
                LinkModel::new(LinkConfig::typical(tech), streams.indexed_stream("fig4", i));
            let report = measure_link(
                &mut link,
                Micros::ZERO,
                Micros::from_secs(600),
                Micros::from_secs(1),
            );
            (name, report)
        })
        .collect()
}

// ---------------------------------------------------------------- Fig. 5

/// Fig. 5 outcome: both turnaround CDFs and their 90th percentiles (ms).
pub struct Fig5 {
    /// Sorted turnarounds, all six phones.
    pub all6_ms: Vec<f64>,
    /// Sorted turnarounds, the four fast-linked phones.
    pub fast4_ms: Vec<f64>,
    /// 90th percentiles `(all6, fast4)`.
    pub p90: (f64, f64),
}

/// Six identical-CPU phones with heterogeneous links (§3.1's setup).
fn fig5_phones(seed: u64) -> Vec<Phone> {
    let radios = [
        RadioTech::Wifi80211a,
        RadioTech::Wifi80211g,
        RadioTech::FourG,
        RadioTech::ThreeG,
        RadioTech::ThreeG,
        RadioTech::Edge,
    ];
    let streams = RngStreams::new(seed);
    radios
        .iter()
        .enumerate()
        .map(|(i, &radio)| {
            let spec = PhoneSpec {
                id: PhoneId::from_index(i),
                model: "HTC Sensation".into(),
                cpu: CpuModel::ideal(CpuSpec::new(1200, 2)),
                radio,
                ram_kb: 1 << 20,
                battery: BatteryParams::htc_sensation(),
            };
            let link = LinkModel::new(
                LinkConfig::typical(radio),
                streams.indexed_stream("fig5", i),
            );
            Phone::new(spec, link, 50.0)
        })
        .collect()
}

/// Fig. 5: 600 largest-int files, all six phones vs the four fastest
/// links (drop EDGE and one 3G — "the two slowest connections").
pub fn fig5(seed: u64) -> Fig5 {
    let files: Vec<KiloBytes> = {
        let mut rng = RngStreams::new(seed).stream("fig5/files");
        (0..600)
            .map(|_| KiloBytes(rng.gen_range(40..150)))
            .collect()
    };
    let baseline = 2.0; // largest-int scan cost, ms/KB at 806 MHz

    let mut all6 = fig5_phones(seed);
    let all6_ms = turnaround_cdf_ms(&fcfs_dispatch(&mut all6, &files, baseline));

    let mut fast4 = fig5_phones(seed);
    fast4.remove(5); // EDGE
    fast4.remove(4); // one 3G
    let fast4_ms = turnaround_cdf_ms(&fcfs_dispatch(&mut fast4, &files, baseline));

    let p90 = (percentile(&all6_ms, 90.0), percentile(&fast4_ms, 90.0));
    Fig5 {
        all6_ms,
        fast4_ms,
        p90,
    }
}

// ---------------------------------------------------------------- Fig. 6

/// Fig. 6: predicted (clock-ratio) vs measured speedup per phone–task
/// pair, relative to the slowest (806 MHz) phone.
pub fn fig6(seed: u64) -> Vec<(f64, f64)> {
    let fleet = testbed_fleet(seed);
    let baselines = paper_baselines();
    let mut points = Vec::new();
    for task in ["primecount", "wordcount", "photoblur"] {
        let t_s = baselines[task];
        for phone in &fleet {
            let cpu = phone.spec().cpu;
            points.push((cpu.predicted_speedup(), cpu.measured_speedup(t_s)));
        }
    }
    points
}

// --------------------------------------------------------------- Fig. 10

/// Fig. 10 outcome: the three charging curves on the HTC Sensation.
pub struct Fig10 {
    /// No tasks: the ideal profile.
    pub idle: ChargeOutcome,
    /// CPU pegged continuously.
    pub heavy: ChargeOutcome,
    /// The adaptive MIMD throttle.
    pub throttled: ChargeOutcome,
}

impl Fig10 {
    /// Charging-time stretch of the heavy run vs idle (paper: ≈35%).
    pub fn heavy_stretch(&self) -> f64 {
        self.heavy.full_at.0 as f64 / self.idle.full_at.0 as f64 - 1.0
    }

    /// Compute-time overhead of the throttle vs the heavy run
    /// (paper: ≈24.5%).
    pub fn throttle_compute_overhead(&self) -> f64 {
        self.throttled.compute_overhead_vs(&self.heavy)
    }
}

/// Fig. 10: full-charge simulations under the three policies.
pub fn fig10() -> Fig10 {
    let params = BatteryParams::htc_sensation();
    let sample = Micros::from_mins(2);
    Fig10 {
        idle: simulate_charge(params, ChargePolicy::Idle, 0.0, sample),
        heavy: simulate_charge(params, ChargePolicy::Heavy, 0.0, sample),
        throttled: simulate_charge(
            params,
            ChargePolicy::Throttled(ThrottleConfig::default()),
            0.0,
            sample,
        ),
    }
}

// ------------------------------------------------------- Fig. 12 & table

/// Fig. 12a: the 150-task greedy run on the 18-phone testbed.
pub fn fig12a(seed: u64) -> EngineOutcome {
    Engine::run_on_testbed(seed, paper_workload(seed), vec![], EngineConfig::default())
        .expect("testbed run")
}

/// Fig. 12b: split-count series for greedy vs equal-split.
pub struct Fig12b {
    /// Greedy split counts (pieces − 1), ascending.
    pub greedy: Vec<usize>,
    /// Equal-split split counts, ascending.
    pub equal_split: Vec<usize>,
}

/// Fig. 12b data.
pub fn fig12b(seed: u64) -> Fig12b {
    let greedy = fig12a(seed).split_counts_sorted();
    let eq = Engine::run_on_testbed(
        seed,
        paper_workload(seed),
        vec![],
        EngineConfig {
            scheduler: SchedulerKind::EqualSplit,
            ..Default::default()
        },
    )
    .expect("equal-split run")
    .split_counts_sorted();
    Fig12b {
        greedy,
        equal_split: eq,
    }
}

/// Fig. 12c: the failure-injection run — phones 1, 6 and 17 unplugged at
/// staggered instants mid-execution.
pub fn fig12c(seed: u64) -> EngineOutcome {
    let injections = vec![
        FailureInjection {
            at: Micros::from_secs(120),
            phone: PhoneId(1),
            offline: false,
            replug_at: None,
        },
        FailureInjection {
            at: Micros::from_secs(40),
            phone: PhoneId(6),
            offline: false,
            replug_at: None,
        },
        FailureInjection {
            at: Micros::from_secs(300),
            phone: PhoneId(17),
            offline: false,
            replug_at: None,
        },
    ];
    Engine::run_on_testbed(
        seed,
        paper_workload(seed),
        injections,
        EngineConfig::default(),
    )
    .expect("failure run")
}

/// The §6 makespan table: all three schedulers on the same fleet and
/// workload. `(label, makespan s, predicted s, completed)` per scheduler.
pub fn table_makespan(seed: u64) -> Vec<(&'static str, f64, f64, usize)> {
    SchedulerKind::ALL
        .iter()
        .map(|&kind| {
            let out = Engine::run_on_testbed(
                seed,
                paper_workload(seed),
                vec![],
                EngineConfig {
                    scheduler: kind,
                    ..Default::default()
                },
            )
            .expect("table run");
            (
                kind.label(),
                out.makespan.as_secs_f64(),
                out.predicted_makespan_ms / 1_000.0,
                out.completed_jobs,
            )
        })
        .collect()
}

// --------------------------------------------------------------- Fig. 13

/// One Fig. 13 configuration's result.
#[derive(Debug, Clone, Copy)]
pub struct Fig13Point {
    /// Greedy makespan, ms.
    pub greedy_ms: f64,
    /// LP-relaxation lower bound, ms.
    pub relaxed_ms: f64,
}

impl Fig13Point {
    /// Optimality-gap ratio `T_cwc / T_relaxed − 1`.
    pub fn gap(&self) -> f64 {
        self.greedy_ms / self.relaxed_ms - 1.0
    }
}

/// Fig. 13: random configurations with `b_i` uniform in the measured
/// 1–70 ms/KB range, the same 150-task set, clock-scaled `c_ij` from the
/// testbed phones. Returns one point per configuration.
pub fn fig13(seed: u64, configs: usize) -> Vec<Fig13Point> {
    let jobs: Vec<JobSpec> = paper_workload(seed);
    let fleet = FleetBuilder::new(seed).build();
    let baselines = paper_baselines();
    let streams = RngStreams::new(seed);
    let mut points = Vec::with_capacity(configs);
    for k in 0..configs {
        let mut rng = streams.indexed_stream("fig13", k);
        let phones: Vec<PhoneInfo> = fleet
            .iter()
            .map(|p| {
                PhoneInfo::new(
                    p.id(),
                    p.spec().cpu.spec,
                    p.spec().radio,
                    MsPerKb(rng.gen_range(1.0..70.0)),
                )
            })
            .collect();
        let c: Vec<Vec<f64>> = phones
            .iter()
            .map(|ph| {
                jobs.iter()
                    .map(|j| baselines[&j.program] * 806.0 / f64::from(ph.cpu.clock_mhz))
                    .collect()
            })
            .collect();
        let problem = SchedProblem::new(phones, jobs.clone(), c).expect("valid fig13 instance");
        let greedy = GreedyScheduler::default()
            .schedule(&problem)
            .expect("greedy schedules");
        let relaxed = relaxed_lower_bound(&problem).expect("LP solves");
        points.push(Fig13Point {
            greedy_ms: greedy.predicted_makespan_ms,
            relaxed_ms: relaxed,
        });
    }
    points
}

/// Median gap of a Fig. 13 sweep (paper: ≈18%).
pub fn fig13_median_gap(points: &[Fig13Point]) -> f64 {
    let mut gaps: Vec<f64> = points.iter().map(Fig13Point::gap).collect();
    gaps.sort_by(|a, b| a.partial_cmp(b).unwrap());
    gaps[gaps.len() / 2]
}

// ---------------------------------------------------------------- §3.2

/// §3.2 energy-cost comparison.
pub fn energy() -> EnergyComparison {
    EnergyComparison::paper()
}

// ------------------------------------------------------------- ablations

/// Ablation: greedy scheduling with bandwidth information erased (all
/// `b_i` set to the fleet mean) vs full bandwidth awareness — quantifies
/// the paper's central design argument (§3.1, Fig. 5's moral).
pub fn ablation_bandwidth_blind(seed: u64) -> (f64, f64) {
    let aware = fig12a(seed).makespan.as_secs_f64();

    // Build a fleet whose *scheduler-visible* bandwidth is homogenized by
    // using a blind scheduler pass: schedule against mean b_i, then
    // execute on the real links.
    let fleet = testbed_fleet(seed);
    let jobs = paper_workload(seed);
    let out = Engine::new(
        fleet,
        jobs,
        vec![],
        EngineConfig {
            scheduler: SchedulerKind::Greedy,
            ..Default::default()
        },
    )
    .and_then(|e| e.run_bandwidth_blind())
    .expect("blind run");
    (aware, out.makespan.as_secs_f64())
}

/// Extension study: behavior-driven overnight runs, neutral vs
/// failure-prediction-aware scheduling. Returns per-night
/// `(night, neutral_makespan_s, neutral_migrated, aware_makespan_s,
/// aware_migrated)`.
pub fn extension_reliability(
    seed: u64,
    nights: u32,
    start_hour: u64,
) -> Vec<(u32, f64, usize, f64, usize)> {
    use cwc_server::overnight::{plan_window, run_overnight};
    // Sized so the batch spans a couple of hours — long enough that the
    // behavioral model's early-morning unplugs actually intersect it.
    let jobs = cwc_server::workload::WorkloadBuilder::new(seed)
        .breakable(60, "primecount", 30, 2_000, 6_000)
        .atomic(20, "photoblur", 40, 400, 1_200)
        .build();
    let mut rows = Vec::new();
    for night in 1..=nights {
        let plan = plan_window(18, seed, night, Micros::from_hours(8), 28, start_hour);
        let neutral = run_overnight(
            testbed_fleet(seed),
            jobs.clone(),
            &plan,
            None,
            EngineConfig::default(),
        );
        let aware = run_overnight(
            testbed_fleet(seed),
            jobs.clone(),
            &plan,
            Some(1.0),
            EngineConfig::default(),
        );
        if let (Ok(n), Ok(a)) = (neutral, aware) {
            rows.push((
                night,
                n.makespan.as_secs_f64(),
                n.rescheduled_items,
                a.makespan.as_secs_f64(),
                a.rescheduled_items,
            ));
        }
    }
    rows
}

/// Extension study: fleet scaling. Runs the 150-task paper workload on
/// growing fleets and reports `(phones, greedy_makespan_s,
/// round_robin_makespan_s)` — where does adding phones stop paying?
pub fn extension_scaling(seed: u64) -> Vec<(usize, f64, f64)> {
    let jobs = paper_workload(seed);
    [6usize, 12, 18, 30, 48, 72]
        .into_iter()
        .map(|n| {
            let fleet = || {
                FleetBuilder::new(seed)
                    .houses(n / 6)
                    .phones_per_house(6)
                    .build()
            };
            let greedy = Engine::new(fleet(), jobs.clone(), vec![], EngineConfig::default())
                .and_then(|e| e.run())
                .expect("greedy scaling run");
            let rr = Engine::new(
                fleet(),
                jobs.clone(),
                vec![],
                EngineConfig {
                    scheduler: SchedulerKind::RoundRobin,
                    ..Default::default()
                },
            )
            .and_then(|e| e.run())
            .expect("rr scaling run");
            (n, greedy.makespan.as_secs_f64(), rr.makespan.as_secs_f64())
        })
        .collect()
}

/// Ablation: MIMD multiplier sweep for the throttle — `(increase,
/// decrease, full-charge minutes, compute overhead vs heavy)`.
pub fn ablation_throttle_factors() -> Vec<(f64, f64, f64, f64)> {
    let params = BatteryParams::htc_sensation();
    let sample = Micros::from_mins(5);
    let heavy = simulate_charge(params, ChargePolicy::Heavy, 0.0, sample);
    [(2.0, 0.75), (1.5, 0.9), (4.0, 0.5), (2.0, 0.95)]
        .into_iter()
        .map(|(inc, dec)| {
            let out = simulate_charge(
                params,
                ChargePolicy::Throttled(ThrottleConfig {
                    sleep_increase: inc,
                    sleep_decrease: dec,
                    ..Default::default()
                }),
                0.0,
                sample,
            );
            (
                inc,
                dec,
                out.full_at.as_hours_f64() * 60.0,
                out.compute_overhead_vs(&heavy),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_shape() {
        let scores = fig1();
        assert_eq!(scores.len(), 6);
        let core2 = scores
            .iter()
            .find(|(n, _, _)| n.contains("Core 2"))
            .unwrap()
            .1;
        let tegra3 = scores
            .iter()
            .find(|(n, _, _)| n.contains("Tegra 3"))
            .unwrap()
            .1;
        assert!(tegra3 > core2);
    }

    #[test]
    fn fig5_shape() {
        let f = fig5(DEFAULT_SEED);
        assert_eq!(f.all6_ms.len(), 600);
        assert!(
            f.p90.1 < f.p90.0,
            "fast4 p90 {} vs all6 p90 {}",
            f.p90.1,
            f.p90.0
        );
    }

    #[test]
    fn fig6_points_cluster_near_diagonal_with_fast_outliers() {
        let pts = fig6(DEFAULT_SEED);
        assert_eq!(pts.len(), 18 * 3);
        let on_diag = pts.iter().filter(|(p, m)| (m - p).abs() / p < 0.10).count();
        assert!(
            on_diag * 3 >= pts.len() * 2,
            "{on_diag}/{} near y=x",
            pts.len()
        );
        assert!(
            pts.iter().any(|(p, m)| m > &(p * 1.1)),
            "expected some faster-than-predicted outliers"
        );
    }

    #[test]
    fn fig13_small_sweep_matches_paper_band() {
        let pts = fig13(DEFAULT_SEED, 12);
        let median = fig13_median_gap(&pts);
        assert!(
            (0.02..0.60).contains(&median),
            "median optimality gap {median}"
        );
        for p in &pts {
            assert!(p.greedy_ms >= p.relaxed_ms - 1e-6, "bound violated");
        }
    }

    #[test]
    fn ablation_factors_cover_paper_default() {
        let rows = ablation_throttle_factors();
        assert!(rows.iter().any(|&(i, d, _, _)| i == 2.0 && d == 0.75));
    }
}
