//! Shared builders for the scheduler performance benches and the
//! `cwc-bench-sched` tracking binary: deterministic synthetic fleets and
//! the warm-vs-cold rescheduling scenario (schedule, fail a fraction of
//! the fleet, reschedule the failed phones' residual work on the
//! survivors).

use cwc_core::{SchedProblem, Schedule};
use cwc_types::{CpuSpec, JobId, JobSpec, KiloBytes, MsPerKb, PhoneId, PhoneInfo, RadioTech};
use std::collections::BTreeMap;

/// Deterministic synthetic instance with heterogeneous clocks and
/// bandwidths, every third job atomic — the same builder the Criterion
/// scheduler bench uses.
pub fn synth_instance(num_phones: usize, num_jobs: usize) -> SchedProblem {
    let phones: Vec<PhoneInfo> = (0..num_phones)
        .map(|i| {
            PhoneInfo::new(
                PhoneId::from_index(i),
                CpuSpec::new(806 + (i as u32 * 97) % 700, 2),
                RadioTech::Wifi80211g,
                MsPerKb(1.0 + (i as f64 * 7.3) % 69.0),
            )
        })
        .collect();
    let jobs: Vec<JobSpec> = (0..num_jobs)
        .map(|j| {
            let id = JobId::from_index(j);
            let size = KiloBytes(200 + (j as u64 * 131) % 1_800);
            if j % 3 == 2 {
                JobSpec::atomic(id, "photoblur", KiloBytes(40), size)
            } else {
                JobSpec::breakable(id, "primecount", KiloBytes(30), size)
            }
        })
        .collect();
    let c = clock_scaled_costs(&phones, jobs.len());
    SchedProblem::new(phones, jobs, c).expect("synthetic instance is well-formed")
}

/// The bench's cost model: 150 ms/KB on the 806 MHz reference, scaled by
/// clock.
fn clock_scaled_costs(phones: &[PhoneInfo], num_jobs: usize) -> Vec<Vec<f64>> {
    phones
        .iter()
        .map(|p| {
            (0..num_jobs)
                .map(|_| 150.0 * 806.0 / f64::from(p.cpu.clock_mhz))
                .collect()
        })
        .collect()
}

/// Builds the rescheduling instant that follows a fleet failure: every
/// `fail_every`-th phone of `problem` goes offline and its scheduled
/// assignments become residual jobs (atomic residuals stay atomic) to be
/// re-packed across the surviving phones. Mirrors the coordinator
/// kernel's residual-round construction, minus progress bookkeeping.
///
/// Returns `None` when the failed phones held no work (nothing to
/// reschedule).
pub fn residual_after_failures(
    problem: &SchedProblem,
    schedule: &Schedule,
    fail_every: usize,
) -> Option<SchedProblem> {
    assert!(fail_every >= 2, "must keep survivors");
    let failed = |idx: usize| idx % fail_every == 0;
    let by_id: BTreeMap<JobId, &JobSpec> = problem.jobs.iter().map(|j| (j.id, j)).collect();

    let survivors: Vec<PhoneInfo> = problem
        .phones
        .iter()
        .enumerate()
        .filter(|(i, _)| !failed(*i))
        .map(|(_, p)| p.clone())
        .collect();
    let mut residuals = Vec::new();
    for (i, queue) in schedule.per_phone.iter().enumerate() {
        if !failed(i) {
            continue;
        }
        for a in queue {
            let spec = by_id
                .get(&a.job)
                .expect("scheduled job exists in the problem");
            let id = JobId::from_index(residuals.len());
            // A partially-transferred chunk must restart whole, so every
            // residual of an atomic job stays atomic.
            residuals.push(if spec.kind.is_atomic() {
                JobSpec::atomic(id, spec.program.as_str(), spec.exe_kb, a.input_kb)
            } else {
                JobSpec::breakable(id, spec.program.as_str(), spec.exe_kb, a.input_kb)
            });
        }
    }
    if residuals.is_empty() || survivors.is_empty() {
        return None;
    }
    let c = clock_scaled_costs(&survivors, residuals.len());
    Some(SchedProblem::new(survivors, residuals, c).expect("residual instance is well-formed"))
}
