//! Criterion benches for the simulated central server: full experiment
//! runs and the FCFS feasibility dispatcher.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cwc_server::feasibility::fcfs_dispatch;
use cwc_server::workload::WorkloadBuilder;
use cwc_server::{testbed_fleet, Engine, EngineConfig, FailureInjection};
use cwc_types::{KiloBytes, Micros, PhoneId};
use std::hint::black_box;

fn bench_engine_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine-run");
    group.sample_size(10);
    for jobs in [30usize, 150] {
        let workload = WorkloadBuilder::new(1)
            .breakable(jobs * 2 / 3, "primecount", 30, 200, 2_000)
            .atomic(jobs / 3, "photoblur", 40, 100, 800)
            .build();
        group.bench_with_input(
            BenchmarkId::from_parameter(jobs),
            &workload,
            |b, workload| {
                b.iter(|| {
                    let out = Engine::new(
                        testbed_fleet(1),
                        workload.clone(),
                        vec![],
                        EngineConfig::default(),
                    )
                    .unwrap()
                    .run()
                    .unwrap();
                    black_box(out.makespan);
                });
            },
        );
    }
    group.finish();
}

fn bench_engine_with_failures(c: &mut Criterion) {
    let workload = WorkloadBuilder::new(2)
        .breakable(60, "primecount", 30, 300, 1_500)
        .build();
    let injections: Vec<FailureInjection> = (0..3u32)
        .map(|i| FailureInjection {
            at: Micros::from_secs(30 + u64::from(i) * 40),
            phone: PhoneId(i * 5),
            offline: i == 1,
            replug_at: None,
        })
        .collect();
    c.bench_function("engine-run-with-failures", |b| {
        b.iter(|| {
            let out = Engine::new(
                testbed_fleet(2),
                workload.clone(),
                injections.clone(),
                EngineConfig::default(),
            )
            .unwrap()
            .run()
            .unwrap();
            black_box(out.rescheduled_items);
        });
    });
}

fn bench_fcfs(c: &mut Criterion) {
    let files: Vec<KiloBytes> = (0..600).map(|k| KiloBytes(40 + (k % 11) * 10)).collect();
    c.bench_function("fcfs-600-files", |b| {
        b.iter(|| {
            let mut phones = testbed_fleet(3);
            phones.truncate(6);
            black_box(fcfs_dispatch(&mut phones, &files, 2.0));
        });
    });
}

criterion_group!(
    benches,
    bench_engine_run,
    bench_engine_with_failures,
    bench_fcfs
);
criterion_main!(benches);
