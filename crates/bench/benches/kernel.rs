//! Criterion benches for the sans-IO coordinator kernel: closed-loop
//! drains of a whole batch through [`Kernel::step`] with no I/O, clocks,
//! or threads in the loop — this is the pure control-plane cost both the
//! sim engine and the live TCP driver pay per batch.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cwc_core::SchedulerKind;
use cwc_server::coord::{
    CoordCommand, CoordEvent, DriverStyle, Kernel, KernelConfig, ReschedulePolicy,
};
use cwc_server::engine::paper_baselines;
use cwc_server::workload::WorkloadBuilder;
use cwc_types::{CpuSpec, JobSpec, Micros, MsPerKb, PhoneId, PhoneInfo, RadioTech};
use std::collections::VecDeque;
use std::hint::black_box;

const SLOTS: usize = 18;

fn config(jobs: Vec<JobSpec>) -> KernelConfig {
    KernelConfig {
        scheduler: SchedulerKind::Greedy,
        jobs,
        baselines: paper_baselines().into_iter().collect(),
        keepalive_period: Micros::from_secs(5),
        tolerated_misses: 3,
        reschedule: ReschedulePolicy::RoundRobin,
        stall_timeout: None,
        breaker: None,
        reliability: None,
        slo: Default::default(),
        replication: None,
        speculation: None,
        bandwidth_blind: false,
        style: DriverStyle::Live,
        obs: Default::default(),
    }
}

fn probe_info(slot: usize) -> PhoneInfo {
    PhoneInfo::new(
        PhoneId(slot as u32),
        CpuSpec::new(600 + 100 * (slot as u32 % 7), 2),
        RadioTech::ThreeG,
        MsPerKb(6.0 + slot as f64 * 0.5),
    )
    .with_ram_kb(262_144)
}

/// Drives one kernel until the batch drains: every `ShipInput` is
/// answered with a `ReportOk` (the first `fail` of them with a transient
/// `ReportFailed`, exercising the migration path). Returns the number of
/// commands emitted so the optimizer can't discard the run.
fn drain(jobs: &[JobSpec], fail: usize) -> usize {
    let mut kernel = Kernel::new(config(jobs.to_vec())).expect("kernel");
    let mut queue: VecDeque<(Micros, CoordEvent)> = (0..SLOTS)
        .map(|slot| {
            (
                Micros::ZERO,
                CoordEvent::Probe {
                    slot,
                    info: probe_info(slot),
                },
            )
        })
        .collect();
    queue.push_back((Micros::ZERO, CoordEvent::Start));
    let mut clock = 0u64;
    let mut fails_left = fail;
    let mut commands = 0usize;
    while let Some((now, ev)) = queue.pop_front() {
        for cmd in kernel.step(now, ev) {
            commands += 1;
            if let CoordCommand::ShipInput {
                slot,
                seq,
                job,
                len_kb,
                ..
            } = cmd
            {
                clock += 1_000_000;
                let at = Micros(clock);
                if fails_left > 0 {
                    fails_left -= 1;
                    queue.push_back((
                        at,
                        CoordEvent::ReportFailed {
                            slot,
                            seq,
                            job,
                            processed_kb: 0,
                            checkpoint: None,
                        },
                    ));
                } else {
                    queue.push_back((
                        at,
                        CoordEvent::ReportOk {
                            slot,
                            seq,
                            job,
                            exec_ms: len_kb as f64 * 1.2,
                        },
                    ));
                }
            }
        }
    }
    assert!(kernel.finished(), "bench batch did not drain");
    commands
}

fn bench_kernel_drain(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel-drain");
    for jobs in [30usize, 150] {
        let workload = WorkloadBuilder::new(1)
            .breakable(jobs * 2 / 3, "primecount", 30, 200, 2_000)
            .atomic(jobs / 3, "photoblur", 40, 100, 800)
            .build();
        group.bench_with_input(
            BenchmarkId::from_parameter(jobs),
            &workload,
            |b, workload| {
                b.iter(|| black_box(drain(workload, 0)));
            },
        );
    }
    group.finish();
}

fn bench_kernel_drain_with_failures(c: &mut Criterion) {
    let workload = WorkloadBuilder::new(2)
        .breakable(60, "primecount", 30, 300, 1_500)
        .build();
    c.bench_function("kernel-drain-with-failures", |b| {
        b.iter(|| black_box(drain(&workload, 10)));
    });
}

criterion_group!(
    benches,
    bench_kernel_drain,
    bench_kernel_drain_with_failures
);
criterion_main!(benches);
