//! Criterion benches for the wire protocol: frame encode/decode and
//! streaming reassembly throughput.

use bytes::{Bytes, BytesMut};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use cwc_net::{Frame, FrameCodec};
use cwc_types::{JobId, PhoneId, RadioTech};
use std::hint::black_box;

fn sample_frames() -> Vec<Frame> {
    vec![
        Frame::Register {
            phone: PhoneId(3),
            clock_mhz: 1200,
            cores: 2,
            radio: RadioTech::ThreeG,
            ram_kb: 1 << 20,
        },
        Frame::KeepAlive { seq: 12345 },
        Frame::TaskComplete {
            job: JobId(17),
            seq: 1,
            exec_ms: 887,
            result: Bytes::from(vec![7u8; 64]),
        },
        Frame::ShipInput {
            job: JobId(17),
            seq: 2,
            offset_kb: 512,
            len_kb: 256,
            resume_from: None,
            trace_id: 17,
            span_id: 2,
            parent_span: 0,
            replica: false,
            data: Bytes::from(vec![1u8; 256 * 1024]),
        },
    ]
}

fn bench_encode(c: &mut Criterion) {
    let frames = sample_frames();
    let mut group = c.benchmark_group("frame-encode");
    for (i, f) in frames.iter().enumerate() {
        let mut probe = BytesMut::new();
        f.encode(&mut probe);
        group.throughput(Throughput::Bytes(probe.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(i), f, |b, f| {
            b.iter(|| {
                let mut buf = BytesMut::with_capacity(512 * 1024);
                f.encode(&mut buf);
                black_box(buf);
            });
        });
    }
    group.finish();
}

fn bench_decode_stream(c: &mut Criterion) {
    // A realistic mixed stream, decoded in 1400-byte "MTU" slices.
    let mut wire = BytesMut::new();
    for _ in 0..64 {
        for f in sample_frames() {
            f.encode(&mut wire);
        }
    }
    let wire = wire.freeze();
    let mut group = c.benchmark_group("frame-decode");
    group.throughput(Throughput::Bytes(wire.len() as u64));
    group.bench_function("mtu-chunked", |b| {
        b.iter(|| {
            let mut codec = FrameCodec::new();
            let mut n = 0usize;
            for chunk in wire.chunks(1400) {
                codec.extend(chunk);
                while let Some(f) = codec.next_frame().unwrap() {
                    n += 1;
                    black_box(&f);
                }
            }
            assert_eq!(n, 64 * 4);
        });
    });
    group.finish();
}

criterion_group!(benches, bench_encode, bench_decode_stream);
criterion_main!(benches);
