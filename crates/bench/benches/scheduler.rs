//! Criterion benches for the scheduling algorithms — the cost the paper's
//! "lightweight central server" claim rests on (§3.2: a small EC2
//! instance must schedule the fleet comfortably).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cwc_bench::sched_perf::{residual_after_failures, synth_instance as instance};
use cwc_core::{GreedyScheduler, Scheduler, SchedulerKind};
use std::hint::black_box;

fn bench_schedulers(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule");
    // The 100x1000 greedy instance runs in the tens of milliseconds;
    // a small sample keeps the full suite pleasant.
    group.sample_size(20);
    // The paper's shape (18 phones, 150 jobs) plus larger fleets.
    for &(p, j) in &[(18usize, 150usize), (50, 500), (100, 1_000)] {
        let problem = instance(p, j);
        for kind in SchedulerKind::ALL {
            group.bench_with_input(
                BenchmarkId::new(kind.label(), format!("{p}x{j}")),
                &problem,
                |b, problem| {
                    b.iter(|| Scheduler::run(kind, black_box(problem)).unwrap());
                },
            );
        }
    }
    group.finish();
}

fn bench_fleet_scale(c: &mut Criterion) {
    // The fleet-scale target: 500 phones × 5 000 jobs, greedy only (the
    // baselines are linear and uninteresting at this size).
    let mut group = c.benchmark_group("schedule-large");
    group.sample_size(10);
    let problem = instance(500, 5_000);
    group.bench_with_input(
        BenchmarkId::new("greedy", "500x5000"),
        &problem,
        |b, problem| {
            b.iter(|| Scheduler::run(SchedulerKind::Greedy, black_box(problem)).unwrap());
        },
    );
    group.finish();
}

fn bench_warm_vs_cold_reschedule(c: &mut Criterion) {
    // The failure-recovery path: schedule 100×1000, fail 10% of phones,
    // reschedule their residual work over the survivors — cold (fresh
    // worst-bin bound) versus warm-started from the initial instant's
    // converged window.
    let sched = GreedyScheduler::default();
    let problem = instance(100, 1_000);
    let (schedule, _, warm) = sched
        .schedule_warm_with_stats(&problem, None)
        .expect("initial schedule");
    let residual =
        residual_after_failures(&problem, &schedule, 10).expect("failed phones held work");

    let mut group = c.benchmark_group("reschedule");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("cold", "100x1000"), &residual, |b, r| {
        b.iter(|| sched.schedule_warm_with_stats(black_box(r), None).unwrap());
    });
    group.bench_with_input(BenchmarkId::new("warm", "100x1000"), &residual, |b, r| {
        b.iter(|| {
            sched
                .schedule_warm_with_stats(black_box(r), Some(warm))
                .unwrap()
        });
    });
    group.finish();
}

fn bench_binary_search_tolerance(c: &mut Criterion) {
    // Ablation: how much the capacity search costs at tighter tolerances.
    let problem = instance(18, 150);
    let mut group = c.benchmark_group("greedy-tolerance");
    group.sample_size(20);
    for tol in [100.0, 10.0, 1.0, 0.1] {
        group.bench_with_input(BenchmarkId::from_parameter(tol), &tol, |b, &tol| {
            let sched = GreedyScheduler { tolerance_ms: tol };
            b.iter(|| sched.schedule(black_box(&problem)).unwrap());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_schedulers,
    bench_fleet_scale,
    bench_warm_vs_cold_reschedule,
    bench_binary_search_tolerance
);
criterion_main!(benches);
