//! Criterion benches for the scheduling algorithms — the cost the paper's
//! "lightweight central server" claim rests on (§3.2: a small EC2
//! instance must schedule the fleet comfortably).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cwc_core::{GreedyScheduler, SchedProblem, Scheduler, SchedulerKind};
use cwc_types::{CpuSpec, JobId, JobSpec, KiloBytes, MsPerKb, PhoneId, PhoneInfo, RadioTech};
use std::hint::black_box;

fn instance(num_phones: usize, num_jobs: usize) -> SchedProblem {
    let phones: Vec<PhoneInfo> = (0..num_phones)
        .map(|i| {
            PhoneInfo::new(
                PhoneId::from_index(i),
                CpuSpec::new(806 + (i as u32 * 97) % 700, 2),
                RadioTech::Wifi80211g,
                MsPerKb(1.0 + (i as f64 * 7.3) % 69.0),
            )
        })
        .collect();
    let jobs: Vec<JobSpec> = (0..num_jobs)
        .map(|j| {
            let id = JobId::from_index(j);
            let size = KiloBytes(200 + (j as u64 * 131) % 1_800);
            if j % 3 == 2 {
                JobSpec::atomic(id, "photoblur", KiloBytes(40), size)
            } else {
                JobSpec::breakable(id, "primecount", KiloBytes(30), size)
            }
        })
        .collect();
    let c = phones
        .iter()
        .map(|p| {
            jobs.iter()
                .map(|_| 150.0 * 806.0 / f64::from(p.cpu.clock_mhz))
                .collect()
        })
        .collect();
    SchedProblem::new(phones, jobs, c).unwrap()
}

fn bench_schedulers(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule");
    // The 100x1000 greedy instance runs in the tens of milliseconds;
    // a small sample keeps the full suite pleasant.
    group.sample_size(20);
    // The paper's shape (18 phones, 150 jobs) plus larger fleets.
    for &(p, j) in &[(18usize, 150usize), (50, 500), (100, 1_000)] {
        let problem = instance(p, j);
        for kind in SchedulerKind::ALL {
            group.bench_with_input(
                BenchmarkId::new(kind.label(), format!("{p}x{j}")),
                &problem,
                |b, problem| {
                    b.iter(|| Scheduler::run(kind, black_box(problem)).unwrap());
                },
            );
        }
    }
    group.finish();
}

fn bench_binary_search_tolerance(c: &mut Criterion) {
    // Ablation: how much the capacity search costs at tighter tolerances.
    let problem = instance(18, 150);
    let mut group = c.benchmark_group("greedy-tolerance");
    group.sample_size(20);
    for tol in [100.0, 10.0, 1.0, 0.1] {
        group.bench_with_input(BenchmarkId::from_parameter(tol), &tol, |b, &tol| {
            let sched = GreedyScheduler { tolerance_ms: tol };
            b.iter(|| sched.schedule(black_box(&problem)).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_schedulers, bench_binary_search_tolerance);
criterion_main!(benches);
