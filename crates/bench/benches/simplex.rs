//! Criterion benches for the simplex substrate — the per-configuration
//! cost of the Fig. 13 sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cwc_core::relaxation::relaxed_lower_bound_full;
use cwc_core::relaxed_lower_bound;
use cwc_core::SchedProblem;
use cwc_lp::{LinearProgram, Relation};
use cwc_types::{CpuSpec, JobId, JobSpec, KiloBytes, MsPerKb, PhoneId, PhoneInfo, RadioTech};
use std::hint::black_box;

fn sched_instance(num_phones: usize, num_jobs: usize) -> SchedProblem {
    let phones: Vec<PhoneInfo> = (0..num_phones)
        .map(|i| {
            PhoneInfo::new(
                PhoneId::from_index(i),
                CpuSpec::new(806 + (i as u32 * 53) % 700, 2),
                RadioTech::Wifi80211g,
                MsPerKb(1.0 + (i as f64 * 11.7) % 69.0),
            )
        })
        .collect();
    let jobs: Vec<JobSpec> = (0..num_jobs)
        .map(|j| {
            JobSpec::breakable(
                JobId::from_index(j),
                "p",
                KiloBytes(30),
                KiloBytes(200 + (j as u64 * 173) % 1_800),
            )
        })
        .collect();
    let c = phones
        .iter()
        .map(|p| {
            jobs.iter()
                .map(|_| 150.0 * 806.0 / f64::from(p.cpu.clock_mhz))
                .collect()
        })
        .collect();
    SchedProblem::new(phones, jobs, c).unwrap()
}

fn bench_relaxation(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp-relaxation");
    group.sample_size(10);
    for &(p, j) in &[(6usize, 50usize), (18, 150), (18, 300)] {
        let problem = sched_instance(p, j);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{p}x{j}")),
            &problem,
            |b, problem| {
                b.iter(|| relaxed_lower_bound(black_box(problem)).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_dense_simplex(c: &mut Criterion) {
    // A generic LP: transportation-like structure.
    let build = |n: usize| {
        let mut lp = LinearProgram::minimize((0..n * n).map(|k| 1.0 + (k % 7) as f64).collect());
        for i in 0..n {
            lp.constrain(
                (0..n).map(|j| (i * n + j, 1.0)).collect(),
                Relation::Eq,
                10.0,
            );
        }
        for j in 0..n {
            lp.constrain(
                (0..n).map(|i| (i * n + j, 1.0)).collect(),
                Relation::Le,
                15.0,
            );
        }
        lp
    };
    let mut group = c.benchmark_group("simplex-transportation");
    for n in [5usize, 10, 20] {
        let lp = build(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &lp, |b, lp| {
            b.iter(|| lp.solve().unwrap());
        });
    }
    group.finish();
}

fn bench_formulations(c: &mut Criterion) {
    // Ablation: the paper's verbatim relaxed formulation (T, l_ij, u_ij,
    // linking rows) vs the substituted reduced LP this repo sweeps with.
    let problem = sched_instance(4, 12);
    let mut group = c.benchmark_group("lp-formulation");
    group.sample_size(20);
    group.bench_function("reduced", |b| {
        b.iter(|| relaxed_lower_bound(black_box(&problem)).unwrap());
    });
    group.bench_function("full", |b| {
        b.iter(|| relaxed_lower_bound_full(black_box(&problem)).unwrap());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_relaxation,
    bench_dense_simplex,
    bench_formulations
);
criterion_main!(benches);
