//! # cwc-lp — a dense two-phase simplex solver
//!
//! The CWC paper benchmarks its greedy scheduler against a *lower bound*
//! obtained from an LP relaxation of the makespan scheduling program
//! (§6, Fig. 13). The allowed offline crate set contains no LP solver, so
//! this crate implements one from scratch: a textbook two-phase primal
//! simplex over a dense tableau.
//!
//! Scope and non-goals: the relaxed SCH instances are small (hundreds of
//! rows, a few thousand columns), so a dense tableau with Dantzig pricing
//! (plus Bland's rule as an anti-cycling fallback) is entirely adequate.
//! There is no presolve, no sparsity exploitation, and no revised simplex —
//! robustness and reviewability over raw speed.
//!
//! ## Example
//!
//! Maximize `3x + 2y` subject to `x + y ≤ 4`, `x ≤ 2` (expressed as
//! minimizing the negated objective):
//!
//! ```
//! use cwc_lp::{LinearProgram, Relation, LpOutcome};
//!
//! let mut lp = LinearProgram::minimize(vec![-3.0, -2.0]);
//! lp.constrain(vec![(0, 1.0), (1, 1.0)], Relation::Le, 4.0);
//! lp.constrain(vec![(0, 1.0)], Relation::Le, 2.0);
//!
//! let LpOutcome::Optimal(sol) = lp.solve().unwrap() else { panic!() };
//! assert!((sol.objective - (-10.0)).abs() < 1e-9); // x=2, y=2
//! assert!((sol.x[0] - 2.0).abs() < 1e-9);
//! assert!((sol.x[1] - 2.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod problem;
mod simplex;

pub use problem::{LinearProgram, LpOutcome, Relation, Solution};
