//! Two-phase primal simplex over a dense tableau.
//!
//! Phase 1 minimizes the sum of artificial variables to find a basic
//! feasible point; phase 2 minimizes the real objective from there.
//! Pricing is Dantzig's rule (most negative reduced cost) with a permanent
//! switch to Bland's rule if the objective stalls, which guarantees
//! termination on degenerate instances.

use crate::problem::{Constraint, LinearProgram, LpOutcome, Relation, Solution};

/// Pivot tolerance: entries below this are treated as zero.
const EPS: f64 = 1e-9;
/// Phase-1 objective above this is declared infeasible.
const FEAS_TOL: f64 = 1e-7;
/// Iterations without improvement before switching to Bland's rule.
const STALL_LIMIT: usize = 64;
/// Hard iteration cap (per phase) — exceeding it is an internal error.
const MAX_ITERS: usize = 200_000;

/// Dense simplex tableau.
///
/// Layout: `rows` constraint rows followed by one objective row; each row
/// has `cols` structural/slack/artificial columns followed by the RHS.
struct Tableau {
    rows: usize,
    cols: usize,
    /// Row-major `(rows + 1) x (cols + 1)`.
    a: Vec<f64>,
    /// Basic variable (column index) of each constraint row.
    basis: Vec<usize>,
}

impl Tableau {
    #[inline]
    fn at(&self, r: usize, c: usize) -> f64 {
        self.a[r * (self.cols + 1) + c]
    }

    #[inline]
    fn at_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        &mut self.a[r * (self.cols + 1) + c]
    }

    #[inline]
    fn rhs(&self, r: usize) -> f64 {
        self.at(r, self.cols)
    }

    fn objective_value(&self) -> f64 {
        // The z-row stores the negated objective in the RHS cell.
        -self.rhs(self.rows)
    }

    /// Gaussian pivot on (`row`, `col`): `col` enters the basis at `row`.
    fn pivot(&mut self, row: usize, col: usize) {
        let width = self.cols + 1;
        let pivot = self.at(row, col);
        debug_assert!(pivot.abs() > EPS, "pivot too small: {pivot}");
        let inv = 1.0 / pivot;
        let row_start = row * width;
        for c in 0..width {
            self.a[row_start + c] *= inv;
        }
        // Exact one in the pivot cell despite rounding.
        self.a[row_start + col] = 1.0;

        for r in 0..=self.rows {
            if r == row {
                continue;
            }
            let factor = self.at(r, col);
            if factor.abs() <= EPS {
                *self.at_mut(r, col) = 0.0;
                continue;
            }
            let r_start = r * width;
            for c in 0..width {
                self.a[r_start + c] -= factor * self.a[row_start + c];
            }
            self.a[r_start + col] = 0.0;
        }
        self.basis[row] = col;
    }

    /// Entering column: most negative reduced cost (Dantzig) or first
    /// negative (Bland). `None` means optimal.
    fn entering(&self, bland: bool, allowed_cols: usize) -> Option<usize> {
        let z = self.rows;
        if bland {
            (0..allowed_cols).find(|&c| self.at(z, c) < -EPS)
        } else {
            let mut best: Option<(usize, f64)> = None;
            for c in 0..allowed_cols {
                let rc = self.at(z, c);
                if rc < -EPS && best.is_none_or(|(_, b)| rc < b) {
                    best = Some((c, rc));
                }
            }
            best.map(|(c, _)| c)
        }
    }

    /// Leaving row via the minimum ratio test; ties break on the smallest
    /// basic-variable index (lexicographic-ish anti-cycling support).
    /// `None` means the column is unbounded.
    fn leaving(&self, col: usize) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for r in 0..self.rows {
            let a = self.at(r, col);
            if a > EPS {
                let ratio = self.rhs(r) / a;
                match best {
                    None => best = Some((r, ratio)),
                    Some((br, bratio)) => {
                        if ratio < bratio - EPS
                            || ((ratio - bratio).abs() <= EPS && self.basis[r] < self.basis[br])
                        {
                            best = Some((r, ratio));
                        }
                    }
                }
            }
        }
        best.map(|(r, _)| r)
    }

    /// Runs simplex iterations until optimality/unboundedness.
    /// `allowed_cols` restricts pricing (used to exclude artificials in
    /// phase 2 without physically removing columns).
    fn optimize(&mut self, allowed_cols: usize) -> Result<OptimizeEnd, String> {
        let mut bland = false;
        let mut stall = 0usize;
        let mut last_obj = self.objective_value();
        let mut iters = 0usize;
        loop {
            let Some(col) = self.entering(bland, allowed_cols) else {
                return Ok(OptimizeEnd::Optimal { iters });
            };
            let Some(row) = self.leaving(col) else {
                return Ok(OptimizeEnd::Unbounded);
            };
            self.pivot(row, col);
            iters += 1;
            if iters > MAX_ITERS {
                return Err(format!("simplex exceeded {MAX_ITERS} iterations"));
            }
            let obj = self.objective_value();
            if obj < last_obj - EPS {
                last_obj = obj;
                stall = 0;
            } else {
                stall += 1;
                if stall > STALL_LIMIT {
                    bland = true;
                }
            }
        }
    }
}

enum OptimizeEnd {
    Optimal { iters: usize },
    Unbounded,
}

/// A constraint row normalized to a non-negative bound, with dense
/// structural coefficients.
struct NormRow {
    coeffs: Vec<f64>,
    relation: Relation,
    bound: f64,
}

fn normalize(c: &Constraint, num_vars: usize) -> NormRow {
    let mut coeffs = vec![0.0; num_vars];
    for &(v, coef) in &c.terms {
        coeffs[v] += coef;
    }
    let (mut relation, mut bound) = (c.relation, c.bound);
    if bound < 0.0 {
        for x in &mut coeffs {
            *x = -*x;
        }
        bound = -bound;
        relation = match relation {
            Relation::Le => Relation::Ge,
            Relation::Ge => Relation::Le,
            Relation::Eq => Relation::Eq,
        };
    }
    NormRow {
        coeffs,
        relation,
        bound,
    }
}

/// Solves `lp` with the two-phase method.
pub(crate) fn solve(lp: &LinearProgram) -> Result<LpOutcome, String> {
    let n = lp.num_vars();
    let rows: Vec<NormRow> = lp.constraints.iter().map(|c| normalize(c, n)).collect();
    let m = rows.len();

    // Column layout: [0, n) structural, then one slack/surplus per Le/Ge
    // row, then one artificial per Ge/Eq row.
    let num_slack = rows
        .iter()
        .filter(|r| matches!(r.relation, Relation::Le | Relation::Ge))
        .count();
    let num_art = rows
        .iter()
        .filter(|r| matches!(r.relation, Relation::Ge | Relation::Eq))
        .count();
    let cols = n + num_slack + num_art;
    let width = cols + 1;

    let mut t = Tableau {
        rows: m,
        cols,
        a: vec![0.0; (m + 1) * width],
        basis: vec![usize::MAX; m],
    };

    let mut slack_cursor = n;
    let mut art_cursor = n + num_slack;
    let mut artificial_cols: Vec<usize> = Vec::with_capacity(num_art);

    for (r, row) in rows.iter().enumerate() {
        for (v, &coef) in row.coeffs.iter().enumerate() {
            *t.at_mut(r, v) = coef;
        }
        *t.at_mut(r, cols) = row.bound;
        match row.relation {
            Relation::Le => {
                *t.at_mut(r, slack_cursor) = 1.0;
                t.basis[r] = slack_cursor;
                slack_cursor += 1;
            }
            Relation::Ge => {
                *t.at_mut(r, slack_cursor) = -1.0;
                slack_cursor += 1;
                *t.at_mut(r, art_cursor) = 1.0;
                t.basis[r] = art_cursor;
                artificial_cols.push(art_cursor);
                art_cursor += 1;
            }
            Relation::Eq => {
                *t.at_mut(r, art_cursor) = 1.0;
                t.basis[r] = art_cursor;
                artificial_cols.push(art_cursor);
                art_cursor += 1;
            }
        }
    }

    let mut total_iters = 0usize;

    // ---- Phase 1: minimize the sum of artificials. ----
    if num_art > 0 {
        // z-row = Σ (rows with artificial basics), negated into reduced
        // costs: start with cost 1 on artificials, then eliminate basic
        // artificials by subtracting their rows.
        for &c in &artificial_cols {
            *t.at_mut(m, c) = 1.0;
        }
        for r in 0..m {
            if artificial_cols.contains(&t.basis[r]) {
                let r_start = r * width;
                let z_start = m * width;
                for c in 0..width {
                    t.a[z_start + c] -= t.a[r_start + c];
                }
            }
        }
        match t.optimize(cols)? {
            OptimizeEnd::Optimal { iters } => total_iters += iters,
            OptimizeEnd::Unbounded => {
                return Err("phase-1 objective unbounded (internal bug)".into())
            }
        }
        if t.objective_value() > FEAS_TOL {
            return Ok(LpOutcome::Infeasible);
        }
        // Drive any zero-valued artificial out of the basis so phase 2
        // cannot reactivate it.
        for r in 0..m {
            if artificial_cols.contains(&t.basis[r]) {
                let replacement = (0..n + num_slack).find(|&c| t.at(r, c).abs() > EPS);
                if let Some(c) = replacement {
                    t.pivot(r, c);
                }
                // If no replacement exists the row is redundant (all-zero);
                // the artificial stays basic at value zero, and excluding
                // artificial columns from phase-2 pricing keeps it there.
            }
        }
    }

    // ---- Phase 2: real objective. ----
    // Reset the z-row to the real reduced costs.
    {
        let z_start = m * width;
        for cell in &mut t.a[z_start..z_start + width] {
            *cell = 0.0;
        }
        for (v, &c) in lp.objective.iter().enumerate() {
            *t.at_mut(m, v) = c;
        }
        // Eliminate basic columns from the z-row.
        for r in 0..m {
            let b = t.basis[r];
            let factor = t.at(m, b);
            if factor.abs() > EPS {
                let r_start = r * width;
                let z_start = m * width;
                for c in 0..width {
                    t.a[z_start + c] -= factor * t.a[r_start + c];
                }
                t.a[z_start + b] = 0.0;
            }
        }
    }

    // Exclude artificial columns from pricing in phase 2.
    let allowed = n + num_slack;
    match t.optimize(allowed)? {
        OptimizeEnd::Optimal { iters } => total_iters += iters,
        OptimizeEnd::Unbounded => return Ok(LpOutcome::Unbounded),
    }

    let mut x = vec![0.0; n];
    for r in 0..m {
        let b = t.basis[r];
        if b < n {
            x[b] = t.rhs(r).max(0.0);
        }
    }
    Ok(LpOutcome::Optimal(Solution {
        objective: lp.objective_at(&x),
        x,
        iterations: total_iters,
    }))
}

#[cfg(test)]
mod tests {
    use crate::{LinearProgram, LpOutcome, Relation};

    fn optimal(lp: &LinearProgram) -> crate::Solution {
        match lp.solve().expect("solver ok") {
            LpOutcome::Optimal(s) => s,
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn simple_maximization() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → x=2, y=6, obj=36.
        let mut lp = LinearProgram::minimize(vec![-3.0, -5.0]);
        lp.constrain(vec![(0, 1.0)], Relation::Le, 4.0);
        lp.constrain(vec![(1, 2.0)], Relation::Le, 12.0);
        lp.constrain(vec![(0, 3.0), (1, 2.0)], Relation::Le, 18.0);
        let s = optimal(&lp);
        assert!((s.objective + 36.0).abs() < 1e-7, "obj {}", s.objective);
        assert!((s.x[0] - 2.0).abs() < 1e-7);
        assert!((s.x[1] - 6.0).abs() < 1e-7);
    }

    #[test]
    fn equality_constraints_need_phase1() {
        // min x + y s.t. x + y = 10, x - y = 2 → x=6, y=4, obj=10.
        let mut lp = LinearProgram::minimize(vec![1.0, 1.0]);
        lp.constrain(vec![(0, 1.0), (1, 1.0)], Relation::Eq, 10.0);
        lp.constrain(vec![(0, 1.0), (1, -1.0)], Relation::Eq, 2.0);
        let s = optimal(&lp);
        assert!((s.x[0] - 6.0).abs() < 1e-7);
        assert!((s.x[1] - 4.0).abs() < 1e-7);
        assert!((s.objective - 10.0).abs() < 1e-7);
    }

    #[test]
    fn ge_constraints() {
        // min 2x + 3y s.t. x + y ≥ 4, x ≥ 1 → x=4, y=0? check: obj(4,0)=8,
        // obj(1,3)=11 → optimum x=4.
        let mut lp = LinearProgram::minimize(vec![2.0, 3.0]);
        lp.constrain(vec![(0, 1.0), (1, 1.0)], Relation::Ge, 4.0);
        lp.constrain(vec![(0, 1.0)], Relation::Ge, 1.0);
        let s = optimal(&lp);
        assert!((s.objective - 8.0).abs() < 1e-7, "obj {}", s.objective);
    }

    #[test]
    fn detects_infeasible() {
        let mut lp = LinearProgram::minimize(vec![1.0]);
        lp.constrain(vec![(0, 1.0)], Relation::Le, 1.0);
        lp.constrain(vec![(0, 1.0)], Relation::Ge, 2.0);
        assert!(matches!(lp.solve().unwrap(), LpOutcome::Infeasible));
    }

    #[test]
    fn detects_unbounded() {
        // min -x s.t. x ≥ 1 → unbounded below.
        let mut lp = LinearProgram::minimize(vec![-1.0]);
        lp.constrain(vec![(0, 1.0)], Relation::Ge, 1.0);
        assert!(matches!(lp.solve().unwrap(), LpOutcome::Unbounded));
    }

    #[test]
    fn negative_bounds_are_normalized() {
        // x ≤ -? flipped: -x ≥ 2 means x ≤ -2 — infeasible with x ≥ 0...
        // use: -x - y ≤ -3 ⇔ x + y ≥ 3.
        let mut lp = LinearProgram::minimize(vec![1.0, 2.0]);
        lp.constrain(vec![(0, -1.0), (1, -1.0)], Relation::Le, -3.0);
        let s = optimal(&lp);
        assert!((s.objective - 3.0).abs() < 1e-7); // all weight on x.
        assert!((s.x[0] - 3.0).abs() < 1e-7);
    }

    #[test]
    fn degenerate_instance_terminates() {
        // Classic degenerate corner: multiple constraints active at origin.
        let mut lp = LinearProgram::minimize(vec![-0.75, 150.0, -0.02, 6.0]);
        lp.constrain(
            vec![(0, 0.25), (1, -60.0), (2, -0.04), (3, 9.0)],
            Relation::Le,
            0.0,
        );
        lp.constrain(
            vec![(0, 0.5), (1, -90.0), (2, -0.02), (3, 3.0)],
            Relation::Le,
            0.0,
        );
        lp.constrain(vec![(2, 1.0)], Relation::Le, 1.0);
        // Beale's cycling example — must terminate via Bland fallback.
        let s = optimal(&lp);
        assert!((s.objective + 0.05).abs() < 1e-7, "obj {}", s.objective);
    }

    #[test]
    fn duplicate_terms_are_summed() {
        // x listed twice: coefficient 1 + 1 = 2 → 2x ≤ 4 → x ≤ 2.
        let mut lp = LinearProgram::minimize(vec![-1.0]);
        lp.constrain(vec![(0, 1.0), (0, 1.0)], Relation::Le, 4.0);
        let s = optimal(&lp);
        assert!((s.x[0] - 2.0).abs() < 1e-7);
    }

    #[test]
    fn redundant_equalities_are_handled() {
        // x + y = 2 stated twice: phase 1 leaves a redundant artificial.
        let mut lp = LinearProgram::minimize(vec![1.0, 1.0]);
        lp.constrain(vec![(0, 1.0), (1, 1.0)], Relation::Eq, 2.0);
        lp.constrain(vec![(0, 1.0), (1, 1.0)], Relation::Eq, 2.0);
        let s = optimal(&lp);
        assert!((s.objective - 2.0).abs() < 1e-7);
        assert!(lp.is_feasible(&s.x, 1e-7));
    }

    #[test]
    fn unconstrained_min_at_origin() {
        let lp = LinearProgram::minimize(vec![1.0, 5.0]);
        let s = optimal(&lp);
        assert!(s.objective.abs() < 1e-9);
        assert!(s.x.iter().all(|&v| v.abs() < 1e-9));
    }

    #[test]
    fn solution_is_always_feasible() {
        // A slightly larger mixed-sense program.
        let mut lp = LinearProgram::minimize(vec![4.0, 1.0, 1.0]);
        lp.constrain(vec![(0, 2.0), (1, 1.0), (2, 2.0)], Relation::Eq, 4.0);
        lp.constrain(vec![(0, 3.0), (1, 3.0), (2, 1.0)], Relation::Ge, 3.0);
        let s = optimal(&lp);
        assert!(lp.is_feasible(&s.x, 1e-6), "x = {:?}", s.x);
    }

    #[test]
    fn makespan_shaped_instance() {
        // Mini SCH relaxation: 2 phones, 2 jobs; minimize T.
        // vars: T, l00, l01, l10, l11 (l_ij = job j's KB on phone i).
        // phone 0: 2·l00 + 3·l01 ≤ T ; phone 1: 6·l10 + 1·l11 ≤ T
        // job 0: l00 + l10 = 10 ; job 1: l01 + l11 = 10.
        let mut lp = LinearProgram::minimize(vec![1.0, 0.0, 0.0, 0.0, 0.0]);
        lp.constrain(vec![(1, 2.0), (2, 3.0), (0, -1.0)], Relation::Le, 0.0);
        lp.constrain(vec![(3, 6.0), (4, 1.0), (0, -1.0)], Relation::Le, 0.0);
        lp.constrain(vec![(1, 1.0), (3, 1.0)], Relation::Eq, 10.0);
        lp.constrain(vec![(2, 1.0), (4, 1.0)], Relation::Eq, 10.0);
        let s = optimal(&lp);
        assert!(lp.is_feasible(&s.x, 1e-6));
        // Perfect balance exists: check weak bound T ≥ total/aggregate.
        assert!(s.objective > 0.0);
        assert!(
            s.objective < 2.0 * 10.0 + 3.0 * 10.0,
            "not worse than all-on-phone-0"
        );
        // Verify against a brute-force-ish candidate: put job0 on phone0,
        // job1 on phone1: loads 20 and 10 → T = 20 is feasible, so
        // optimum ≤ 20.
        assert!(s.objective <= 20.0 + 1e-6);
    }
}
