//! Problem construction API.

use crate::simplex;

/// Constraint sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// Row value must be ≤ the bound.
    Le,
    /// Row value must equal the bound.
    Eq,
    /// Row value must be ≥ the bound.
    Ge,
}

/// One linear constraint, stored sparsely as `(variable, coefficient)`
/// pairs.
#[derive(Debug, Clone)]
pub(crate) struct Constraint {
    pub(crate) terms: Vec<(usize, f64)>,
    pub(crate) relation: Relation,
    pub(crate) bound: f64,
}

/// A linear program `minimize c·x  s.t.  constraints, x ≥ 0`.
///
/// All variables are implicitly non-negative, which matches every use in
/// CWC (input-partition sizes, indicator relaxations, the makespan).
#[derive(Debug, Clone)]
pub struct LinearProgram {
    pub(crate) objective: Vec<f64>,
    pub(crate) constraints: Vec<Constraint>,
}

/// An optimal solution.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Optimal objective value (of the minimization).
    pub objective: f64,
    /// Optimal variable assignment, indexed as in the objective vector.
    pub x: Vec<f64>,
    /// Simplex iterations spent (phase 1 + phase 2).
    pub iterations: usize,
}

/// Result of solving a linear program.
#[derive(Debug, Clone)]
pub enum LpOutcome {
    /// An optimal vertex was found.
    Optimal(Solution),
    /// The constraints admit no feasible point.
    Infeasible,
    /// The objective is unbounded below over the feasible region.
    Unbounded,
}

impl LinearProgram {
    /// Starts a minimization of `objective · x`.
    pub fn minimize(objective: Vec<f64>) -> Self {
        LinearProgram {
            objective,
            constraints: Vec::new(),
        }
    }

    /// Starts a maximization of `objective · x` (internally negated; the
    /// returned [`Solution::objective`] is reported in the *maximization*
    /// sense by [`LinearProgram::solve`] only for programs built with
    /// [`LinearProgram::minimize`] — see `solve_max`).
    pub fn maximize(objective: Vec<f64>) -> Self {
        LinearProgram {
            objective: objective.into_iter().map(|c| -c).collect(),
            constraints: Vec::new(),
        }
    }

    /// Number of decision variables.
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// Number of constraints added so far.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Adds the constraint `Σ terms · x  (relation)  bound`.
    ///
    /// # Panics
    /// Panics if a term references a variable outside the objective vector,
    /// or if a coefficient or the bound is not finite.
    pub fn constrain(&mut self, terms: Vec<(usize, f64)>, relation: Relation, bound: f64) {
        assert!(bound.is_finite(), "constraint bound must be finite");
        for &(var, coeff) in &terms {
            assert!(
                var < self.num_vars(),
                "constraint references variable {var} but program has {} variables",
                self.num_vars()
            );
            assert!(coeff.is_finite(), "constraint coefficient must be finite");
        }
        self.constraints.push(Constraint {
            terms,
            relation,
            bound,
        });
    }

    /// Solves the program with the two-phase simplex method.
    ///
    /// Returns `Err` only on internal numerical failure (iteration limit);
    /// model-level outcomes (infeasible / unbounded) are in [`LpOutcome`].
    pub fn solve(&self) -> Result<LpOutcome, String> {
        simplex::solve(self)
    }

    /// Evaluates the objective at a point (for testing feasible candidates).
    pub fn objective_at(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.num_vars());
        self.objective.iter().zip(x).map(|(c, v)| c * v).sum()
    }

    /// Checks whether `x` satisfies every constraint (and non-negativity)
    /// within `tol`.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.num_vars() {
            return false;
        }
        if x.iter().any(|&v| v < -tol) {
            return false;
        }
        self.constraints.iter().all(|c| {
            let lhs: f64 = c.terms.iter().map(|&(v, coef)| coef * x[v]).sum();
            match c.relation {
                Relation::Le => lhs <= c.bound + tol,
                Relation::Eq => (lhs - c.bound).abs() <= tol,
                Relation::Ge => lhs >= c.bound - tol,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_counts() {
        let mut lp = LinearProgram::minimize(vec![1.0, 2.0, 3.0]);
        assert_eq!(lp.num_vars(), 3);
        lp.constrain(vec![(0, 1.0)], Relation::Le, 5.0);
        assert_eq!(lp.num_constraints(), 1);
    }

    #[test]
    #[should_panic(expected = "references variable")]
    fn out_of_range_variable_panics() {
        let mut lp = LinearProgram::minimize(vec![1.0]);
        lp.constrain(vec![(1, 1.0)], Relation::Le, 0.0);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn nan_bound_panics() {
        let mut lp = LinearProgram::minimize(vec![1.0]);
        lp.constrain(vec![(0, 1.0)], Relation::Le, f64::NAN);
    }

    #[test]
    fn feasibility_checker() {
        let mut lp = LinearProgram::minimize(vec![1.0, 1.0]);
        lp.constrain(vec![(0, 1.0), (1, 1.0)], Relation::Ge, 1.0);
        assert!(lp.is_feasible(&[0.5, 0.5], 1e-9));
        assert!(!lp.is_feasible(&[0.2, 0.2], 1e-9));
        assert!(!lp.is_feasible(&[-0.5, 2.0], 1e-9));
        assert!(!lp.is_feasible(&[1.0], 1e-9));
    }

    #[test]
    fn objective_eval() {
        let lp = LinearProgram::minimize(vec![2.0, -1.0]);
        assert!((lp.objective_at(&[3.0, 4.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn maximize_negates() {
        let lp = LinearProgram::maximize(vec![5.0]);
        assert!((lp.objective[0] + 5.0).abs() < 1e-12);
    }
}
