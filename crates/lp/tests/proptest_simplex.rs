//! Property-based tests for the simplex solver.
//!
//! Strategy: build LPs that are feasible *by construction* (we synthesize a
//! witness point first and derive bounds from it), then check the solver's
//! contract: the returned vertex is feasible and its objective is no worse
//! than the witness's.

use cwc_lp::{LinearProgram, LpOutcome, Relation};
use proptest::prelude::*;

/// A generated instance: dims, dense matrix, witness point, senses.
#[derive(Debug, Clone)]
struct Instance {
    objective: Vec<f64>,
    rows: Vec<(Vec<f64>, Relation, f64)>,
    witness: Vec<f64>,
}

fn instance_strategy() -> impl Strategy<Value = Instance> {
    (2usize..6, 1usize..6).prop_flat_map(|(n, m)| {
        let coeff = -5.0..5.0f64;
        let point = 0.0..10.0f64;
        let cost = 0.0..10.0f64; // non-negative costs keep min bounded
        (
            proptest::collection::vec(cost, n),
            proptest::collection::vec(proptest::collection::vec(coeff, n), m),
            proptest::collection::vec(point, n),
            proptest::collection::vec(0usize..3, m),
        )
            .prop_map(move |(objective, matrix, witness, senses)| {
                let rows = matrix
                    .into_iter()
                    .zip(senses)
                    .map(|(coeffs, sense)| {
                        let lhs: f64 = coeffs.iter().zip(&witness).map(|(a, x)| a * x).sum();
                        // Derive a bound that the witness satisfies.
                        let (rel, bound) = match sense {
                            0 => (Relation::Le, lhs + 1.0),
                            1 => (Relation::Ge, lhs - 1.0),
                            _ => (Relation::Eq, lhs),
                        };
                        (coeffs, rel, bound)
                    })
                    .collect();
                Instance {
                    objective,
                    rows,
                    witness,
                }
            })
    })
}

fn build(inst: &Instance) -> LinearProgram {
    let mut lp = LinearProgram::minimize(inst.objective.clone());
    for (coeffs, rel, bound) in &inst.rows {
        let terms: Vec<(usize, f64)> = coeffs.iter().cloned().enumerate().collect();
        lp.constrain(terms, *rel, *bound);
    }
    lp
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn solver_finds_feasible_no_worse_than_witness(inst in instance_strategy()) {
        let lp = build(&inst);
        prop_assert!(lp.is_feasible(&inst.witness, 1e-7), "witness must be feasible");
        match lp.solve().expect("no numerical failure") {
            LpOutcome::Optimal(sol) => {
                prop_assert!(lp.is_feasible(&sol.x, 1e-5),
                    "solver output infeasible: {:?}", sol.x);
                let witness_obj = lp.objective_at(&inst.witness);
                prop_assert!(sol.objective <= witness_obj + 1e-5,
                    "solver {} worse than witness {}", sol.objective, witness_obj);
                // Non-negative costs over x >= 0: objective cannot be negative.
                prop_assert!(sol.objective >= -1e-6);
            }
            LpOutcome::Infeasible => {
                prop_assert!(false, "feasible-by-construction LP reported infeasible");
            }
            LpOutcome::Unbounded => {
                prop_assert!(false, "bounded-by-construction LP reported unbounded");
            }
        }
    }

    #[test]
    fn scaling_objective_scales_solution_value(
        inst in instance_strategy(),
        scale in 0.1..10.0f64,
    ) {
        let lp = build(&inst);
        let mut scaled = LinearProgram::minimize(
            inst.objective.iter().map(|c| c * scale).collect());
        for (coeffs, rel, bound) in &inst.rows {
            scaled.constrain(coeffs.iter().cloned().enumerate().collect(), *rel, *bound);
        }
        if let (Ok(LpOutcome::Optimal(a)), Ok(LpOutcome::Optimal(b))) =
            (lp.solve(), scaled.solve())
        {
            prop_assert!((a.objective * scale - b.objective).abs() < 1e-4 * (1.0 + a.objective.abs()),
                "scaled objective mismatch: {} vs {}", a.objective * scale, b.objective);
        }
    }
}
