//! # cwc-tasks — reference workloads
//!
//! The concrete task programs used throughout the paper's evaluation plus
//! the enterprise scenarios its introduction motivates. Each is a real
//! computation (not a timing stub) implementing
//! [`cwc_device::TaskProgram`], so executor, migration, and aggregation
//! tests run against genuine state:
//!
//! | program      | paper role                              | kind      |
//! |--------------|------------------------------------------|-----------|
//! | `primecount` | eval task 1: count primes in a file      | breakable |
//! | `wordcount`  | eval task 2: count a word's occurrences  | breakable |
//! | `photoblur`  | eval task 3: blur a photo                | atomic    |
//! | `largestint` | §3.1 feasibility experiment (Fig. 5)     | breakable |
//! | `logscan`    | intro scenario: IT failure-log analysis  | breakable |
//! | `render`     | intro scenario: movie scene rendering    | atomic    |
//!
//! [`inputs`] synthesizes deterministic input files for all of them, and
//! [`standard_registry`] installs everything into a device-side
//! `TaskRegistry` — the fleet's "preloaded
//! executables".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod inputs;
pub mod programs;

pub use programs::blur::PhotoBlur;
pub use programs::largest::LargestInt;
pub use programs::logscan::LogScan;
pub use programs::primes::PrimeCount;
pub use programs::render::SceneRender;
pub use programs::wordcount::WordCount;

use cwc_device::TaskRegistry;
use std::sync::Arc;

/// Builds a registry with every reference program installed under its
/// canonical name.
pub fn standard_registry() -> TaskRegistry {
    let mut reg = TaskRegistry::new();
    reg.register(Arc::new(PrimeCount));
    reg.register(Arc::new(WordCount::new("lowes")));
    reg.register(Arc::new(PhotoBlur));
    reg.register(Arc::new(LargestInt));
    reg.register(Arc::new(LogScan));
    reg.register(Arc::new(SceneRender));
    reg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_all_programs() {
        let reg = standard_registry();
        for name in [
            "primecount",
            "wordcount",
            "photoblur",
            "largestint",
            "logscan",
            "render",
        ] {
            assert!(reg.contains(name), "missing {name}");
        }
        assert_eq!(reg.names().len(), 6);
    }
}
