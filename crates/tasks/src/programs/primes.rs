//! `primecount` — evaluation task 1: count the prime numbers in a text
//! file of newline-separated integers (§6). This is the paper's
//! CPU-intensive workload (it is also the task used for the charging
//! experiments of Fig. 10).

use super::codec;
use cwc_device::{TaskProgram, TaskState};
use cwc_types::{CwcError, CwcResult};

/// The prime-counting program.
pub struct PrimeCount;

/// Streaming state: primes seen so far plus the bytes of a number whose
/// line straddles the last chunk boundary.
pub struct PrimeCountState {
    count: u64,
    tail: Vec<u8>,
}

/// Trial-division primality — deliberately the straightforward algorithm;
/// burning real cycles per number is the point of this workload.
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    if n.is_multiple_of(2) {
        return n == 2;
    }
    let mut d = 3u64;
    while d * d <= n {
        if n.is_multiple_of(d) {
            return false;
        }
        d += 2;
    }
    true
}

fn digest_line(line: &[u8], count: &mut u64) {
    if let Ok(text) = std::str::from_utf8(line) {
        if let Ok(n) = text.trim().parse::<u64>() {
            if is_prime(n) {
                *count += 1;
            }
        }
    }
}

impl TaskProgram for PrimeCount {
    fn name(&self) -> &str {
        "primecount"
    }

    fn baseline_ms_per_kb(&self) -> f64 {
        // Profiled cost class on the 806 MHz HTC G2: CPU-bound.
        14.0
    }

    fn new_state(&self) -> Box<dyn TaskState> {
        Box::new(PrimeCountState {
            count: 0,
            tail: Vec::new(),
        })
    }

    fn restore_state(&self, checkpoint: &[u8]) -> CwcResult<Box<dyn TaskState>> {
        let (count, tail) = codec::decode_u64_tail(checkpoint)?;
        Ok(Box::new(PrimeCountState { count, tail }))
    }

    fn aggregate(&self, partials: &[Vec<u8>]) -> CwcResult<Vec<u8>> {
        codec::sum_u64_partials(partials)
    }
}

impl TaskState for PrimeCountState {
    fn process_chunk(&mut self, chunk: &[u8]) -> CwcResult<()> {
        let mut data = std::mem::take(&mut self.tail);
        data.extend_from_slice(chunk);
        let mut start = 0usize;
        for (i, &b) in data.iter().enumerate() {
            if b == b'\n' {
                digest_line(&data[start..i], &mut self.count);
                start = i + 1;
            }
        }
        self.tail = data[start..].to_vec();
        if self.tail.len() > 64 {
            return Err(CwcError::Migration(
                "primecount: unterminated line exceeds 64 bytes".into(),
            ));
        }
        Ok(())
    }

    fn checkpoint(&self) -> Vec<u8> {
        codec::encode_u64_tail(self.count, &self.tail)
    }

    fn partial_result(&self) -> Vec<u8> {
        // Flush the trailing line (files need not end in a newline).
        let mut count = self.count;
        if !self.tail.is_empty() {
            digest_line(&self.tail, &mut count);
        }
        count.to_be_bytes().to_vec()
    }
}

/// Decodes the program's result blob.
pub fn decode_count(result: &[u8]) -> u64 {
    u64::from_be_bytes(result.try_into().expect("count result is 8 bytes"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwc_device::{ExecutionOutcome, Executor};

    #[test]
    fn primality() {
        let primes = [2u64, 3, 5, 7, 11, 97, 7919];
        let composites = [0u64, 1, 4, 9, 100, 7917];
        for p in primes {
            assert!(is_prime(p), "{p}");
        }
        for c in composites {
            assert!(!is_prime(c), "{c}");
        }
    }

    #[test]
    fn counts_primes_across_chunks() {
        let input = b"2\n3\n4\n5\n6\n7\n8\n9\n10\n11\n".to_vec();
        // 2 3 5 7 11 → 5 primes.
        let mut state = PrimeCount.new_state();
        // Feed in awkward splits (numbers straddle boundaries).
        for piece in input.chunks(3) {
            state.process_chunk(piece).unwrap();
        }
        assert_eq!(decode_count(&state.partial_result()), 5);
    }

    #[test]
    fn trailing_line_without_newline_counts() {
        let mut state = PrimeCount.new_state();
        state.process_chunk(b"4\n13").unwrap();
        assert_eq!(decode_count(&state.partial_result()), 1);
    }

    #[test]
    fn checkpoint_resume_preserves_straddled_number() {
        let input = b"97\n98\n99\n101\n".to_vec();
        let mut s1 = PrimeCount.new_state();
        s1.process_chunk(&input[..4]).unwrap(); // "97\n9" — tail "9"
        let ck = s1.checkpoint();
        let mut s2 = PrimeCount.restore_state(&ck).unwrap();
        s2.process_chunk(&input[4..]).unwrap();
        // 97 and 101 are prime.
        assert_eq!(decode_count(&s2.partial_result()), 2);
    }

    #[test]
    fn executor_end_to_end_matches_reference() {
        let input = crate::inputs::number_file(8, 77);
        let reference = input
            .split(|&b| b == b'\n')
            .filter(|l| !l.is_empty())
            .filter(|l| {
                std::str::from_utf8(l)
                    .ok()
                    .and_then(|t| t.trim().parse::<u64>().ok())
                    .is_some_and(is_prime)
            })
            .count() as u64;
        match Executor.run(&PrimeCount, &input, None).unwrap() {
            ExecutionOutcome::Completed { result, .. } => {
                assert_eq!(decode_count(&result), reference);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn aggregate_sums() {
        let parts = vec![3u64.to_be_bytes().to_vec(), 4u64.to_be_bytes().to_vec()];
        assert_eq!(decode_count(&PrimeCount.aggregate(&parts).unwrap()), 7);
    }

    #[test]
    fn garbage_lines_are_ignored() {
        let mut state = PrimeCount.new_state();
        state.process_chunk(b"hello\n7\n\n  13  \n").unwrap();
        assert_eq!(decode_count(&state.partial_result()), 2);
    }
}
