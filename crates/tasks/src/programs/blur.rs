//! `photoblur` — evaluation task 3: blur a photo (§6).
//!
//! The paper's canonical *atomic* task: each blurred pixel depends on its
//! neighbours, so the photo cannot be split across phones (§4's task
//! model). The prototype had to pre-process images into pixel text files
//! because Android's Dalvik lacks `BufferedImage`; we keep the same spirit
//! with a minimal raw format: an 8-byte header (`width`, `height` as
//! `u32` BE) followed by row-major 8-bit grayscale pixels.

use cwc_device::{TaskProgram, TaskState};
use cwc_types::{CwcError, CwcResult};

/// The photo-blur program (3×3 box blur).
pub struct PhotoBlur;

/// Atomic-state: buffers the full image (the dependency structure demands
/// it), blurs on finalization.
pub struct PhotoBlurState {
    buffer: Vec<u8>,
}

/// Encodes an image into the wire format.
pub fn encode_image(width: u32, height: u32, pixels: &[u8]) -> Vec<u8> {
    assert_eq!(
        pixels.len(),
        width as usize * height as usize,
        "pixel count must match dimensions"
    );
    let mut out = Vec::with_capacity(8 + pixels.len());
    out.extend_from_slice(&width.to_be_bytes());
    out.extend_from_slice(&height.to_be_bytes());
    out.extend_from_slice(pixels);
    out
}

/// Decodes the wire format into `(width, height, pixels)`.
pub fn decode_image(data: &[u8]) -> CwcResult<(u32, u32, &[u8])> {
    if data.len() < 8 {
        return Err(CwcError::Migration("image too short for header".into()));
    }
    let width = u32::from_be_bytes(data[..4].try_into().unwrap());
    let height = u32::from_be_bytes(data[4..8].try_into().unwrap());
    let expected = width as usize * height as usize;
    let pixels = &data[8..];
    if pixels.len() != expected {
        return Err(CwcError::Migration(format!(
            "image payload {} bytes, header implies {expected}",
            pixels.len()
        )));
    }
    Ok((width, height, pixels))
}

/// 3×3 box blur with edge clamping — the neighbourhood dependency that
/// makes this task atomic.
pub fn box_blur(width: u32, height: u32, pixels: &[u8]) -> Vec<u8> {
    let w = width as i64;
    let h = height as i64;
    let mut out = vec![0u8; pixels.len()];
    for y in 0..h {
        for x in 0..w {
            let mut sum = 0u32;
            let mut n = 0u32;
            for dy in -1..=1i64 {
                for dx in -1..=1i64 {
                    let (nx, ny) = (x + dx, y + dy);
                    if nx >= 0 && nx < w && ny >= 0 && ny < h {
                        sum += u32::from(pixels[(ny * w + nx) as usize]);
                        n += 1;
                    }
                }
            }
            out[(y * w + x) as usize] = (sum / n) as u8;
        }
    }
    out
}

impl TaskProgram for PhotoBlur {
    fn name(&self) -> &str {
        "photoblur"
    }

    fn baseline_ms_per_kb(&self) -> f64 {
        // Pixel-neighbourhood arithmetic: moderately CPU-bound.
        9.0
    }

    fn new_state(&self) -> Box<dyn TaskState> {
        Box::new(PhotoBlurState { buffer: Vec::new() })
    }

    fn restore_state(&self, checkpoint: &[u8]) -> CwcResult<Box<dyn TaskState>> {
        Ok(Box::new(PhotoBlurState {
            buffer: checkpoint.to_vec(),
        }))
    }

    fn aggregate(&self, partials: &[Vec<u8>]) -> CwcResult<Vec<u8>> {
        match partials {
            [single] => Ok(single.clone()),
            _ => Err(CwcError::Migration(format!(
                "photoblur is atomic: expected exactly 1 partial, got {}",
                partials.len()
            ))),
        }
    }
}

impl TaskState for PhotoBlurState {
    fn process_chunk(&mut self, chunk: &[u8]) -> CwcResult<()> {
        self.buffer.extend_from_slice(chunk);
        Ok(())
    }

    fn checkpoint(&self) -> Vec<u8> {
        self.buffer.clone()
    }

    fn partial_result(&self) -> Vec<u8> {
        match decode_image(&self.buffer) {
            Ok((w, h, px)) => encode_image(w, h, &box_blur(w, h, px)),
            // An incomplete image yields an empty result; the server
            // treats it as a task-level failure.
            Err(_) => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwc_device::{ExecutionOutcome, Executor};

    #[test]
    fn image_codec_round_trip() {
        let img = encode_image(3, 2, &[1, 2, 3, 4, 5, 6]);
        let (w, h, px) = decode_image(&img).unwrap();
        assert_eq!((w, h), (3, 2));
        assert_eq!(px, &[1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn image_codec_rejects_bad_lengths() {
        assert!(decode_image(&[0, 0]).is_err());
        let mut img = encode_image(2, 2, &[1, 2, 3, 4]);
        img.pop();
        assert!(decode_image(&img).is_err());
    }

    #[test]
    fn uniform_image_blurs_to_itself() {
        let px = vec![100u8; 16];
        assert_eq!(box_blur(4, 4, &px), px);
    }

    #[test]
    fn single_bright_pixel_spreads() {
        // 3x3 black image with a bright centre: the centre averages down,
        // corners average up.
        let mut px = vec![0u8; 9];
        px[4] = 90;
        let out = box_blur(3, 3, &px);
        assert_eq!(out[4], 10); // 90 / 9
        assert_eq!(out[0], 22); // 90 / 4 (corner sees 4 pixels)
        assert_eq!(out[1], 15); // 90 / 6 (edge sees 6)
    }

    #[test]
    fn blur_depends_on_neighbours_across_rows() {
        // This is *why* the task is atomic: splitting rows changes output.
        let top_half = box_blur(3, 1, &[10, 20, 30]);
        let full = box_blur(3, 2, &[10, 20, 30, 40, 50, 60]);
        assert_ne!(top_half[..3], full[..3]);
    }

    #[test]
    fn executor_blur_end_to_end_with_migration() {
        let img = crate::inputs::image_file(64, 48, 3);
        let (w, h, px) = decode_image(&img).unwrap();
        let expected = encode_image(w, h, &box_blur(w, h, px));

        // Straight run.
        let straight = match Executor.run(&PhotoBlur, &img, None).unwrap() {
            ExecutionOutcome::Completed { result, .. } => result,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(straight, expected);

        // Interrupted at 1 KB and resumed — identical output.
        let (ck, done) = match Executor
            .run(&PhotoBlur, &img, Some(cwc_types::KiloBytes(1)))
            .unwrap()
        {
            ExecutionOutcome::Interrupted {
                checkpoint,
                processed,
            } => (checkpoint, processed),
            other => panic!("unexpected {other:?}"),
        };
        match Executor.resume(&PhotoBlur, &img, &ck, done, None).unwrap() {
            ExecutionOutcome::Completed { result, .. } => assert_eq!(result, expected),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn aggregate_requires_single_partial() {
        assert!(PhotoBlur.aggregate(&[vec![1], vec![2]]).is_err());
        assert_eq!(PhotoBlur.aggregate(&[vec![9]]).unwrap(), vec![9]);
    }

    #[test]
    fn incomplete_image_yields_empty_result() {
        let mut s = PhotoBlur.new_state();
        s.process_chunk(&[0, 0, 0, 9]).unwrap();
        assert!(s.partial_result().is_empty());
    }
}
