//! `wordcount` — evaluation task 2: count occurrences of a word (§4's
//! running MapReduce-style example and §6's second workload). The server
//! sums the per-partition counts, exactly the logical aggregation the
//! paper describes.

use super::codec;
use cwc_device::{TaskProgram, TaskState};
use cwc_types::{CwcError, CwcResult};

/// The word-counting program, parameterized by its target word.
pub struct WordCount {
    word: Vec<u8>,
}

impl WordCount {
    /// Creates a counter for `word` (matched as a byte substring,
    /// case-sensitive — the Java prototype's `String.indexOf` semantics).
    ///
    /// # Panics
    /// Panics on an empty word.
    pub fn new(word: &str) -> Self {
        assert!(!word.is_empty(), "target word must be non-empty");
        WordCount {
            word: word.as_bytes().to_vec(),
        }
    }
}

/// Streaming state: the running count plus the last `len(word) − 1` bytes
/// so occurrences straddling a chunk boundary are found.
pub struct WordCountState {
    word: Vec<u8>,
    count: u64,
    tail: Vec<u8>,
}

fn count_occurrences(haystack: &[u8], needle: &[u8]) -> u64 {
    if needle.is_empty() || haystack.len() < needle.len() {
        return 0;
    }
    let mut count = 0u64;
    // Non-overlapping-agnostic scan (overlapping matches counted, like
    // repeated indexOf(from = hit + 1)).
    for window in haystack.windows(needle.len()) {
        if window == needle {
            count += 1;
        }
    }
    count
}

impl TaskProgram for WordCount {
    fn name(&self) -> &str {
        "wordcount"
    }

    fn baseline_ms_per_kb(&self) -> f64 {
        // Scan-bound, lighter than prime counting.
        6.0
    }

    fn new_state(&self) -> Box<dyn TaskState> {
        Box::new(WordCountState {
            word: self.word.clone(),
            count: 0,
            tail: Vec::new(),
        })
    }

    fn restore_state(&self, checkpoint: &[u8]) -> CwcResult<Box<dyn TaskState>> {
        let (count, tail) = codec::decode_u64_tail(checkpoint)?;
        if tail.len() > self.word.len().saturating_sub(1) {
            return Err(CwcError::Migration("wordcount: oversized tail".into()));
        }
        Ok(Box::new(WordCountState {
            word: self.word.clone(),
            count,
            tail,
        }))
    }

    fn aggregate(&self, partials: &[Vec<u8>]) -> CwcResult<Vec<u8>> {
        codec::sum_u64_partials(partials)
    }
}

impl TaskState for WordCountState {
    fn process_chunk(&mut self, chunk: &[u8]) -> CwcResult<()> {
        let mut data = std::mem::take(&mut self.tail);
        data.extend_from_slice(chunk);
        self.count += count_occurrences(&data, &self.word);
        // A match fully inside the previous tail would double-count when
        // the next chunk arrives; avoid it by counting matches that *end*
        // within the old tail region only once. Since the tail is shorter
        // than the word, no match fits entirely in it, so the only risk is
        // a match spanning tail+chunk — counted exactly once here. Keep
        // the new tail for the next boundary.
        let keep = self.word.len().saturating_sub(1).min(data.len());
        self.tail = data[data.len() - keep..].to_vec();
        // ...but matches entirely within the *new* tail would be re-found
        // next round; subtract them now.
        self.count -= count_occurrences(&self.tail, &self.word);
        Ok(())
    }

    fn checkpoint(&self) -> Vec<u8> {
        codec::encode_u64_tail(self.count, &self.tail)
    }

    fn partial_result(&self) -> Vec<u8> {
        // Tail shorter than the word can hold no match; the count is final.
        let mut count = self.count;
        count += count_occurrences(&self.tail, &self.word);
        count.to_be_bytes().to_vec()
    }
}

/// Decodes the program's result blob.
pub fn decode_count(result: &[u8]) -> u64 {
    u64::from_be_bytes(result.try_into().expect("count result is 8 bytes"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwc_device::{ExecutionOutcome, Executor};

    fn run_all(text: &[u8], word: &str, chunk: usize) -> u64 {
        let prog = WordCount::new(word);
        let mut s = prog.new_state();
        for piece in text.chunks(chunk) {
            s.process_chunk(piece).unwrap();
        }
        decode_count(&s.partial_result())
    }

    #[test]
    fn basic_count() {
        assert_eq!(run_all(b"the cat and the hat the", "the", 1024), 3);
    }

    #[test]
    fn straddling_matches_found_at_any_chunk_size() {
        let text = b"abcabcabcabc";
        for chunk in 1..=12 {
            assert_eq!(run_all(text, "abc", chunk), 4, "chunk size {chunk}");
        }
    }

    #[test]
    fn overlapping_matches() {
        assert_eq!(run_all(b"aaaa", "aa", 64), 3);
        for chunk in 1..=4 {
            assert_eq!(run_all(b"aaaa", "aa", chunk), 3, "chunk {chunk}");
        }
    }

    #[test]
    fn checkpoint_resume_is_lossless() {
        let prog = WordCount::new("lowes");
        let text = crate::inputs::text_file(4, 5, "lowes");
        let straight = {
            let mut s = prog.new_state();
            s.process_chunk(&text).unwrap();
            decode_count(&s.partial_result())
        };
        // Interrupt mid-text.
        let mut s1 = prog.new_state();
        s1.process_chunk(&text[..1_500]).unwrap();
        let ck = s1.checkpoint();
        let mut s2 = prog.restore_state(&ck).unwrap();
        s2.process_chunk(&text[1_500..]).unwrap();
        assert_eq!(decode_count(&s2.partial_result()), straight);
    }

    #[test]
    fn restore_rejects_oversized_tail() {
        let prog = WordCount::new("ab");
        let bogus = super::super::codec::encode_u64_tail(0, b"toolong");
        assert!(prog.restore_state(&bogus).is_err());
    }

    #[test]
    fn executor_end_to_end() {
        let prog = WordCount::new("lowes");
        let text = crate::inputs::text_file(16, 9, "lowes");
        let expected = count_occurrences(&text, b"lowes");
        match Executor.run(&prog, &text, None).unwrap() {
            ExecutionOutcome::Completed { result, .. } => {
                assert_eq!(decode_count(&result), expected);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_word_rejected() {
        let _ = WordCount::new("");
    }
}
