//! `render` — the intro's movie-studio scenario: "a movie production
//! company can render each scene in a movie, in parallel, using
//! smartphones" (§3.2). One scene = one atomic task; a batch of scenes
//! fans out across the fleet.
//!
//! The scene format is deliberately simple but the work is real: a scene
//! is a set of luminous discs; rendering rasterizes them with smooth
//! falloff into a grayscale frame (re-using the image container from
//! [`photoblur`](crate::PhotoBlur)).

use super::blur::encode_image;
use cwc_device::{TaskProgram, TaskState};
use cwc_types::{CwcError, CwcResult};

/// One luminous disc in a scene.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Disc {
    /// Centre x (pixels).
    pub cx: u32,
    /// Centre y (pixels).
    pub cy: u32,
    /// Radius (pixels).
    pub r: u32,
    /// Peak luminance 0–255.
    pub lum: u8,
}

/// Encodes a scene: `width`, `height`, disc count (all `u32` BE) followed
/// by 13-byte disc records.
pub fn encode_scene(width: u32, height: u32, discs: &[Disc]) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + discs.len() * 13);
    out.extend_from_slice(&width.to_be_bytes());
    out.extend_from_slice(&height.to_be_bytes());
    out.extend_from_slice(&(discs.len() as u32).to_be_bytes());
    for d in discs {
        out.extend_from_slice(&d.cx.to_be_bytes());
        out.extend_from_slice(&d.cy.to_be_bytes());
        out.extend_from_slice(&d.r.to_be_bytes());
        out.push(d.lum);
    }
    out
}

/// Decodes a scene blob.
pub fn decode_scene(data: &[u8]) -> CwcResult<(u32, u32, Vec<Disc>)> {
    if data.len() < 12 {
        return Err(CwcError::Migration("scene too short for header".into()));
    }
    let width = u32::from_be_bytes(data[..4].try_into().unwrap());
    let height = u32::from_be_bytes(data[4..8].try_into().unwrap());
    let n = u32::from_be_bytes(data[8..12].try_into().unwrap()) as usize;
    if data.len() != 12 + n * 13 {
        return Err(CwcError::Migration(format!(
            "scene payload {} bytes, header implies {}",
            data.len(),
            12 + n * 13
        )));
    }
    let mut discs = Vec::with_capacity(n);
    for i in 0..n {
        let off = 12 + i * 13;
        discs.push(Disc {
            cx: u32::from_be_bytes(data[off..off + 4].try_into().unwrap()),
            cy: u32::from_be_bytes(data[off + 4..off + 8].try_into().unwrap()),
            r: u32::from_be_bytes(data[off + 8..off + 12].try_into().unwrap()),
            lum: data[off + 12],
        });
    }
    Ok((width, height, discs))
}

/// Rasterizes the scene into a grayscale frame with quadratic falloff.
pub fn rasterize(width: u32, height: u32, discs: &[Disc]) -> Vec<u8> {
    let mut px = vec![0u16; width as usize * height as usize];
    for d in discs {
        if d.r == 0 {
            continue;
        }
        let r = i64::from(d.r);
        let r2 = r * r;
        let (cx, cy) = (i64::from(d.cx), i64::from(d.cy));
        let y0 = (cy - r).max(0);
        let y1 = (cy + r).min(i64::from(height) - 1);
        let x0 = (cx - r).max(0);
        let x1 = (cx + r).min(i64::from(width) - 1);
        for y in y0..=y1 {
            for x in x0..=x1 {
                let d2 = (x - cx) * (x - cx) + (y - cy) * (y - cy);
                if d2 <= r2 {
                    // Quadratic falloff from the centre.
                    let falloff = ((r2 - d2) * 256 / r2) as u16; // 0..=256
                    let add = (u16::from(d.lum) * falloff) >> 8;
                    let idx = (y * i64::from(width) + x) as usize;
                    px[idx] = px[idx].saturating_add(add);
                }
            }
        }
    }
    px.into_iter().map(|v| v.min(255) as u8).collect()
}

/// The scene-render program (atomic).
pub struct SceneRender;

/// Buffers the scene description; renders on finalization.
pub struct SceneRenderState {
    buffer: Vec<u8>,
}

impl TaskProgram for SceneRender {
    fn name(&self) -> &str {
        "render"
    }

    fn baseline_ms_per_kb(&self) -> f64 {
        // Rendering is the heaviest per-KB workload: a small scene
        // description explodes into per-pixel work.
        40.0
    }

    fn new_state(&self) -> Box<dyn TaskState> {
        Box::new(SceneRenderState { buffer: Vec::new() })
    }

    fn restore_state(&self, checkpoint: &[u8]) -> CwcResult<Box<dyn TaskState>> {
        Ok(Box::new(SceneRenderState {
            buffer: checkpoint.to_vec(),
        }))
    }

    fn aggregate(&self, partials: &[Vec<u8>]) -> CwcResult<Vec<u8>> {
        match partials {
            [single] => Ok(single.clone()),
            _ => Err(CwcError::Migration(format!(
                "render is atomic: expected exactly 1 partial, got {}",
                partials.len()
            ))),
        }
    }
}

impl TaskState for SceneRenderState {
    fn process_chunk(&mut self, chunk: &[u8]) -> CwcResult<()> {
        self.buffer.extend_from_slice(chunk);
        Ok(())
    }

    fn checkpoint(&self) -> Vec<u8> {
        self.buffer.clone()
    }

    fn partial_result(&self) -> Vec<u8> {
        match decode_scene(&self.buffer) {
            Ok((w, h, discs)) => encode_image(w, h, &rasterize(w, h, &discs)),
            Err(_) => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwc_device::{ExecutionOutcome, Executor};

    #[test]
    fn scene_codec_round_trip() {
        let discs = vec![
            Disc {
                cx: 5,
                cy: 5,
                r: 3,
                lum: 200,
            },
            Disc {
                cx: 20,
                cy: 8,
                r: 6,
                lum: 90,
            },
        ];
        let blob = encode_scene(32, 16, &discs);
        let (w, h, back) = decode_scene(&blob).unwrap();
        assert_eq!((w, h), (32, 16));
        assert_eq!(back, discs);
    }

    #[test]
    fn scene_codec_rejects_truncation() {
        let blob = encode_scene(
            8,
            8,
            &[Disc {
                cx: 1,
                cy: 1,
                r: 1,
                lum: 9,
            }],
        );
        assert!(decode_scene(&blob[..blob.len() - 1]).is_err());
        assert!(decode_scene(&[0, 1]).is_err());
    }

    #[test]
    fn rasterize_centre_is_brightest() {
        let px = rasterize(
            11,
            11,
            &[Disc {
                cx: 5,
                cy: 5,
                r: 4,
                lum: 240,
            }],
        );
        let centre = px[5 * 11 + 5];
        assert!(centre > 200, "centre {centre}");
        assert_eq!(px[0], 0, "far corner untouched");
        // Monotone falloff along a row.
        assert!(px[5 * 11 + 5] >= px[5 * 11 + 6]);
        assert!(px[5 * 11 + 6] >= px[5 * 11 + 7]);
    }

    #[test]
    fn overlapping_discs_saturate() {
        let discs = vec![
            Disc {
                cx: 2,
                cy: 2,
                r: 2,
                lum: 255
            };
            4
        ];
        let px = rasterize(5, 5, &discs);
        assert_eq!(px[2 * 5 + 2], 255);
    }

    #[test]
    fn executor_render_with_migration_equals_straight() {
        let scene = crate::inputs::scene_file(96, 64, 12, 5);
        let straight = match Executor.run(&SceneRender, &scene, None).unwrap() {
            ExecutionOutcome::Completed { result, .. } => result,
            other => panic!("unexpected {other:?}"),
        };
        assert!(!straight.is_empty());

        let (ck, done) = match Executor
            .run(&SceneRender, &scene, Some(cwc_types::KiloBytes::ZERO))
            .unwrap()
        {
            ExecutionOutcome::Interrupted {
                checkpoint,
                processed,
            } => (checkpoint, processed),
            other => panic!("unexpected {other:?}"),
        };
        match Executor
            .resume(&SceneRender, &scene, &ck, done, None)
            .unwrap()
        {
            ExecutionOutcome::Completed { result, .. } => assert_eq!(result, straight),
            other => panic!("unexpected {other:?}"),
        }
    }
}
