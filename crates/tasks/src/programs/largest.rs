//! `largestint` — the §3.1 feasibility workload: find the largest integer
//! in a file. This is the task behind Fig. 5's bandwidth-variability
//! experiment (600 files across 6 phones of equal CPU but unequal links).

use super::codec;
use cwc_device::{TaskProgram, TaskState};
use cwc_types::CwcResult;

/// The largest-integer program.
pub struct LargestInt;

/// Streaming state: the maximum so far plus a straddled-line tail.
pub struct LargestIntState {
    max: u64,
    tail: Vec<u8>,
}

fn digest_line(line: &[u8], max: &mut u64) {
    if let Ok(text) = std::str::from_utf8(line) {
        if let Ok(n) = text.trim().parse::<u64>() {
            *max = (*max).max(n);
        }
    }
}

impl TaskProgram for LargestInt {
    fn name(&self) -> &str {
        "largestint"
    }

    fn baseline_ms_per_kb(&self) -> f64 {
        // Pure scan: the lightest workload in the suite.
        2.0
    }

    fn new_state(&self) -> Box<dyn TaskState> {
        Box::new(LargestIntState {
            max: 0,
            tail: Vec::new(),
        })
    }

    fn restore_state(&self, checkpoint: &[u8]) -> CwcResult<Box<dyn TaskState>> {
        let (max, tail) = codec::decode_u64_tail(checkpoint)?;
        Ok(Box::new(LargestIntState { max, tail }))
    }

    fn aggregate(&self, partials: &[Vec<u8>]) -> CwcResult<Vec<u8>> {
        codec::max_u64_partials(partials)
    }
}

impl TaskState for LargestIntState {
    fn process_chunk(&mut self, chunk: &[u8]) -> CwcResult<()> {
        let mut data = std::mem::take(&mut self.tail);
        data.extend_from_slice(chunk);
        let mut start = 0usize;
        for (i, &b) in data.iter().enumerate() {
            if b == b'\n' {
                digest_line(&data[start..i], &mut self.max);
                start = i + 1;
            }
        }
        self.tail = data[start..].to_vec();
        Ok(())
    }

    fn checkpoint(&self) -> Vec<u8> {
        codec::encode_u64_tail(self.max, &self.tail)
    }

    fn partial_result(&self) -> Vec<u8> {
        let mut max = self.max;
        if !self.tail.is_empty() {
            digest_line(&self.tail, &mut max);
        }
        max.to_be_bytes().to_vec()
    }
}

/// Decodes the program's result blob.
pub fn decode_max(result: &[u8]) -> u64 {
    u64::from_be_bytes(result.try_into().expect("max result is 8 bytes"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwc_device::{ExecutionOutcome, Executor};

    #[test]
    fn finds_max_across_chunks() {
        let input = b"17\n99123\n4\n500\n";
        let mut s = LargestInt.new_state();
        for piece in input.chunks(4) {
            s.process_chunk(piece).unwrap();
        }
        assert_eq!(decode_max(&s.partial_result()), 99_123);
    }

    #[test]
    fn trailing_number_counts() {
        let mut s = LargestInt.new_state();
        s.process_chunk(b"5\n1000000").unwrap();
        assert_eq!(decode_max(&s.partial_result()), 1_000_000);
    }

    #[test]
    fn checkpoint_resume_with_straddle() {
        let input = b"123\n987654\n42\n";
        let mut s1 = LargestInt.new_state();
        s1.process_chunk(&input[..7]).unwrap(); // "123\n987"
        let ck = s1.checkpoint();
        let mut s2 = LargestInt.restore_state(&ck).unwrap();
        s2.process_chunk(&input[7..]).unwrap();
        assert_eq!(decode_max(&s2.partial_result()), 987_654);
    }

    #[test]
    fn aggregate_takes_max() {
        let parts = vec![10u64.to_be_bytes().to_vec(), 7u64.to_be_bytes().to_vec()];
        assert_eq!(decode_max(&LargestInt.aggregate(&parts).unwrap()), 10);
    }

    #[test]
    fn executor_end_to_end() {
        let input = crate::inputs::number_file(4, 11);
        let reference = input
            .split(|&b| b == b'\n')
            .filter_map(|l| std::str::from_utf8(l).ok()?.trim().parse::<u64>().ok())
            .max()
            .unwrap();
        match Executor.run(&LargestInt, &input, None).unwrap() {
            ExecutionOutcome::Completed { result, .. } => {
                assert_eq!(decode_max(&result), reference);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
