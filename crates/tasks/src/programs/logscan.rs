//! `logscan` — the intro's enterprise-IT scenario: "gather machine logs
//! throughout the day and analyze them for certain types of failures at
//! night" (§3.2). Counts lines whose severity field is `ERROR` or
//! `FATAL`.

use super::codec;
use cwc_device::{TaskProgram, TaskState};
use cwc_types::CwcResult;

/// The failure-log scanner.
pub struct LogScan;

/// Streaming state: failure-line count plus a straddled-line tail.
pub struct LogScanState {
    count: u64,
    tail: Vec<u8>,
}

fn is_failure_line(line: &[u8]) -> bool {
    // Log format: "<timestamp> <SEVERITY> <message>"; severity is the
    // second whitespace-separated token.
    let mut fields = line.split(|&b| b == b' ').filter(|f| !f.is_empty());
    let _ts = fields.next();
    matches!(fields.next(), Some(b"ERROR") | Some(b"FATAL"))
}

impl TaskProgram for LogScan {
    fn name(&self) -> &str {
        "logscan"
    }

    fn baseline_ms_per_kb(&self) -> f64 {
        4.0
    }

    fn new_state(&self) -> Box<dyn TaskState> {
        Box::new(LogScanState {
            count: 0,
            tail: Vec::new(),
        })
    }

    fn restore_state(&self, checkpoint: &[u8]) -> CwcResult<Box<dyn TaskState>> {
        let (count, tail) = codec::decode_u64_tail(checkpoint)?;
        Ok(Box::new(LogScanState { count, tail }))
    }

    fn aggregate(&self, partials: &[Vec<u8>]) -> CwcResult<Vec<u8>> {
        codec::sum_u64_partials(partials)
    }
}

impl TaskState for LogScanState {
    fn process_chunk(&mut self, chunk: &[u8]) -> CwcResult<()> {
        let mut data = std::mem::take(&mut self.tail);
        data.extend_from_slice(chunk);
        let mut start = 0usize;
        for (i, &b) in data.iter().enumerate() {
            if b == b'\n' {
                if is_failure_line(&data[start..i]) {
                    self.count += 1;
                }
                start = i + 1;
            }
        }
        self.tail = data[start..].to_vec();
        Ok(())
    }

    fn checkpoint(&self) -> Vec<u8> {
        codec::encode_u64_tail(self.count, &self.tail)
    }

    fn partial_result(&self) -> Vec<u8> {
        let mut count = self.count;
        if !self.tail.is_empty() && is_failure_line(&self.tail) {
            count += 1;
        }
        count.to_be_bytes().to_vec()
    }
}

/// Decodes the program's result blob.
pub fn decode_count(result: &[u8]) -> u64 {
    u64::from_be_bytes(result.try_into().expect("count result is 8 bytes"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_error_and_fatal_lines() {
        let log = b"100 INFO boot ok\n101 ERROR disk full\n102 WARN slow\n103 FATAL panic\n";
        let mut s = LogScan.new_state();
        s.process_chunk(log).unwrap();
        assert_eq!(decode_count(&s.partial_result()), 2);
    }

    #[test]
    fn severity_must_be_second_field() {
        // "ERROR" appearing in the message body must not count.
        let log = b"100 INFO user typed ERROR\n";
        let mut s = LogScan.new_state();
        s.process_chunk(log).unwrap();
        assert_eq!(decode_count(&s.partial_result()), 0);
    }

    #[test]
    fn chunk_boundaries_do_not_change_the_count() {
        let log = crate::inputs::log_file(8, 21);
        let reference = {
            let mut s = LogScan.new_state();
            s.process_chunk(&log).unwrap();
            decode_count(&s.partial_result())
        };
        for chunk in [1usize, 7, 100, 1024] {
            let mut s = LogScan.new_state();
            for piece in log.chunks(chunk) {
                s.process_chunk(piece).unwrap();
            }
            assert_eq!(
                decode_count(&s.partial_result()),
                reference,
                "chunk {chunk}"
            );
        }
        assert!(reference > 0, "generated log should contain failures");
    }

    #[test]
    fn checkpoint_round_trip() {
        let mut s = LogScan.new_state();
        s.process_chunk(b"1 ERROR x\n2 INFO y\n3 FA").unwrap();
        let ck = s.checkpoint();
        let mut restored = LogScan.restore_state(&ck).unwrap();
        restored.process_chunk(b"TAL z\n").unwrap();
        assert_eq!(decode_count(&restored.partial_result()), 2);
    }
}
