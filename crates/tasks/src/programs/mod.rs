//! The task program implementations.

pub mod blur;
pub mod largest;
pub mod logscan;
pub mod primes;
pub mod render;
pub mod wordcount;

pub(crate) mod codec {
    //! Tiny helpers for manual checkpoint encodings: every line-oriented
    //! program checkpoints as `u64 accumulator | u32 tail-length | tail`.

    use cwc_types::{CwcError, CwcResult};

    pub fn encode_u64_tail(value: u64, tail: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 + tail.len());
        out.extend_from_slice(&value.to_be_bytes());
        out.extend_from_slice(&(tail.len() as u32).to_be_bytes());
        out.extend_from_slice(tail);
        out
    }

    pub fn decode_u64_tail(bytes: &[u8]) -> CwcResult<(u64, Vec<u8>)> {
        if bytes.len() < 12 {
            return Err(CwcError::Migration("checkpoint too short".into()));
        }
        let value = u64::from_be_bytes(bytes[..8].try_into().unwrap());
        let tail_len = u32::from_be_bytes(bytes[8..12].try_into().unwrap()) as usize;
        if bytes.len() != 12 + tail_len {
            return Err(CwcError::Migration(format!(
                "checkpoint length mismatch: declared tail {tail_len}, have {}",
                bytes.len() - 12
            )));
        }
        Ok((value, bytes[12..].to_vec()))
    }

    pub fn sum_u64_partials(partials: &[Vec<u8>]) -> CwcResult<Vec<u8>> {
        let mut total = 0u64;
        for p in partials {
            let arr: [u8; 8] = p
                .as_slice()
                .try_into()
                .map_err(|_| CwcError::Migration("bad u64 partial".into()))?;
            total = total.wrapping_add(u64::from_be_bytes(arr));
        }
        Ok(total.to_be_bytes().to_vec())
    }

    pub fn max_u64_partials(partials: &[Vec<u8>]) -> CwcResult<Vec<u8>> {
        let mut best = 0u64;
        for p in partials {
            let arr: [u8; 8] = p
                .as_slice()
                .try_into()
                .map_err(|_| CwcError::Migration("bad u64 partial".into()))?;
            best = best.max(u64::from_be_bytes(arr));
        }
        Ok(best.to_be_bytes().to_vec())
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn u64_tail_round_trip() {
            let enc = encode_u64_tail(42, b"leftover");
            let (v, tail) = decode_u64_tail(&enc).unwrap();
            assert_eq!(v, 42);
            assert_eq!(tail, b"leftover");
        }

        #[test]
        fn u64_tail_rejects_short_and_mismatched() {
            assert!(decode_u64_tail(&[1, 2, 3]).is_err());
            let mut enc = encode_u64_tail(1, b"xy");
            enc.push(0); // extra byte not covered by declared length
            assert!(decode_u64_tail(&enc).is_err());
        }

        #[test]
        fn partial_folds() {
            let a = 10u64.to_be_bytes().to_vec();
            let b = 7u64.to_be_bytes().to_vec();
            assert_eq!(
                sum_u64_partials(&[a.clone(), b.clone()]).unwrap(),
                17u64.to_be_bytes()
            );
            assert_eq!(max_u64_partials(&[a, b]).unwrap(), 10u64.to_be_bytes());
        }
    }
}
