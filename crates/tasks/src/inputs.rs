//! Deterministic synthetic input generation for every workload.
//!
//! The paper's central server partitions real input files; these builders
//! are the reproduction's file store. Everything is seeded, so any
//! experiment can regenerate byte-identical inputs.

use crate::programs::render::{encode_scene, Disc};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A file of newline-separated integers (for `primecount`/`largestint`),
/// roughly `kb` KB long.
pub fn number_file(kb: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6e756d66696c65);
    let mut out = Vec::with_capacity(kb * 1024);
    while out.len() < kb * 1024 {
        let n: u32 = rng.gen_range(1..1_000_000);
        out.extend_from_slice(n.to_string().as_bytes());
        out.push(b'\n');
    }
    out.truncate(kb * 1024);
    // End on a clean line so the truncated final number is not garbage.
    if let Some(pos) = out.iter().rposition(|&b| b == b'\n') {
        out.truncate(pos + 1);
    }
    out
}

/// A prose-like text file with the target `word` planted at ~1 occurrence
/// per 100 words (for `wordcount`).
pub fn text_file(kb: usize, seed: u64, word: &str) -> Vec<u8> {
    const FILLER: [&str; 12] = [
        "sales", "report", "store", "total", "item", "qty", "region", "daily", "order", "stock",
        "price", "audit",
    ];
    let mut rng = StdRng::seed_from_u64(seed ^ 0x74657874);
    let mut out = Vec::with_capacity(kb * 1024);
    while out.len() < kb * 1024 {
        let w = if rng.gen_ratio(1, 100) {
            word
        } else {
            FILLER[rng.gen_range(0..FILLER.len())]
        };
        out.extend_from_slice(w.as_bytes());
        out.push(if rng.gen_ratio(1, 12) { b'\n' } else { b' ' });
    }
    out.truncate(kb * 1024);
    out
}

/// A grayscale photo with smooth gradients plus noise (for `photoblur`).
pub fn image_file(width: u32, height: u32, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x696d616765);
    let mut px = Vec::with_capacity(width as usize * height as usize);
    for y in 0..height {
        for x in 0..width {
            let base = ((x * 255 / width.max(1)) + (y * 255 / height.max(1))) / 2;
            let noise: i16 = rng.gen_range(-24..=24);
            px.push((base as i16 + noise).clamp(0, 255) as u8);
        }
    }
    crate::programs::blur::encode_image(width, height, &px)
}

/// A machine log with ~2% ERROR and ~0.5% FATAL lines (for `logscan`).
pub fn log_file(kb: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6c6f67);
    let mut out = Vec::with_capacity(kb * 1024);
    let mut ts = 1_700_000_000u64;
    while out.len() < kb * 1024 {
        ts += rng.gen_range(1..30);
        let sev = match rng.gen_range(0..200u32) {
            0..=3 => "ERROR",
            4 => "FATAL",
            5..=30 => "WARN",
            _ => "INFO",
        };
        let line = format!(
            "{ts} {sev} service={} code={}\n",
            rng.gen_range(0..16),
            rng.gen_range(0..4096)
        );
        out.extend_from_slice(line.as_bytes());
    }
    out.truncate(kb * 1024);
    if let Some(pos) = out.iter().rposition(|&b| b == b'\n') {
        out.truncate(pos + 1);
    }
    out
}

/// A render scene with `discs` random luminous discs (for `render`).
pub fn scene_file(width: u32, height: u32, discs: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7363656e65);
    let list: Vec<Disc> = (0..discs)
        .map(|_| Disc {
            cx: rng.gen_range(0..width),
            cy: rng.gen_range(0..height),
            r: rng.gen_range(2..(width.min(height) / 3).max(3)),
            lum: rng.gen_range(60..=255),
        })
        .collect();
    encode_scene(width, height, &list)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn number_file_is_parseable_and_sized() {
        let f = number_file(4, 1);
        assert!(f.len() > 3 * 1024 && f.len() <= 4 * 1024);
        for line in f.split(|&b| b == b'\n').filter(|l| !l.is_empty()) {
            let text = std::str::from_utf8(line).unwrap();
            text.parse::<u64>().expect("every line is an integer");
        }
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(number_file(2, 7), number_file(2, 7));
        assert_eq!(text_file(2, 7, "x"), text_file(2, 7, "x"));
        assert_eq!(image_file(32, 32, 7), image_file(32, 32, 7));
        assert_eq!(log_file(2, 7), log_file(2, 7));
        assert_eq!(scene_file(64, 64, 5, 7), scene_file(64, 64, 5, 7));
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(number_file(2, 1), number_file(2, 2));
        assert_ne!(log_file(2, 1), log_file(2, 2));
    }

    #[test]
    fn text_file_contains_planted_word() {
        let f = text_file(8, 3, "lowes");
        let hits = f.windows(5).filter(|w| w == b"lowes").count();
        assert!(hits > 5, "expected planted occurrences, got {hits}");
    }

    #[test]
    fn image_file_decodes() {
        let img = image_file(40, 30, 9);
        let (w, h, px) = crate::programs::blur::decode_image(&img).unwrap();
        assert_eq!((w, h), (40, 30));
        assert_eq!(px.len(), 1200);
    }

    #[test]
    fn log_file_has_failures_and_noise() {
        let f = log_file(16, 4);
        let text = String::from_utf8(f).unwrap();
        assert!(text.lines().any(|l| l.contains(" ERROR ")));
        assert!(text.lines().any(|l| l.contains(" INFO ")));
    }

    #[test]
    fn scene_file_decodes_with_right_disc_count() {
        let s = scene_file(100, 80, 7, 2);
        let (w, h, discs) = crate::programs::render::decode_scene(&s).unwrap();
        assert_eq!((w, h), (100, 80));
        assert_eq!(discs.len(), 7);
    }
}
