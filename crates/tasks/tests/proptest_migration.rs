//! Property tests: for every program, arbitrary inputs and arbitrary
//! interruption points, the migration invariant holds — resume equals an
//! uninterrupted run — and chunk boundaries never change results.

use cwc_device::{ExecutionOutcome, Executor, TaskProgram};
use cwc_tasks::{LargestInt, LogScan, PhotoBlur, PrimeCount, WordCount};
use cwc_types::KiloBytes;
use proptest::prelude::*;

fn run_to_end(p: &dyn TaskProgram, input: &[u8]) -> Vec<u8> {
    match Executor.run(p, input, None).unwrap() {
        ExecutionOutcome::Completed { result, .. } => result,
        other => panic!("unexpected {other:?}"),
    }
}

fn run_with_cut(p: &dyn TaskProgram, input: &[u8], cut_kb: u64) -> Vec<u8> {
    match Executor.run(p, input, Some(KiloBytes(cut_kb))).unwrap() {
        ExecutionOutcome::Completed { result, .. } => result,
        ExecutionOutcome::Interrupted {
            checkpoint,
            processed,
        } => match Executor
            .resume(p, input, &checkpoint, processed, None)
            .unwrap()
        {
            ExecutionOutcome::Completed { result, .. } => result,
            other => panic!("unexpected {other:?}"),
        },
    }
}

/// Number-file-like inputs: digits and newlines with occasional junk.
fn numberish() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        prop_oneof![
            8 => proptest::char::range('0', '9').prop_map(|c| c as u8),
            2 => Just(b'\n'),
            1 => Just(b' '),
        ],
        0..6_000,
    )
}

fn textish() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        prop_oneof![
            6 => proptest::char::range('a', 'e').prop_map(|c| c as u8),
            2 => Just(b' '),
            1 => Just(b'\n'),
        ],
        0..6_000,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn primecount_migration(input in numberish(), cut in 0u64..8) {
        let p = PrimeCount;
        prop_assert_eq!(run_with_cut(&p, &input, cut), run_to_end(&p, &input));
    }

    #[test]
    fn largestint_migration(input in numberish(), cut in 0u64..8) {
        let p = LargestInt;
        prop_assert_eq!(run_with_cut(&p, &input, cut), run_to_end(&p, &input));
    }

    #[test]
    fn wordcount_migration(input in textish(), cut in 0u64..8) {
        let p = WordCount::new("abc");
        prop_assert_eq!(run_with_cut(&p, &input, cut), run_to_end(&p, &input));
    }

    #[test]
    fn logscan_migration(input in textish(), cut in 0u64..8) {
        let p = LogScan;
        prop_assert_eq!(run_with_cut(&p, &input, cut), run_to_end(&p, &input));
    }

    #[test]
    fn blur_migration(w in 1u32..48, h in 1u32..48, seed in 0u64..1000, cut in 0u64..4) {
        let img = cwc_tasks::inputs::image_file(w, h, seed);
        let p = PhotoBlur;
        prop_assert_eq!(run_with_cut(&p, &img, cut), run_to_end(&p, &img));
    }

    #[test]
    fn wordcount_chunking_invariance(input in textish(), word in "[a-e]{1,4}") {
        // Processing in any chunk size gives the same count.
        let p = WordCount::new(&word);
        let whole = {
            let mut s = p.new_state();
            s.process_chunk(&input).unwrap();
            s.partial_result()
        };
        for chunk in [1usize, 3, 17, 1024] {
            let mut s = p.new_state();
            for piece in input.chunks(chunk.max(1)) {
                s.process_chunk(piece).unwrap();
            }
            prop_assert_eq!(s.partial_result(), whole.clone(), "chunk {}", chunk);
        }
    }

    #[test]
    fn checkpoints_decode_what_they_encode(input in numberish(), cut in 1u64..6) {
        // A checkpoint taken at any point restores to an equivalent state.
        let p = PrimeCount;
        if let ExecutionOutcome::Interrupted { checkpoint, processed } =
            Executor.run(&p, &input, Some(KiloBytes(cut))).unwrap()
        {
            let restored = p.restore_state(&checkpoint).unwrap();
            // Restored state checkpoints identically (idempotence).
            prop_assert_eq!(restored.checkpoint(), checkpoint);
            prop_assert!(processed <= KiloBytes(cut));
        }
    }
}
