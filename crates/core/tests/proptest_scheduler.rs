//! Property tests over the scheduling algorithms.
//!
//! For random fleets and workloads: every scheduler output must satisfy
//! the SCH constraints (validated structurally), the greedy makespan must
//! never beat the LP relaxation bound, and must never lose to its own
//! baselines by more than the baselines' own validity (they are legal
//! schedules, so greedy ≤ their makespans is *not* guaranteed in theory
//! for a greedy heuristic — we assert the relaxation sandwich instead).

use cwc_core::{
    derisk, relaxed_lower_bound, GreedyScheduler, SchedProblem, Scheduler, SchedulerKind,
};
use cwc_types::{CpuSpec, JobId, JobSpec, KiloBytes, MsPerKb, PhoneId, PhoneInfo, RadioTech};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RandomInstance {
    phones: Vec<PhoneInfo>,
    jobs: Vec<JobSpec>,
}

fn instance_strategy() -> impl Strategy<Value = RandomInstance> {
    let phone = (806u32..=1500, 1.0..70.0f64).prop_map(|(clock, b)| (clock, b));
    let job = (50u64..2_000, 5u64..60, prop::bool::ANY);
    (
        proptest::collection::vec(phone, 2..10),
        proptest::collection::vec(job, 1..25),
    )
        .prop_map(|(phones, jobs)| RandomInstance {
            phones: phones
                .into_iter()
                .enumerate()
                .map(|(i, (clock, b))| {
                    PhoneInfo::new(
                        PhoneId::from_index(i),
                        CpuSpec::new(clock, 2),
                        RadioTech::Wifi80211g,
                        MsPerKb(b),
                    )
                })
                .collect(),
            jobs: jobs
                .into_iter()
                .enumerate()
                .map(|(j, (input, exe, atomic))| {
                    let id = JobId::from_index(j);
                    if atomic {
                        JobSpec::atomic(id, "prog", KiloBytes(exe), KiloBytes(input))
                    } else {
                        JobSpec::breakable(id, "prog", KiloBytes(exe), KiloBytes(input))
                    }
                })
                .collect(),
        })
}

fn problem_of(inst: &RandomInstance) -> SchedProblem {
    // Clock-scaled costs with baseline 12 ms/KB at 806 MHz.
    let c = inst
        .phones
        .iter()
        .map(|p| {
            inst.jobs
                .iter()
                .map(|_| 12.0 * 806.0 / f64::from(p.cpu.clock_mhz))
                .collect()
        })
        .collect();
    SchedProblem::new(inst.phones.clone(), inst.jobs.clone(), c).unwrap()
}

/// Every job atomic: maximally stresses whole-item placement and the
/// infeasibility path of the binary search.
fn atomic_heavy_strategy() -> impl Strategy<Value = RandomInstance> {
    instance_strategy().prop_map(|mut inst| {
        inst.jobs = inst
            .jobs
            .into_iter()
            .map(|j| JobSpec::atomic(j.id, "prog", j.exe_kb, j.input_kb))
            .collect();
        inst
    })
}

/// Tight per-phone RAM caps: forces splits on breakables and rejects
/// bins for oversized atomics, stressing `max_fit_kb`'s clamp path.
fn ram_capped_strategy() -> impl Strategy<Value = RandomInstance> {
    (instance_strategy(), 80u64..600).prop_map(|(mut inst, ram)| {
        inst.phones = inst
            .phones
            .into_iter()
            .map(|p| p.with_ram_kb(ram))
            .collect();
        inst
    })
}

/// Asserts the optimized packer reproduces the seed (reference) packer
/// bit for bit: same assignment queues, same predicted makespan bits,
/// same stats — and never does *more* packing work.
fn assert_matches_reference(problem: &SchedProblem) {
    let sched = GreedyScheduler::default();
    let fast = sched.schedule_with_stats(problem);
    let slow = cwc_core::greedy::reference::schedule_with_stats(&sched, problem);
    match (fast, slow) {
        (Ok((fast_s, fast_stats)), Ok((slow_s, slow_stats))) => {
            assert_eq!(&fast_s.per_phone, &slow_s.per_phone);
            assert_eq!(
                fast_s.predicted_makespan_ms.to_bits(),
                slow_s.predicted_makespan_ms.to_bits(),
                "makespan bits differ: {} vs {}",
                fast_s.predicted_makespan_ms,
                slow_s.predicted_makespan_ms
            );
            assert!(
                fast_stats.pack_calls <= slow_stats.pack_calls,
                "optimized packed more: {fast_stats:?} vs {slow_stats:?}"
            );
            assert_eq!(fast_stats.binsearch_iters, slow_stats.binsearch_iters);
        }
        (Err(_), Err(_)) => {} // both infeasible: agreement
        (fast, slow) => {
            panic!("feasibility disagreement: optimized {fast:?} vs reference {slow:?}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_schedulers_produce_valid_schedules(inst in instance_strategy()) {
        let problem = problem_of(&inst);
        for kind in SchedulerKind::ALL {
            let s = Scheduler::run(kind, &problem).expect("schedulable");
            prop_assert!(s.validate(&problem).is_ok(), "{kind:?} invalid");
            prop_assert!(s.predicted_makespan_ms > 0.0);
        }
    }

    #[test]
    fn greedy_respects_relaxation_sandwich(inst in instance_strategy()) {
        let problem = problem_of(&inst);
        let greedy = GreedyScheduler::default().schedule(&problem).unwrap();
        let lb = relaxed_lower_bound(&problem).unwrap();
        prop_assert!(
            greedy.predicted_makespan_ms >= lb - 1e-6 * (1.0 + lb),
            "greedy {} below LP bound {lb}", greedy.predicted_makespan_ms
        );
    }

    #[test]
    fn greedy_never_splits_atomics_and_covers_everything(inst in instance_strategy()) {
        let problem = problem_of(&inst);
        let s = GreedyScheduler::default().schedule(&problem).unwrap();
        let parts = s.partitions_per_job();
        let mut covered = std::collections::HashMap::new();
        for a in s.per_phone.iter().flatten() {
            *covered.entry(a.job).or_insert(0u64) += a.input_kb.0;
        }
        for job in &problem.jobs {
            prop_assert_eq!(covered[&job.id], job.input_kb.0, "{} coverage", job.id);
            if job.kind.is_atomic() {
                prop_assert_eq!(parts[&job.id], 1, "{} split", job.id);
            }
        }
    }

    #[test]
    fn greedy_is_at_least_as_good_as_the_better_baseline_most_of_the_time(
        inst in instance_strategy()
    ) {
        // The greedy is a heuristic, so we assert a weaker, always-true
        // form: it never exceeds the WORSE baseline (the paper's 1.6x
        // margin is demonstrated in the figure harness, not a theorem).
        let problem = problem_of(&inst);
        let greedy = GreedyScheduler::default().schedule(&problem).unwrap();
        let worse = SchedulerKind::ALL
            .iter()
            .filter(|k| **k != SchedulerKind::Greedy)
            .filter_map(|k| Scheduler::run(*k, &problem).ok())
            .map(|s| s.predicted_makespan_ms)
            .fold(0.0f64, f64::max);
        if worse > 0.0 {
            prop_assert!(
                greedy.predicted_makespan_ms <= worse * 1.05,
                "greedy {} far above worst baseline {worse}",
                greedy.predicted_makespan_ms
            );
        }
    }

    #[test]
    fn optimized_packer_is_byte_identical_to_the_reference(inst in instance_strategy()) {
        assert_matches_reference(&problem_of(&inst));
    }

    #[test]
    fn optimized_packer_matches_reference_on_atomic_heavy_instances(
        inst in atomic_heavy_strategy()
    ) {
        assert_matches_reference(&problem_of(&inst));
    }

    #[test]
    fn optimized_packer_matches_reference_on_ram_capped_instances(
        inst in ram_capped_strategy()
    ) {
        assert_matches_reference(&problem_of(&inst));
    }

    #[test]
    fn derisk_with_zero_aggressiveness_is_a_scheduling_identity(
        inst in instance_strategy(),
        probs in proptest::collection::vec(0.0..=1.0f64, 10),
    ) {
        // aggressiveness = 0 must be a no-op end to end: not just equal
        // costs, but a byte-identical schedule out of the packer.
        let problem = problem_of(&inst);
        let fail_prob = &probs[..problem.num_phones()];
        let derisked = derisk(&problem, fail_prob, 0.0).unwrap();
        let neutral = GreedyScheduler::default().schedule(&problem).unwrap();
        let risk_aware = GreedyScheduler::default().schedule(&derisked).unwrap();
        prop_assert_eq!(&neutral.per_phone, &risk_aware.per_phone);
        prop_assert_eq!(
            neutral.predicted_makespan_ms.to_bits(),
            risk_aware.predicted_makespan_ms.to_bits()
        );
    }

    #[test]
    fn assigned_bytes_are_monotone_non_increasing_in_fail_prob(
        inst in instance_strategy(),
        phone_ix in any::<prop::sample::Index>(),
        lo in 0.0..=1.0f64,
        hi in 0.0..=1.0f64,
    ) {
        // Raising one phone's failure probability (all else equal) never
        // hands that phone MORE bytes: its effective cost only grows, so
        // the greedy packer can only shift work away from it.
        let problem = problem_of(&inst);
        let i = phone_ix.index(problem.num_phones());
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        let assigned_kb = |p: f64| -> u64 {
            let mut probs = vec![0.0; problem.num_phones()];
            probs[i] = p;
            let derisked = derisk(&problem, &probs, 1.0).unwrap();
            let s = GreedyScheduler::default().schedule(&derisked).unwrap();
            s.per_phone[i].iter().map(|a| a.input_kb.0).sum()
        };
        prop_assert!(
            assigned_kb(hi) <= assigned_kb(lo),
            "phone {i}: load at p={hi} exceeds load at p={lo}"
        );
    }

    #[test]
    fn warm_started_search_is_valid_and_never_packs_more(inst in instance_strategy()) {
        // Warm schedules may legitimately differ from cold ones inside
        // the tolerance window; what must hold is validity, comparable
        // quality, and no extra packing work on a hit.
        let problem = problem_of(&inst);
        let sched = GreedyScheduler::default();
        if let Ok((cold_s, cold_stats, warm)) = sched.schedule_warm_with_stats(&problem, None) {
            let (warm_s, warm_stats, _) = sched
                .schedule_warm_with_stats(&problem, Some(warm))
                .expect("warm rerun of a feasible instance stays feasible");
            prop_assert!(warm_s.validate(&problem).is_ok());
            prop_assert!(
                warm_s.predicted_makespan_ms <= cold_s.predicted_makespan_ms * 1.05 + 1.0,
                "warm {} much worse than cold {}",
                warm_s.predicted_makespan_ms,
                cold_s.predicted_makespan_ms
            );
            if warm_stats.warm_hits > 0 {
                prop_assert!(
                    warm_stats.pack_calls <= cold_stats.pack_calls,
                    "warm hit but packed more: {warm_stats:?} vs {cold_stats:?}"
                );
            }
        }
    }
}
