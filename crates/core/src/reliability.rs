//! Failure-prediction-aware scheduling — the extension §3.1 sketches.
//!
//! *"Profiling an individual user's behavior can allow the prediction of
//! device specific failures. This can help since tasks can be migrated to
//! phones that are less likely to fail at the time of consideration."*
//!
//! The hook is a cost transformation. If phone *i* has probability `p_i`
//! of being unplugged during the scheduling horizon, work placed on it is
//! interrupted and re-executed elsewhere with probability ≈ `p_i`; in
//! expectation every unit of work costs `1/(1 − p_i)` units. Scaling both
//! `b_i` and `c_ij` by that factor makes the unchanged greedy packer
//! risk-aware: flaky phones look slower, so they receive less — and less
//! critical — work, without any change to Algorithm 1 itself.

use crate::problem::SchedProblem;
use cwc_types::{CwcError, CwcResult, MsPerKb};

/// Ceiling on the per-phone failure probability used for derisking;
/// beyond this a phone is effectively excluded (cost × 20) rather than
/// producing absurd scale factors.
pub const MAX_EFFECTIVE_FAIL_PROB: f64 = 0.95;

/// Transforms a scheduling problem so each phone's costs reflect its
/// failure probability over the scheduling horizon.
///
/// `fail_prob[i]` corresponds to `problem.phones[i]`; values are clamped
/// to `[0, MAX_EFFECTIVE_FAIL_PROB]`. `aggressiveness` ∈ [0, 1] blends
/// between risk-neutral (0: no change) and full expected-rework pricing
/// (1). The transformed problem schedules with the ordinary greedy
/// packer.
pub fn derisk(
    problem: &SchedProblem,
    fail_prob: &[f64],
    aggressiveness: f64,
) -> CwcResult<SchedProblem> {
    if fail_prob.len() != problem.num_phones() {
        return Err(CwcError::Config(format!(
            "fail_prob has {} entries for {} phones",
            fail_prob.len(),
            problem.num_phones()
        )));
    }
    if !(0.0..=1.0).contains(&aggressiveness) {
        return Err(CwcError::Config(format!(
            "aggressiveness {aggressiveness} outside [0, 1]"
        )));
    }
    let mut phones = problem.phones.clone();
    let mut c = problem.c.clone();
    for ((phone, &p), row) in phones.iter_mut().zip(fail_prob).zip(&mut c) {
        if !(0.0..=1.0).contains(&p) {
            return Err(CwcError::Config(format!(
                "failure probability {p} for {} outside [0, 1]",
                phone.id
            )));
        }
        let p = p.min(MAX_EFFECTIVE_FAIL_PROB);
        // Expected-rework factor, blended by aggressiveness.
        let factor = 1.0 + aggressiveness * (1.0 / (1.0 - p) - 1.0);
        phone.bandwidth = MsPerKb(phone.bandwidth.0 * factor);
        for cost in row {
            *cost *= factor;
        }
    }
    SchedProblem::new(phones, problem.jobs.clone(), c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::GreedyScheduler;
    use crate::problem::test_support::instance;

    #[test]
    fn zero_risk_is_identity() {
        let problem = instance(4, 8);
        let derisked = derisk(&problem, &[0.0; 4], 1.0).unwrap();
        for i in 0..4 {
            assert_eq!(
                problem.phones[i].bandwidth.0,
                derisked.phones[i].bandwidth.0
            );
            assert_eq!(problem.c[i], derisked.c[i]);
        }
    }

    #[test]
    fn zero_aggressiveness_is_identity() {
        let problem = instance(4, 8);
        let derisked = derisk(&problem, &[0.9, 0.5, 0.1, 0.0], 0.0).unwrap();
        for i in 0..4 {
            assert_eq!(problem.c[i], derisked.c[i]);
        }
    }

    #[test]
    fn risky_phone_costs_inflate_by_expected_rework() {
        let problem = instance(2, 4);
        let derisked = derisk(&problem, &[0.5, 0.0], 1.0).unwrap();
        // p = 0.5 → factor 2.
        assert!((derisked.c[0][0] - problem.c[0][0] * 2.0).abs() < 1e-12);
        assert!(
            (derisked.phones[0].bandwidth.0 - problem.phones[0].bandwidth.0 * 2.0).abs() < 1e-12
        );
        assert_eq!(derisked.c[1], problem.c[1]);
    }

    #[test]
    fn certain_failure_is_clamped_not_infinite() {
        let problem = instance(2, 4);
        let derisked = derisk(&problem, &[1.0, 0.0], 1.0).unwrap();
        assert!(derisked.c[0][0].is_finite());
        assert!(derisked.c[0][0] > problem.c[0][0] * 10.0);
    }

    #[test]
    fn scheduler_shifts_work_away_from_risky_phones() {
        let problem = instance(4, 12);
        let neutral = GreedyScheduler::default().schedule(&problem).unwrap();
        // Phone 0 is 80% likely to vanish.
        let derisked = derisk(&problem, &[0.8, 0.0, 0.0, 0.0], 1.0).unwrap();
        let aware = GreedyScheduler::default().schedule(&derisked).unwrap();
        aware.validate(&derisked).unwrap();
        let load = |s: &crate::Schedule, i: usize| -> u64 {
            s.per_phone[i].iter().map(|a| a.input_kb.0).sum()
        };
        assert!(
            load(&aware, 0) < load(&neutral, 0),
            "risk-aware load {} should undercut neutral {}",
            load(&aware, 0),
            load(&neutral, 0)
        );
    }

    #[test]
    fn rejects_malformed_inputs() {
        let problem = instance(2, 2);
        assert!(derisk(&problem, &[0.1], 1.0).is_err());
        assert!(derisk(&problem, &[0.1, 1.5], 1.0).is_err());
        assert!(derisk(&problem, &[0.1, 0.1], 2.0).is_err());
    }

    #[test]
    fn rejects_non_finite_and_negative_probabilities() {
        let problem = instance(2, 2);
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.01, 1.01] {
            let err = derisk(&problem, &[bad, 0.0], 1.0);
            assert!(
                matches!(err, Err(CwcError::Config(_))),
                "fail_prob {bad} must be a Config error, got {err:?}"
            );
        }
        // NaN aggressiveness fails the same range check.
        assert!(matches!(
            derisk(&problem, &[0.0, 0.0], f64::NAN),
            Err(CwcError::Config(_))
        ));
    }

    #[test]
    fn exclusion_edge_caps_inflation_at_twenty_fold() {
        // At and beyond MAX_EFFECTIVE_FAIL_PROB the factor saturates at
        // 1/(1 - 0.95) = 20: a doomed phone is effectively excluded, not
        // priced into infinity — and the edge is continuous (p just below
        // the cap prices just below ×20).
        let problem = instance(3, 4);
        let derisked = derisk(&problem, &[MAX_EFFECTIVE_FAIL_PROB, 1.0, 0.949], 1.0).unwrap();
        for i in [0usize, 1] {
            assert!(
                (derisked.c[i][0] - problem.c[i][0] * 20.0).abs() < 1e-9,
                "phone {i} factor should clamp to exactly 20"
            );
            assert!(
                (derisked.phones[i].bandwidth.0 - problem.phones[i].bandwidth.0 * 20.0).abs()
                    < 1e-9
            );
        }
        let near = derisked.c[2][0] / problem.c[2][0];
        assert!(near < 20.0 && near > 19.0, "near-cap factor {near}");
    }
}
