//! The LP relaxation lower bound (§6, Fig. 13).
//!
//! The paper benchmarks the greedy scheduler against a loose lower bound:
//! relax the integrality of `u_ij`, linearize the quadratic term
//! `u_ij · l_ij` with the constraint `l_ij ≤ L_j · u_ij`, and solve the
//! resulting LP. Then `T_relaxed ≤ T_optimal ≤ T_cwc`.
//!
//! Two builders are provided:
//!
//! * [`relaxed_lower_bound`] — the *reduced* LP. In the relaxed program
//!   the optimal indicator is always `u_ij = l_ij / L_j` (it appears with
//!   a non-negative coefficient, so it sits at its lower bound), which
//!   substitutes away half the variables and all linking rows: per-phone
//!   load becomes `Σ_j l_ij · (E_j·b_i/L_j + b_i + c_ij) ≤ T`. This is
//!   what the 1000-configuration Fig. 13 sweep runs.
//! * [`relaxed_lower_bound_full`] — the paper's formulation verbatim
//!   (variables `T`, `l_ij`, `u_ij`, linking constraints). Exponentially
//!   bigger tableau; used in tests to confirm the reduction is exact.

use crate::problem::SchedProblem;
use cwc_lp::{LinearProgram, LpOutcome, Relation};
use cwc_types::{CwcError, CwcResult};

/// Solves the reduced relaxation and returns `T_relaxed` in ms.
pub fn relaxed_lower_bound(problem: &SchedProblem) -> CwcResult<f64> {
    let p = problem.num_phones();
    let jn = problem.num_jobs();
    // Variables: [0] = T, then l_ij at 1 + i·jn + j.
    let nvars = 1 + p * jn;
    let mut objective = vec![0.0; nvars];
    objective[0] = 1.0;
    let mut lp = LinearProgram::minimize(objective);
    let lvar = |i: usize, j: usize| 1 + i * jn + j;

    // Per-phone load ≤ T.
    for i in 0..p {
        let b = problem.phones[i].bandwidth.0;
        let mut terms = Vec::with_capacity(jn + 1);
        for j in 0..jn {
            let w = problem.jobs[j].exe_kb.as_f64() * b / problem.jobs[j].input_kb.as_f64()
                + problem.per_kb_ms(i, j);
            terms.push((lvar(i, j), w));
        }
        terms.push((0, -1.0));
        lp.constrain(terms, Relation::Le, 0.0);
    }
    // Coverage: Σ_i l_ij = L_j.
    for j in 0..jn {
        let terms: Vec<(usize, f64)> = (0..p).map(|i| (lvar(i, j), 1.0)).collect();
        lp.constrain(terms, Relation::Eq, problem.jobs[j].input_kb.as_f64());
    }

    solve_for_t(&lp)
}

/// Solves the paper's full relaxed formulation (for verification on small
/// instances).
pub fn relaxed_lower_bound_full(problem: &SchedProblem) -> CwcResult<f64> {
    let p = problem.num_phones();
    let jn = problem.num_jobs();
    // Variables: [0]=T, l_ij at 1+i·jn+j, u_ij at 1+p·jn+i·jn+j.
    let nvars = 1 + 2 * p * jn;
    let mut objective = vec![0.0; nvars];
    objective[0] = 1.0;
    let mut lp = LinearProgram::minimize(objective);
    let lvar = |i: usize, j: usize| 1 + i * jn + j;
    let uvar = |i: usize, j: usize| 1 + p * jn + i * jn + j;

    for i in 0..p {
        let b = problem.phones[i].bandwidth.0;
        let mut terms = Vec::with_capacity(2 * jn + 1);
        for j in 0..jn {
            terms.push((uvar(i, j), problem.jobs[j].exe_kb.as_f64() * b));
            terms.push((lvar(i, j), problem.per_kb_ms(i, j)));
        }
        terms.push((0, -1.0));
        lp.constrain(terms, Relation::Le, 0.0);
    }
    for j in 0..jn {
        let terms: Vec<(usize, f64)> = (0..p).map(|i| (lvar(i, j), 1.0)).collect();
        lp.constrain(terms, Relation::Eq, problem.jobs[j].input_kb.as_f64());
    }
    // Linking l_ij ≤ L_j · u_ij, and u_ij ≤ 1.
    for i in 0..p {
        for j in 0..jn {
            lp.constrain(
                vec![
                    (lvar(i, j), 1.0),
                    (uvar(i, j), -problem.jobs[j].input_kb.as_f64()),
                ],
                Relation::Le,
                0.0,
            );
            lp.constrain(vec![(uvar(i, j), 1.0)], Relation::Le, 1.0);
        }
    }
    // Atomic jobs: Σ_i u_ij = 1 (satisfiable at u = l/L, see module docs).
    for (j, job) in problem.jobs.iter().enumerate() {
        if job.kind.is_atomic() {
            let terms: Vec<(usize, f64)> = (0..p).map(|i| (uvar(i, j), 1.0)).collect();
            lp.constrain(terms, Relation::Eq, 1.0);
        }
    }

    solve_for_t(&lp)
}

fn solve_for_t(lp: &LinearProgram) -> CwcResult<f64> {
    match lp.solve().map_err(CwcError::Solver)? {
        LpOutcome::Optimal(sol) => Ok(sol.objective),
        LpOutcome::Infeasible => Err(CwcError::Solver(
            "relaxation infeasible (should never happen)".into(),
        )),
        LpOutcome::Unbounded => Err(CwcError::Solver(
            "relaxation unbounded (should never happen)".into(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::GreedyScheduler;
    use crate::problem::test_support::instance;

    #[test]
    fn bound_is_positive_and_below_greedy() {
        let problem = instance(4, 10);
        let lb = relaxed_lower_bound(&problem).unwrap();
        let greedy = GreedyScheduler::default().schedule(&problem).unwrap();
        assert!(lb > 0.0);
        assert!(
            lb <= greedy.predicted_makespan_ms + 1e-6,
            "T_relaxed {lb} must lower-bound T_cwc {}",
            greedy.predicted_makespan_ms
        );
    }

    #[test]
    fn reduced_equals_full_formulation() {
        for (p, j) in [(2usize, 3usize), (3, 4), (4, 6)] {
            let problem = instance(p, j);
            let reduced = relaxed_lower_bound(&problem).unwrap();
            let full = relaxed_lower_bound_full(&problem).unwrap();
            assert!(
                (reduced - full).abs() < 1e-4 * (1.0 + full.abs()),
                "{p}x{j}: reduced {reduced} vs full {full}"
            );
        }
    }

    #[test]
    fn single_phone_bound_is_exact_modulo_exe() {
        // With one phone the relaxation is the whole workload on it —
        // including every executable (u must be 1 for atomic jobs and
        // exe cost is linear in u ≥ l/L = 1).
        let problem = instance(1, 3);
        let lb = relaxed_lower_bound(&problem).unwrap();
        let total: f64 = (0..problem.num_jobs())
            .map(|j| problem.full_cost_ms(0, j))
            .sum();
        assert!(
            (lb - total).abs() < 1e-6 * total,
            "lb {lb} vs serial total {total}"
        );
    }

    #[test]
    fn bound_shrinks_with_more_phones() {
        let small = instance(2, 8);
        let big = instance(8, 8);
        let lb_small = relaxed_lower_bound(&small).unwrap();
        let lb_big = relaxed_lower_bound(&big).unwrap();
        assert!(
            lb_big < lb_small,
            "more phones must not raise the bound: {lb_big} vs {lb_small}"
        );
    }
}
