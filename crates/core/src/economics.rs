//! Energy-cost arithmetic (§3.2).
//!
//! The paper's case for CWC's operating-cost savings: a datacenter server
//! burns 26.8 W (Intel Core 2 Duo) to 248 W (Nehalem) at the plug, which
//! a PUE of 2.5 multiplies with cooling and distribution overhead; a
//! smartphone peaks at 1.2 W and needs no cooling. At the April-2011
//! average commercial rate of 12.7 ¢/kWh this puts a Core 2 Duo server at
//! ≈$74.5/year versus ≈$1.33/year per phone.

/// Peak power of the Intel Core 2 Duo reference server, watts.
pub const CORE2DUO_WATTS: f64 = 26.8;
/// Peak power of the Intel Nehalem reference server, watts.
pub const NEHALEM_WATTS: f64 = 248.0;
/// Peak power of the reference smartphone (Tegra 3 class), watts.
pub const SMARTPHONE_WATTS: f64 = 1.2;
/// Average Power Usage Effectiveness the paper assumes for datacenters.
pub const DATACENTER_PUE: f64 = 2.5;
/// Average US commercial electricity price, April 2011, $/kWh.
pub const USD_PER_KWH_2011: f64 = 0.127;

/// Annual energy cost in dollars for a device drawing `watts`
/// continuously, with facility overhead factor `pue` (1.0 = none), at
/// `usd_per_kwh`.
pub fn annual_energy_cost_usd(watts: f64, pue: f64, usd_per_kwh: f64) -> f64 {
    assert!(watts >= 0.0 && pue >= 1.0 && usd_per_kwh >= 0.0);
    watts * pue / 1000.0 * 24.0 * 365.0 * usd_per_kwh
}

/// The paper's §3.2 comparison table.
#[derive(Debug, Clone, Copy)]
pub struct EnergyComparison {
    /// Core 2 Duo server, with PUE.
    pub core2duo_usd_per_year: f64,
    /// Nehalem server, with PUE.
    pub nehalem_usd_per_year: f64,
    /// One smartphone, no cooling overhead.
    pub phone_usd_per_year: f64,
}

impl EnergyComparison {
    /// Computes the comparison at the paper's constants.
    pub fn paper() -> Self {
        EnergyComparison {
            core2duo_usd_per_year: annual_energy_cost_usd(
                CORE2DUO_WATTS,
                DATACENTER_PUE,
                USD_PER_KWH_2011,
            ),
            nehalem_usd_per_year: annual_energy_cost_usd(
                NEHALEM_WATTS,
                DATACENTER_PUE,
                USD_PER_KWH_2011,
            ),
            phone_usd_per_year: annual_energy_cost_usd(SMARTPHONE_WATTS, 1.0, USD_PER_KWH_2011),
        }
    }

    /// How many phones one Core 2 Duo server's energy budget operates.
    pub fn phones_per_server(&self) -> f64 {
        self.core2duo_usd_per_year / self.phone_usd_per_year
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core2duo_server_costs_74_50_per_year() {
        let c = EnergyComparison::paper();
        // Paper: 67 W (26.8 × 2.5) → $74.5/year.
        assert!(
            (c.core2duo_usd_per_year - 74.5).abs() < 0.5,
            "{}",
            c.core2duo_usd_per_year
        );
    }

    #[test]
    fn nehalem_server_costs_689_per_year() {
        let c = EnergyComparison::paper();
        assert!(
            (c.nehalem_usd_per_year - 689.0).abs() < 2.0,
            "{}",
            c.nehalem_usd_per_year
        );
    }

    #[test]
    fn phone_costs_1_33_per_year() {
        let c = EnergyComparison::paper();
        assert!(
            (c.phone_usd_per_year - 1.33).abs() < 0.02,
            "{}",
            c.phone_usd_per_year
        );
    }

    #[test]
    fn order_of_magnitude_claim_holds() {
        let c = EnergyComparison::paper();
        assert!(c.phones_per_server() > 10.0);
    }

    #[test]
    #[should_panic]
    fn pue_below_one_rejected() {
        let _ = annual_energy_cost_usd(10.0, 0.5, 0.1);
    }
}
