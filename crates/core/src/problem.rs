//! The scheduling problem instance and the Eq. 1 cost model.

use cwc_types::{CwcError, CwcResult, JobSpec, KiloBytes, PhoneInfo};

/// A scheduling problem: the phones available this round, the jobs to
/// place, and the predicted per-KB execution costs.
///
/// Indices, not ids, are used internally: `phones[i]` and `jobs[j]` define
/// the meaning of `c[i][j]`.
#[derive(Debug, Clone)]
pub struct SchedProblem {
    /// Phones available for this scheduling round.
    pub phones: Vec<PhoneInfo>,
    /// Jobs awaiting placement.
    pub jobs: Vec<JobSpec>,
    /// `c[i][j]`: predicted ms per KB for phone `i` executing job `j`.
    pub c: Vec<Vec<f64>>,
}

impl SchedProblem {
    /// Builds and validates a problem instance.
    pub fn new(phones: Vec<PhoneInfo>, jobs: Vec<JobSpec>, c: Vec<Vec<f64>>) -> CwcResult<Self> {
        if phones.is_empty() {
            return Err(CwcError::Config("no phones available".into()));
        }
        if jobs.is_empty() {
            return Err(CwcError::Config("no jobs to schedule".into()));
        }
        for p in &phones {
            p.validate()?;
        }
        for j in &jobs {
            j.validate()?;
        }
        if c.len() != phones.len() || c.iter().any(|row| row.len() != jobs.len()) {
            return Err(CwcError::Config(format!(
                "cost matrix must be {}x{}",
                phones.len(),
                jobs.len()
            )));
        }
        for row in &c {
            if row.iter().any(|v| !v.is_finite() || *v <= 0.0) {
                return Err(CwcError::Config(
                    "cost matrix entries must be positive".into(),
                ));
            }
        }
        Ok(SchedProblem { phones, jobs, c })
    }

    /// Number of phones.
    pub fn num_phones(&self) -> usize {
        self.phones.len()
    }

    /// Number of jobs.
    pub fn num_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Index of the slowest-clocked phone — the sort key owner in
    /// Algorithm 1 (`c_sj`).
    pub fn slowest_phone(&self) -> usize {
        self.phones
            .iter()
            .enumerate()
            .min_by_key(|(_, p)| p.cpu.clock_mhz)
            .map(|(i, _)| i)
            .expect("validated: phones non-empty")
    }

    /// **Equation 1**: time (ms) for phone `i` to fetch and process `x` KB
    /// of job `j`, optionally paying the executable-shipping cost
    /// (`E_j · b_i`, paid once per phone–job pair).
    pub fn cost_ms(&self, i: usize, j: usize, x: KiloBytes, include_exe: bool) -> f64 {
        let b = self.phones[i].bandwidth.0;
        let exe = if include_exe {
            self.jobs[j].exe_kb.as_f64() * b
        } else {
            0.0
        };
        exe + x.as_f64() * (b + self.c[i][j])
    }

    /// Per-KB marginal cost (transfer + compute) of job `j` on phone `i`.
    pub fn per_kb_ms(&self, i: usize, j: usize) -> f64 {
        self.phones[i].bandwidth.0 + self.c[i][j]
    }

    /// Cost of running job `j` *entirely* on phone `i` (used when opening
    /// bins and for the worst-bin upper bound).
    pub fn full_cost_ms(&self, i: usize, j: usize) -> f64 {
        self.cost_ms(i, j, self.jobs[j].input_kb, true)
    }

    /// Largest partition of job `j` (in KB) that fits in `room_ms` on
    /// phone `i`, also respecting the phone's RAM cap.
    pub fn max_fit_kb(&self, i: usize, j: usize, room_ms: f64, include_exe: bool) -> KiloBytes {
        let b = self.phones[i].bandwidth.0;
        let exe = if include_exe {
            self.jobs[j].exe_kb.as_f64() * b
        } else {
            0.0
        };
        let usable = room_ms - exe;
        if usable <= 0.0 {
            return KiloBytes::ZERO;
        }
        let kb = (usable / self.per_kb_ms(i, j)).floor();
        let kb = if kb < 0.0 { 0 } else { kb as u64 };
        KiloBytes(kb.min(self.phones[i].ram_kb))
    }

    /// Builds the flat per-(phone, job) cost tables used by the packing
    /// hot path.
    ///
    /// The tables are rebuilt per [`crate::GreedyScheduler::schedule`]
    /// call rather than cached at construction because the problem's
    /// fields are public and callers (tests, the §3.1 derisk transform)
    /// mutate them after `new`.
    pub fn tables(&self) -> CostTables {
        CostTables::new(self)
    }
}

/// Flat, contiguous per-(phone, job) cost tables — the Eq. 1 terms the
/// packing inner loops touch, precomputed once per `schedule()` call so
/// `cost_ms` / `max_fit_kb` / `per_kb_ms` become multiply-adds over
/// dense arrays instead of repeated recomputation through nested `Vec`s.
///
/// Every entry is produced by *exactly* the same floating-point
/// operations as the corresponding [`SchedProblem`] method
/// (`per_kb = b_i + c[i][j]`, `exe = E_j · b_i`), so a search driven by
/// these tables is bit-for-bit identical to one driven by the methods.
#[derive(Debug, Clone)]
pub struct CostTables {
    num_jobs: usize,
    /// `per_kb[i · num_jobs + j] = b_i + c[i][j]` (ms per KB).
    per_kb: Vec<f64>,
    /// `exe_cost[i · num_jobs + j] = E_j · b_i` (ms, paid once per pair).
    exe_cost: Vec<f64>,
    /// Per-phone RAM cap, KB.
    ram_kb: Vec<u64>,
    /// `min_per_kb[j] = min_i per_kb[i][j]` — the cheapest possible
    /// marginal cost of one KB of job `j` anywhere in the fleet, used as
    /// a sound lower bound on the room any placement of `j` needs.
    min_per_kb: Vec<f64>,
}

impl CostTables {
    fn new(problem: &SchedProblem) -> CostTables {
        let num_jobs = problem.num_jobs();
        let num_phones = problem.num_phones();
        let mut per_kb = Vec::with_capacity(num_phones * num_jobs);
        let mut exe_cost = Vec::with_capacity(num_phones * num_jobs);
        let mut min_per_kb = vec![f64::INFINITY; num_jobs];
        for (i, phone) in problem.phones.iter().enumerate() {
            let b = phone.bandwidth.0;
            for (j, job) in problem.jobs.iter().enumerate() {
                let rate = b + problem.c[i][j];
                per_kb.push(rate);
                exe_cost.push(job.exe_kb.as_f64() * b);
                if rate < min_per_kb[j] {
                    min_per_kb[j] = rate;
                }
            }
        }
        CostTables {
            num_jobs,
            per_kb,
            exe_cost,
            ram_kb: problem.phones.iter().map(|p| p.ram_kb).collect(),
            min_per_kb,
        }
    }

    #[inline]
    fn idx(&self, i: usize, j: usize) -> usize {
        i * self.num_jobs + j
    }

    /// Eq. 1 over the flat tables; identical arithmetic to
    /// [`SchedProblem::cost_ms`].
    #[inline]
    pub fn cost_ms(&self, i: usize, j: usize, x: KiloBytes, include_exe: bool) -> f64 {
        let idx = self.idx(i, j);
        let exe = if include_exe { self.exe_cost[idx] } else { 0.0 };
        exe + x.as_f64() * self.per_kb[idx]
    }

    /// Per-KB marginal cost; identical to [`SchedProblem::per_kb_ms`].
    #[inline]
    pub fn per_kb_ms(&self, i: usize, j: usize) -> f64 {
        self.per_kb[self.idx(i, j)]
    }

    /// Execution-transfer overhead `E_j · b_i`, ms.
    #[inline]
    pub fn exe_ms(&self, i: usize, j: usize) -> f64 {
        self.exe_cost[self.idx(i, j)]
    }

    /// RAM ceiling of phone `i`, KB.
    #[inline]
    pub fn ram_kb(&self, i: usize) -> u64 {
        self.ram_kb[i]
    }

    /// Largest fitting partition; identical arithmetic to
    /// [`SchedProblem::max_fit_kb`].
    #[inline]
    pub fn max_fit_kb(&self, i: usize, j: usize, room_ms: f64, include_exe: bool) -> KiloBytes {
        let idx = self.idx(i, j);
        let exe = if include_exe { self.exe_cost[idx] } else { 0.0 };
        let usable = room_ms - exe;
        if usable <= 0.0 {
            return KiloBytes::ZERO;
        }
        let kb = (usable / self.per_kb[idx]).floor();
        let kb = if kb < 0.0 { 0 } else { kb as u64 };
        KiloBytes(kb.min(self.ram_kb[i]))
    }

    /// Cheapest marginal cost of one KB of job `j` across the fleet.
    #[inline]
    pub fn min_per_kb_ms(&self, j: usize) -> f64 {
        self.min_per_kb[j]
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    //! Shared instance builders for the scheduler tests.

    use super::*;
    use cwc_types::{CpuSpec, JobId, MsPerKb, PhoneId, RadioTech};

    /// `n` phones alternating fast/slow CPU and link.
    pub fn phones(n: usize) -> Vec<PhoneInfo> {
        (0..n)
            .map(|i| {
                let clock = if i % 2 == 0 { 806 } else { 1400 };
                let b = 1.0 + 7.0 * (i % 3) as f64;
                PhoneInfo::new(
                    PhoneId::from_index(i),
                    CpuSpec::new(clock, 2),
                    RadioTech::Wifi80211g,
                    MsPerKb(b),
                )
            })
            .collect()
    }

    /// `n` jobs alternating breakable/atomic with varied sizes.
    pub fn jobs(n: usize) -> Vec<JobSpec> {
        (0..n)
            .map(|j| {
                let id = JobId::from_index(j);
                let size = KiloBytes(200 + 150 * (j as u64 % 5));
                if j % 3 == 2 {
                    JobSpec::atomic(id, "photoblur", KiloBytes(40), size)
                } else {
                    JobSpec::breakable(id, "primecount", KiloBytes(30), size)
                }
            })
            .collect()
    }

    /// Clock-scaled cost matrix with baseline 10 ms/KB at 806 MHz.
    pub fn costs(phones: &[PhoneInfo], jobs: &[JobSpec]) -> Vec<Vec<f64>> {
        phones
            .iter()
            .map(|p| {
                jobs.iter()
                    .map(|_| 10.0 * 806.0 / f64::from(p.cpu.clock_mhz))
                    .collect()
            })
            .collect()
    }

    /// A ready-made medium instance.
    pub fn instance(num_phones: usize, num_jobs: usize) -> SchedProblem {
        let p = phones(num_phones);
        let j = jobs(num_jobs);
        let c = costs(&p, &j);
        SchedProblem::new(p, j, c).unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::*;
    use super::*;
    use cwc_types::{CpuSpec, JobId, MsPerKb, PhoneId, RadioTech};

    #[test]
    fn eq1_matches_hand_computation() {
        let prob = instance(2, 2);
        // phone 0: b = 1.0, c = 10.0; job 0: exe 30 KB.
        let cost = prob.cost_ms(0, 0, KiloBytes(100), true);
        // 30·1 + 100·(1 + 10) = 30 + 1100 = 1130.
        assert!((cost - 1130.0).abs() < 1e-9, "cost {cost}");
        // Without exe: 1100.
        assert!((prob.cost_ms(0, 0, KiloBytes(100), false) - 1100.0).abs() < 1e-9);
    }

    #[test]
    fn slowest_phone_is_lowest_clock() {
        let prob = instance(4, 2);
        let s = prob.slowest_phone();
        assert_eq!(prob.phones[s].cpu.clock_mhz, 806);
    }

    #[test]
    fn max_fit_inverts_cost() {
        let prob = instance(2, 2);
        let room = prob.cost_ms(0, 0, KiloBytes(100), true);
        let fit = prob.max_fit_kb(0, 0, room, true);
        assert_eq!(fit, KiloBytes(100));
        // A hair less room fits one KB less.
        let fit2 = prob.max_fit_kb(0, 0, room - 0.001, true);
        assert_eq!(fit2, KiloBytes(99));
    }

    #[test]
    fn max_fit_respects_ram_cap() {
        let mut p = phones(1);
        p[0].ram_kb = 50;
        let j = jobs(1);
        let c = costs(&p, &j);
        let prob = SchedProblem::new(p, j, c).unwrap();
        let fit = prob.max_fit_kb(0, 0, 1e9, true);
        assert_eq!(fit, KiloBytes(50));
    }

    #[test]
    fn max_fit_zero_when_exe_does_not_fit() {
        let prob = instance(1, 1);
        // Exe alone costs 30·1 = 30 ms; give less room.
        assert_eq!(prob.max_fit_kb(0, 0, 10.0, true), KiloBytes::ZERO);
    }

    #[test]
    fn validation_rejects_bad_instances() {
        assert!(SchedProblem::new(vec![], jobs(1), vec![]).is_err());
        assert!(SchedProblem::new(phones(1), vec![], vec![vec![]]).is_err());
        // Wrong matrix shape.
        assert!(SchedProblem::new(phones(2), jobs(2), vec![vec![1.0, 1.0]]).is_err());
        // Non-positive cost.
        assert!(SchedProblem::new(phones(1), jobs(1), vec![vec![0.0]]).is_err());
        // Invalid phone bandwidth.
        let bad_phone = PhoneInfo::new(
            PhoneId(0),
            CpuSpec::new(1000, 1),
            RadioTech::Edge,
            MsPerKb(f64::INFINITY),
        );
        assert!(SchedProblem::new(vec![bad_phone], jobs(1), vec![vec![1.0]]).is_err());
        // Invalid job.
        let bad_job = JobSpec::breakable(JobId(0), "x", KiloBytes(1), KiloBytes::ZERO);
        assert!(SchedProblem::new(phones(1), vec![bad_job], vec![vec![1.0]]).is_err());
    }
}
