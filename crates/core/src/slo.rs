//! Proactive-reliability policy knobs (DESIGN.md §12).
//!
//! The paper's §3.1 extension predicts per-phone failures; [`crate::reliability`]
//! uses those predictions *passively*, repricing costs so flaky phones
//! receive less work. The policies here use the same predictions
//! *proactively*: atomic work placed on a risky phone gets a replica on an
//! independent phone ([`ReplicationPolicy`]), and chunks that fall behind
//! their predicted finish get a speculative second copy
//! ([`SpeculationPolicy`]) — first result wins, the loser is cancelled.
//!
//! Both policies are pure data; every decision they parameterize is made
//! inside the sans-IO coordinator kernel, so the simulator, the live TCP
//! path, and script replay all inherit identical (byte-for-byte) replica
//! and speculation behavior.

use cwc_types::{CwcError, CwcResult};

/// Risk-driven replication of atomic placements.
///
/// At the initial scheduling instant, any *atomic* partition placed on a
/// phone whose predicted unplug probability exceeds [`ReplicationPolicy::threshold`]
/// is also queued on the most reliable independent phone. Whichever copy
/// reports first wins; the kernel cancels the other and credits the job
/// exactly once.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicationPolicy {
    /// Predicted failure probability above which an atomic placement is
    /// replicated. Must lie in `[0, 1]`.
    pub threshold: f64,
}

impl ReplicationPolicy {
    /// Builds a policy, rejecting thresholds outside `[0, 1]` (NaN
    /// included — it fails the range check).
    pub fn new(threshold: f64) -> CwcResult<Self> {
        if !(0.0..=1.0).contains(&threshold) {
            return Err(CwcError::Config(format!(
                "replication threshold {threshold} outside [0, 1]"
            )));
        }
        Ok(ReplicationPolicy { threshold })
    }
}

impl Default for ReplicationPolicy {
    fn default() -> Self {
        ReplicationPolicy { threshold: 0.5 }
    }
}

/// Speculative re-execution of stragglers.
///
/// When a shipped chunk has been in flight longer than `slack ×` its
/// predicted transfer+execute time, the kernel launches one speculative
/// copy of it on the least-loaded live phone — bounded by `budget` copies
/// per run so a sick fleet cannot amplify its own load unboundedly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeculationPolicy {
    /// Multiple of the predicted chunk duration after which the chunk
    /// counts as a straggler. Must be `>= 1` and finite.
    pub slack: f64,
    /// Maximum speculative copies launched over the whole run.
    pub budget: u32,
}

impl SpeculationPolicy {
    /// Builds a policy, rejecting non-finite or `< 1` slack factors.
    pub fn new(slack: f64, budget: u32) -> CwcResult<Self> {
        if !slack.is_finite() || slack < 1.0 {
            return Err(CwcError::Config(format!(
                "speculation slack {slack} must be finite and >= 1"
            )));
        }
        Ok(SpeculationPolicy { slack, budget })
    }
}

impl Default for SpeculationPolicy {
    fn default() -> Self {
        SpeculationPolicy {
            slack: 2.0,
            budget: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwc_types::SloClass;

    #[test]
    fn replication_rejects_out_of_range_thresholds() {
        assert!(ReplicationPolicy::new(-0.1).is_err());
        assert!(ReplicationPolicy::new(1.1).is_err());
        assert!(ReplicationPolicy::new(f64::NAN).is_err());
        assert_eq!(ReplicationPolicy::new(0.3).unwrap().threshold, 0.3);
    }

    #[test]
    fn speculation_rejects_degenerate_slack() {
        assert!(SpeculationPolicy::new(0.5, 4).is_err());
        assert!(SpeculationPolicy::new(f64::INFINITY, 4).is_err());
        assert!(SpeculationPolicy::new(f64::NAN, 4).is_err());
        let p = SpeculationPolicy::new(1.5, 4).unwrap();
        assert_eq!((p.slack, p.budget), (1.5, 4));
    }

    #[test]
    fn defaults_are_valid() {
        ReplicationPolicy::new(ReplicationPolicy::default().threshold).unwrap();
        let d = SpeculationPolicy::default();
        SpeculationPolicy::new(d.slack, d.budget).unwrap();
    }

    #[test]
    fn slo_rank_is_a_total_admission_order() {
        let mut v = vec![
            None,
            Some(SloClass::Deadline(900)),
            Some(SloClass::BestEffort),
            Some(SloClass::Deadline(100)),
        ];
        v.sort_by_key(|s| SloClass::rank(*s));
        assert_eq!(
            v,
            vec![
                Some(SloClass::Deadline(100)),
                Some(SloClass::Deadline(900)),
                None,
                Some(SloClass::BestEffort),
            ]
        );
    }
}
