//! Schedule representation, statistics, and validation.

use crate::problem::SchedProblem;
use cwc_types::{CwcError, CwcResult, JobId, KiloBytes, PhoneId};
use std::collections::BTreeMap;

/// One input partition assigned to one phone.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// Target phone.
    pub phone: PhoneId,
    /// Source job.
    pub job: JobId,
    /// Partition size in KB (`l_ij`; for atomic jobs this is `L_j`).
    pub input_kb: KiloBytes,
    /// Offset of this partition within the job's input, in KB. Assigned
    /// when the server finalizes the schedule (partitions are cut in
    /// job-input order).
    pub offset_kb: KiloBytes,
}

/// A complete scheduling decision.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Assignment queue per phone, in shipping/execution order. Indexed
    /// like the problem's phone vector.
    pub per_phone: Vec<Vec<Assignment>>,
    /// The scheduler's predicted makespan in ms (e.g. the final bin
    /// capacity found by the binary search).
    pub predicted_makespan_ms: f64,
}

impl Schedule {
    /// Total number of assignments.
    pub fn num_assignments(&self) -> usize {
        self.per_phone.iter().map(Vec::len).sum()
    }

    /// Number of partitions per job. A job assigned whole to one phone
    /// has count 1 — reported as "0 input partitions" in Fig. 12b's
    /// convention (0 = unpartitioned).
    pub fn partitions_per_job(&self) -> BTreeMap<JobId, usize> {
        let mut counts: BTreeMap<JobId, usize> = BTreeMap::new();
        for a in self.per_phone.iter().flatten() {
            *counts.entry(a.job).or_insert(0) += 1;
        }
        counts
    }

    /// Fig. 12b's metric: for each job, the number of *splits* (pieces
    /// minus one), sorted ascending for CDF plotting.
    pub fn split_counts_sorted(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self
            .partitions_per_job()
            .values()
            .map(|&n| n.saturating_sub(1))
            .collect();
        v.sort_unstable();
        v
    }

    /// Predicted per-phone completion times under the problem's cost
    /// model (the bin heights).
    pub fn predicted_heights_ms(&self, problem: &SchedProblem) -> Vec<f64> {
        let index = job_index(problem);
        self.per_phone
            .iter()
            .enumerate()
            .map(|(i, q)| {
                let mut shipped: Vec<bool> = vec![false; problem.num_jobs()];
                let mut h = 0.0;
                for a in q {
                    let j = index[&a.job];
                    h += problem.cost_ms(i, j, a.input_kb, !shipped[j]);
                    shipped[j] = true;
                }
                h
            })
            .collect()
    }

    /// Checks every SCH constraint against the source problem:
    ///
    /// 1. every job's input is fully covered (`Σ_i l_ij = L_j`) with
    ///    consistent, non-overlapping offsets;
    /// 2. atomic jobs sit whole on exactly one phone;
    /// 3. no partition exceeds its phone's RAM;
    /// 4. all partitions are non-empty.
    pub fn validate(&self, problem: &SchedProblem) -> CwcResult<()> {
        if self.per_phone.len() != problem.num_phones() {
            return Err(CwcError::Config(format!(
                "schedule has {} phone queues, problem has {} phones",
                self.per_phone.len(),
                problem.num_phones()
            )));
        }
        let mut covered: BTreeMap<JobId, Vec<(u64, u64)>> = BTreeMap::new();
        for (i, q) in self.per_phone.iter().enumerate() {
            for a in q {
                if a.phone != problem.phones[i].id {
                    return Err(CwcError::Config(format!(
                        "assignment for {} queued on {}",
                        a.phone, problem.phones[i].id
                    )));
                }
                if a.input_kb.is_zero() {
                    return Err(CwcError::Config(format!("empty partition of {}", a.job)));
                }
                if a.input_kb.0 > problem.phones[i].ram_kb {
                    return Err(CwcError::Config(format!(
                        "partition of {} exceeds RAM of {}",
                        a.job, a.phone
                    )));
                }
                covered
                    .entry(a.job)
                    .or_default()
                    .push((a.offset_kb.0, a.input_kb.0));
            }
        }
        for job in &problem.jobs {
            let mut pieces = covered
                .remove(&job.id)
                .ok_or_else(|| CwcError::Infeasible(format!("{} not scheduled", job.id)))?;
            pieces.sort_unstable();
            let mut cursor = 0u64;
            for (off, len) in &pieces {
                if *off != cursor {
                    return Err(CwcError::Config(format!(
                        "{}: gap/overlap at offset {off} (expected {cursor})",
                        job.id
                    )));
                }
                cursor += len;
            }
            if cursor != job.input_kb.0 {
                return Err(CwcError::Config(format!(
                    "{}: covered {cursor} of {} KB",
                    job.id, job.input_kb.0
                )));
            }
            if job.kind.is_atomic() && pieces.len() != 1 {
                return Err(CwcError::Config(format!(
                    "atomic {} split into {} pieces",
                    job.id,
                    pieces.len()
                )));
            }
        }
        if !covered.is_empty() {
            return Err(CwcError::Config("schedule references unknown jobs".into()));
        }
        Ok(())
    }
}

/// Free-function form of [`Schedule::validate`], for call sites (and the
/// lint gate's documentation) that treat validation as an operation on a
/// `(schedule, problem)` pair rather than a method: checks full coverage
/// with contiguous offsets, atomic jobs unsplit, RAM capacity respected,
/// and no empty partitions.
pub fn validate(schedule: &Schedule, problem: &SchedProblem) -> CwcResult<()> {
    schedule.validate(problem)
}

/// Audits a requeue round: every failed chunk must be requeued **exactly
/// once**. Callers pass `(original job, offset_kb, len_kb)` for each
/// residual about to be rescheduled. Two residuals covering overlapping
/// ranges of the same original job mean a chunk was requeued twice; a
/// zero-length residual means a vanished chunk. (That every failed chunk is
/// requeued *at least* once is guaranteed by construction — residuals are
/// drained from the failed list — and the schedule built over them is then
/// checked for full coverage by [`validate`].)
pub fn validate_requeue<I>(residuals: I) -> CwcResult<()>
where
    I: IntoIterator<Item = (JobId, u64, u64)>,
{
    let mut by_job: BTreeMap<JobId, Vec<(u64, u64)>> = BTreeMap::new();
    for (job, offset_kb, len_kb) in residuals {
        if len_kb == 0 {
            return Err(CwcError::Config(format!(
                "empty residual of {job} at offset {offset_kb}"
            )));
        }
        by_job.entry(job).or_default().push((offset_kb, len_kb));
    }
    for (job, mut spans) in by_job {
        spans.sort_unstable();
        let mut prev_end = 0u64;
        let mut first = true;
        for (offset_kb, len_kb) in spans {
            if !first && offset_kb < prev_end {
                return Err(CwcError::Config(format!(
                    "chunk of {job} at offset {offset_kb} requeued more than once \
                     (previous residual extends to {prev_end})"
                )));
            }
            prev_end = offset_kb + len_kb;
            first = false;
        }
    }
    Ok(())
}

/// Maps each job id in the problem to its index (ids need not be dense —
/// residual rounds use a high id namespace).
pub(crate) fn job_index(problem: &SchedProblem) -> BTreeMap<JobId, usize> {
    problem
        .jobs
        .iter()
        .enumerate()
        .map(|(idx, j)| (j.id, idx))
        .collect()
}

/// Assigns partition offsets in place: pieces of each job receive
/// consecutive offsets in (phone, queue-position) order. Called by every
/// scheduler after deciding sizes.
pub(crate) fn assign_offsets(per_phone: &mut [Vec<Assignment>], problem: &SchedProblem) {
    let index = job_index(problem);
    let mut cursor = vec![0u64; problem.num_jobs()];
    for q in per_phone.iter_mut() {
        for a in q.iter_mut() {
            let j = index[&a.job];
            a.offset_kb = KiloBytes(cursor[j]);
            cursor[j] += a.input_kb.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::test_support::instance;

    fn toy_schedule(problem: &SchedProblem) -> Schedule {
        // Jobs assigned whole to phone 0 — trivially valid when RAM allows.
        let mut per_phone: Vec<Vec<Assignment>> = vec![Vec::new(); problem.num_phones()];
        for job in &problem.jobs {
            per_phone[0].push(Assignment {
                phone: problem.phones[0].id,
                job: job.id,
                input_kb: job.input_kb,
                offset_kb: KiloBytes::ZERO,
            });
        }
        assign_offsets(&mut per_phone, problem);
        Schedule {
            per_phone,
            predicted_makespan_ms: 0.0,
        }
    }

    #[test]
    fn valid_schedule_passes() {
        let problem = instance(3, 4);
        let s = toy_schedule(&problem);
        s.validate(&problem).unwrap();
    }

    #[test]
    fn missing_job_fails() {
        let problem = instance(2, 3);
        let mut s = toy_schedule(&problem);
        s.per_phone[0].pop();
        assert!(s.validate(&problem).is_err());
    }

    #[test]
    fn split_atomic_fails() {
        let problem = instance(2, 3);
        let mut s = toy_schedule(&problem);
        // Job index 2 is atomic in the test fixture; split it.
        let atomic_pos = s.per_phone[0]
            .iter()
            .position(|a| problem.jobs[a.job.index()].kind.is_atomic())
            .unwrap();
        let original = s.per_phone[0][atomic_pos].clone();
        let half = KiloBytes(original.input_kb.0 / 2);
        s.per_phone[0][atomic_pos].input_kb = half;
        s.per_phone[1].push(Assignment {
            phone: problem.phones[1].id,
            job: original.job,
            input_kb: original.input_kb - half,
            offset_kb: half,
        });
        assert!(s.validate(&problem).is_err());
    }

    #[test]
    fn coverage_gap_fails() {
        let problem = instance(2, 2);
        let mut s = toy_schedule(&problem);
        s.per_phone[0][0].input_kb = KiloBytes(s.per_phone[0][0].input_kb.0 - 1);
        assert!(s.validate(&problem).is_err());
    }

    #[test]
    fn ram_violation_fails() {
        let mut problem = instance(2, 2);
        problem.phones[0].ram_kb = 10;
        let s = toy_schedule(&problem);
        assert!(s.validate(&problem).is_err());
    }

    #[test]
    fn heights_match_cost_model_with_one_exe_per_pair() {
        let problem = instance(2, 1);
        // Two partitions of job 0 on phone 0: exe paid once.
        let job = &problem.jobs[0];
        let half = KiloBytes(job.input_kb.0 / 2);
        let mut per_phone = vec![
            vec![
                Assignment {
                    phone: problem.phones[0].id,
                    job: job.id,
                    input_kb: half,
                    offset_kb: KiloBytes::ZERO,
                },
                Assignment {
                    phone: problem.phones[0].id,
                    job: job.id,
                    input_kb: job.input_kb - half,
                    offset_kb: half,
                },
            ],
            vec![],
        ];
        assign_offsets(&mut per_phone, &problem);
        let s = Schedule {
            per_phone,
            predicted_makespan_ms: 0.0,
        };
        s.validate(&problem).unwrap();
        let h = s.predicted_heights_ms(&problem);
        let expect = problem.cost_ms(0, 0, job.input_kb, true);
        assert!((h[0] - expect).abs() < 1e-9, "{} vs {expect}", h[0]);
        assert_eq!(h[1], 0.0);
    }

    #[test]
    fn partition_statistics() {
        let problem = instance(3, 3);
        let s = toy_schedule(&problem);
        let counts = s.partitions_per_job();
        assert!(counts.values().all(|&n| n == 1));
        let splits = s.split_counts_sorted();
        assert_eq!(splits, vec![0, 0, 0]);
    }
}
