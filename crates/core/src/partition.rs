//! Problem partitioning for sharded coordination (DESIGN.md §15).
//!
//! A million-phone fleet is scheduled as N independent kernel shards;
//! this module decides what slice of the job batch each shard sees. The
//! split must be **deterministic** (sharded runs are byte-identical
//! across thread counts), must degenerate to the **identity** at one
//! shard (the sharded-equivalence contract: 1 shard ≡ the single-kernel
//! path), and should shrink the per-shard packing problem in *both*
//! dimensions — the greedy CBP search costs ~|P|·|J| per probe, so
//! handing every shard the full job list would only buy thread-level
//! parallelism, not algorithmic headroom.
//!
//! The rule, per job, in input order:
//!
//! * A **breakable** job whose input exceeds the mean active-shard load
//!   (`total_kb / active_shards`) is *divided*: its `input_kb` splits
//!   across all active shards proportionally to shard capacity weight
//!   (largest-remainder rounding, whole-KB slices, zero slices dropped).
//!   This is the "split a job's input across shards" path — one giant
//!   job still uses the whole fleet.
//! * Every other job (small breakables and all **atomics** — an atomic
//!   job must execute on one phone, hence live inside one shard) is
//!   assigned *whole* to the shard that finishes it earliest under the
//!   capacity weights (LPT: jobs considered largest-first, ties by
//!   input order; shard ties by lowest shard id).
//!
//! Slices keep the parent [`JobId`], so per-shard completions merge back
//! onto the original batch without a translation table.

use cwc_types::{CwcError, CwcResult, JobId, JobSpec, KiloBytes};
use std::collections::BTreeMap;

/// One shard's share of a partitioned job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSlice {
    /// Which shard executes this slice.
    pub shard: usize,
    /// Slice length in KB (the whole job for unsplit assignments).
    pub kb: u64,
}

/// The deterministic outcome of [`partition_jobs`].
#[derive(Debug, Clone)]
pub struct JobPartition {
    /// Per-shard job lists, in the original batch order. Slices keep the
    /// parent job's id, program, executable size, and kind.
    pub per_shard: Vec<Vec<JobSpec>>,
    /// Per job: where its input went. Unsplit jobs have one slice.
    pub slices: BTreeMap<JobId, Vec<ShardSlice>>,
}

impl JobPartition {
    /// Total KB the partition assigned to `shard`.
    pub fn shard_kb(&self, shard: usize) -> u64 {
        self.per_shard
            .get(shard)
            .map(|jobs| jobs.iter().map(|j| j.input_kb.0).sum())
            .unwrap_or(0)
    }

    /// Number of jobs that were divided across more than one shard.
    pub fn split_jobs(&self) -> usize {
        self.slices.values().filter(|s| s.len() > 1).count()
    }
}

/// Splits `jobs` across `weights.len()` shards (see module docs for the
/// rule). `weights[s]` is shard `s`'s capacity proxy — any non-negative
/// scale (phone count, Σ clock×cores); shards with zero weight receive
/// nothing. Errors if no shard has positive weight.
pub fn partition_jobs(jobs: &[JobSpec], weights: &[f64]) -> CwcResult<JobPartition> {
    let active: Vec<usize> = weights
        .iter()
        .enumerate()
        .filter(|(_, &w)| w > 0.0)
        .map(|(s, _)| s)
        .collect();
    if active.is_empty() {
        return Err(CwcError::Config(
            "partition_jobs: no shard has positive weight".into(),
        ));
    }
    let total_weight: f64 = active.iter().map(|&s| weights[s]).sum();
    let total_kb: u64 = jobs.iter().map(|j| j.input_kb.0).sum();
    // A breakable job bigger than the mean active-shard load would
    // dominate whichever shard it landed on whole; divide it instead.
    let split_threshold = total_kb / active.len() as u64;

    // Indexed per-shard accumulation keeps the final lists in input order.
    let mut assigned: Vec<Vec<(usize, JobSpec)>> = vec![Vec::new(); weights.len()];
    let mut slices: BTreeMap<JobId, Vec<ShardSlice>> = BTreeMap::new();
    let mut load: Vec<f64> = vec![0.0; weights.len()];

    // Whole-job assignments go largest-first (LPT) for balance; `order`
    // remembers each job's batch position for the final ordering.
    let mut whole: Vec<usize> = Vec::new();
    for (pos, job) in jobs.iter().enumerate() {
        let splittable =
            !job.kind.is_atomic() && active.len() > 1 && job.input_kb.0 > split_threshold;
        if !splittable {
            whole.push(pos);
            continue;
        }
        // Proportional split, largest-remainder rounding to whole KB.
        let kb = job.input_kb.0;
        let mut cut: Vec<(usize, u64, f64)> = active
            .iter()
            .map(|&s| {
                let exact = kb as f64 * weights[s] / total_weight;
                (s, exact as u64, exact - (exact as u64) as f64)
            })
            .collect();
        let assigned_kb: u64 = cut.iter().map(|&(_, floor, _)| floor).sum();
        let mut remainder = kb - assigned_kb;
        // Hand leftover KB to the largest fractional remainders; ties by
        // lowest shard id (sort is stable over the shard-ordered input).
        let mut by_frac: Vec<usize> = (0..cut.len()).collect();
        by_frac.sort_by(|&a, &b| {
            cut[b]
                .2
                .partial_cmp(&cut[a].2)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        for i in by_frac {
            if remainder == 0 {
                break;
            }
            cut[i].1 += 1;
            remainder -= 1;
        }
        for (s, slice_kb, _) in cut {
            if slice_kb == 0 {
                continue;
            }
            let slice = JobSpec::breakable(
                job.id,
                job.program.as_str(),
                job.exe_kb,
                KiloBytes(slice_kb),
            );
            load[s] += slice_kb as f64 / weights[s];
            assigned[s].push((pos, slice));
            slices.entry(job.id).or_default().push(ShardSlice {
                shard: s,
                kb: slice_kb,
            });
        }
    }

    // LPT over the remaining whole jobs: biggest first, placed on the
    // shard with the earliest weighted finish time.
    whole.sort_by(|&a, &b| jobs[b].input_kb.0.cmp(&jobs[a].input_kb.0).then(a.cmp(&b)));
    for pos in whole {
        let job = &jobs[pos];
        let mut best = active[0];
        let mut best_finish = f64::INFINITY;
        for &s in &active {
            let finish = (load[s] * weights[s] + job.input_kb.0 as f64) / weights[s];
            if finish < best_finish {
                best_finish = finish;
                best = s;
            }
        }
        load[best] += job.input_kb.0 as f64 / weights[best];
        assigned[best].push((pos, job.clone()));
        slices.entry(job.id).or_default().push(ShardSlice {
            shard: best,
            kb: job.input_kb.0,
        });
    }

    let per_shard = assigned
        .into_iter()
        .map(|mut jobs| {
            jobs.sort_by_key(|&(pos, _)| pos);
            jobs.into_iter().map(|(_, j)| j).collect()
        })
        .collect();
    Ok(JobPartition { per_shard, slices })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch() -> Vec<JobSpec> {
        (0..12)
            .map(|j| {
                let id = JobId::from_index(j);
                let kb = KiloBytes(100 + (j as u64 * 137) % 900);
                if j % 3 == 2 {
                    JobSpec::atomic(id, "photoblur", KiloBytes(40), kb)
                } else {
                    JobSpec::breakable(id, "primecount", KiloBytes(30), kb)
                }
            })
            .collect()
    }

    #[test]
    fn one_shard_is_the_identity() {
        let jobs = batch();
        let p = partition_jobs(&jobs, &[3.0]).unwrap();
        assert_eq!(p.per_shard.len(), 1);
        assert_eq!(
            p.per_shard[0], jobs,
            "1-shard partition must not reorder or resize"
        );
        assert_eq!(p.split_jobs(), 0);
    }

    #[test]
    fn input_kb_is_conserved() {
        let jobs = batch();
        for shards in [1usize, 2, 3, 4, 8] {
            let weights: Vec<f64> = (0..shards).map(|s| 1.0 + s as f64).collect();
            let p = partition_jobs(&jobs, &weights).unwrap();
            let total: u64 = (0..shards).map(|s| p.shard_kb(s)).sum();
            assert_eq!(total, jobs.iter().map(|j| j.input_kb.0).sum::<u64>());
            for job in &jobs {
                let sliced: u64 = p.slices[&job.id].iter().map(|s| s.kb).sum();
                assert_eq!(sliced, job.input_kb.0, "job {:?}", job.id);
            }
        }
    }

    #[test]
    fn atomic_jobs_are_never_divided() {
        let jobs = batch();
        let p = partition_jobs(&jobs, &[1.0, 1.0, 1.0, 1.0]).unwrap();
        for job in jobs.iter().filter(|j| j.kind.is_atomic()) {
            assert_eq!(
                p.slices[&job.id].len(),
                1,
                "atomic {:?} was divided",
                job.id
            );
        }
    }

    #[test]
    fn oversized_breakable_jobs_divide_across_shards() {
        let mut jobs = batch();
        jobs.push(JobSpec::breakable(
            JobId::from_index(99),
            "primecount",
            KiloBytes(30),
            KiloBytes(50_000),
        ));
        let p = partition_jobs(&jobs, &[1.0, 2.0, 1.0]).unwrap();
        let slices = &p.slices[&JobId::from_index(99)];
        assert_eq!(slices.len(), 3, "the giant job must use every shard");
        // Proportional to weight: the 2.0 shard gets ~half.
        let mid = slices.iter().find(|s| s.shard == 1).unwrap().kb;
        assert!((24_000..=26_000).contains(&mid), "mid slice {mid}");
    }

    #[test]
    fn zero_weight_shards_receive_nothing() {
        let jobs = batch();
        let p = partition_jobs(&jobs, &[1.0, 0.0, 1.0]).unwrap();
        assert!(p.per_shard[1].is_empty());
        assert_eq!(p.shard_kb(1), 0);
    }

    #[test]
    fn no_positive_weight_is_an_error() {
        assert!(partition_jobs(&batch(), &[0.0, 0.0]).is_err());
    }

    #[test]
    fn deterministic_across_calls() {
        let jobs = batch();
        let a = partition_jobs(&jobs, &[1.0, 3.0, 2.0]).unwrap();
        let b = partition_jobs(&jobs, &[1.0, 3.0, 2.0]).unwrap();
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn whole_assignment_balances_by_weight() {
        // 60 equal jobs over weights 1:3 → the heavy shard gets ~3x the KB.
        let jobs: Vec<JobSpec> = (0..60)
            .map(|j| {
                JobSpec::breakable(
                    JobId::from_index(j),
                    "primecount",
                    KiloBytes(30),
                    KiloBytes(100),
                )
            })
            .collect();
        let p = partition_jobs(&jobs, &[1.0, 3.0]).unwrap();
        let light = p.shard_kb(0) as f64;
        let heavy = p.shard_kb(1) as f64;
        let ratio = heavy / light;
        assert!((2.0..4.5).contains(&ratio), "imbalance ratio {ratio}");
    }
}
