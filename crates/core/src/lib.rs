//! # cwc-core — the CWC makespan scheduler
//!
//! The paper's primary contribution (§5): schedule a mixed batch of
//! breakable and atomic jobs over a fleet of phones with heterogeneous CPU
//! clocks **and** heterogeneous wireless bandwidth, minimizing the
//! makespan. The exact problem (SCH) is a quadratic integer program
//! generalizing unrelated-machines minimum-makespan scheduling, hence
//! NP-hard; CWC solves it greedily via the *complementary bin packing*
//! (CBP) view: phones are bins, a bin's height is its completion time,
//! and the minimum feasible bin capacity — found by binary search — is
//! the minimized makespan.
//!
//! Crate layout:
//!
//! * [`problem`] — the scheduler's input: phones, jobs, and the `c_ij`
//!   cost matrix; Eq. 1 lives here.
//! * [`predictor`] — execution-time prediction: CPU-clock scaling seeded
//!   from the slowest phone's profile (§4.1) plus the online update from
//!   reported runtimes.
//! * [`schedule`] — the output: per-phone assignment queues, predicted
//!   makespan, partition statistics (Fig. 12b), and validation.
//! * [`greedy`] — Algorithm 1 + the capacity binary search (cold and
//!   warm-started).
//! * `pack` (internal) — the zero-allocation packing arena + flat cost
//!   tables the binary search probes against.
//! * [`partition`] — fleet sharding (DESIGN.md §15): deterministically
//!   splits a job batch across N kernel shards by capacity weight.
//! * [`baselines`] — the two "simple practical schedulers" of §6
//!   (equal-split and round-robin) that CWC beats by ≈1.6×.
//! * [`relaxation`] — the LP relaxation lower bound of §6 (Fig. 13),
//!   solved with [`cwc_lp`].
//! * [`requeue`] — failure residuals: what is left of an interrupted
//!   assignment, folded into the *next* scheduling instant (§5).
//! * [`reliability`] — the failure-prediction extension §3.1 sketches:
//!   expected-rework cost inflation that steers work off flaky phones.
//! * [`slo`] — proactive-reliability policies (replication of risky
//!   atomic placements, speculative re-execution of stragglers) consumed
//!   by the coordinator kernel.
//! * [`economics`] — the §3.2 energy-cost arithmetic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod economics;
pub mod greedy;
pub(crate) mod pack;
pub mod partition;
pub mod predictor;
pub mod problem;
pub mod relaxation;
pub mod reliability;
pub mod requeue;
pub mod schedule;
pub mod slo;

pub use greedy::{GreedyScheduler, GreedyStats, WarmStart};
pub use partition::{partition_jobs, JobPartition, ShardSlice};
pub use predictor::RuntimePredictor;
pub use problem::SchedProblem;
pub use relaxation::relaxed_lower_bound;
pub use reliability::derisk;
pub use requeue::ResidualJob;
pub use schedule::{Assignment, Schedule};
pub use slo::{ReplicationPolicy, SpeculationPolicy};

use cwc_types::CwcResult;

/// Which scheduling algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// CWC's greedy CBP packing with capacity binary search (Algorithm 1).
    Greedy,
    /// Baseline 1: split every breakable job into `|P|` equal pieces
    /// (bandwidth/CPU-oblivious); atomic jobs round-robin.
    EqualSplit,
    /// Baseline 2: assign whole jobs round-robin.
    RoundRobin,
}

impl SchedulerKind {
    /// All kinds, for sweeps.
    pub const ALL: [SchedulerKind; 3] = [
        SchedulerKind::Greedy,
        SchedulerKind::EqualSplit,
        SchedulerKind::RoundRobin,
    ];

    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            SchedulerKind::Greedy => "greedy",
            SchedulerKind::EqualSplit => "equal-split",
            SchedulerKind::RoundRobin => "round-robin",
        }
    }
}

/// Unified entry point over the three algorithms.
#[derive(Debug, Clone, Copy, Default)]
pub struct Scheduler;

impl Scheduler {
    /// Computes a schedule for `problem` with the chosen algorithm.
    pub fn run(kind: SchedulerKind, problem: &SchedProblem) -> CwcResult<Schedule> {
        match kind {
            SchedulerKind::Greedy => GreedyScheduler::default().schedule(problem),
            SchedulerKind::EqualSplit => baselines::equal_split(problem),
            SchedulerKind::RoundRobin => baselines::round_robin(problem),
        }
    }

    /// Like [`Scheduler::run`], recording per-algorithm metrics into `obs`:
    /// a `sched.<label>.runs` counter, a `sched.<label>.makespan_ms`
    /// histogram, and (for greedy) binary-search convergence counters.
    pub fn run_observed(
        kind: SchedulerKind,
        problem: &SchedProblem,
        obs: &cwc_obs::Obs,
    ) -> CwcResult<Schedule> {
        Self::run_observed_warm(kind, problem, obs, None).map(|(s, _)| s)
    }

    /// Like [`Scheduler::run_observed`], threading a [`WarmStart`] hint
    /// through the greedy binary search. Returns the hint for the next
    /// scheduling instant (always `None` for the baselines, which have
    /// no search to warm).
    pub fn run_observed_warm(
        kind: SchedulerKind,
        problem: &SchedProblem,
        obs: &cwc_obs::Obs,
        warm: Option<WarmStart>,
    ) -> CwcResult<(Schedule, Option<WarmStart>)> {
        let (schedule, next) = match kind {
            SchedulerKind::Greedy => {
                let (s, w) =
                    GreedyScheduler::default().schedule_observed_warm(problem, obs, warm)?;
                (s, Some(w))
            }
            SchedulerKind::EqualSplit => (baselines::equal_split(problem)?, None),
            SchedulerKind::RoundRobin => (baselines::round_robin(problem)?, None),
        };
        let label = kind.label();
        obs.metrics.inc(&format!("sched.{label}.runs"));
        obs.metrics.observe(
            &format!("sched.{label}.makespan_ms"),
            schedule.predicted_makespan_ms,
        );
        Ok((schedule, next))
    }
}
