//! The "simple practical schedulers" of §6, implemented as faithful straw
//! men:
//!
//! * **equal-split**: every breakable job is cut into `|P|` equal pieces,
//!   one per phone, ignoring bandwidth and CPU differences; atomic jobs go
//!   round-robin. (Paper result: makespan 1720 s vs greedy's 1100 s, and
//!   an explosion of input partitions.)
//! * **round-robin**: every job — breakable or not — is assigned whole to
//!   phones in rotation. (Paper result: 1805 s; few partitions but badly
//!   unbalanced against slow links/CPUs.)

use crate::problem::SchedProblem;
use crate::schedule::{assign_offsets, Assignment, Schedule};
use cwc_types::{CwcError, CwcResult, KiloBytes};

/// Baseline 1: equal split of breakable jobs, round-robin atomics.
pub fn equal_split(problem: &SchedProblem) -> CwcResult<Schedule> {
    let p = problem.num_phones();
    let mut per_phone: Vec<Vec<Assignment>> = vec![Vec::new(); p];
    let mut rr = 0usize;
    for (j, job) in problem.jobs.iter().enumerate() {
        if job.kind.is_atomic() {
            let i = rr % p;
            rr += 1;
            push(problem, &mut per_phone, i, j, job.input_kb)?;
        } else {
            // |P| near-equal pieces; remainder spread over the first bins.
            let base = job.input_kb.0 / p as u64;
            let extra = (job.input_kb.0 % p as u64) as usize;
            for i in 0..p {
                let kb = base + u64::from(i < extra);
                if kb == 0 {
                    continue;
                }
                push(problem, &mut per_phone, i, j, KiloBytes(kb))?;
            }
        }
    }
    finish(problem, per_phone)
}

/// Baseline 2: whole jobs, round-robin.
pub fn round_robin(problem: &SchedProblem) -> CwcResult<Schedule> {
    let p = problem.num_phones();
    let mut per_phone: Vec<Vec<Assignment>> = vec![Vec::new(); p];
    for (j, job) in problem.jobs.iter().enumerate() {
        push(problem, &mut per_phone, j % p, j, job.input_kb)?;
    }
    finish(problem, per_phone)
}

fn push(
    problem: &SchedProblem,
    per_phone: &mut [Vec<Assignment>],
    i: usize,
    j: usize,
    kb: KiloBytes,
) -> CwcResult<()> {
    if kb.0 > problem.phones[i].ram_kb {
        return Err(CwcError::Infeasible(format!(
            "baseline would assign {} KB to {} (RAM {})",
            kb.0, problem.phones[i].id, problem.phones[i].ram_kb
        )));
    }
    per_phone[i].push(Assignment {
        phone: problem.phones[i].id,
        job: problem.jobs[j].id,
        input_kb: kb,
        offset_kb: KiloBytes::ZERO,
    });
    Ok(())
}

fn finish(problem: &SchedProblem, mut per_phone: Vec<Vec<Assignment>>) -> CwcResult<Schedule> {
    assign_offsets(&mut per_phone, problem);
    let schedule = Schedule {
        per_phone,
        predicted_makespan_ms: 0.0,
    };
    let predicted = schedule
        .predicted_heights_ms(problem)
        .into_iter()
        .fold(0.0f64, f64::max);
    Ok(Schedule {
        predicted_makespan_ms: predicted,
        ..schedule
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::GreedyScheduler;
    use crate::problem::test_support::instance;

    #[test]
    fn equal_split_is_valid_and_explodes_partitions() {
        let problem = instance(6, 12);
        let s = equal_split(&problem).unwrap();
        s.validate(&problem).unwrap();
        // Every breakable job has |P| pieces.
        let parts = s.partitions_per_job();
        for job in &problem.jobs {
            let expect = if job.kind.is_atomic() { 1 } else { 6 };
            assert_eq!(parts[&job.id], expect, "{}", job.id);
        }
    }

    #[test]
    fn round_robin_is_valid_and_never_splits() {
        let problem = instance(5, 13);
        let s = round_robin(&problem).unwrap();
        s.validate(&problem).unwrap();
        assert!(s.partitions_per_job().values().all(|&n| n == 1));
    }

    #[test]
    fn greedy_beats_both_baselines_on_heterogeneous_fleets() {
        // The fixture mixes 806/1400 MHz CPUs and 1–15 ms/KB links — the
        // regime the paper's §6 comparison runs in.
        let problem = instance(6, 24);
        let greedy = GreedyScheduler::default().schedule(&problem).unwrap();
        let eq = equal_split(&problem).unwrap();
        let rr = round_robin(&problem).unwrap();
        assert!(
            greedy.predicted_makespan_ms < eq.predicted_makespan_ms,
            "greedy {} vs equal-split {}",
            greedy.predicted_makespan_ms,
            eq.predicted_makespan_ms
        );
        assert!(
            greedy.predicted_makespan_ms < rr.predicted_makespan_ms,
            "greedy {} vs round-robin {}",
            greedy.predicted_makespan_ms,
            rr.predicted_makespan_ms
        );
    }

    #[test]
    fn baselines_error_when_ram_insufficient() {
        let mut problem = instance(2, 2);
        for p in &mut problem.phones {
            p.ram_kb = 10;
        }
        assert!(round_robin(&problem).is_err());
    }
}
