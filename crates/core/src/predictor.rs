//! Execution-time prediction (§4.1).
//!
//! Profiling every phone–task pair would be prohibitive, so CWC profiles
//! each task **once**, on the slowest phone (`T_s` ms/KB at clock `S`),
//! and scales: a phone at clock `A` is predicted at `T_s · S / A` ms/KB.
//! Fig. 6 shows the model is accurate for most phones with a few happy
//! outliers (faster than predicted).
//!
//! After every completed partition, the phone reports its measured local
//! execution time; the predictor folds it in with an exponentially
//! weighted moving average, so a phone that is consistently faster (or
//! slower) than its clock suggests converges to its true `c_ij` — this is
//! what lets the Fig. 12a schedule land within ~2% of the real makespan.

use cwc_types::{KiloBytes, PhoneInfo};
use std::collections::BTreeMap;

/// Clock of the profiling phone, MHz (HTC G2 in the testbed).
const DEFAULT_BASELINE_CLOCK: u32 = 806;

/// Predicts `c_ij` (ms per KB) for every phone–program pair.
///
/// ```
/// use cwc_core::RuntimePredictor;
/// use cwc_types::{CpuSpec, KiloBytes, MsPerKb, PhoneId, PhoneInfo, RadioTech};
///
/// let mut predictor = RuntimePredictor::new();
/// predictor.set_baseline("wordcount", 80.0);          // T_s on the 806 MHz phone
///
/// let phone = PhoneInfo::new(PhoneId(3), CpuSpec::new(1612, 2),
///                            RadioTech::Wifi80211g, MsPerKb(2.0));
/// // Clock-ratio seed: double the clock, half the cost.
/// assert!((predictor.c_ij(&phone, "wordcount") - 40.0).abs() < 1e-9);
///
/// // A completion report refines the estimate toward the measured truth.
/// predictor.observe(&phone, "wordcount", KiloBytes(100), 3_000.0); // 30 ms/KB
/// assert!(predictor.c_ij(&phone, "wordcount") < 40.0);
/// ```
#[derive(Debug, Clone)]
pub struct RuntimePredictor {
    /// `T_s`: profiled baseline ms/KB per program, measured on the
    /// slowest phone.
    baseline: BTreeMap<String, f64>,
    /// Clock `S` of the profiling phone.
    baseline_clock: u32,
    /// Learned per-(phone, program) estimates from execution reports.
    learned: BTreeMap<(u32, String), f64>,
    /// EWMA weight given to a new observation.
    alpha: f64,
}

impl RuntimePredictor {
    /// Creates a predictor with the testbed's 806 MHz baseline phone.
    pub fn new() -> Self {
        RuntimePredictor {
            baseline: BTreeMap::new(),
            baseline_clock: DEFAULT_BASELINE_CLOCK,
            learned: BTreeMap::new(),
            alpha: 0.5,
        }
    }

    /// Overrides the baseline clock (if the slowest phone differs).
    pub fn with_baseline_clock(mut self, clock_mhz: u32) -> Self {
        assert!(clock_mhz > 0);
        self.baseline_clock = clock_mhz;
        self
    }

    /// Registers a program's profiled baseline cost `T_s` (ms per KB on
    /// the baseline phone).
    pub fn set_baseline(&mut self, program: &str, ms_per_kb: f64) {
        assert!(ms_per_kb > 0.0 && ms_per_kb.is_finite());
        self.baseline.insert(program.to_owned(), ms_per_kb);
    }

    /// Whether a program has been profiled.
    pub fn has_baseline(&self, program: &str) -> bool {
        self.baseline.contains_key(program)
    }

    /// Predicted `c_ij` for `phone` running `program`: the learned value
    /// if any report has arrived, otherwise the clock-scaled baseline.
    ///
    /// # Panics
    /// Panics if the program was never profiled — scheduling an
    /// unprofiled program is a server-side logic error.
    pub fn c_ij(&self, phone: &PhoneInfo, program: &str) -> f64 {
        if let Some(&learned) = self.learned.get(&(phone.id.0, program.to_owned())) {
            return learned;
        }
        let ts = self
            .baseline
            .get(program)
            .unwrap_or_else(|| panic!("program {program:?} has no profiled baseline"));
        ts * f64::from(self.baseline_clock) / f64::from(phone.cpu.clock_mhz)
    }

    /// Folds in a completion report: `measured_ms` to execute `input` KB
    /// of `program` locally on `phone` (excluding transfer, exactly what
    /// phones report in the prototype).
    pub fn observe(
        &mut self,
        phone: &PhoneInfo,
        program: &str,
        input: KiloBytes,
        measured_ms: f64,
    ) {
        if input.is_zero() || measured_ms.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return;
        }
        let observed = measured_ms / input.as_f64();
        let key = (phone.id.0, program.to_owned());
        let seed = self.c_ij_scaled_only(phone, program);
        let entry = self.learned.entry(key).or_insert(seed);
        *entry += self.alpha * (observed - *entry);
    }

    fn c_ij_scaled_only(&self, phone: &PhoneInfo, program: &str) -> f64 {
        let ts = self
            .baseline
            .get(program)
            .unwrap_or_else(|| panic!("program {program:?} has no profiled baseline"));
        ts * f64::from(self.baseline_clock) / f64::from(phone.cpu.clock_mhz)
    }

    /// Builds the cost matrix for a scheduling round.
    pub fn cost_matrix(&self, phones: &[PhoneInfo], programs: &[&str]) -> Vec<Vec<f64>> {
        phones
            .iter()
            .map(|p| programs.iter().map(|prog| self.c_ij(p, prog)).collect())
            .collect()
    }
}

impl Default for RuntimePredictor {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwc_types::{CpuSpec, MsPerKb, PhoneId, RadioTech};

    fn phone(id: u32, clock: u32) -> PhoneInfo {
        PhoneInfo::new(
            PhoneId(id),
            CpuSpec::new(clock, 2),
            RadioTech::Wifi80211g,
            MsPerKb(2.0),
        )
    }

    #[test]
    fn clock_scaling_seed() {
        let mut pred = RuntimePredictor::new();
        pred.set_baseline("primecount", 14.0);
        // Baseline phone predicts itself.
        assert!((pred.c_ij(&phone(0, 806), "primecount") - 14.0).abs() < 1e-12);
        // Double clock → half cost.
        assert!((pred.c_ij(&phone(1, 1612), "primecount") - 7.0).abs() < 1e-12);
    }

    #[test]
    fn observation_pulls_estimate_toward_truth() {
        let mut pred = RuntimePredictor::new();
        pred.set_baseline("primecount", 14.0);
        let p = phone(2, 1612);
        let predicted = pred.c_ij(&p, "primecount"); // 7.0
                                                     // The phone is actually 25% faster: true cost 5.25 ms/KB.
        for _ in 0..12 {
            pred.observe(&p, "primecount", KiloBytes(100), 525.0);
        }
        let after = pred.c_ij(&p, "primecount");
        assert!(after < predicted);
        assert!((after - 5.25).abs() < 0.05, "converged to {after}");
    }

    #[test]
    fn learning_is_per_phone() {
        let mut pred = RuntimePredictor::new();
        pred.set_baseline("wordcount", 6.0);
        let a = phone(0, 1200);
        let b = phone(1, 1200);
        pred.observe(&a, "wordcount", KiloBytes(100), 200.0);
        assert!((pred.c_ij(&a, "wordcount") - pred.c_ij(&b, "wordcount")).abs() > 0.5);
    }

    #[test]
    fn degenerate_reports_are_ignored() {
        let mut pred = RuntimePredictor::new();
        pred.set_baseline("x", 5.0);
        let p = phone(0, 1000);
        let before = pred.c_ij(&p, "x");
        pred.observe(&p, "x", KiloBytes::ZERO, 100.0);
        pred.observe(&p, "x", KiloBytes(10), -5.0);
        pred.observe(&p, "x", KiloBytes(10), f64::NAN);
        assert_eq!(pred.c_ij(&p, "x"), before);
    }

    #[test]
    fn cost_matrix_shape() {
        let mut pred = RuntimePredictor::new();
        pred.set_baseline("a", 10.0);
        pred.set_baseline("b", 20.0);
        let phones = vec![phone(0, 806), phone(1, 1612)];
        let m = pred.cost_matrix(&phones, &["a", "b"]);
        assert_eq!(m.len(), 2);
        assert_eq!(m[0].len(), 2);
        assert!((m[0][0] - 10.0).abs() < 1e-12);
        assert!((m[1][1] - 10.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "no profiled baseline")]
    fn unprofiled_program_panics() {
        let pred = RuntimePredictor::new();
        let _ = pred.c_ij(&phone(0, 1000), "mystery");
    }
}
