//! Failure residuals (§5, "Handling Failures").
//!
//! When a phone fails (unplug, lost connectivity), the unfinished part of
//! its current assignment — plus everything still queued behind it — goes
//! into the failed list `F_A`. Crucially, CWC does **not** reschedule
//! immediately: it waits for the next scheduling instant `B` and solves
//! one combined problem over the new arrivals and `F_A`, which both
//! amortizes scheduling work and gives briefly-failed phones a chance to
//! come back.
//!
//! A [`ResidualJob`] is one entry of `F_A`: the remainder of a partition,
//! carrying the migration checkpoint (for online failures) or nothing
//! (offline failures, where the partial work is lost).

use crate::schedule::Assignment;
use cwc_types::{JobId, JobKind, JobSpec, KiloBytes};

/// The reschedulable remainder of a failed assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct ResidualJob {
    /// The original job this remainder belongs to (results must aggregate
    /// under this identity).
    pub original: JobId,
    /// Program name (the executable to ship).
    pub program: String,
    /// Executable size (must be re-shipped to the new phone).
    pub exe_kb: KiloBytes,
    /// Breakable or atomic (inherited).
    pub kind: JobKind,
    /// Remaining input in KB.
    pub remaining_kb: KiloBytes,
    /// Absolute offset (KB) into the *original job input* where the
    /// remainder starts.
    pub offset_kb: KiloBytes,
    /// Migration state from an online failure; `None` for offline
    /// failures (state unrecoverable — restart the partition).
    pub checkpoint: Option<Vec<u8>>,
}

impl ResidualJob {
    /// Builds the residual of a failed `assignment`.
    ///
    /// * `processed_kb` — how much of the partition the phone reported
    ///   finishing (0 for offline failures);
    /// * `checkpoint` — the reported migration state, if any.
    ///
    /// Returns `None` when nothing remains (failure arrived after the
    /// last chunk — the completion report races the unplug).
    pub fn from_failure(
        spec: &JobSpec,
        assignment: &Assignment,
        processed_kb: KiloBytes,
        checkpoint: Option<Vec<u8>>,
    ) -> Option<ResidualJob> {
        debug_assert_eq!(spec.id, assignment.job);
        let processed = processed_kb.min(assignment.input_kb);
        let remaining = assignment.input_kb.saturating_sub(processed);
        if remaining.is_zero() {
            return None;
        }
        Some(ResidualJob {
            original: spec.id,
            program: spec.program.clone(),
            exe_kb: spec.exe_kb,
            kind: spec.kind,
            remaining_kb: remaining,
            offset_kb: assignment.offset_kb + processed,
            checkpoint,
        })
    }

    /// Builds the residual of a slice of `spec` that never started — a
    /// partition drained from a failed phone's queue, or one whose input
    /// shipment was lost before the first chunk ran. No checkpoint, full
    /// slice remaining.
    pub fn unstarted(spec: &JobSpec, offset_kb: KiloBytes, len_kb: KiloBytes) -> ResidualJob {
        ResidualJob {
            original: spec.id,
            program: spec.program.clone(),
            exe_kb: spec.exe_kb,
            kind: spec.kind,
            remaining_kb: len_kb,
            offset_kb,
            checkpoint: None,
        }
    }

    /// Converts the residual into a job spec for the next scheduling
    /// round, under a fresh scheduling identity.
    ///
    /// A residual with a checkpoint must land on a single phone (the
    /// continuation state is one computation), so it is scheduled atomic
    /// regardless of the original kind; checkpoint-free breakable
    /// residuals stay breakable.
    pub fn to_job_spec(&self, scheduling_id: JobId) -> JobSpec {
        let kind = if self.checkpoint.is_some() || self.kind.is_atomic() {
            JobKind::Atomic
        } else {
            JobKind::Breakable
        };
        JobSpec {
            id: scheduling_id,
            kind,
            program: self.program.clone(),
            exe_kb: self.exe_kb,
            input_kb: self.remaining_kb,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwc_types::PhoneId;

    fn spec() -> JobSpec {
        JobSpec::breakable(JobId(7), "primecount", KiloBytes(30), KiloBytes(1_000))
    }

    fn assignment(len: u64, offset: u64) -> Assignment {
        Assignment {
            phone: PhoneId(2),
            job: JobId(7),
            input_kb: KiloBytes(len),
            offset_kb: KiloBytes(offset),
        }
    }

    #[test]
    fn online_failure_keeps_progress() {
        let r = ResidualJob::from_failure(
            &spec(),
            &assignment(400, 100),
            KiloBytes(150),
            Some(vec![1, 2, 3]),
        )
        .unwrap();
        assert_eq!(r.remaining_kb, KiloBytes(250));
        assert_eq!(r.offset_kb, KiloBytes(250)); // 100 + 150
        assert_eq!(r.checkpoint.as_deref(), Some(&[1u8, 2, 3][..]));
    }

    #[test]
    fn offline_failure_restarts_partition() {
        let r = ResidualJob::from_failure(&spec(), &assignment(400, 100), KiloBytes::ZERO, None)
            .unwrap();
        assert_eq!(r.remaining_kb, KiloBytes(400));
        assert_eq!(r.offset_kb, KiloBytes(100));
        assert!(r.checkpoint.is_none());
    }

    #[test]
    fn fully_processed_yields_no_residual() {
        assert!(
            ResidualJob::from_failure(&spec(), &assignment(400, 0), KiloBytes(400), None).is_none()
        );
        // Over-report clamps.
        assert!(
            ResidualJob::from_failure(&spec(), &assignment(400, 0), KiloBytes(500), None).is_none()
        );
    }

    #[test]
    fn unstarted_residual_covers_the_whole_slice() {
        let r = ResidualJob::unstarted(&spec(), KiloBytes(300), KiloBytes(120));
        assert_eq!(r.original, JobId(7));
        assert_eq!(r.offset_kb, KiloBytes(300));
        assert_eq!(r.remaining_kb, KiloBytes(120));
        assert!(r.checkpoint.is_none());
        assert_eq!(r.to_job_spec(JobId(8)).kind, JobKind::Breakable);
    }

    #[test]
    fn checkpointed_residual_becomes_atomic() {
        let with_ck =
            ResidualJob::from_failure(&spec(), &assignment(400, 0), KiloBytes(100), Some(vec![9]))
                .unwrap();
        assert!(with_ck.to_job_spec(JobId(99)).kind.is_atomic());

        let without =
            ResidualJob::from_failure(&spec(), &assignment(400, 0), KiloBytes::ZERO, None).unwrap();
        assert_eq!(without.to_job_spec(JobId(99)).kind, JobKind::Breakable);
    }

    #[test]
    fn atomic_original_stays_atomic() {
        let spec = JobSpec::atomic(JobId(1), "photoblur", KiloBytes(40), KiloBytes(300));
        let a = Assignment {
            phone: PhoneId(0),
            job: JobId(1),
            input_kb: KiloBytes(300),
            offset_kb: KiloBytes::ZERO,
        };
        let r = ResidualJob::from_failure(&spec, &a, KiloBytes(50), Some(vec![0])).unwrap();
        assert!(r.to_job_spec(JobId(2)).kind.is_atomic());
        assert_eq!(r.remaining_kb, KiloBytes(250));
    }

    #[test]
    fn residual_spec_preserves_program_and_exe() {
        let r =
            ResidualJob::from_failure(&spec(), &assignment(200, 0), KiloBytes(10), None).unwrap();
        let js = r.to_job_spec(JobId(55));
        assert_eq!(js.program, "primecount");
        assert_eq!(js.exe_kb, KiloBytes(30));
        assert_eq!(js.input_kb, KiloBytes(190));
        assert_eq!(js.id, JobId(55));
    }
}
