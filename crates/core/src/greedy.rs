//! Algorithm 1 — greedy complementary bin packing — plus the capacity
//! binary search (§5).
//!
//! The makespan problem is viewed as its complementary bin-packing
//! problem (CBP): phones are bins, the capacity `C` is a candidate
//! makespan, and an item is a job's remaining input. A successful packing
//! at capacity `C` *is* a schedule finishing within `C`. Binary search
//! over `C` then finds the smallest capacity the greedy can pack, which
//! is the reported (predicted) makespan.
//!
//! Key behaviors from the paper:
//!
//! * items are kept sorted by **remaining local execution time on the
//!   slowest phone** (`R_j · c_sj`), largest first;
//! * packing prefers **whole items** — splitting only happens when the
//!   whole item cannot fit, and then the **largest fitting partition** is
//!   packed (minimizing the server's aggregation overhead, Fig. 12b);
//! * the executable cost `E_j · b_i` is paid once per phone–job pair;
//! * atomic items are never split;
//! * new bins open only when nothing fits the open ones, choosing the bin
//!   that minimizes Eq. 1 for the largest item.

use crate::problem::SchedProblem;
use crate::schedule::{assign_offsets, Assignment, Schedule};
use cwc_types::{CwcError, CwcResult, KiloBytes};

/// The CWC scheduler.
///
/// ```
/// use cwc_core::{GreedyScheduler, SchedProblem};
/// use cwc_types::{CpuSpec, JobId, JobSpec, KiloBytes, MsPerKb, PhoneId, PhoneInfo, RadioTech};
///
/// // Two phones — a fast-everything one and a slow one — and two jobs.
/// let phones = vec![
///     PhoneInfo::new(PhoneId(0), CpuSpec::new(1500, 2), RadioTech::Wifi80211a, MsPerKb(1.0)),
///     PhoneInfo::new(PhoneId(1), CpuSpec::new(806, 1), RadioTech::Edge, MsPerKb(60.0)),
/// ];
/// let jobs = vec![
///     JobSpec::breakable(JobId(0), "primecount", KiloBytes(30), KiloBytes(500)),
///     JobSpec::atomic(JobId(1), "photoblur", KiloBytes(40), KiloBytes(200)),
/// ];
/// // c_ij: clock-scaled from a 12 ms/KB baseline on the 806 MHz phone.
/// let c = phones
///     .iter()
///     .map(|p| jobs.iter().map(|_| 12.0 * 806.0 / p.cpu.clock_mhz as f64).collect())
///     .collect();
/// let problem = SchedProblem::new(phones, jobs, c)?;
///
/// let schedule = GreedyScheduler::default().schedule(&problem)?;
/// schedule.validate(&problem)?;            // all SCH constraints hold
/// assert!(schedule.predicted_makespan_ms > 0.0);
/// # Ok::<(), cwc_types::CwcError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct GreedyScheduler {
    /// Binary-search termination: stop when `UB − LB` drops below this
    /// many ms (relative floor of `1e-4 · UB` also applies).
    pub tolerance_ms: f64,
}

impl Default for GreedyScheduler {
    fn default() -> Self {
        GreedyScheduler { tolerance_ms: 1.0 }
    }
}

/// One packing attempt's working state for a bin.
struct Bin {
    opened: bool,
    height_ms: f64,
    /// Jobs whose executable has been shipped to this phone already.
    shipped: Vec<bool>,
    queue: Vec<Assignment>,
}

/// A sortable item: job index + remaining input.
#[derive(Debug, Clone, Copy)]
struct Item {
    job: usize,
    remaining: KiloBytes,
}

/// Convergence statistics from one greedy run, reported through the
/// `cwc-obs` metrics registry by [`GreedyScheduler::schedule_observed`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GreedyStats {
    /// Binary-search iterations until `UB − LB` dropped below tolerance.
    pub binsearch_iters: u64,
    /// Total Algorithm-1 packing attempts (including the UB-widening ones).
    pub pack_calls: u64,
    /// Initial (possibly widened) upper bound on the capacity, ms.
    pub ub_ms: f64,
    /// Initial magical-bin lower bound, ms.
    pub lb_ms: f64,
    /// Final converged capacity window `hi − lo`, ms.
    pub window_ms: f64,
}

impl GreedyScheduler {
    /// Computes the schedule: binary search over bin capacity, packing
    /// each candidate capacity with Algorithm 1.
    pub fn schedule(&self, problem: &SchedProblem) -> CwcResult<Schedule> {
        self.schedule_with_stats(problem).map(|(s, _)| s)
    }

    /// Like [`GreedyScheduler::schedule`], recording convergence metrics
    /// (`sched.greedy.binsearch_iters`, `sched.greedy.pack_calls`) and a
    /// summary event into `obs`.
    pub fn schedule_observed(
        &self,
        problem: &SchedProblem,
        obs: &cwc_obs::Obs,
    ) -> CwcResult<Schedule> {
        let (schedule, stats) = self.schedule_with_stats(problem)?;
        obs.metrics
            .add("sched.greedy.binsearch_iters", stats.binsearch_iters);
        obs.metrics.add("sched.greedy.pack_calls", stats.pack_calls);
        obs.emit(
            obs.wall_event("sched", "greedy.converged")
                .field("binsearch_iters", stats.binsearch_iters)
                .field("pack_calls", stats.pack_calls)
                .field("ub_ms", stats.ub_ms)
                .field("lb_ms", stats.lb_ms)
                .field("window_ms", stats.window_ms)
                .field("makespan_ms", schedule.predicted_makespan_ms),
        );
        Ok(schedule)
    }

    /// The full computation, also returning convergence statistics.
    pub fn schedule_with_stats(
        &self,
        problem: &SchedProblem,
    ) -> CwcResult<(Schedule, GreedyStats)> {
        let mut stats = GreedyStats::default();
        let mut ub = worst_bin_upper_bound(problem);
        let lb0 = magical_bin_lower_bound(problem);

        // The upper bound must be packable; if a degenerate instance
        // defeats it, widen a few times before giving up.
        let mut best = None;
        for _ in 0..4 {
            stats.pack_calls += 1;
            if let Some(packing) = self.pack(problem, ub) {
                best = Some(packing);
                break;
            }
            ub *= 2.0;
        }
        let Some(mut best) = best else {
            return Err(CwcError::Infeasible(
                "greedy packing failed even at the worst-bin capacity".into(),
            ));
        };

        let mut lo = lb0.min(ub);
        let mut hi = ub;
        let tol = self.tolerance_ms.max(1e-4 * ub);
        while hi - lo > tol {
            let mid = 0.5 * (lo + hi);
            stats.binsearch_iters += 1;
            stats.pack_calls += 1;
            match self.pack(problem, mid) {
                Some(packing) => {
                    best = packing;
                    hi = mid;
                }
                None => lo = mid,
            }
        }
        stats.ub_ms = ub;
        stats.lb_ms = lb0;
        stats.window_ms = hi - lo;

        let mut per_phone: Vec<Vec<Assignment>> = best.into_iter().map(|b| b.queue).collect();
        assign_offsets(&mut per_phone, problem);
        let schedule = Schedule {
            per_phone,
            predicted_makespan_ms: 0.0,
        };
        let predicted = schedule
            .predicted_heights_ms(problem)
            .into_iter()
            .fold(0.0f64, f64::max);
        Ok((
            Schedule {
                predicted_makespan_ms: predicted,
                ..schedule
            },
            stats,
        ))
    }

    /// Algorithm 1: packs all items with bin capacity `capacity_ms`, or
    /// reports failure.
    fn pack(&self, problem: &SchedProblem, capacity_ms: f64) -> Option<Vec<Bin>> {
        let s = problem.slowest_phone();
        let mut items: Vec<Item> = problem
            .jobs
            .iter()
            .enumerate()
            .map(|(j, spec)| Item {
                job: j,
                remaining: spec.input_kb,
            })
            .collect();
        // Decreasing remaining execution time on the slowest phone.
        let sort_key = |it: &Item| it.remaining.as_f64() * problem.c[s][it.job];
        items.sort_by(|a, b| sort_key(b).partial_cmp(&sort_key(a)).unwrap());

        let mut bins: Vec<Bin> = (0..problem.num_phones())
            .map(|_| Bin {
                opened: false,
                height_ms: 0.0,
                shipped: vec![false; problem.num_jobs()],
                queue: Vec::new(),
            })
            .collect();

        while !items.is_empty() {
            // Step 1: first item (in sorted order) that fits an open bin.
            let mut placed = false;
            for idx in 0..items.len() {
                let item = items[idx];
                let atomic = problem.jobs[item.job].kind.is_atomic();
                // Candidate: open bin with minimum height where it fits.
                let mut target: Option<(usize, KiloBytes)> = None;
                for (i, bin) in bins.iter().enumerate() {
                    if !bin.opened {
                        continue;
                    }
                    let room = capacity_ms - bin.height_ms;
                    let fit = problem.max_fit_kb(i, item.job, room, !bin.shipped[item.job]);
                    let enough = if atomic {
                        fit >= item.remaining
                    } else {
                        fit.0 >= 1
                    };
                    if enough {
                        let better = match target {
                            None => true,
                            Some((best_i, _)) => bin.height_ms < bins[best_i].height_ms,
                        };
                        if better {
                            target = Some((i, fit));
                        }
                    }
                }
                if let Some((i, fit)) = target {
                    let take = fit.min(item.remaining);
                    self.commit(problem, &mut bins[i], i, item.job, take);
                    consume(&mut items, idx, take, sort_key);
                    placed = true;
                    break;
                }
            }
            if placed {
                continue;
            }

            // Step 2: nothing fits the open bins — open a new one for the
            // largest item.
            let item = items[0];
            let atomic = problem.jobs[item.job].kind.is_atomic();
            let mut best: Option<(usize, f64, KiloBytes)> = None;
            for (i, bin) in bins.iter().enumerate() {
                if bin.opened {
                    continue;
                }
                let fit = problem.max_fit_kb(i, item.job, capacity_ms, true);
                let enough = if atomic {
                    fit >= item.remaining
                } else {
                    fit.0 >= 1
                };
                if !enough {
                    continue;
                }
                // "the bin that minimizes Equation 1 for the largest item".
                let cost = problem.cost_ms(i, item.job, item.remaining, true);
                if best.is_none_or(|(_, c, _)| cost < c) {
                    best = Some((i, cost, fit));
                }
            }
            let Some((i, _, fit)) = best else {
                // No open bin fits it and no openable bin accepts it:
                // this capacity is infeasible (Algorithm 1 lines 23–25).
                return None;
            };
            bins[i].opened = true;
            let take = fit.min(item.remaining);
            self.commit(problem, &mut bins[i], i, item.job, take);
            consume(&mut items, 0, take, sort_key);
        }
        Some(bins)
    }

    /// Records a partition into a bin and updates its height.
    fn commit(
        &self,
        problem: &SchedProblem,
        bin: &mut Bin,
        phone_idx: usize,
        job: usize,
        take: KiloBytes,
    ) {
        debug_assert!(take.0 >= 1);
        let include_exe = !bin.shipped[job];
        bin.height_ms += problem.cost_ms(phone_idx, job, take, include_exe);
        bin.shipped[job] = true;
        bin.queue.push(Assignment {
            phone: problem.phones[phone_idx].id,
            job: problem.jobs[job].id,
            input_kb: take,
            offset_kb: KiloBytes::ZERO, // assigned later
        });
    }
}

/// Removes `take` KB from item `idx`; re-sorts if a remainder goes back
/// (Algorithm 1 lines 8–12).
fn consume(items: &mut Vec<Item>, idx: usize, take: KiloBytes, sort_key: impl Fn(&Item) -> f64) {
    if take >= items[idx].remaining {
        items.remove(idx);
    } else {
        items[idx].remaining = items[idx].remaining - take;
        items.sort_by(|a, b| sort_key(b).partial_cmp(&sort_key(a)).unwrap());
    }
}

/// Upper bound: every item placed in its individually worst bin.
fn worst_bin_upper_bound(problem: &SchedProblem) -> f64 {
    (0..problem.num_jobs())
        .map(|j| {
            (0..problem.num_phones())
                .map(|i| problem.full_cost_ms(i, j))
                .fold(0.0f64, f64::max)
        })
        .sum()
}

/// Loose lower bound: one magical bin with the aggregate bandwidth and
/// processing rate of the whole fleet, no executable costs.
fn magical_bin_lower_bound(problem: &SchedProblem) -> f64 {
    // Each phone's most optimistic per-KB rate across jobs.
    let aggregate_rate: f64 = (0..problem.num_phones())
        .map(|i| {
            (0..problem.num_jobs())
                .map(|j| 1.0 / problem.per_kb_ms(i, j))
                .fold(0.0f64, f64::max)
        })
        .sum();
    let total_kb: f64 = problem.jobs.iter().map(|j| j.input_kb.as_f64()).sum();
    if aggregate_rate <= 0.0 {
        return 0.0;
    }
    total_kb / aggregate_rate
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::test_support::{costs, instance, phones};
    use cwc_types::{CpuSpec, JobId, JobSpec, MsPerKb, PhoneId, PhoneInfo, RadioTech};

    #[test]
    fn produces_valid_schedule() {
        let problem = instance(6, 20);
        let s = GreedyScheduler::default().schedule(&problem).unwrap();
        s.validate(&problem).unwrap();
        assert!(s.predicted_makespan_ms > 0.0);
    }

    #[test]
    fn makespan_equals_max_height() {
        let problem = instance(4, 10);
        let s = GreedyScheduler::default().schedule(&problem).unwrap();
        let heights = s.predicted_heights_ms(&problem);
        let max = heights.into_iter().fold(0.0f64, f64::max);
        assert!((s.predicted_makespan_ms - max).abs() < 1e-9);
    }

    #[test]
    fn single_job_single_phone() {
        let p = phones(1);
        let j = vec![JobSpec::breakable(
            JobId(0),
            "primecount",
            KiloBytes(30),
            KiloBytes(500),
        )];
        let c = costs(&p, &j);
        let problem = SchedProblem::new(p, j, c).unwrap();
        let s = GreedyScheduler::default().schedule(&problem).unwrap();
        s.validate(&problem).unwrap();
        let expect = problem.full_cost_ms(0, 0);
        assert!(
            (s.predicted_makespan_ms - expect).abs() < 1.0,
            "{} vs {expect}",
            s.predicted_makespan_ms
        );
    }

    #[test]
    fn atomic_jobs_are_never_split() {
        let problem = instance(5, 30);
        let s = GreedyScheduler::default().schedule(&problem).unwrap();
        let parts = s.partitions_per_job();
        for job in &problem.jobs {
            if job.kind.is_atomic() {
                assert_eq!(parts[&job.id], 1, "{} split", job.id);
            }
        }
    }

    #[test]
    fn prefers_whole_assignments() {
        // Plenty of capacity slack: splits should be rare (Fig. 12b: ~90%
        // of tasks unpartitioned).
        let problem = instance(6, 30);
        let s = GreedyScheduler::default().schedule(&problem).unwrap();
        let splits = s.split_counts_sorted();
        let unsplit = splits.iter().filter(|&&n| n == 0).count();
        assert!(
            unsplit * 10 >= splits.len() * 7,
            "only {unsplit}/{} jobs unsplit",
            splits.len()
        );
    }

    #[test]
    fn beats_worst_bin_bound_and_respects_lower_bound() {
        let problem = instance(6, 24);
        let s = GreedyScheduler::default().schedule(&problem).unwrap();
        assert!(s.predicted_makespan_ms <= worst_bin_upper_bound(&problem) + 1.0);
        assert!(s.predicted_makespan_ms >= magical_bin_lower_bound(&problem) - 1.0);
    }

    #[test]
    fn fast_link_fast_cpu_phone_gets_the_lions_share() {
        // Two phones: one strictly better on both axes. The better phone
        // must end with more assigned input.
        let p = vec![
            PhoneInfo::new(
                PhoneId(0),
                CpuSpec::new(1500, 2),
                RadioTech::Wifi80211a,
                MsPerKb(1.0),
            ),
            PhoneInfo::new(
                PhoneId(1),
                CpuSpec::new(806, 1),
                RadioTech::Edge,
                MsPerKb(60.0),
            ),
        ];
        let j = vec![JobSpec::breakable(
            JobId(0),
            "primecount",
            KiloBytes(30),
            KiloBytes(2_000),
        )];
        let c = costs(&p, &j);
        let problem = SchedProblem::new(p, j, c).unwrap();
        let s = GreedyScheduler::default().schedule(&problem).unwrap();
        s.validate(&problem).unwrap();
        let kb_on: Vec<u64> = s
            .per_phone
            .iter()
            .map(|q| q.iter().map(|a| a.input_kb.0).sum())
            .collect();
        assert!(
            kb_on[0] > kb_on[1] * 5,
            "fast phone got {} KB, slow got {} KB",
            kb_on[0],
            kb_on[1]
        );
    }

    #[test]
    fn load_balances_identical_phones() {
        // 4 identical phones, 8 identical breakable jobs → heights within
        // one job cost of each other.
        let p: Vec<PhoneInfo> = (0..4)
            .map(|i| {
                PhoneInfo::new(
                    PhoneId(i),
                    CpuSpec::new(1000, 2),
                    RadioTech::Wifi80211g,
                    MsPerKb(2.0),
                )
            })
            .collect();
        let j: Vec<JobSpec> = (0..8)
            .map(|k| JobSpec::breakable(JobId(k), "primecount", KiloBytes(30), KiloBytes(400)))
            .collect();
        let c = costs(&p, &j);
        let problem = SchedProblem::new(p, j, c).unwrap();
        let s = GreedyScheduler::default().schedule(&problem).unwrap();
        s.validate(&problem).unwrap();
        let heights = s.predicted_heights_ms(&problem);
        let max = heights.iter().cloned().fold(0.0f64, f64::max);
        let min = heights.iter().cloned().fold(f64::INFINITY, f64::min);
        let one_job = problem.full_cost_ms(0, 0);
        assert!(
            max - min <= one_job + 1.0,
            "imbalance {max}-{min} exceeds one job ({one_job})"
        );
    }

    #[test]
    fn ram_caps_are_respected() {
        let mut p = phones(3);
        for ph in &mut p {
            ph.ram_kb = 120;
        }
        let j = vec![
            JobSpec::breakable(JobId(0), "primecount", KiloBytes(30), KiloBytes(600)),
            JobSpec::breakable(JobId(1), "primecount", KiloBytes(30), KiloBytes(300)),
        ];
        let c = costs(&p, &j);
        let problem = SchedProblem::new(p, j, c).unwrap();
        let s = GreedyScheduler::default().schedule(&problem).unwrap();
        s.validate(&problem).unwrap();
        for a in s.per_phone.iter().flatten() {
            assert!(a.input_kb.0 <= 120);
        }
    }

    #[test]
    fn infeasible_atomic_reports_error() {
        // An atomic job too big for any phone's RAM cannot be scheduled.
        let mut p = phones(2);
        for ph in &mut p {
            ph.ram_kb = 100;
        }
        let j = vec![JobSpec::atomic(
            JobId(0),
            "photoblur",
            KiloBytes(10),
            KiloBytes(500),
        )];
        let c = costs(&p, &j);
        let problem = SchedProblem::new(p, j, c).unwrap();
        assert!(GreedyScheduler::default().schedule(&problem).is_err());
    }

    #[test]
    fn stats_report_convergence_work() {
        let problem = instance(6, 20);
        let sched = GreedyScheduler::default();
        let (s, stats) = sched.schedule_with_stats(&problem).unwrap();
        assert!(stats.binsearch_iters > 0, "{stats:?}");
        // Every binary-search iteration packs once; the UB probe adds more.
        assert!(stats.pack_calls > stats.binsearch_iters, "{stats:?}");
        assert!(stats.ub_ms >= stats.lb_ms, "{stats:?}");
        assert!(stats.window_ms <= sched.tolerance_ms.max(1e-4 * stats.ub_ms));
        // Stats do not change the schedule itself.
        let plain = sched.schedule(&problem).unwrap();
        assert_eq!(s.per_phone, plain.per_phone);
    }

    #[test]
    fn observed_schedule_records_metrics() {
        let problem = instance(4, 12);
        let obs = cwc_obs::Obs::new();
        GreedyScheduler::default()
            .schedule_observed(&problem, &obs)
            .unwrap();
        assert!(obs.metrics.counter_value("sched.greedy.binsearch_iters") > 0);
        assert!(obs.metrics.counter_value("sched.greedy.pack_calls") > 0);
    }

    #[test]
    fn deterministic_output() {
        let problem = instance(6, 18);
        let a = GreedyScheduler::default().schedule(&problem).unwrap();
        let b = GreedyScheduler::default().schedule(&problem).unwrap();
        assert_eq!(a.per_phone.len(), b.per_phone.len());
        for (qa, qb) in a.per_phone.iter().zip(&b.per_phone) {
            assert_eq!(qa, qb);
        }
    }
}
