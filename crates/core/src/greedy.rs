//! Algorithm 1 — greedy complementary bin packing — plus the capacity
//! binary search (§5).
//!
//! The makespan problem is viewed as its complementary bin-packing
//! problem (CBP): phones are bins, the capacity `C` is a candidate
//! makespan, and an item is a job's remaining input. A successful packing
//! at capacity `C` *is* a schedule finishing within `C`. Binary search
//! over `C` then finds the smallest capacity the greedy can pack, which
//! is the reported (predicted) makespan.
//!
//! Key behaviors from the paper:
//!
//! * items are kept sorted by **remaining local execution time on the
//!   slowest phone** (`R_j · c_sj`), largest first;
//! * packing prefers **whole items** — splitting only happens when the
//!   whole item cannot fit, and then the **largest fitting partition** is
//!   packed (minimizing the server's aggregation overhead, Fig. 12b);
//! * the executable cost `E_j · b_i` is paid once per phone–job pair;
//! * atomic items are never split;
//! * new bins open only when nothing fits the open ones, choosing the bin
//!   that minimizes Eq. 1 for the largest item.
//!
//! The packing inner loops live in [`crate::pack`] (a reusable
//! zero-allocation arena over flat cost tables); this module owns the
//! binary search, including the warm-started variant used by the
//! coordinator on rescheduling instants. The pre-optimization packer is
//! preserved verbatim in [`reference`] as the byte-identity oracle for
//! the equivalence proptest.

use crate::pack::PackScratch;
use crate::problem::SchedProblem;
use crate::schedule::{assign_offsets, Schedule};
use cwc_types::{CwcError, CwcResult};

/// Multiplier applied to the warm-start guess so a residual problem
/// whose optimum sits slightly above the transferred ratio still packs
/// on the first probe.
const WARM_GUESS_MARGIN: f64 = 1.05;

/// Gallop step: each failed warm probe multiplies the guess by this.
/// Kept small so that when the transferred ratio undershoots, the first
/// succeeding probe brackets the optimum tightly — a ×2 step would
/// leave a bisection window nearly as wide as a cold search's.
const GALLOP_STEP: f64 = 1.25;

/// Maximum galloping probes before the warm path gives up and falls
/// back to the cold worst-bin bound (six ×1.25 steps cover a ~3×
/// misjudgment of the transferred ratio).
const MAX_GALLOP_PROBES: u32 = 6;

/// The CWC scheduler.
///
/// ```
/// use cwc_core::{GreedyScheduler, SchedProblem};
/// use cwc_types::{CpuSpec, JobId, JobSpec, KiloBytes, MsPerKb, PhoneId, PhoneInfo, RadioTech};
///
/// // Two phones — a fast-everything one and a slow one — and two jobs.
/// let phones = vec![
///     PhoneInfo::new(PhoneId(0), CpuSpec::new(1500, 2), RadioTech::Wifi80211a, MsPerKb(1.0)),
///     PhoneInfo::new(PhoneId(1), CpuSpec::new(806, 1), RadioTech::Edge, MsPerKb(60.0)),
/// ];
/// let jobs = vec![
///     JobSpec::breakable(JobId(0), "primecount", KiloBytes(30), KiloBytes(500)),
///     JobSpec::atomic(JobId(1), "photoblur", KiloBytes(40), KiloBytes(200)),
/// ];
/// // c_ij: clock-scaled from a 12 ms/KB baseline on the 806 MHz phone.
/// let c = phones
///     .iter()
///     .map(|p| jobs.iter().map(|_| 12.0 * 806.0 / p.cpu.clock_mhz as f64).collect())
///     .collect();
/// let problem = SchedProblem::new(phones, jobs, c)?;
///
/// let schedule = GreedyScheduler::default().schedule(&problem)?;
/// schedule.validate(&problem)?;            // all SCH constraints hold
/// assert!(schedule.predicted_makespan_ms > 0.0);
/// # Ok::<(), cwc_types::CwcError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct GreedyScheduler {
    /// Binary-search termination: stop when `UB − LB` drops below this
    /// many ms (relative floor of `1e-4 · UB` also applies).
    pub tolerance_ms: f64,
}

impl Default for GreedyScheduler {
    fn default() -> Self {
        GreedyScheduler { tolerance_ms: 1.0 }
    }
}

/// Warm-start hint carried between scheduling instants: the previous
/// instant's converged capacity and its magical-bin lower bound.
///
/// The hint transfers the *shape* of the previous solution, not its
/// absolute window: the new search guesses
/// `lb₀ · (hi_ms / lb_ms) · 1.05` — "the greedy converged this far
/// above the magical bound last time; a residual of the same workload
/// on the surviving fleet lands near the same ratio" — then gallops
/// (stepping ×1.25 on failure) until a probe packs. This is sound because
/// packability is monotone in capacity: any failed probe is a certified
/// lower bound, any packed probe a certified upper bound, so the warm
/// bisection window `[lb₀, guess]` brackets the same greedy fixpoint a
/// cold search converges to. A warm schedule may differ from the cold
/// one within the tolerance window; determinism is unaffected because
/// the hint itself is a deterministic function of the run history.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WarmStart {
    /// Converged capacity (the final binary-search `hi`), ms.
    pub hi_ms: f64,
    /// Magical-bin lower bound of the instant that produced `hi_ms`, ms.
    pub lb_ms: f64,
}

/// Convergence statistics from one greedy run, reported through the
/// `cwc-obs` metrics registry by [`GreedyScheduler::schedule_observed`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GreedyStats {
    /// Binary-search iterations until `UB − LB` dropped below tolerance.
    pub binsearch_iters: u64,
    /// Total Algorithm-1 packing attempts (including the UB-widening and
    /// warm-start galloping ones).
    pub pack_calls: u64,
    /// Initial (possibly widened) upper bound on the capacity, ms.
    pub ub_ms: f64,
    /// Initial magical-bin lower bound, ms.
    pub lb_ms: f64,
    /// Final converged capacity window `hi − lo`, ms.
    pub window_ms: f64,
    /// 1 when a warm-start guess packed and seeded the search window.
    pub warm_hits: u64,
    /// Packing attempts avoided versus a cold search of the same
    /// instance (arithmetically re-simulated, not re-packed).
    pub probes_saved: u64,
}

impl GreedyScheduler {
    /// Computes the schedule: binary search over bin capacity, packing
    /// each candidate capacity with Algorithm 1.
    pub fn schedule(&self, problem: &SchedProblem) -> CwcResult<Schedule> {
        self.schedule_with_stats(problem).map(|(s, _)| s)
    }

    /// Like [`GreedyScheduler::schedule`], recording convergence metrics
    /// (`sched.greedy.binsearch_iters`, `sched.greedy.pack_calls`) and a
    /// summary event into `obs`.
    pub fn schedule_observed(
        &self,
        problem: &SchedProblem,
        obs: &cwc_obs::Obs,
    ) -> CwcResult<Schedule> {
        self.schedule_observed_warm(problem, obs, None)
            .map(|(s, _)| s)
    }

    /// Like [`GreedyScheduler::schedule_observed`], but optionally
    /// warm-started from a previous instant's [`WarmStart`], emitting the
    /// `sched.greedy.warm_hits` / `sched.greedy.probes_saved` counters
    /// and a `greedy.warm_start` event when a hint was supplied. Returns
    /// the hint for the next instant alongside the schedule.
    pub fn schedule_observed_warm(
        &self,
        problem: &SchedProblem,
        obs: &cwc_obs::Obs,
        warm: Option<WarmStart>,
    ) -> CwcResult<(Schedule, WarmStart)> {
        let warm_attempted = warm.is_some();
        let (schedule, stats, next) = self.schedule_warm_with_stats(problem, warm)?;
        obs.metrics
            .add("sched.greedy.binsearch_iters", stats.binsearch_iters);
        obs.metrics.add("sched.greedy.pack_calls", stats.pack_calls);
        obs.metrics.add("sched.greedy.warm_hits", stats.warm_hits);
        obs.metrics
            .add("sched.greedy.probes_saved", stats.probes_saved);
        if warm_attempted {
            obs.emit(
                obs.wall_event("sched", "greedy.warm_start")
                    .field("hit", stats.warm_hits)
                    .field("pack_calls", stats.pack_calls)
                    .field("probes_saved", stats.probes_saved),
            );
        }
        obs.emit(
            obs.wall_event("sched", "greedy.converged")
                .field("binsearch_iters", stats.binsearch_iters)
                .field("pack_calls", stats.pack_calls)
                .field("ub_ms", stats.ub_ms)
                .field("lb_ms", stats.lb_ms)
                .field("window_ms", stats.window_ms)
                .field("makespan_ms", schedule.predicted_makespan_ms),
        );
        Ok((schedule, next))
    }

    /// The full computation, also returning convergence statistics.
    pub fn schedule_with_stats(
        &self,
        problem: &SchedProblem,
    ) -> CwcResult<(Schedule, GreedyStats)> {
        self.schedule_warm_with_stats(problem, None)
            .map(|(s, stats, _)| (s, stats))
    }

    /// The full computation with an optional warm start. With
    /// `warm: None` this follows the seed implementation's probe
    /// sequence exactly and produces byte-identical schedules (enforced
    /// by the equivalence proptest against [`reference`]).
    pub fn schedule_warm_with_stats(
        &self,
        problem: &SchedProblem,
        warm: Option<WarmStart>,
    ) -> CwcResult<(Schedule, GreedyStats, WarmStart)> {
        let mut stats = GreedyStats::default();
        let tables = problem.tables();
        let mut scratch = PackScratch::new(problem, &tables);
        let ub0 = worst_bin_upper_bound(problem);
        let lb0 = magical_bin_lower_bound(problem);

        // Warm start: gallop from the transferred guess. Any failed
        // probe is a certified lower bound (packability is monotone in
        // capacity); the first packed probe becomes `hi`.
        let mut gallop_lo: Option<f64> = None;
        let mut warm_hi: Option<f64> = None;
        if let Some(w) = warm {
            let usable =
                w.hi_ms.is_finite() && w.hi_ms > 0.0 && w.lb_ms.is_finite() && w.lb_ms > 0.0;
            if usable && lb0 > 0.0 {
                let mut guess = lb0 * (w.hi_ms / w.lb_ms) * WARM_GUESS_MARGIN;
                for _ in 0..MAX_GALLOP_PROBES {
                    if !guess.is_finite() || guess <= 0.0 || guess >= ub0 {
                        break;
                    }
                    stats.pack_calls += 1;
                    if scratch.pack(&tables, guess) {
                        scratch.mark_success();
                        warm_hi = Some(guess);
                        stats.warm_hits = 1;
                        break;
                    }
                    gallop_lo = Some(guess);
                    guess *= GALLOP_STEP;
                }
            }
        }

        let (mut lo, mut hi, tol);
        match warm_hi {
            Some(h) => {
                stats.ub_ms = ub0;
                // Tolerance from the *cold* upper bound: the relative
                // floor must not shrink with the warm window, or the
                // warm search would bisect further than a cold one.
                tol = self.tolerance_ms.max(1e-4 * ub0);
                hi = h;
                lo = gallop_lo.unwrap_or(lb0).max(lb0);
            }
            None => {
                // Cold path — identical probe sequence to the seed: the
                // upper bound must be packable; if a degenerate instance
                // defeats it, widen a few times before giving up.
                let mut ub = ub0;
                let mut packed = false;
                for _ in 0..4 {
                    stats.pack_calls += 1;
                    if scratch.pack(&tables, ub) {
                        scratch.mark_success();
                        packed = true;
                        break;
                    }
                    ub *= 2.0;
                }
                if !packed {
                    return Err(CwcError::Infeasible(
                        "greedy packing failed even at the worst-bin capacity".into(),
                    ));
                }
                stats.ub_ms = ub;
                tol = self.tolerance_ms.max(1e-4 * ub);
                hi = ub;
                lo = lb0.min(ub);
                if let Some(g) = gallop_lo {
                    // A failed warm probe below the cold bound tightens
                    // the window even when the gallop never hit.
                    lo = lo.max(g.min(hi));
                }
            }
        }

        while hi - lo > tol {
            let mid = 0.5 * (lo + hi);
            stats.binsearch_iters += 1;
            stats.pack_calls += 1;
            if scratch.pack(&tables, mid) {
                scratch.mark_success();
                hi = mid;
            } else {
                lo = mid;
            }
        }
        stats.lb_ms = lb0;
        stats.window_ms = hi - lo;

        if stats.warm_hits > 0 {
            // What a cold search would have cost: one UB probe plus the
            // bisection iterations. Each iteration halves the window
            // regardless of which side moves, so the count is pure
            // arithmetic — no packing needed.
            let mut window = ub0 - lb0.min(ub0);
            let mut cold_calls: u64 = 1;
            while window > tol && cold_calls < 64 {
                window *= 0.5;
                cold_calls += 1;
            }
            stats.probes_saved = cold_calls.saturating_sub(stats.pack_calls);
        }

        let Some(mut per_phone) = scratch.take_best() else {
            return Err(CwcError::Infeasible(
                "greedy packing failed even at the worst-bin capacity".into(),
            ));
        };
        assign_offsets(&mut per_phone, problem);
        let schedule = Schedule {
            per_phone,
            predicted_makespan_ms: 0.0,
        };
        let predicted = schedule
            .predicted_heights_ms(problem)
            .into_iter()
            .fold(0.0f64, f64::max);
        let next = WarmStart {
            hi_ms: hi,
            lb_ms: if lb0 > 0.0 { lb0 } else { hi },
        };
        Ok((
            Schedule {
                predicted_makespan_ms: predicted,
                ..schedule
            },
            stats,
            next,
        ))
    }
}

/// Upper bound: every item placed in its individually worst bin.
pub(crate) fn worst_bin_upper_bound(problem: &SchedProblem) -> f64 {
    (0..problem.num_jobs())
        .map(|j| {
            (0..problem.num_phones())
                .map(|i| problem.full_cost_ms(i, j))
                .fold(0.0f64, f64::max)
        })
        .sum()
}

/// Loose lower bound: one magical bin with the aggregate bandwidth and
/// processing rate of the whole fleet, no executable costs.
pub(crate) fn magical_bin_lower_bound(problem: &SchedProblem) -> f64 {
    // Each phone's most optimistic per-KB rate across jobs.
    let aggregate_rate: f64 = (0..problem.num_phones())
        .map(|i| {
            (0..problem.num_jobs())
                .map(|j| 1.0 / problem.per_kb_ms(i, j))
                .fold(0.0f64, f64::max)
        })
        .sum();
    let total_kb: f64 = problem.jobs.iter().map(|j| j.input_kb.as_f64()).sum();
    if aggregate_rate <= 0.0 {
        return 0.0;
    }
    total_kb / aggregate_rate
}

/// The seed (pre-optimization) packer, preserved as the byte-identity
/// oracle for the optimized hot path. It allocates fresh bins and
/// re-sorts the item list on every probe, exactly as the original
/// implementation did; the equivalence proptest in
/// `tests/proptest_scheduler.rs` asserts the optimized path reproduces
/// its schedules bit for bit. Not part of the public API surface.
#[doc(hidden)]
pub mod reference {
    use super::{magical_bin_lower_bound, worst_bin_upper_bound, GreedyScheduler, GreedyStats};
    use crate::problem::SchedProblem;
    use crate::schedule::{assign_offsets, Assignment, Schedule};
    use cwc_types::{CwcError, CwcResult, JobId, KiloBytes, PhoneId};

    /// One packing attempt's working state for a bin.
    struct Bin {
        opened: bool,
        height_ms: f64,
        /// Jobs whose executable has been shipped to this phone already.
        shipped: Vec<bool>,
        queue: Vec<Assignment>,
    }

    /// A sortable item: job index + remaining input.
    #[derive(Debug, Clone, Copy)]
    struct Item {
        job: usize,
        remaining: KiloBytes,
    }

    /// The seed implementation of
    /// [`GreedyScheduler::schedule_with_stats`].
    pub fn schedule_with_stats(
        sched: &GreedyScheduler,
        problem: &SchedProblem,
    ) -> CwcResult<(Schedule, GreedyStats)> {
        let mut stats = GreedyStats::default();
        let mut ub = worst_bin_upper_bound(problem);
        let lb0 = magical_bin_lower_bound(problem);

        let mut best = None;
        for _ in 0..4 {
            stats.pack_calls += 1;
            if let Some(packing) = pack(problem, ub) {
                best = Some(packing);
                break;
            }
            ub *= 2.0;
        }
        let Some(mut best) = best else {
            return Err(CwcError::Infeasible(
                "greedy packing failed even at the worst-bin capacity".into(),
            ));
        };

        let mut lo = lb0.min(ub);
        let mut hi = ub;
        let tol = sched.tolerance_ms.max(1e-4 * ub);
        while hi - lo > tol {
            let mid = 0.5 * (lo + hi);
            stats.binsearch_iters += 1;
            stats.pack_calls += 1;
            match pack(problem, mid) {
                Some(packing) => {
                    best = packing;
                    hi = mid;
                }
                None => lo = mid,
            }
        }
        stats.ub_ms = ub;
        stats.lb_ms = lb0;
        stats.window_ms = hi - lo;

        let mut per_phone: Vec<Vec<Assignment>> = best.into_iter().map(|b| b.queue).collect();
        assign_offsets(&mut per_phone, problem);
        let schedule = Schedule {
            per_phone,
            predicted_makespan_ms: 0.0,
        };
        let predicted = schedule
            .predicted_heights_ms(problem)
            .into_iter()
            .fold(0.0f64, f64::max);
        Ok((
            Schedule {
                predicted_makespan_ms: predicted,
                ..schedule
            },
            stats,
        ))
    }

    /// Algorithm 1 as the seed implemented it: fresh allocations and a
    /// full re-sort per probe.
    fn pack(problem: &SchedProblem, capacity_ms: f64) -> Option<Vec<Bin>> {
        let s = problem.slowest_phone();
        let rates: Vec<f64> = problem.c.get(s).cloned().unwrap_or_default();
        let mut items: Vec<Item> = problem
            .jobs
            .iter()
            .enumerate()
            .map(|(j, spec)| Item {
                job: j,
                remaining: spec.input_kb,
            })
            .collect();
        // Decreasing remaining execution time on the slowest phone.
        let sort_key =
            |it: &Item| it.remaining.as_f64() * rates.get(it.job).copied().unwrap_or(0.0);
        items.sort_by(|a, b| sort_key(b).total_cmp(&sort_key(a)));

        let mut bins: Vec<Bin> = (0..problem.num_phones())
            .map(|_| Bin {
                opened: false,
                height_ms: 0.0,
                shipped: vec![false; problem.num_jobs()],
                queue: Vec::new(),
            })
            .collect();

        while !items.is_empty() {
            // Step 1: first item (in sorted order) that fits an open bin.
            let mut placed = false;
            for idx in 0..items.len() {
                let Some(item) = items.get(idx).copied() else {
                    break;
                };
                let atomic = problem
                    .jobs
                    .get(item.job)
                    .is_some_and(|j| j.kind.is_atomic());
                // Candidate: open bin with minimum height where it fits.
                let mut target: Option<(usize, KiloBytes, f64)> = None;
                for (i, bin) in bins.iter().enumerate() {
                    if !bin.opened {
                        continue;
                    }
                    let room = capacity_ms - bin.height_ms;
                    let shipped = bin.shipped.get(item.job).copied().unwrap_or(false);
                    let fit = problem.max_fit_kb(i, item.job, room, !shipped);
                    let enough = if atomic {
                        fit >= item.remaining
                    } else {
                        fit.0 >= 1
                    };
                    if enough {
                        let better = match target {
                            None => true,
                            Some((_, _, best_h)) => bin.height_ms < best_h,
                        };
                        if better {
                            target = Some((i, fit, bin.height_ms));
                        }
                    }
                }
                if let Some((i, fit, _)) = target {
                    let take = fit.min(item.remaining);
                    commit(problem, &mut bins, i, item.job, take);
                    consume(&mut items, idx, take, sort_key);
                    placed = true;
                    break;
                }
            }
            if placed {
                continue;
            }

            // Step 2: nothing fits the open bins — open a new one for the
            // largest item.
            let Some(item) = items.first().copied() else {
                break;
            };
            let atomic = problem
                .jobs
                .get(item.job)
                .is_some_and(|j| j.kind.is_atomic());
            let mut best: Option<(usize, f64, KiloBytes)> = None;
            for (i, bin) in bins.iter().enumerate() {
                if bin.opened {
                    continue;
                }
                let fit = problem.max_fit_kb(i, item.job, capacity_ms, true);
                let enough = if atomic {
                    fit >= item.remaining
                } else {
                    fit.0 >= 1
                };
                if !enough {
                    continue;
                }
                // "the bin that minimizes Equation 1 for the largest item".
                let cost = problem.cost_ms(i, item.job, item.remaining, true);
                if best.is_none_or(|(_, c, _)| cost < c) {
                    best = Some((i, cost, fit));
                }
            }
            let Some((i, _, fit)) = best else {
                // No open bin fits it and no openable bin accepts it:
                // this capacity is infeasible (Algorithm 1 lines 23–25).
                return None;
            };
            if let Some(bin) = bins.get_mut(i) {
                bin.opened = true;
            }
            let take = fit.min(item.remaining);
            commit(problem, &mut bins, i, item.job, take);
            consume(&mut items, 0, take, sort_key);
        }
        Some(bins)
    }

    /// Records a partition into a bin and updates its height.
    fn commit(problem: &SchedProblem, bins: &mut [Bin], i: usize, job: usize, take: KiloBytes) {
        debug_assert!(take.0 >= 1);
        let Some(bin) = bins.get_mut(i) else {
            return;
        };
        let include_exe = !bin.shipped.get(job).copied().unwrap_or(false);
        bin.height_ms += problem.cost_ms(i, job, take, include_exe);
        if let Some(flag) = bin.shipped.get_mut(job) {
            *flag = true;
        }
        bin.queue.push(Assignment {
            phone: problem
                .phones
                .get(i)
                .map(|p| p.id)
                .unwrap_or(PhoneId(u32::MAX)),
            job: problem
                .jobs
                .get(job)
                .map(|j| j.id)
                .unwrap_or(JobId(u32::MAX)),
            input_kb: take,
            offset_kb: KiloBytes::ZERO, // assigned later
        });
    }

    /// Removes `take` KB from item `idx`; re-sorts if a remainder goes
    /// back (Algorithm 1 lines 8–12).
    fn consume(
        items: &mut Vec<Item>,
        idx: usize,
        take: KiloBytes,
        sort_key: impl Fn(&Item) -> f64,
    ) {
        let Some(item) = items.get_mut(idx) else {
            return;
        };
        if take >= item.remaining {
            items.remove(idx);
        } else {
            item.remaining = item.remaining - take;
            items.sort_by(|a, b| sort_key(b).total_cmp(&sort_key(a)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::test_support::{costs, instance, phones};
    use cwc_types::{CpuSpec, JobId, JobSpec, KiloBytes, MsPerKb, PhoneId, PhoneInfo, RadioTech};

    #[test]
    fn produces_valid_schedule() {
        let problem = instance(6, 20);
        let s = GreedyScheduler::default().schedule(&problem).unwrap();
        s.validate(&problem).unwrap();
        assert!(s.predicted_makespan_ms > 0.0);
    }

    #[test]
    fn makespan_equals_max_height() {
        let problem = instance(4, 10);
        let s = GreedyScheduler::default().schedule(&problem).unwrap();
        let heights = s.predicted_heights_ms(&problem);
        let max = heights.into_iter().fold(0.0f64, f64::max);
        assert!((s.predicted_makespan_ms - max).abs() < 1e-9);
    }

    #[test]
    fn single_job_single_phone() {
        let p = phones(1);
        let j = vec![JobSpec::breakable(
            JobId(0),
            "primecount",
            KiloBytes(30),
            KiloBytes(500),
        )];
        let c = costs(&p, &j);
        let problem = SchedProblem::new(p, j, c).unwrap();
        let s = GreedyScheduler::default().schedule(&problem).unwrap();
        s.validate(&problem).unwrap();
        let expect = problem.full_cost_ms(0, 0);
        assert!(
            (s.predicted_makespan_ms - expect).abs() < 1.0,
            "{} vs {expect}",
            s.predicted_makespan_ms
        );
    }

    #[test]
    fn atomic_jobs_are_never_split() {
        let problem = instance(5, 30);
        let s = GreedyScheduler::default().schedule(&problem).unwrap();
        let parts = s.partitions_per_job();
        for job in &problem.jobs {
            if job.kind.is_atomic() {
                assert_eq!(parts[&job.id], 1, "{} split", job.id);
            }
        }
    }

    #[test]
    fn prefers_whole_assignments() {
        // Plenty of capacity slack: splits should be rare (Fig. 12b: ~90%
        // of tasks unpartitioned).
        let problem = instance(6, 30);
        let s = GreedyScheduler::default().schedule(&problem).unwrap();
        let splits = s.split_counts_sorted();
        let unsplit = splits.iter().filter(|&&n| n == 0).count();
        assert!(
            unsplit * 10 >= splits.len() * 7,
            "only {unsplit}/{} jobs unsplit",
            splits.len()
        );
    }

    #[test]
    fn beats_worst_bin_bound_and_respects_lower_bound() {
        let problem = instance(6, 24);
        let s = GreedyScheduler::default().schedule(&problem).unwrap();
        assert!(s.predicted_makespan_ms <= worst_bin_upper_bound(&problem) + 1.0);
        assert!(s.predicted_makespan_ms >= magical_bin_lower_bound(&problem) - 1.0);
    }

    #[test]
    fn fast_link_fast_cpu_phone_gets_the_lions_share() {
        // Two phones: one strictly better on both axes. The better phone
        // must end with more assigned input.
        let p = vec![
            PhoneInfo::new(
                PhoneId(0),
                CpuSpec::new(1500, 2),
                RadioTech::Wifi80211a,
                MsPerKb(1.0),
            ),
            PhoneInfo::new(
                PhoneId(1),
                CpuSpec::new(806, 1),
                RadioTech::Edge,
                MsPerKb(60.0),
            ),
        ];
        let j = vec![JobSpec::breakable(
            JobId(0),
            "primecount",
            KiloBytes(30),
            KiloBytes(2_000),
        )];
        let c = costs(&p, &j);
        let problem = SchedProblem::new(p, j, c).unwrap();
        let s = GreedyScheduler::default().schedule(&problem).unwrap();
        s.validate(&problem).unwrap();
        let kb_on: Vec<u64> = s
            .per_phone
            .iter()
            .map(|q| q.iter().map(|a| a.input_kb.0).sum())
            .collect();
        assert!(
            kb_on[0] > kb_on[1] * 5,
            "fast phone got {} KB, slow got {} KB",
            kb_on[0],
            kb_on[1]
        );
    }

    #[test]
    fn load_balances_identical_phones() {
        // 4 identical phones, 8 identical breakable jobs → heights within
        // one job cost of each other.
        let p: Vec<PhoneInfo> = (0..4)
            .map(|i| {
                PhoneInfo::new(
                    PhoneId(i),
                    CpuSpec::new(1000, 2),
                    RadioTech::Wifi80211g,
                    MsPerKb(2.0),
                )
            })
            .collect();
        let j: Vec<JobSpec> = (0..8)
            .map(|k| JobSpec::breakable(JobId(k), "primecount", KiloBytes(30), KiloBytes(400)))
            .collect();
        let c = costs(&p, &j);
        let problem = SchedProblem::new(p, j, c).unwrap();
        let s = GreedyScheduler::default().schedule(&problem).unwrap();
        s.validate(&problem).unwrap();
        let heights = s.predicted_heights_ms(&problem);
        let max = heights.iter().cloned().fold(0.0f64, f64::max);
        let min = heights.iter().cloned().fold(f64::INFINITY, f64::min);
        let one_job = problem.full_cost_ms(0, 0);
        assert!(
            max - min <= one_job + 1.0,
            "imbalance {max}-{min} exceeds one job ({one_job})"
        );
    }

    #[test]
    fn ram_caps_are_respected() {
        let mut p = phones(3);
        for ph in &mut p {
            ph.ram_kb = 120;
        }
        let j = vec![
            JobSpec::breakable(JobId(0), "primecount", KiloBytes(30), KiloBytes(600)),
            JobSpec::breakable(JobId(1), "primecount", KiloBytes(30), KiloBytes(300)),
        ];
        let c = costs(&p, &j);
        let problem = SchedProblem::new(p, j, c).unwrap();
        let s = GreedyScheduler::default().schedule(&problem).unwrap();
        s.validate(&problem).unwrap();
        for a in s.per_phone.iter().flatten() {
            assert!(a.input_kb.0 <= 120);
        }
    }

    #[test]
    fn infeasible_atomic_reports_error() {
        // An atomic job too big for any phone's RAM cannot be scheduled.
        let mut p = phones(2);
        for ph in &mut p {
            ph.ram_kb = 100;
        }
        let j = vec![JobSpec::atomic(
            JobId(0),
            "photoblur",
            KiloBytes(10),
            KiloBytes(500),
        )];
        let c = costs(&p, &j);
        let problem = SchedProblem::new(p, j, c).unwrap();
        assert!(GreedyScheduler::default().schedule(&problem).is_err());
    }

    #[test]
    fn stats_report_convergence_work() {
        let problem = instance(6, 20);
        let sched = GreedyScheduler::default();
        let (s, stats) = sched.schedule_with_stats(&problem).unwrap();
        assert!(stats.binsearch_iters > 0, "{stats:?}");
        // Every binary-search iteration packs once; the UB probe adds more.
        assert!(stats.pack_calls > stats.binsearch_iters, "{stats:?}");
        assert!(stats.ub_ms >= stats.lb_ms, "{stats:?}");
        assert!(stats.window_ms <= sched.tolerance_ms.max(1e-4 * stats.ub_ms));
        // Cold runs never report warm-start work.
        assert_eq!(stats.warm_hits, 0, "{stats:?}");
        assert_eq!(stats.probes_saved, 0, "{stats:?}");
        // Stats do not change the schedule itself.
        let plain = sched.schedule(&problem).unwrap();
        assert_eq!(s.per_phone, plain.per_phone);
    }

    #[test]
    fn observed_schedule_records_metrics() {
        let problem = instance(4, 12);
        let obs = cwc_obs::Obs::new();
        GreedyScheduler::default()
            .schedule_observed(&problem, &obs)
            .unwrap();
        assert!(obs.metrics.counter_value("sched.greedy.binsearch_iters") > 0);
        assert!(obs.metrics.counter_value("sched.greedy.pack_calls") > 0);
    }

    #[test]
    fn deterministic_output() {
        let problem = instance(6, 18);
        let a = GreedyScheduler::default().schedule(&problem).unwrap();
        let b = GreedyScheduler::default().schedule(&problem).unwrap();
        assert_eq!(a.per_phone.len(), b.per_phone.len());
        for (qa, qb) in a.per_phone.iter().zip(&b.per_phone) {
            assert_eq!(qa, qb);
        }
    }

    #[test]
    fn matches_reference_implementation_on_a_fixed_instance() {
        let problem = instance(8, 40);
        let sched = GreedyScheduler::default();
        let (fast, fast_stats) = sched.schedule_with_stats(&problem).unwrap();
        let (slow, slow_stats) = reference::schedule_with_stats(&sched, &problem).unwrap();
        assert_eq!(fast.per_phone, slow.per_phone);
        assert_eq!(
            fast.predicted_makespan_ms.to_bits(),
            slow.predicted_makespan_ms.to_bits()
        );
        assert_eq!(fast_stats, slow_stats);
    }

    #[test]
    fn warm_start_on_same_instance_cuts_pack_calls() {
        let problem = instance(9, 40);
        let sched = GreedyScheduler::default();
        let (cold_s, cold_stats, warm) = sched.schedule_warm_with_stats(&problem, None).unwrap();
        // The optimum is unchanged, so the transferred ratio lands the
        // first galloping probe and the bisection window is ~5% of lb
        // instead of ub − lb.
        let (warm_s, warm_stats, _) = sched
            .schedule_warm_with_stats(&problem, Some(warm))
            .unwrap();
        warm_s.validate(&problem).unwrap();
        assert_eq!(warm_stats.warm_hits, 1, "{warm_stats:?}");
        assert!(warm_stats.probes_saved > 0, "{warm_stats:?}");
        assert!(
            warm_stats.pack_calls * 2 <= cold_stats.pack_calls,
            "warm {warm_stats:?} vs cold {cold_stats:?}"
        );
        // Solution quality stays within the convergence window.
        assert!(
            warm_s.predicted_makespan_ms <= cold_s.predicted_makespan_ms * 1.05 + 1.0,
            "warm {} vs cold {}",
            warm_s.predicted_makespan_ms,
            cold_s.predicted_makespan_ms
        );
    }

    #[test]
    fn warm_start_survives_a_shrunken_fleet() {
        // Rescheduling after failures: fewer phones, residual jobs. The
        // hint transfers a ratio, so it stays useful, and even a wild
        // miss falls back to the cold bound without losing correctness.
        let full = instance(9, 40);
        let sched = GreedyScheduler::default();
        let (_, _, warm) = sched.schedule_warm_with_stats(&full, None).unwrap();

        let p = phones(6);
        let j: Vec<JobSpec> = (0..12)
            .map(|k| JobSpec::breakable(JobId(k), "primecount", KiloBytes(30), KiloBytes(350)))
            .collect();
        let c = costs(&p, &j);
        let residual = SchedProblem::new(p, j, c).unwrap();
        let (s, stats, next) = sched
            .schedule_warm_with_stats(&residual, Some(warm))
            .unwrap();
        s.validate(&residual).unwrap();
        assert!(stats.pack_calls > 0);
        assert!(next.hi_ms > 0.0 && next.lb_ms > 0.0);
    }

    #[test]
    fn degenerate_warm_hints_are_ignored() {
        let problem = instance(4, 10);
        let sched = GreedyScheduler::default();
        let (cold, cold_stats) = sched.schedule_with_stats(&problem).unwrap();
        for bad in [
            WarmStart {
                hi_ms: f64::NAN,
                lb_ms: 1.0,
            },
            WarmStart {
                hi_ms: 0.0,
                lb_ms: 1.0,
            },
            WarmStart {
                hi_ms: 1.0,
                lb_ms: -3.0,
            },
            WarmStart {
                hi_ms: f64::INFINITY,
                lb_ms: 1.0,
            },
        ] {
            let (s, stats, _) = sched.schedule_warm_with_stats(&problem, Some(bad)).unwrap();
            // An unusable hint must leave the cold path untouched.
            assert_eq!(s.per_phone, cold.per_phone);
            assert_eq!(stats, cold_stats);
        }
    }

    #[test]
    fn observed_warm_schedule_records_warm_metrics() {
        let problem = instance(5, 16);
        let obs = cwc_obs::Obs::new();
        let sched = GreedyScheduler::default();
        let (_, warm) = sched.schedule_observed_warm(&problem, &obs, None).unwrap();
        sched
            .schedule_observed_warm(&problem, &obs, Some(warm))
            .unwrap();
        assert_eq!(obs.metrics.counter_value("sched.greedy.warm_hits"), 1);
        assert!(obs.metrics.counter_value("sched.greedy.probes_saved") > 0);
    }
}
