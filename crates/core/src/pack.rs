//! Zero-allocation packing arena for Algorithm 1.
//!
//! [`PackScratch`] holds every piece of per-probe working state the
//! greedy packer needs — bin open flags, bin heights, the shipped-pair
//! bitset, per-bin assignment queues, and the sorted item list — so a
//! `schedule()` call allocates once and every binary-search probe just
//! resets and reuses the arena. Three further hot-path changes live
//! here, each proven output-identical to the seed implementation:
//!
//! * **Sorted item template.** The seed re-sorted the items from the
//!   original job order at the start of every probe; since the input is
//!   the same every time, the sorted order is too. The template is
//!   sorted once per `schedule()` call and memcpy'd per probe.
//! * **Ordered reinsertion.** When an item is split, its sort key
//!   strictly decreases (`c > 0`), so a stable re-sort can only move it
//!   later in the list. The new position is found with a binary search
//!   (`partition_point`) over the tail and the slice is rotated —
//!   `O(log n + shift)` instead of the seed's full `O(n log n)` sort.
//!   With equal keys, `partition_point` on `key > new_key` inserts the
//!   shrunk item *before* later equal-key items, exactly where a stable
//!   sort puts it.
//! * **Resumable scan.** Between bin openings, bin rooms only shrink
//!   and the shipped flag only flips for the job that was just placed
//!   (whose shrunk remainder reinserts at or after the placement
//!   index), so an item that failed to fit every open bin stays unfit
//!   until Step 2 opens a new bin. The Step-1 scan therefore resumes
//!   from the last placement index instead of restarting at item 0,
//!   and rewinds to 0 only when a bin opens — turning the seed's
//!   quadratic rescanning into one amortized pass per bin opening.
//! * **Height-ordered bins with early exit.** Open bins are kept
//!   sorted by `(height, index)`; scanning them in that order makes
//!   the first fitting bin exactly the seed's choice (minimum height,
//!   ties to the lowest phone index), so the scan stops at the first
//!   fit instead of visiting every open bin.
//! * **Max-room prune.** The minimum open height is the head of the
//!   sorted bin list, so the largest open room is known exactly. An
//!   item whose cheapest conceivable placement needs more room than
//!   that cannot fit any open bin, and its bin scan is skipped. The
//!   bound carries a `1 − 1e-9` safety margin so that floating-point
//!   rounding in the seed's `floor(room / per_kb)` test can never
//!   disagree with the prune.
//!
//! The binary search keeps the queues of the most recent *successful*
//! probe by swapping two pre-allocated queue sets (`queues` ↔
//! `best_queues`) — an `O(1)` pointer swap instead of a clone.

use crate::problem::{CostTables, SchedProblem};
use crate::schedule::Assignment;
use cwc_types::{JobId, KiloBytes, PhoneId};

/// Safety margin for the max-room prune: a skip requires the cheapest
/// placement to exceed the room bound by more than accumulated
/// floating-point rounding (~2⁻⁵²) could account for.
const PRUNE_MARGIN: f64 = 1.0 - 1e-9;

/// A sortable item: job index + remaining input.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Item {
    pub(crate) job: usize,
    pub(crate) remaining: KiloBytes,
}

/// Reusable per-`schedule()` packing arena (see module docs).
pub(crate) struct PackScratch {
    /// Items sorted by decreasing remaining execution time on the
    /// slowest phone, copied into `items` at the start of each probe.
    template: Vec<Item>,
    items: Vec<Item>,
    opened: Vec<bool>,
    height_ms: Vec<f64>,
    /// Open bins as `(height_ms, phone index)`, sorted ascending — the
    /// seed's min-height tie-to-lowest-index choice is the first fit in
    /// this order, and the head gives the largest open room exactly.
    by_height: Vec<(f64, usize)>,
    /// Shipped phone–job pairs as a bitset, `words_per_phone` words per
    /// phone, job bit `j` at word `j / 64`, bit `j % 64`.
    shipped: Vec<u64>,
    words_per_phone: usize,
    /// Working queues for the probe in flight.
    queues: Vec<Vec<Assignment>>,
    /// Queues of the most recent successful probe (swapped in, not cloned).
    best_queues: Vec<Vec<Assignment>>,
    has_best: bool,
    /// Per-job atomicity flags.
    atomic: Vec<bool>,
    /// `key_rate[j] = c[slowest][j]` — the sort-key rate.
    key_rate: Vec<f64>,
    /// `min_open_need[j]`: cheapest cost of the smallest breakable
    /// placement of job `j` on any *open* bin (`per_kb + exe` while the
    /// pair is unshipped, `per_kb` after). Maintained incrementally:
    /// lowered for every job when a bin opens, and for the committed
    /// job when its exe overhead is first paid.
    min_open_need: Vec<f64>,
    /// `min_open_per_kb[j]`: cheapest per-KB rate of job `j` on any
    /// open bin — the atomic prune's floor (exe-free, so it only
    /// changes when a bin opens).
    min_open_per_kb: Vec<f64>,
    /// `dead_floor[i] = min_j per_kb(i, j)`: once bin `i`'s room drops
    /// below this (with margin), no job — breakable or atomic, shipped
    /// or not — can ever fit it again, and the bin leaves `by_height`.
    /// Static per `schedule()` call, so a dead bin stays dead.
    dead_floor: Vec<f64>,
    phone_ids: Vec<PhoneId>,
    job_ids: Vec<JobId>,
}

impl PackScratch {
    /// Allocates the arena for `problem` and sorts the item template.
    pub(crate) fn new(problem: &SchedProblem, tables: &CostTables) -> PackScratch {
        let num_phones = problem.num_phones();
        let num_jobs = problem.num_jobs();
        let words_per_phone = num_jobs.div_ceil(64);
        let s = problem.slowest_phone();
        let key_rate: Vec<f64> = problem.c.get(s).cloned().unwrap_or_default();

        let mut template: Vec<Item> = problem
            .jobs
            .iter()
            .enumerate()
            .map(|(j, spec)| Item {
                job: j,
                remaining: spec.input_kb,
            })
            .collect();
        // Decreasing remaining execution time on the slowest phone; the
        // keys are finite and positive (validated in SchedProblem::new),
        // so total_cmp orders exactly like the seed's partial_cmp.
        let rates = &key_rate;
        let key = |it: &Item| it.remaining.as_f64() * rates.get(it.job).copied().unwrap_or(0.0);
        template.sort_by(|a, b| key(b).total_cmp(&key(a)));

        PackScratch {
            items: Vec::with_capacity(template.len()),
            template,
            opened: vec![false; num_phones],
            height_ms: vec![0.0; num_phones],
            by_height: Vec::with_capacity(num_phones),
            shipped: vec![0u64; num_phones * words_per_phone],
            words_per_phone,
            queues: (0..num_phones).map(|_| Vec::new()).collect(),
            best_queues: (0..num_phones).map(|_| Vec::new()).collect(),
            has_best: false,
            atomic: problem.jobs.iter().map(|j| j.kind.is_atomic()).collect(),
            key_rate,
            min_open_need: vec![f64::INFINITY; num_jobs],
            min_open_per_kb: vec![f64::INFINITY; num_jobs],
            dead_floor: (0..num_phones)
                .map(|i| {
                    (0..num_jobs)
                        .map(|j| tables.per_kb_ms(i, j))
                        .fold(f64::INFINITY, f64::min)
                })
                .collect(),
            phone_ids: problem.phones.iter().map(|p| p.id).collect(),
            job_ids: problem.jobs.iter().map(|j| j.id).collect(),
        }
    }

    /// Algorithm 1: packs all items with bin capacity `capacity_ms` into
    /// the arena's working queues. Returns `false` when the capacity is
    /// infeasible (Algorithm 1 lines 23–25).
    pub(crate) fn pack(&mut self, tables: &CostTables, capacity_ms: f64) -> bool {
        self.reset();
        // Items below this index are known not to fit any open bin;
        // rooms only shrink between bin openings, so the knowledge
        // stays valid until Step 2 rewinds the scan (module docs).
        let mut scan_start = 0usize;
        while !self.items.is_empty() {
            // Step 1: first item (in sorted order) that fits an open bin.
            let mut placed: Option<usize> = None;
            for idx in scan_start..self.items.len() {
                let Some(item) = self.items.get(idx).copied() else {
                    break;
                };
                let atomic = self.atomic.get(item.job).copied().unwrap_or(false);
                // Cheapest conceivable placement across the *open* bins:
                // one KB (breakable, exe included while unshipped) or the
                // whole remainder (atomic) at the best open rate. If even
                // that exceeds the largest open room, the bin scan cannot
                // find a fit. The margin keeps the skip sound under
                // floating-point rounding.
                let need = if atomic {
                    let floor = self
                        .min_open_per_kb
                        .get(item.job)
                        .copied()
                        .unwrap_or(f64::INFINITY);
                    item.remaining.as_f64() * floor
                } else {
                    self.min_open_need
                        .get(item.job)
                        .copied()
                        .unwrap_or(f64::INFINITY)
                };
                let max_room = self
                    .by_height
                    .first()
                    .map(|&(h, _)| capacity_ms - h)
                    .unwrap_or(0.0);
                if need * PRUNE_MARGIN > max_room {
                    continue;
                }
                // Bins in (height, index) order: the first fit is the
                // open bin with minimum height where the item fits,
                // ties to the lowest phone index — the seed's choice.
                // A multiply-compare filter rejects non-fitting bins
                // without paying `max_fit_kb`'s division; the margin
                // guarantees it never rejects a bin the seed accepts.
                let mut target: Option<(usize, KiloBytes)> = None;
                for &(height, i) in &self.by_height {
                    let room = capacity_ms - height;
                    let include_exe = !self.shipped_bit(i, item.job);
                    let base = if include_exe {
                        tables.exe_ms(i, item.job)
                    } else {
                        0.0
                    };
                    let per = tables.per_kb_ms(i, item.job);
                    let need_here = if atomic {
                        base + item.remaining.as_f64() * per
                    } else {
                        base + per
                    };
                    if need_here * PRUNE_MARGIN > room {
                        continue;
                    }
                    let fit = tables.max_fit_kb(i, item.job, room, include_exe);
                    let enough = if atomic {
                        fit >= item.remaining
                    } else {
                        fit.0 >= 1
                    };
                    if enough {
                        target = Some((i, fit));
                        break;
                    }
                }
                if let Some((i, fit)) = target {
                    let take = fit.min(item.remaining);
                    self.commit(tables, i, item.job, take);
                    self.reposition(i, capacity_ms);
                    self.consume(idx, take);
                    placed = Some(idx);
                    break;
                }
            }
            if let Some(idx) = placed {
                // Everything before the placement stayed unfit: only bin
                // `i` changed (its room shrank) and the placed job's
                // remainder reinserted at or after `idx`.
                scan_start = idx;
                continue;
            }

            // Step 2: nothing fits the open bins — open a new one for the
            // largest item, choosing the bin that minimizes Eq. 1.
            let Some(item) = self.items.first().copied() else {
                break;
            };
            let atomic = self.atomic.get(item.job).copied().unwrap_or(false);
            let mut best: Option<(usize, f64, KiloBytes)> = None;
            for (i, &opened) in self.opened.iter().enumerate() {
                if opened {
                    continue;
                }
                let fit = tables.max_fit_kb(i, item.job, capacity_ms, true);
                let enough = if atomic {
                    fit >= item.remaining
                } else {
                    fit.0 >= 1
                };
                if !enough {
                    continue;
                }
                let cost = tables.cost_ms(i, item.job, item.remaining, true);
                if best.is_none_or(|(_, c, _)| cost < c) {
                    best = Some((i, cost, fit));
                }
            }
            let Some((i, _, fit)) = best else {
                return false;
            };
            if let Some(flag) = self.opened.get_mut(i) {
                *flag = true;
            }
            let take = fit.min(item.remaining);
            self.commit(tables, i, item.job, take);
            self.insert_open_bin(tables, i, capacity_ms);
            self.consume(0, take);
            // A fresh bin means previously-unfit items may fit again.
            scan_start = 0;
        }
        true
    }

    /// True when bin `i`'s room at `height` is below even its cheapest
    /// per-KB rate — nothing can ever fit it again.
    fn is_dead(&self, i: usize, height: f64, capacity_ms: f64) -> bool {
        let floor = self.dead_floor.get(i).copied().unwrap_or(0.0);
        capacity_ms - height < floor * PRUNE_MARGIN
    }

    /// Inserts freshly-opened bin `i` into the height-ordered list
    /// (unless already packed beyond use) and folds its rates into the
    /// open-bin prune floors.
    fn insert_open_bin(&mut self, tables: &CostTables, i: usize, capacity_ms: f64) {
        let h = self.height_ms.get(i).copied().unwrap_or(0.0);
        if !self.is_dead(i, h, capacity_ms) {
            let at = self
                .by_height
                .partition_point(|&(bh, b)| bh < h || (bh == h && b < i));
            self.by_height.insert(at, (h, i));
        }
        for j in 0..self.job_ids.len() {
            let per = tables.per_kb_ms(i, j);
            let need = if self.shipped_bit(i, j) {
                per
            } else {
                per + tables.exe_ms(i, j)
            };
            if let Some(floor) = self.min_open_per_kb.get_mut(j) {
                if per < *floor {
                    *floor = per;
                }
            }
            if let Some(floor) = self.min_open_need.get_mut(j) {
                if need < *floor {
                    *floor = need;
                }
            }
        }
    }

    /// Re-sorts bin `i` after its height grew: it can only move later in
    /// the `(height, index)` order, so a binary search over the tail plus
    /// a rotate restores the invariant. A bin packed beyond use leaves
    /// the list instead.
    fn reposition(&mut self, i: usize, capacity_ms: f64) {
        let new_h = self.height_ms.get(i).copied().unwrap_or(0.0);
        let Some(pos) = self.by_height.iter().position(|&(_, b)| b == i) else {
            return;
        };
        if self.is_dead(i, new_h, capacity_ms) {
            self.by_height.remove(pos);
            return;
        }
        let shift = self
            .by_height
            .get(pos + 1..)
            .map(|tail| tail.partition_point(|&(h, b)| h < new_h || (h == new_h && b < i)))
            .unwrap_or(0);
        if let Some(entry) = self.by_height.get_mut(pos) {
            *entry = (new_h, i);
        }
        if let Some(window) = self.by_height.get_mut(pos..pos + shift + 1) {
            window.rotate_left(1);
        }
    }

    /// Keeps the working queues as the best packing so far (O(1) swap).
    pub(crate) fn mark_success(&mut self) {
        std::mem::swap(&mut self.queues, &mut self.best_queues);
        self.has_best = true;
    }

    /// Hands out the queues of the last successful probe, if any.
    pub(crate) fn take_best(&mut self) -> Option<Vec<Vec<Assignment>>> {
        if !self.has_best {
            return None;
        }
        Some(std::mem::take(&mut self.best_queues))
    }

    fn reset(&mut self) {
        self.items.clear();
        self.items.extend_from_slice(&self.template);
        self.opened.fill(false);
        self.height_ms.fill(0.0);
        self.by_height.clear();
        self.min_open_need.fill(f64::INFINITY);
        self.min_open_per_kb.fill(f64::INFINITY);
        self.shipped.fill(0);
        for q in &mut self.queues {
            q.clear();
        }
    }

    #[inline]
    fn shipped_bit(&self, i: usize, j: usize) -> bool {
        let word = i * self.words_per_phone + (j >> 6);
        let mask = 1u64 << (j & 63);
        self.shipped.get(word).copied().unwrap_or(0) & mask != 0
    }

    #[inline]
    fn set_shipped(&mut self, i: usize, j: usize) {
        let word = i * self.words_per_phone + (j >> 6);
        let mask = 1u64 << (j & 63);
        if let Some(w) = self.shipped.get_mut(word) {
            *w |= mask;
        }
    }

    /// Records a partition into a bin and updates its height.
    fn commit(&mut self, tables: &CostTables, i: usize, job: usize, take: KiloBytes) {
        debug_assert!(take.0 >= 1);
        let include_exe = !self.shipped_bit(i, job);
        let add = tables.cost_ms(i, job, take, include_exe);
        if let Some(h) = self.height_ms.get_mut(i) {
            *h += add;
        }
        self.set_shipped(i, job);
        if include_exe {
            // The pair's exe overhead is now paid: further placements of
            // this job on bin `i` cost `per_kb` alone, which may lower
            // the job's open-bin prune floor.
            let per = tables.per_kb_ms(i, job);
            if let Some(floor) = self.min_open_need.get_mut(job) {
                if per < *floor {
                    *floor = per;
                }
            }
        }
        let phone = self.phone_ids.get(i).copied().unwrap_or(PhoneId(u32::MAX));
        let job_id = self.job_ids.get(job).copied().unwrap_or(JobId(u32::MAX));
        if let Some(q) = self.queues.get_mut(i) {
            q.push(Assignment {
                phone,
                job: job_id,
                input_kb: take,
                offset_kb: KiloBytes::ZERO, // assigned later
            });
        }
    }

    /// Removes `take` KB from item `idx`; a remainder is reinserted at
    /// its sorted position (Algorithm 1 lines 8–12). Equivalent to the
    /// seed's full stable re-sort: the key strictly decreases, so the
    /// item can only move into the tail, before later equal-key items.
    fn consume(&mut self, idx: usize, take: KiloBytes) {
        let Some(item) = self.items.get(idx).copied() else {
            return;
        };
        if take >= item.remaining {
            self.items.remove(idx);
            return;
        }
        let remaining = item.remaining - take;
        let rates = &self.key_rate;
        let rate_of = |j: usize| rates.get(j).copied().unwrap_or(0.0);
        let new_key = remaining.as_f64() * rate_of(item.job);
        let start = idx + 1;
        let shift = self
            .items
            .get(start..)
            .map(|tail| {
                tail.partition_point(|it| it.remaining.as_f64() * rate_of(it.job) > new_key)
            })
            .unwrap_or(0);
        if let Some(it) = self.items.get_mut(idx) {
            it.remaining = remaining;
        }
        if let Some(window) = self.items.get_mut(idx..start + shift) {
            window.rotate_left(1);
        }
    }
}
