//! Property tests for the discrete-event kernel: dispatch order, clock
//! monotonicity, cancellation, and RNG stream independence.

use cwc_sim::{RngStreams, Simulation};
use cwc_types::Micros;
use proptest::prelude::*;
use rand::Rng;

proptest! {
    #[test]
    fn dispatch_order_is_total_and_stable(times in proptest::collection::vec(0u64..1_000, 1..200)) {
        let mut sim = Simulation::new();
        for (i, &t) in times.iter().enumerate() {
            sim.schedule_at(Micros(t), i);
        }
        let mut fired: Vec<(Micros, usize)> = Vec::new();
        sim.run(|s, id| fired.push((s.now(), id)));
        prop_assert_eq!(fired.len(), times.len());
        // Clock is monotone and, at equal times, FIFO by schedule order.
        for w in fired.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time went backwards");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO violated at equal times");
            }
        }
        // Every event fires exactly at its scheduled time.
        for (at, id) in fired {
            prop_assert_eq!(at, Micros(times[id]));
        }
    }

    #[test]
    fn cancellation_removes_exactly_the_cancelled(
        times in proptest::collection::vec(0u64..1_000, 1..100),
        cancel_mask in proptest::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut sim = Simulation::new();
        let ids: Vec<_> = times.iter().enumerate()
            .map(|(i, &t)| sim.schedule_at(Micros(t), i))
            .collect();
        let mut expected: Vec<usize> = Vec::new();
        for (i, id) in ids.iter().enumerate() {
            if *cancel_mask.get(i).unwrap_or(&false) {
                prop_assert!(sim.cancel(*id));
            } else {
                expected.push(i);
            }
        }
        let mut fired = Vec::new();
        sim.run(|_, id| fired.push(id));
        fired.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(fired, expected);
    }

    #[test]
    fn run_until_partitions_the_event_set(
        times in proptest::collection::vec(1u64..1_000, 1..100),
        split in 1u64..1_000,
    ) {
        let mut sim = Simulation::new();
        for (i, &t) in times.iter().enumerate() {
            sim.schedule_at(Micros(t), i);
        }
        let mut early = Vec::new();
        sim.run_until(Micros(split), |_, id| early.push(id));
        let mut late = Vec::new();
        sim.run(|_, id| late.push(id));
        prop_assert_eq!(early.len() + late.len(), times.len());
        for id in early {
            prop_assert!(times[id] <= split);
        }
        for id in late {
            prop_assert!(times[id] > split);
        }
    }

    #[test]
    fn rng_streams_reproduce_and_differ(seed in any::<u64>(), a in "[a-z]{1,12}", b in "[a-z]{1,12}") {
        let streams = RngStreams::new(seed);
        let xs: Vec<u64> = (0..4).map(|_| 0).scan(streams.stream(&a), |r, _| Some(r.gen())).collect();
        let ys: Vec<u64> = (0..4).map(|_| 0).scan(streams.stream(&a), |r, _| Some(r.gen())).collect();
        prop_assert_eq!(&xs, &ys, "same label must reproduce");
        if a != b {
            let zs: Vec<u64> = (0..4).map(|_| 0).scan(streams.stream(&b), |r, _| Some(r.gen())).collect();
            prop_assert_ne!(xs, zs, "different labels must differ");
        }
    }
}
