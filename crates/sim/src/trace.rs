//! Timestamped experiment traces.
//!
//! The paper's timeline figures (Fig. 12a/12c) are built from per-phone
//! transfer/execute/failure intervals. A [`Trace`] is the simulator-side
//! recorder those figures are rendered from; it is also invaluable when
//! debugging a scheduling run.

use cwc_types::Micros;
use std::fmt;

/// One trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Virtual time of the event.
    pub at: Micros,
    /// Subsystem label, e.g. `"engine"`, `"phone-3"`, `"sched"`.
    pub scope: String,
    /// Free-form message.
    pub message: String,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:>12}] {:<10} {}", self.at.to_string(), self.scope, self.message)
    }
}

/// An append-only, optionally-disabled event log.
///
/// Disabled traces make every `record` a no-op so hot simulation loops pay
/// nothing when observability is not needed (e.g. the 1000-configuration
/// Fig. 13 sweep).
#[derive(Debug, Default)]
pub struct Trace {
    enabled: bool,
    entries: Vec<TraceEntry>,
}

impl Trace {
    /// Creates an enabled trace.
    pub fn enabled() -> Self {
        Trace {
            enabled: true,
            entries: Vec::new(),
        }
    }

    /// Creates a disabled trace; `record` calls are dropped.
    pub fn disabled() -> Self {
        Trace {
            enabled: false,
            entries: Vec::new(),
        }
    }

    /// Whether recording is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Appends an entry (no-op when disabled).
    pub fn record(&mut self, at: Micros, scope: impl Into<String>, message: impl Into<String>) {
        if self.enabled {
            self.entries.push(TraceEntry {
                at,
                scope: scope.into(),
                message: message.into(),
            });
        }
    }

    /// All entries, in record order (which is also time order when the
    /// recorder is driven from a simulation loop).
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Entries whose scope matches exactly.
    pub fn scoped<'a>(&'a self, scope: &'a str) -> impl Iterator<Item = &'a TraceEntry> + 'a {
        self.entries.iter().filter(move |e| e.scope == scope)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the trace holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Renders the whole trace as text, one entry per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_when_enabled() {
        let mut t = Trace::enabled();
        t.record(Micros::from_secs(1), "engine", "start");
        t.record(Micros::from_secs(2), "phone-1", "xfer done");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.entries()[0].message, "start");
    }

    #[test]
    fn drops_when_disabled() {
        let mut t = Trace::disabled();
        t.record(Micros::ZERO, "engine", "ignored");
        assert!(t.is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn scoped_filters() {
        let mut t = Trace::enabled();
        t.record(Micros::ZERO, "a", "1");
        t.record(Micros::ZERO, "b", "2");
        t.record(Micros::ZERO, "a", "3");
        let msgs: Vec<&str> = t.scoped("a").map(|e| e.message.as_str()).collect();
        assert_eq!(msgs, vec!["1", "3"]);
    }

    #[test]
    fn render_is_line_per_entry() {
        let mut t = Trace::enabled();
        t.record(Micros::from_secs(1), "x", "hello");
        t.record(Micros::from_secs(2), "y", "world");
        let text = t.render();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("hello"));
        assert!(text.contains("world"));
    }
}
