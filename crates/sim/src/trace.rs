//! Timestamped experiment trace records.
//!
//! The paper's timeline figures (Fig. 12a/12c) are built from per-phone
//! transfer/execute/failure intervals. A [`TraceEntry`] is one line of that
//! timeline. Recording is done by the `cwc-obs` event bus (the engine
//! collects its events into `TraceEntry` values when tracing is enabled);
//! the old simulator-side `Trace` recorder this module used to carry was
//! replaced by that always-on bus.

use cwc_types::Micros;
use std::fmt;

/// One trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Virtual time of the event.
    pub at: Micros,
    /// Subsystem label, e.g. `"engine"`, `"phone-3"`, `"sched"`.
    pub scope: String,
    /// Free-form message.
    pub message: String,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>12}] {:<10} {}",
            self.at.to_string(),
            self.scope,
            self.message
        )
    }
}

/// Renders a slice of entries as text, one entry per line.
pub fn render(entries: &[TraceEntry]) -> String {
    let mut out = String::new();
    for e in entries {
        out.push_str(&e.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_displays_time_scope_message() {
        let e = TraceEntry {
            at: Micros::from_secs(2),
            scope: "phone-1".to_string(),
            message: "xfer done".to_string(),
        };
        let line = e.to_string();
        assert!(line.contains("phone-1"), "{line}");
        assert!(line.contains("xfer done"), "{line}");
    }

    #[test]
    fn render_is_line_per_entry() {
        let entries = vec![
            TraceEntry {
                at: Micros::from_secs(1),
                scope: "x".to_string(),
                message: "hello".to_string(),
            },
            TraceEntry {
                at: Micros::from_secs(2),
                scope: "y".to_string(),
                message: "world".to_string(),
            },
        ];
        let text = render(&entries);
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("hello"));
        assert!(text.contains("world"));
    }
}
