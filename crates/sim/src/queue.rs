//! The event queue and simulation clock.

use cwc_types::Micros;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// Handle to a scheduled event, usable to cancel it before it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

struct Scheduled<E> {
    fire_at: Micros,
    seq: u64,
    payload: E,
}

// Order for a *min*-heap via `Reverse`-free manual impl: we implement the
// reversed ordering directly so the `BinaryHeap` pops earliest-first.
impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.fire_at == other.fire_at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: smaller (fire_at, seq) is "greater" so it pops first.
        // Ties in fire time break by scheduling order (FIFO), which is what
        // makes simultaneous events deterministic.
        other
            .fire_at
            .cmp(&self.fire_at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A discrete-event simulation over event payloads of type `E`.
///
/// The simulation owns the virtual clock and the pending-event queue; all
/// domain state lives in the caller's dispatcher closure. Events scheduled
/// for the same instant fire in the order they were scheduled.
pub struct Simulation<E> {
    clock: Micros,
    heap: BinaryHeap<Scheduled<E>>,
    cancelled: HashSet<u64>,
    next_seq: u64,
    events_dispatched: u64,
}

impl<E> Default for Simulation<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Simulation<E> {
    /// Creates an empty simulation with the clock at zero.
    pub fn new() -> Self {
        Simulation {
            clock: Micros::ZERO,
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
            events_dispatched: 0,
        }
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> Micros {
        self.clock
    }

    /// Number of events dispatched so far.
    #[inline]
    pub fn events_dispatched(&self) -> u64 {
        self.events_dispatched
    }

    /// Number of events still pending (including lazily-cancelled ones).
    #[inline]
    pub fn pending(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// Schedules `payload` to fire at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past — scheduling backwards in time is
    /// always a logic error in the caller.
    pub fn schedule_at(&mut self, at: Micros, payload: E) -> EventId {
        assert!(
            at >= self.clock,
            "cannot schedule event in the past ({} < {})",
            at,
            self.clock
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled {
            fire_at: at,
            seq,
            payload,
        });
        EventId(seq)
    }

    /// Schedules `payload` to fire after a delay from now.
    pub fn schedule_after(&mut self, delay: Micros, payload: E) -> EventId {
        let at = self
            .clock
            .checked_add(delay)
            .expect("simulation clock overflow");
        self.schedule_at(at, payload)
    }

    /// Cancels a pending event. Returns `true` if the event existed and had
    /// not fired or been cancelled yet. Cancellation is lazy: the slot stays
    /// in the heap and is skipped on pop.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_seq {
            return false;
        }
        // Events that already fired were removed from the heap; inserting a
        // stale id into `cancelled` would leak, so probe the heap lazily:
        // we accept the small inaccuracy of returning true for an id that
        // already fired only if the caller never observed it fire — which
        // cannot happen in a single-threaded simulation. To keep the
        // contract exact we track fired ids implicitly: a fired id is one
        // not in the heap; scanning the heap is O(n) but cancel is rare.
        let live = self.heap.iter().any(|s| s.seq == id.0);
        if live && self.cancelled.insert(id.0) {
            return true;
        }
        false
    }

    /// Pops the next event, advancing the clock to its fire time.
    /// Returns `None` when the queue is exhausted.
    pub fn pop(&mut self) -> Option<(Micros, E)> {
        while let Some(ev) = self.heap.pop() {
            if self.cancelled.remove(&ev.seq) {
                continue;
            }
            debug_assert!(ev.fire_at >= self.clock, "time went backwards");
            self.clock = ev.fire_at;
            self.events_dispatched += 1;
            return Some((ev.fire_at, ev.payload));
        }
        None
    }

    /// Peeks at the fire time of the next (non-cancelled) event.
    pub fn peek_time(&self) -> Option<Micros> {
        // The heap may have cancelled entries at the top; since we cannot
        // mutate in `peek`, scan from the top lazily via iteration over a
        // clone-free path: BinaryHeap does not expose sorted iteration, so
        // find the minimum among live events.
        self.heap
            .iter()
            .filter(|s| !self.cancelled.contains(&s.seq))
            .map(|s| s.fire_at)
            .min()
    }

    /// Runs to quiescence, dispatching every event through `handler`.
    ///
    /// The handler receives `&mut Simulation` so it can schedule follow-up
    /// events; this is the main loop of every CWC experiment.
    pub fn run<F>(&mut self, mut handler: F)
    where
        F: FnMut(&mut Simulation<E>, E),
    {
        while let Some((_, ev)) = self.pop() {
            handler(self, ev);
        }
    }

    /// Runs until the clock would pass `deadline` (events at exactly
    /// `deadline` are dispatched). Undispatched events stay queued.
    pub fn run_until<F>(&mut self, deadline: Micros, mut handler: F)
    where
        F: FnMut(&mut Simulation<E>, E),
    {
        loop {
            match self.peek_time() {
                Some(t) if t <= deadline => {
                    let (_, ev) = self.pop().expect("peeked event vanished");
                    handler(self, ev);
                }
                _ => break,
            }
        }
        if self.clock < deadline {
            self.clock = deadline;
        }
    }

    /// Runs while `predicate` holds (checked before each dispatch).
    pub fn run_while<F, P>(&mut self, mut predicate: P, mut handler: F)
    where
        F: FnMut(&mut Simulation<E>, E),
        P: FnMut(&Simulation<E>) -> bool,
    {
        while predicate(self) {
            match self.pop() {
                Some((_, ev)) => handler(self, ev),
                None => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Simulation::new();
        sim.schedule_at(Micros::from_secs(3), "c");
        sim.schedule_at(Micros::from_secs(1), "a");
        sim.schedule_at(Micros::from_secs(2), "b");
        let mut order = Vec::new();
        sim.run(|s, e| order.push((s.now().as_secs_f64() as u64, e)));
        assert_eq!(order, vec![(1, "a"), (2, "b"), (3, "c")]);
    }

    #[test]
    fn simultaneous_events_fire_fifo() {
        let mut sim = Simulation::new();
        let t = Micros::from_secs(5);
        for i in 0..100 {
            sim.schedule_at(t, i);
        }
        let mut order = Vec::new();
        sim.run(|_, e| order.push(e));
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn handler_can_schedule_followups() {
        let mut sim = Simulation::new();
        sim.schedule_at(Micros::from_secs(1), 0u32);
        let mut fired = Vec::new();
        sim.run(|s, n| {
            fired.push((s.now(), n));
            if n < 3 {
                s.schedule_after(Micros::from_secs(1), n + 1);
            }
        });
        assert_eq!(fired.len(), 4);
        assert_eq!(fired[3], (Micros::from_secs(4), 3));
    }

    #[test]
    fn cancel_prevents_dispatch() {
        let mut sim = Simulation::new();
        let keep = sim.schedule_at(Micros::from_secs(1), "keep");
        let drop_it = sim.schedule_at(Micros::from_secs(2), "drop");
        assert!(sim.cancel(drop_it));
        assert!(!sim.cancel(drop_it), "double-cancel reports false");
        let mut seen = Vec::new();
        sim.run(|_, e| seen.push(e));
        assert_eq!(seen, vec!["keep"]);
        assert!(!sim.cancel(keep), "cancelling a fired event reports false");
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut sim: Simulation<()> = Simulation::new();
        assert!(!sim.cancel(EventId(999)));
    }

    #[test]
    #[should_panic(expected = "cannot schedule event in the past")]
    fn scheduling_in_the_past_panics() {
        let mut sim = Simulation::new();
        sim.schedule_at(Micros::from_secs(1), ());
        sim.pop();
        sim.schedule_at(Micros::ZERO, ());
    }

    #[test]
    fn run_until_stops_at_deadline_and_advances_clock() {
        let mut sim = Simulation::new();
        sim.schedule_at(Micros::from_secs(1), 1);
        sim.schedule_at(Micros::from_secs(10), 10);
        let mut seen = Vec::new();
        sim.run_until(Micros::from_secs(5), |_, e| seen.push(e));
        assert_eq!(seen, vec![1]);
        assert_eq!(sim.now(), Micros::from_secs(5));
        assert_eq!(sim.pending(), 1);
        // The remaining event still fires afterwards.
        sim.run(|_, e| seen.push(e));
        assert_eq!(seen, vec![1, 10]);
    }

    #[test]
    fn run_until_dispatches_events_at_exact_deadline() {
        let mut sim = Simulation::new();
        sim.schedule_at(Micros::from_secs(5), "edge");
        let mut seen = Vec::new();
        sim.run_until(Micros::from_secs(5), |_, e| seen.push(e));
        assert_eq!(seen, vec!["edge"]);
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut sim = Simulation::new();
        let first = sim.schedule_at(Micros::from_secs(1), ());
        sim.schedule_at(Micros::from_secs(2), ());
        assert_eq!(sim.peek_time(), Some(Micros::from_secs(1)));
        sim.cancel(first);
        assert_eq!(sim.peek_time(), Some(Micros::from_secs(2)));
    }

    #[test]
    fn counters_track_activity() {
        let mut sim = Simulation::new();
        sim.schedule_at(Micros::from_secs(1), ());
        sim.schedule_at(Micros::from_secs(2), ());
        assert_eq!(sim.pending(), 2);
        sim.run(|_, _| {});
        assert_eq!(sim.events_dispatched(), 2);
        assert_eq!(sim.pending(), 0);
    }

    #[test]
    fn run_while_respects_predicate() {
        let mut sim = Simulation::new();
        for i in 0..10 {
            sim.schedule_at(Micros::from_secs(i), i);
        }
        let seen = std::cell::Cell::new(0u64);
        sim.run_while(|_| seen.get() < 4, |_, _| seen.set(seen.get() + 1));
        assert_eq!(seen.get(), 4);
        assert_eq!(sim.pending(), 6);
    }
}
