//! # cwc-sim — deterministic discrete-event simulation kernel
//!
//! The CWC paper evaluates on a physical testbed of 18 Android phones spread
//! across three houses. This crate is the substitute substrate: a small,
//! deterministic discrete-event simulator on which the same server logic,
//! link models, and device models run.
//!
//! Design goals, in order:
//!
//! 1. **Determinism.** Time is integer microseconds ([`cwc_types::Micros`]);
//!    simultaneous events fire in FIFO scheduling order; all randomness comes
//!    from named, independently-seeded streams ([`RngStreams`]). The same
//!    master seed reproduces the same timeline bit-for-bit.
//! 2. **Simplicity.** One generic event type per simulation, one dispatcher
//!    function, a binary-heap queue with lazy cancellation. No reactor, no
//!    processes, no coroutines — the CWC engine is naturally event-shaped
//!    (transfers complete, executions finish, keep-alives time out).
//! 3. **Observability.** Instrumented code emits structured events on the
//!    `cwc-obs` bus; when tracing is enabled the engine collects them into
//!    [`TraceEntry`] records, which experiments turn into the paper's
//!    timeline figures (Fig. 12a/12c).
//!
//! ```
//! use cwc_sim::Simulation;
//! use cwc_types::Micros;
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Ping(u32) }
//!
//! let mut sim = Simulation::new();
//! sim.schedule_after(Micros::from_secs(1), Ev::Ping(1));
//! sim.schedule_after(Micros::from_secs(2), Ev::Ping(2));
//!
//! let mut seen = Vec::new();
//! sim.run(|sim, ev| {
//!     let Ev::Ping(n) = ev;
//!     seen.push((sim.now(), n));
//! });
//! assert_eq!(seen, vec![
//!     (Micros::from_secs(1), 1),
//!     (Micros::from_secs(2), 2),
//! ]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod queue;
mod rng;
mod trace;

pub use queue::{EventId, Simulation};
pub use rng::{Distributions, RngStreams};
pub use trace::{render as render_trace, TraceEntry};
