//! Named, independently-seeded random streams and the distribution toolkit.
//!
//! `rand` (without `rand_distr`, which is outside the allowed offline crate
//! set) only ships uniform sampling, so this module implements the handful
//! of continuous distributions the CWC models need: normal (Box–Muller),
//! log-normal, exponential, and truncation helpers. They are exercised by
//! the link-fading model, the charging-behavior generator, and the
//! execution-noise model.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Derives independent, reproducible RNG streams from one master seed.
///
/// Each subsystem asks for a stream by label (`"link/phone-3"`,
/// `"user-7/plug"`, …). Labels hash with FNV-1a — a fixed algorithm, so the
/// derivation is stable across Rust versions and platforms, unlike
/// `DefaultHasher`.
#[derive(Debug, Clone, Copy)]
pub struct RngStreams {
    master: u64,
}

impl RngStreams {
    /// Creates the stream factory for a master seed.
    pub fn new(master: u64) -> Self {
        RngStreams { master }
    }

    /// Returns the master seed.
    pub fn master_seed(&self) -> u64 {
        self.master
    }

    /// Derives the seeded RNG for `label`.
    pub fn stream(&self, label: &str) -> StdRng {
        let mixed = splitmix64(self.master ^ fnv1a64(label.as_bytes()));
        StdRng::seed_from_u64(mixed)
    }

    /// Derives a stream for a label built from a prefix and an index —
    /// convenient for per-phone / per-user streams.
    pub fn indexed_stream(&self, prefix: &str, index: usize) -> StdRng {
        // Hash prefix and index separately; formatting into a String per
        // call would also work but this avoids the allocation in hot loops.
        let mut h = fnv1a64(prefix.as_bytes());
        h ^= index as u64;
        h = h.wrapping_mul(0x100000001b3);
        StdRng::seed_from_u64(splitmix64(self.master ^ h))
    }

    /// Derives the stream factory for shard `shard` of a sharded run.
    ///
    /// Same derivation as `cwc_chaos::shard_seed` (the workspace's one
    /// splittable-seed scheme): `splitmix64(master ^ H("shard", shard))`,
    /// so a sharded driver that seeds simulation state through this
    /// factory and fault plans through `shard_seed` lands both on the
    /// same per-shard seed.
    pub fn shard(&self, shard: u64) -> RngStreams {
        let mut h = fnv1a64(b"shard");
        h ^= shard;
        h = h.wrapping_mul(0x100000001b3);
        RngStreams {
            master: splitmix64(self.master ^ h),
        }
    }
}

/// FNV-1a 64-bit hash — tiny, stable, good enough for seed derivation.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// SplitMix64 finalizer — decorrelates structured seed inputs.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Distribution sampling helpers over any [`Rng`].
///
/// Implemented as an extension trait so call sites read naturally:
/// `rng.normal(mu, sigma)`.
pub trait Distributions: Rng {
    /// Standard-normal sample via the Box–Muller transform.
    fn std_normal(&mut self) -> f64 {
        // Avoid u1 == 0 (log singularity) by sampling in the open interval.
        let u1: f64 = loop {
            let u: f64 = self.gen();
            if u > f64::MIN_POSITIVE {
                break u;
            }
        };
        let u2: f64 = self.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        debug_assert!(std_dev >= 0.0);
        mean + std_dev * self.std_normal()
    }

    /// Normal sample truncated to `[lo, hi]` by resampling (up to a bounded
    /// number of tries, then clamping — keeps worst-case cost finite).
    fn normal_clamped(&mut self, mean: f64, std_dev: f64, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        for _ in 0..16 {
            let x = self.normal(mean, std_dev);
            if (lo..=hi).contains(&x) {
                return x;
            }
        }
        self.normal(mean, std_dev).clamp(lo, hi)
    }

    /// Log-normal sample parameterized by the *location/scale of the
    /// underlying normal* (`mu`, `sigma`).
    fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Log-normal sample parameterized by its own *median* and the sigma of
    /// the underlying normal — the natural way to encode "median night
    /// charging interval ≈ 7 h" style facts from the paper.
    fn log_normal_median(&mut self, median: f64, sigma: f64) -> f64 {
        debug_assert!(median > 0.0);
        self.log_normal(median.ln(), sigma)
    }

    /// Exponential sample with the given mean (inverse-CDF method).
    fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        let u: f64 = loop {
            let u: f64 = self.gen();
            if u > f64::MIN_POSITIVE {
                break u;
            }
        };
        -mean * u.ln()
    }

    /// Bernoulli trial.
    fn chance(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        self.gen::<f64>() < p
    }
}

impl<R: Rng + ?Sized> Distributions for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let a = RngStreams::new(7).stream("link");
        let b = RngStreams::new(7).stream("link");
        let xs: Vec<u64> = a
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        let ys: Vec<u64> = b
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_labels_differ() {
        let streams = RngStreams::new(7);
        let x: u64 = streams.stream("a").gen();
        let y: u64 = streams.stream("b").gen();
        assert_ne!(x, y);
    }

    #[test]
    fn different_master_seeds_differ() {
        let x: u64 = RngStreams::new(1).stream("a").gen();
        let y: u64 = RngStreams::new(2).stream("a").gen();
        assert_ne!(x, y);
    }

    #[test]
    fn indexed_streams_are_stable_and_distinct() {
        let streams = RngStreams::new(42);
        let a1: u64 = streams.indexed_stream("phone", 1).gen();
        let a1_again: u64 = streams.indexed_stream("phone", 1).gen();
        let a2: u64 = streams.indexed_stream("phone", 2).gen();
        assert_eq!(a1, a1_again);
        assert_ne!(a1, a2);
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut rng = RngStreams::new(123).stream("normal-test");
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n as f64 - 1.0);
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.25, "var {var}");
    }

    #[test]
    fn exponential_mean_is_sane() {
        let mut rng = RngStreams::new(5).stream("exp-test");
        let n = 20_000;
        let mean = (0..n).map(|_| rng.exponential(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn log_normal_median_is_the_median() {
        let mut rng = RngStreams::new(9).stream("lognorm-test");
        let n = 20_001;
        let mut samples: Vec<f64> = (0..n).map(|_| rng.log_normal_median(7.0, 0.5)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[n / 2];
        assert!((median - 7.0).abs() < 0.3, "median {median}");
        assert!(samples.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn normal_clamped_respects_bounds() {
        let mut rng = RngStreams::new(11).stream("clamp-test");
        for _ in 0..1_000 {
            let x = rng.normal_clamped(0.0, 10.0, -1.0, 1.0);
            assert!((-1.0..=1.0).contains(&x));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = RngStreams::new(3).stream("chance");
        assert!(!(0..100).any(|_| rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.0)));
    }

    #[test]
    fn shard_factories_are_deterministic_and_distinct() {
        let root = RngStreams::new(77);
        let mut seen = std::collections::BTreeSet::new();
        for shard in 0..64u64 {
            assert_eq!(
                root.shard(shard).master_seed(),
                root.shard(shard).master_seed()
            );
            assert!(
                seen.insert(root.shard(shard).master_seed()),
                "shard seed collision"
            );
            assert_ne!(root.shard(shard).master_seed(), root.master_seed());
        }
    }
}
