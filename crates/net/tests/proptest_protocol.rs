//! Property tests: every frame survives encode → (arbitrary fragmentation)
//! → decode unchanged, and the decoder never panics on garbage.

use bytes::{Bytes, BytesMut};
use cwc_net::{Frame, FrameCodec};
use cwc_types::{JobId, PhoneId, RadioTech};
use proptest::prelude::*;

fn radio_strategy() -> impl Strategy<Value = RadioTech> {
    prop_oneof![
        Just(RadioTech::Wifi80211a),
        Just(RadioTech::Wifi80211g),
        Just(RadioTech::Edge),
        Just(RadioTech::ThreeG),
        Just(RadioTech::FourG),
    ]
}

fn frame_strategy() -> impl Strategy<Value = Frame> {
    prop_oneof![
        (
            any::<u32>(),
            any::<u32>(),
            1u32..64,
            radio_strategy(),
            any::<u64>()
        )
            .prop_map(|(phone, clock, cores, radio, ram)| Frame::Register {
                phone: PhoneId(phone),
                clock_mhz: clock,
                cores,
                radio,
                ram_kb: ram,
            }),
        any::<u64>().prop_map(|t| Frame::RegisterAck { server_time_us: t }),
        (any::<u32>(), any::<u32>()).prop_map(|(id, kb)| Frame::BandwidthProbe {
            probe_id: id,
            payload_kb: kb,
        }),
        (any::<u32>(), 0.0..1e6f64).prop_map(|(id, r)| Frame::BandwidthReport {
            probe_id: id,
            kb_per_sec: r,
        }),
        (any::<u32>(), "[a-z_]{0,24}", any::<u64>()).prop_map(|(j, p, kb)| {
            Frame::ShipExecutable {
                job: JobId(j),
                program: p,
                exe_kb: kb,
            }
        }),
        (
            any::<u32>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            proptest::option::of(proptest::collection::vec(any::<u8>(), 0..256)),
            (any::<u64>(), any::<u64>(), any::<u64>(), any::<bool>()),
            proptest::collection::vec(any::<u8>(), 0..512)
        )
            .prop_map(
                |(j, seq, off, len, resume, (tid, sid, psid, replica), data)| {
                    Frame::ShipInput {
                        job: JobId(j),
                        seq,
                        offset_kb: off,
                        len_kb: len,
                        resume_from: resume.map(Bytes::from),
                        trace_id: tid,
                        span_id: sid,
                        parent_span: psid,
                        replica,
                        data: Bytes::from(data),
                    }
                }
            ),
        (
            any::<u32>(),
            any::<u64>(),
            any::<u64>(),
            proptest::collection::vec(any::<u8>(), 0..512)
        )
            .prop_map(|(j, seq, ms, res)| Frame::TaskComplete {
                job: JobId(j),
                seq,
                exec_ms: ms,
                result: Bytes::from(res),
            }),
        (
            any::<u32>(),
            any::<u64>(),
            any::<u64>(),
            proptest::collection::vec(any::<u8>(), 0..512)
        )
            .prop_map(|(j, seq, kb, ck)| Frame::TaskFailed {
                job: JobId(j),
                seq,
                processed_kb: kb,
                checkpoint: Bytes::from(ck),
            }),
        any::<u64>().prop_map(|s| Frame::KeepAlive { seq: s }),
        any::<u64>().prop_map(|s| Frame::KeepAliveAck { seq: s }),
        (any::<u32>(), any::<u64>()).prop_map(|(j, seq)| Frame::CancelTask { job: JobId(j), seq }),
        Just(Frame::Plugged),
        Just(Frame::Unplugged),
        Just(Frame::Shutdown),
    ]
}

proptest! {
    #[test]
    fn encode_decode_round_trip(frame in frame_strategy()) {
        let mut buf = BytesMut::new();
        frame.encode(&mut buf);
        let mut codec = FrameCodec::new();
        codec.extend(&buf);
        let decoded = codec.next_frame().unwrap().expect("complete frame");
        prop_assert_eq!(decoded, frame);
        prop_assert_eq!(codec.buffered(), 0);
    }

    #[test]
    fn round_trip_survives_fragmentation(
        frames in proptest::collection::vec(frame_strategy(), 1..8),
        chunk in 1usize..17,
    ) {
        let mut wire = BytesMut::new();
        for f in &frames {
            f.encode(&mut wire);
        }
        let mut codec = FrameCodec::new();
        let mut decoded = Vec::new();
        for piece in wire.chunks(chunk) {
            codec.extend(piece);
            while let Some(f) = codec.next_frame().unwrap() {
                decoded.push(f);
            }
        }
        prop_assert_eq!(decoded, frames);
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let mut codec = FrameCodec::new();
        codec.extend(&bytes);
        // Any outcome is fine (None, Some, Err) as long as it doesn't panic
        // or loop forever.
        for _ in 0..8 {
            match codec.next_frame() {
                Ok(Some(_)) => continue,
                Ok(None) | Err(_) => break,
            }
        }
    }

    // --- Corrupted-stream properties: bit flips, truncations, and length
    // mutations must yield a decode error or a CRC rejection — never a
    // panic, never a silently wrong frame. ---

    #[test]
    fn bit_flip_never_yields_a_wrong_frame(
        frames in proptest::collection::vec(frame_strategy(), 1..6),
        flip_pos in any::<proptest::sample::Index>(),
        flip_bit in 0u8..8,
    ) {
        let mut wire = BytesMut::new();
        for f in &frames {
            f.encode(&mut wire);
        }
        let mut raw = wire.to_vec();
        let at = flip_pos.index(raw.len());
        raw[at] ^= 1 << flip_bit;

        let mut codec = FrameCodec::new();
        codec.extend(&raw);
        let mut decoded = Vec::new();
        loop {
            match codec.next_frame() {
                Ok(Some(f)) => decoded.push(f),
                Ok(None) | Err(_) => break,
            }
        }
        // Every frame that survives decoding must be one of the originals:
        // corruption may only *remove* frames (rejection/desync), never
        // fabricate or alter one.
        for f in &decoded {
            prop_assert!(frames.contains(f), "fabricated frame {f:?}");
        }
        prop_assert!(decoded.len() <= frames.len());
    }

    #[test]
    fn truncation_decodes_a_clean_prefix(
        frames in proptest::collection::vec(frame_strategy(), 1..6),
        cut in any::<proptest::sample::Index>(),
    ) {
        let mut wire = BytesMut::new();
        for f in &frames {
            f.encode(&mut wire);
        }
        let raw = &wire[..cut.index(wire.len() + 1)];
        let mut codec = FrameCodec::new();
        codec.extend(raw);
        let mut decoded = Vec::new();
        while let Ok(Some(f)) = codec.next_frame() {
            decoded.push(f);
        }
        // A truncated stream yields exactly the frames that fit, in order.
        prop_assert!(decoded.len() <= frames.len());
        prop_assert_eq!(&frames[..decoded.len()], &decoded[..]);
    }

    #[test]
    fn length_prefix_mutation_is_rejected_or_skipped(
        frames in proptest::collection::vec(frame_strategy(), 1..5),
        bogus_len in any::<u32>(),
    ) {
        let mut wire = BytesMut::new();
        for f in &frames {
            f.encode(&mut wire);
        }
        let mut raw = wire.to_vec();
        raw[..4].copy_from_slice(&bogus_len.to_be_bytes());

        let mut codec = FrameCodec::new();
        codec.extend(&raw);
        let mut decoded = Vec::new();
        loop {
            match codec.next_frame() {
                Ok(Some(f)) => decoded.push(f),
                Ok(None) | Err(_) => break,
            }
        }
        for f in &decoded {
            prop_assert!(frames.contains(f), "fabricated frame {f:?}");
        }
    }
}
