//! Connection multiplexer — the Java-NIO-server analogue.
//!
//! The prototype's central server is "a multi-threaded Java NIO server:
//! non-blocking threads allow the server to concurrently copy data to a
//! phone while reading the completion reports of other phones" (§6).
//! Rust's `std::net` has no portable readiness API, so this multiplexer
//! gets the same effect with one reader thread per connection feeding a
//! single event channel: the coordinator blocks on *one* stream of
//! `(connection, frame)` events instead of polling sockets round-robin,
//! and writes go out independently through per-connection handles.
//!
//! Connection teardown is an event too ([`MuxEvent::Closed`]), which is
//! exactly how CWC wants it: a vanished phone is a failure to handle, not
//! an `EPIPE` to unwind from.

use crate::protocol::Frame;
use crate::tcp::FramedTcp;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use cwc_types::{CwcError, CwcResult};
use parking_lot::Mutex;
use std::net::TcpStream;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Identifier of a connection within one multiplexer.
pub type ConnId = usize;

/// Something that happened on a multiplexed connection.
#[derive(Debug)]
pub enum MuxEvent {
    /// A complete frame arrived.
    Frame(Frame),
    /// The connection ended (orderly or not); the reader thread is gone.
    Closed(String),
}

/// Write half of a multiplexed connection.
///
/// Cheap to clone; writes are serialized by an internal lock so the
/// coordinator and any helper threads can share it.
#[derive(Clone)]
pub struct MuxWriter {
    inner: Arc<Mutex<FramedTcp>>,
}

impl MuxWriter {
    /// Sends one frame, blocking until fully written.
    pub fn send(&self, frame: &Frame) -> CwcResult<()> {
        self.inner.lock().send(frame)
    }

    /// Installs (or clears) a fault-injection hook on this connection's
    /// send path (see [`crate::fault::WireFault`]).
    pub fn set_fault(&self, fault: Option<Box<dyn crate::fault::WireFault>>) {
        self.inner.lock().set_fault(fault);
    }
}

/// Fan-in of many framed TCP connections into one event stream.
pub struct Multiplexer {
    tx: Sender<(ConnId, MuxEvent)>,
    rx: Receiver<(ConnId, MuxEvent)>,
    writers: Vec<MuxWriter>,
    readers: Vec<JoinHandle<()>>,
    obs: Option<cwc_obs::Obs>,
}

impl Default for Multiplexer {
    fn default() -> Self {
        Self::new()
    }
}

impl Multiplexer {
    /// Creates an empty multiplexer.
    pub fn new() -> Self {
        let (tx, rx) = unbounded();
        Multiplexer {
            tx,
            rx,
            writers: Vec::new(),
            readers: Vec::new(),
            obs: None,
        }
    }

    /// Like [`Multiplexer::new`], recording through `obs`: reader threads
    /// count rejected-on-CRC inbound frames on `net.crc_rejected` and emit
    /// a `net`/`frame.rejected` Warn event per rejection burst.
    pub fn observed(obs: cwc_obs::Obs) -> Self {
        let mut mux = Self::new();
        mux.obs = Some(obs);
        mux
    }

    /// Adopts a connected stream: spawns its reader thread and returns
    /// its id plus the write handle.
    pub fn add(&mut self, stream: TcpStream) -> CwcResult<(ConnId, MuxWriter)> {
        let id = self.writers.len();
        let read_half = stream
            .try_clone()
            .map_err(|e| CwcError::Transport(format!("try_clone: {e}")))?;
        let writer = MuxWriter {
            inner: Arc::new(Mutex::new(FramedTcp::from_stream(stream)?)),
        };
        self.writers.push(writer.clone());

        let tx = self.tx.clone();
        let obs = self.obs.clone();
        let mut reader = FramedTcp::from_stream(read_half)?;
        self.readers.push(std::thread::spawn(move || {
            let mut crc_seen = 0u64;
            loop {
                match reader.recv() {
                    Ok(frame) => {
                        let rejected = reader.crc_rejections();
                        if rejected > crc_seen {
                            if let Some(obs) = &obs {
                                obs.metrics.add("net.crc_rejected", rejected - crc_seen);
                                obs.emit(
                                    obs.wall_event("net", "frame.rejected")
                                        .severity(cwc_obs::Severity::Warn)
                                        .field("conn", id)
                                        .field("rejected", rejected - crc_seen)
                                        .field(
                                            "msg",
                                            format!(
                                                "conn {id}: {} corrupt frame(s) rejected on CRC",
                                                rejected - crc_seen
                                            ),
                                        ),
                                );
                            }
                            crc_seen = rejected;
                        }
                        if tx.send((id, MuxEvent::Frame(frame))).is_err() {
                            return; // multiplexer dropped
                        }
                    }
                    Err(e) => {
                        // The multiplexer may already be gone; there is
                        // nobody left to tell. cwc-lint: allow(error_swallowing)
                        let _ = tx.send((id, MuxEvent::Closed(e.to_string())));
                        return;
                    }
                }
            }
        }));
        Ok((id, writer))
    }

    /// Number of adopted connections.
    pub fn len(&self) -> usize {
        self.writers.len()
    }

    /// Whether no connection has been adopted yet.
    pub fn is_empty(&self) -> bool {
        self.writers.is_empty()
    }

    /// The write handle of connection `id`. Errors on an id the mux never
    /// adopted — callers decide whether that is a bug or a raced
    /// disconnect.
    pub fn writer(&self, id: ConnId) -> CwcResult<&MuxWriter> {
        self.writers
            .get(id)
            .ok_or_else(|| CwcError::Transport(format!("no connection with id {id}")))
    }

    /// Waits up to `timeout` for the next event from any connection.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<(ConnId, MuxEvent)> {
        match self.rx.recv_timeout(timeout) {
            Ok(ev) => Some(ev),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => None,
        }
    }

    /// Blocks for the next event from any connection. Returns `None` only
    /// if every reader has exited *and* the queue is drained.
    pub fn recv(&self) -> Option<(ConnId, MuxEvent)> {
        // The mux holds its own sender, so recv() would never disconnect;
        // poll with a generous timeout against reader-exit races instead.
        loop {
            match self.rx.recv_timeout(Duration::from_secs(1)) {
                Ok(ev) => return Some(ev),
                Err(RecvTimeoutError::Timeout) => {
                    if self.readers.iter().all(|h| h.is_finished()) && self.rx.is_empty() {
                        return None;
                    }
                }
                Err(RecvTimeoutError::Disconnected) => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwc_types::JobId;
    use std::net::TcpListener;

    fn cluster(n: usize) -> (Multiplexer, Vec<FramedTcp>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut mux = Multiplexer::new();
        let mut clients = Vec::new();
        for _ in 0..n {
            let client = std::thread::spawn(move || FramedTcp::connect(addr).unwrap());
            let (server_stream, _) = listener.accept().unwrap();
            mux.add(server_stream).unwrap();
            clients.push(client.join().unwrap());
        }
        (mux, clients)
    }

    #[test]
    fn frames_from_many_connections_interleave_into_one_stream() {
        let (mux, mut clients) = cluster(3);
        for (k, c) in clients.iter_mut().enumerate() {
            c.send(&Frame::KeepAlive { seq: k as u64 }).unwrap();
        }
        let mut got = Vec::new();
        for _ in 0..3 {
            let (id, ev) = mux.recv_timeout(Duration::from_secs(2)).expect("event");
            match ev {
                MuxEvent::Frame(Frame::KeepAlive { seq }) => got.push((id, seq)),
                other => panic!("unexpected {other:?}"),
            }
        }
        got.sort_unstable();
        assert_eq!(got, vec![(0, 0), (1, 1), (2, 2)]);
    }

    #[test]
    fn writers_reach_the_right_peer() {
        let (mux, mut clients) = cluster(2);
        mux.writer(0)
            .unwrap()
            .send(&Frame::KeepAlive { seq: 100 })
            .unwrap();
        mux.writer(1)
            .unwrap()
            .send(&Frame::KeepAlive { seq: 200 })
            .unwrap();
        assert_eq!(clients[0].recv().unwrap(), Frame::KeepAlive { seq: 100 });
        assert_eq!(clients[1].recv().unwrap(), Frame::KeepAlive { seq: 200 });
    }

    #[test]
    fn closed_connection_surfaces_as_event() {
        let (mux, mut clients) = cluster(2);
        clients.remove(0); // drop client 0: its reader must report Closed
        let (id, ev) = mux.recv_timeout(Duration::from_secs(2)).expect("event");
        assert_eq!(id, 0);
        assert!(matches!(ev, MuxEvent::Closed(_)), "got {ev:?}");
        // The other connection still works.
        clients[0]
            .send(&Frame::TaskComplete {
                job: JobId(1),
                seq: 1,
                exec_ms: 5,
                result: bytes::Bytes::new(),
            })
            .unwrap();
        let (id, ev) = mux.recv_timeout(Duration::from_secs(2)).expect("event");
        assert_eq!(id, 1);
        assert!(matches!(ev, MuxEvent::Frame(Frame::TaskComplete { .. })));
    }

    #[test]
    fn recv_timeout_times_out_quietly() {
        let (mux, _clients) = cluster(1);
        assert!(mux.recv_timeout(Duration::from_millis(30)).is_none());
    }

    #[test]
    fn writer_handles_are_cloneable_and_shared() {
        let (mux, mut clients) = cluster(1);
        let w1 = mux.writer(0).unwrap().clone();
        let w2 = mux.writer(0).unwrap().clone();
        let t1 = std::thread::spawn(move || w1.send(&Frame::KeepAlive { seq: 1 }));
        let t2 = std::thread::spawn(move || w2.send(&Frame::KeepAlive { seq: 2 }));
        t1.join().unwrap().unwrap();
        t2.join().unwrap().unwrap();
        let mut seqs = vec![];
        for _ in 0..2 {
            match clients[0].recv().unwrap() {
                Frame::KeepAlive { seq } => seqs.push(seq),
                other => panic!("unexpected {other:?}"),
            }
        }
        seqs.sort_unstable();
        assert_eq!(seqs, vec![1, 2]);
    }
}
