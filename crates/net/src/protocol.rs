//! The CWC wire protocol.
//!
//! Binary, length-prefixed frames over a persistent per-phone connection.
//! The vocabulary mirrors the paper's prototype message flow (§6):
//! registration with CPU specs, bandwidth probes, per-partition executable
//! and input shipping, completion reports carrying the measured local
//! execution time (which feeds the scheduler's prediction update), online
//! failure reports carrying migration state, and application-layer
//! keep-alives for offline-failure detection.
//!
//! ## Framing
//!
//! ```text
//! +----------------+-----------+------------------+
//! | u32 BE length  | u8 tag    | payload ...      |
//! +----------------+-----------+------------------+
//! ```
//!
//! `length` counts tag + payload. Strings are `u16 BE length + UTF-8`;
//! byte blobs are `u32 BE length + bytes`; `f64` travels as IEEE-754 bits.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use cwc_types::{CwcError, CwcResult, JobId, PhoneId, RadioTech};

/// Application-layer keep-alive period (30 s in the prototype).
pub const KEEPALIVE_PERIOD: cwc_types::Micros = cwc_types::Micros(30_000_000);

/// Number of unanswered keep-alives tolerated before a phone is marked as
/// an offline failure (3 in the prototype).
pub const KEEPALIVE_TOLERATED_MISSES: u32 = 3;

/// Maximum accepted frame body (tag + payload) — guards the decoder against
/// a corrupt or hostile length prefix.
pub const MAX_FRAME_LEN: usize = 64 * 1024 * 1024;

/// One protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Phone → server: join the fleet, reporting hardware capabilities.
    Register {
        /// Phone identity (assigned out of band, e.g. enrollment).
        phone: PhoneId,
        /// CPU clock in MHz.
        clock_mhz: u32,
        /// CPU core count.
        cores: u32,
        /// Radio technology in use.
        radio: RadioTech,
        /// Usable RAM in KB.
        ram_kb: u64,
    },
    /// Server → phone: registration accepted.
    RegisterAck {
        /// Server wall-clock at acceptance (µs) — lets phones stamp reports.
        server_time_us: u64,
    },
    /// Server → phone: bandwidth probe payload (iperf-style).
    BandwidthProbe {
        /// Correlates probe and report.
        probe_id: u32,
        /// Probe payload size in KB.
        payload_kb: u32,
    },
    /// Phone → server: measured downlink throughput for a probe.
    BandwidthReport {
        /// Correlates probe and report.
        probe_id: u32,
        /// Measured throughput in KB/s.
        kb_per_sec: f64,
    },
    /// Server → phone: ship a task executable (the `.jar` analogue).
    ShipExecutable {
        /// Job whose program this is.
        job: JobId,
        /// Program name for the device-side registry (reflection analogue).
        program: String,
        /// Executable size in KB (`E_j`).
        exe_kb: u64,
    },
    /// Server → phone: ship an input partition and start execution.
    ShipInput {
        /// Job being executed.
        job: JobId,
        /// Offset of this partition within the job input, in KB.
        offset_kb: u64,
        /// Partition length in KB (`l_ij`).
        len_kb: u64,
        /// Migration state to resume from, if this partition continues a
        /// previously failed execution.
        resume_from: Option<Bytes>,
        /// The partition payload. Empty in simulated deployments (where
        /// only sizes matter); carries the real input bytes in live mode.
        data: Bytes,
    },
    /// Phone → server: a partition finished.
    TaskComplete {
        /// Job that finished.
        job: JobId,
        /// Locally measured execution time in ms (feeds prediction update).
        exec_ms: u64,
        /// Serialized partial result for server-side aggregation.
        result: Bytes,
    },
    /// Phone → server: an *online failure* — the phone was unplugged but
    /// still has connectivity, so it reports how far it got plus the
    /// JavaGO-style continuation state.
    TaskFailed {
        /// Job that was interrupted.
        job: JobId,
        /// Input KB already processed before the failure instant.
        processed_kb: u64,
        /// Serialized continuation (checkpoint) for migration.
        checkpoint: Bytes,
    },
    /// Server → phone: liveness probe.
    KeepAlive {
        /// Monotonic sequence number.
        seq: u64,
    },
    /// Phone → server: liveness answer.
    KeepAliveAck {
        /// Echoed sequence number.
        seq: u64,
    },
    /// Phone → server: plugged into a charger (eligible for work).
    Plugged,
    /// Phone → server: unplugged (will stop computing; tasks migrate).
    Unplugged,
    /// Either direction: orderly connection shutdown.
    Shutdown,
}

mod tag {
    pub const REGISTER: u8 = 1;
    pub const REGISTER_ACK: u8 = 2;
    pub const BW_PROBE: u8 = 3;
    pub const BW_REPORT: u8 = 4;
    pub const SHIP_EXE: u8 = 5;
    pub const SHIP_INPUT: u8 = 6;
    pub const TASK_COMPLETE: u8 = 7;
    pub const TASK_FAILED: u8 = 8;
    pub const KEEPALIVE: u8 = 9;
    pub const KEEPALIVE_ACK: u8 = 10;
    pub const PLUGGED: u8 = 11;
    pub const UNPLUGGED: u8 = 12;
    pub const SHUTDOWN: u8 = 13;
}

fn radio_to_u8(r: RadioTech) -> u8 {
    match r {
        RadioTech::Wifi80211a => 0,
        RadioTech::Wifi80211g => 1,
        RadioTech::Edge => 2,
        RadioTech::ThreeG => 3,
        RadioTech::FourG => 4,
    }
}

fn radio_from_u8(v: u8) -> CwcResult<RadioTech> {
    Ok(match v {
        0 => RadioTech::Wifi80211a,
        1 => RadioTech::Wifi80211g,
        2 => RadioTech::Edge,
        3 => RadioTech::ThreeG,
        4 => RadioTech::FourG,
        other => return Err(CwcError::Protocol(format!("bad radio tag {other}"))),
    })
}

fn put_string(buf: &mut BytesMut, s: &str) {
    let bytes = s.as_bytes();
    assert!(bytes.len() <= u16::MAX as usize, "string too long for wire");
    buf.put_u16(bytes.len() as u16);
    buf.put_slice(bytes);
}

fn put_blob(buf: &mut BytesMut, b: &[u8]) {
    assert!(b.len() <= u32::MAX as usize);
    buf.put_u32(b.len() as u32);
    buf.put_slice(b);
}

/// Bounds-checked primitive readers over the body buffer.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn need(&self, n: usize) -> CwcResult<()> {
        if self.pos + n > self.buf.len() {
            Err(CwcError::Protocol(format!(
                "truncated frame: need {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len()
            )))
        } else {
            Ok(())
        }
    }

    fn u8(&mut self) -> CwcResult<u8> {
        self.need(1)?;
        let v = self.buf[self.pos];
        self.pos += 1;
        Ok(v)
    }

    fn u16(&mut self) -> CwcResult<u16> {
        self.need(2)?;
        let v = u16::from_be_bytes(self.buf[self.pos..self.pos + 2].try_into().unwrap());
        self.pos += 2;
        Ok(v)
    }

    fn u32(&mut self) -> CwcResult<u32> {
        self.need(4)?;
        let v = u32::from_be_bytes(self.buf[self.pos..self.pos + 4].try_into().unwrap());
        self.pos += 4;
        Ok(v)
    }

    fn u64(&mut self) -> CwcResult<u64> {
        self.need(8)?;
        let v = u64::from_be_bytes(self.buf[self.pos..self.pos + 8].try_into().unwrap());
        self.pos += 8;
        Ok(v)
    }

    fn f64(&mut self) -> CwcResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn string(&mut self) -> CwcResult<String> {
        let len = self.u16()? as usize;
        self.need(len)?;
        let s = std::str::from_utf8(&self.buf[self.pos..self.pos + len])
            .map_err(|e| CwcError::Protocol(format!("invalid UTF-8 in frame: {e}")))?
            .to_owned();
        self.pos += len;
        Ok(s)
    }

    fn blob(&mut self) -> CwcResult<Bytes> {
        let len = self.u32()? as usize;
        self.need(len)?;
        let b = Bytes::copy_from_slice(&self.buf[self.pos..self.pos + len]);
        self.pos += len;
        Ok(b)
    }

    fn finish(self) -> CwcResult<()> {
        if self.pos != self.buf.len() {
            Err(CwcError::Protocol(format!(
                "{} trailing bytes after frame payload",
                self.buf.len() - self.pos
            )))
        } else {
            Ok(())
        }
    }
}

impl Frame {
    /// Encodes the frame (with its length prefix) into `out`.
    pub fn encode(&self, out: &mut BytesMut) {
        let mut body = BytesMut::with_capacity(32);
        match self {
            Frame::Register {
                phone,
                clock_mhz,
                cores,
                radio,
                ram_kb,
            } => {
                body.put_u8(tag::REGISTER);
                body.put_u32(phone.0);
                body.put_u32(*clock_mhz);
                body.put_u32(*cores);
                body.put_u8(radio_to_u8(*radio));
                body.put_u64(*ram_kb);
            }
            Frame::RegisterAck { server_time_us } => {
                body.put_u8(tag::REGISTER_ACK);
                body.put_u64(*server_time_us);
            }
            Frame::BandwidthProbe {
                probe_id,
                payload_kb,
            } => {
                body.put_u8(tag::BW_PROBE);
                body.put_u32(*probe_id);
                body.put_u32(*payload_kb);
            }
            Frame::BandwidthReport {
                probe_id,
                kb_per_sec,
            } => {
                body.put_u8(tag::BW_REPORT);
                body.put_u32(*probe_id);
                body.put_u64(kb_per_sec.to_bits());
            }
            Frame::ShipExecutable {
                job,
                program,
                exe_kb,
            } => {
                body.put_u8(tag::SHIP_EXE);
                body.put_u32(job.0);
                put_string(&mut body, program);
                body.put_u64(*exe_kb);
            }
            Frame::ShipInput {
                job,
                offset_kb,
                len_kb,
                resume_from,
                data,
            } => {
                body.put_u8(tag::SHIP_INPUT);
                body.put_u32(job.0);
                body.put_u64(*offset_kb);
                body.put_u64(*len_kb);
                match resume_from {
                    Some(state) => {
                        body.put_u8(1);
                        put_blob(&mut body, state);
                    }
                    None => body.put_u8(0),
                }
                put_blob(&mut body, data);
            }
            Frame::TaskComplete {
                job,
                exec_ms,
                result,
            } => {
                body.put_u8(tag::TASK_COMPLETE);
                body.put_u32(job.0);
                body.put_u64(*exec_ms);
                put_blob(&mut body, result);
            }
            Frame::TaskFailed {
                job,
                processed_kb,
                checkpoint,
            } => {
                body.put_u8(tag::TASK_FAILED);
                body.put_u32(job.0);
                body.put_u64(*processed_kb);
                put_blob(&mut body, checkpoint);
            }
            Frame::KeepAlive { seq } => {
                body.put_u8(tag::KEEPALIVE);
                body.put_u64(*seq);
            }
            Frame::KeepAliveAck { seq } => {
                body.put_u8(tag::KEEPALIVE_ACK);
                body.put_u64(*seq);
            }
            Frame::Plugged => body.put_u8(tag::PLUGGED),
            Frame::Unplugged => body.put_u8(tag::UNPLUGGED),
            Frame::Shutdown => body.put_u8(tag::SHUTDOWN),
        }
        out.put_u32(body.len() as u32);
        out.put_slice(&body);
    }

    /// Decodes one frame body (without the length prefix).
    fn decode_body(body: &[u8]) -> CwcResult<Frame> {
        let mut r = Reader::new(body);
        let t = r.u8()?;
        let frame = match t {
            tag::REGISTER => Frame::Register {
                phone: PhoneId(r.u32()?),
                clock_mhz: r.u32()?,
                cores: r.u32()?,
                radio: radio_from_u8(r.u8()?)?,
                ram_kb: r.u64()?,
            },
            tag::REGISTER_ACK => Frame::RegisterAck {
                server_time_us: r.u64()?,
            },
            tag::BW_PROBE => Frame::BandwidthProbe {
                probe_id: r.u32()?,
                payload_kb: r.u32()?,
            },
            tag::BW_REPORT => Frame::BandwidthReport {
                probe_id: r.u32()?,
                kb_per_sec: r.f64()?,
            },
            tag::SHIP_EXE => Frame::ShipExecutable {
                job: JobId(r.u32()?),
                program: r.string()?,
                exe_kb: r.u64()?,
            },
            tag::SHIP_INPUT => {
                let job = JobId(r.u32()?);
                let offset_kb = r.u64()?;
                let len_kb = r.u64()?;
                let resume_from = match r.u8()? {
                    0 => None,
                    1 => Some(r.blob()?),
                    other => {
                        return Err(CwcError::Protocol(format!(
                            "bad option discriminant {other}"
                        )))
                    }
                };
                let data = r.blob()?;
                Frame::ShipInput {
                    job,
                    offset_kb,
                    len_kb,
                    resume_from,
                    data,
                }
            }
            tag::TASK_COMPLETE => Frame::TaskComplete {
                job: JobId(r.u32()?),
                exec_ms: r.u64()?,
                result: r.blob()?,
            },
            tag::TASK_FAILED => Frame::TaskFailed {
                job: JobId(r.u32()?),
                processed_kb: r.u64()?,
                checkpoint: r.blob()?,
            },
            tag::KEEPALIVE => Frame::KeepAlive { seq: r.u64()? },
            tag::KEEPALIVE_ACK => Frame::KeepAliveAck { seq: r.u64()? },
            tag::PLUGGED => Frame::Plugged,
            tag::UNPLUGGED => Frame::Unplugged,
            tag::SHUTDOWN => Frame::Shutdown,
            other => return Err(CwcError::Protocol(format!("unknown frame tag {other}"))),
        };
        r.finish()?;
        Ok(frame)
    }
}

/// Incremental decoder over a growing byte buffer.
///
/// Feed raw socket bytes with [`FrameCodec::extend`]; pull complete frames
/// with [`FrameCodec::next_frame`] until it returns `Ok(None)` (incomplete
/// tail remains buffered).
#[derive(Debug, Default)]
pub struct FrameCodec {
    buf: BytesMut,
}

impl FrameCodec {
    /// Creates an empty codec.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends newly received bytes.
    pub fn extend(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Bytes currently buffered but not yet decoded.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Attempts to decode the next complete frame.
    pub fn next_frame(&mut self) -> CwcResult<Option<Frame>> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes(self.buf[..4].try_into().unwrap()) as usize;
        if len == 0 || len > MAX_FRAME_LEN {
            return Err(CwcError::Protocol(format!("bad frame length {len}")));
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        self.buf.advance(4);
        let body = self.buf.split_to(len);
        Frame::decode_body(&body).map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(f: &Frame) -> Frame {
        let mut buf = BytesMut::new();
        f.encode(&mut buf);
        let mut codec = FrameCodec::new();
        codec.extend(&buf);
        let out = codec.next_frame().expect("decode ok").expect("complete");
        assert_eq!(codec.buffered(), 0, "no leftovers");
        out
    }

    #[test]
    fn round_trips_all_variants() {
        let frames = vec![
            Frame::Register {
                phone: PhoneId(3),
                clock_mhz: 1200,
                cores: 2,
                radio: RadioTech::ThreeG,
                ram_kb: 1_048_576,
            },
            Frame::RegisterAck { server_time_us: 42 },
            Frame::BandwidthProbe {
                probe_id: 7,
                payload_kb: 256,
            },
            Frame::BandwidthReport {
                probe_id: 7,
                kb_per_sec: 812.75,
            },
            Frame::ShipExecutable {
                job: JobId(9),
                program: "wordcount".into(),
                exe_kb: 30,
            },
            Frame::ShipInput {
                job: JobId(9),
                offset_kb: 100,
                len_kb: 500,
                resume_from: None,
                data: Bytes::new(),
            },
            Frame::ShipInput {
                job: JobId(9),
                offset_kb: 0,
                len_kb: 250,
                resume_from: Some(Bytes::from_static(b"state")),
                data: Bytes::from_static(b"payload bytes"),
            },
            Frame::TaskComplete {
                job: JobId(9),
                exec_ms: 1234,
                result: Bytes::from_static(b"42"),
            },
            Frame::TaskFailed {
                job: JobId(9),
                processed_kb: 77,
                checkpoint: Bytes::from_static(b"ckpt"),
            },
            Frame::KeepAlive { seq: 1 },
            Frame::KeepAliveAck { seq: 1 },
            Frame::Plugged,
            Frame::Unplugged,
            Frame::Shutdown,
        ];
        for f in &frames {
            assert_eq!(&round_trip(f), f);
        }
    }

    #[test]
    fn streaming_decode_across_fragment_boundaries() {
        let mut wire = BytesMut::new();
        let a = Frame::KeepAlive { seq: 5 };
        let b = Frame::TaskComplete {
            job: JobId(1),
            exec_ms: 10,
            result: Bytes::from_static(b"abcdef"),
        };
        a.encode(&mut wire);
        b.encode(&mut wire);

        // Feed a byte at a time; frames must pop exactly when complete.
        let mut codec = FrameCodec::new();
        let mut decoded = Vec::new();
        for byte in wire.iter() {
            codec.extend(std::slice::from_ref(byte));
            while let Some(f) = codec.next_frame().unwrap() {
                decoded.push(f);
            }
        }
        assert_eq!(decoded, vec![a, b]);
    }

    #[test]
    fn two_frames_in_one_read() {
        let mut wire = BytesMut::new();
        Frame::Plugged.encode(&mut wire);
        Frame::Unplugged.encode(&mut wire);
        let mut codec = FrameCodec::new();
        codec.extend(&wire);
        assert_eq!(codec.next_frame().unwrap(), Some(Frame::Plugged));
        assert_eq!(codec.next_frame().unwrap(), Some(Frame::Unplugged));
        assert_eq!(codec.next_frame().unwrap(), None);
    }

    #[test]
    fn rejects_unknown_tag() {
        let mut codec = FrameCodec::new();
        codec.extend(&[0, 0, 0, 1, 200]);
        assert!(codec.next_frame().is_err());
    }

    #[test]
    fn rejects_zero_and_huge_lengths() {
        let mut codec = FrameCodec::new();
        codec.extend(&[0, 0, 0, 0]);
        assert!(codec.next_frame().is_err());

        let mut codec = FrameCodec::new();
        codec.extend(&[0xFF, 0xFF, 0xFF, 0xFF]);
        assert!(codec.next_frame().is_err());
    }

    #[test]
    fn rejects_trailing_garbage_inside_frame() {
        // A KeepAlive body with an extra byte appended inside the length.
        let mut body = BytesMut::new();
        Frame::KeepAlive { seq: 1 }.encode(&mut body);
        let mut raw = body.to_vec();
        // Patch length + add junk byte.
        raw.push(0xAB);
        let new_len = (raw.len() - 4) as u32;
        raw[..4].copy_from_slice(&new_len.to_be_bytes());
        let mut codec = FrameCodec::new();
        codec.extend(&raw);
        assert!(codec.next_frame().is_err());
    }

    #[test]
    fn rejects_truncated_string() {
        // ShipExecutable with a string length pointing past the body.
        let mut body = BytesMut::new();
        body.put_u8(5); // SHIP_EXE
        body.put_u32(1);
        body.put_u16(100); // claims 100 bytes
        body.put_slice(b"abc"); // provides 3
        let mut raw = BytesMut::new();
        raw.put_u32(body.len() as u32);
        raw.put_slice(&body);
        let mut codec = FrameCodec::new();
        codec.extend(&raw);
        assert!(codec.next_frame().is_err());
    }

    #[test]
    fn rejects_bad_radio_and_bad_option() {
        let mut body = BytesMut::new();
        body.put_u8(1); // REGISTER
        body.put_u32(0);
        body.put_u32(1000);
        body.put_u32(2);
        body.put_u8(99); // bad radio
        body.put_u64(0);
        let mut raw = BytesMut::new();
        raw.put_u32(body.len() as u32);
        raw.put_slice(&body);
        let mut codec = FrameCodec::new();
        codec.extend(&raw);
        assert!(codec.next_frame().is_err());
    }

    #[test]
    fn keepalive_constants_match_prototype() {
        assert_eq!(KEEPALIVE_PERIOD.as_secs_f64(), 30.0);
        assert_eq!(KEEPALIVE_TOLERATED_MISSES, 3);
    }
}
