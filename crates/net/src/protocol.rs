//! The CWC wire protocol.
//!
//! Binary, length-prefixed frames over a persistent per-phone connection.
//! The vocabulary mirrors the paper's prototype message flow (§6):
//! registration with CPU specs, bandwidth probes, per-partition executable
//! and input shipping, completion reports carrying the measured local
//! execution time (which feeds the scheduler's prediction update), online
//! failure reports carrying migration state, and application-layer
//! keep-alives for offline-failure detection.
//!
//! ## Framing
//!
//! ```text
//! +----------------+---------------+-----------+------------------+
//! | u32 BE length  | u32 BE CRC32  | u8 tag    | payload ...      |
//! +----------------+---------------+-----------+------------------+
//! ```
//!
//! `length` counts tag + payload; the CRC32 (IEEE) covers the same bytes.
//! A frame whose CRC does not match is *rejected* — skipped whole, counted
//! on [`FrameCodec::crc_rejections`] — instead of being decoded into
//! garbage; a corrupt frame thus degrades into a lost frame, which the
//! server's stall watchdog and requeue machinery already recover from.
//! Strings are `u16 BE length + UTF-8`; byte blobs are `u32 BE length +
//! bytes`; `f64` travels as IEEE-754 bits.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use cwc_types::{CwcError, CwcResult, JobId, PhoneId, RadioTech};

/// Application-layer keep-alive period (30 s in the prototype).
pub const KEEPALIVE_PERIOD: cwc_types::Micros = cwc_types::Micros(30_000_000);

/// Number of unanswered keep-alives tolerated before a phone is marked as
/// an offline failure (3 in the prototype).
pub const KEEPALIVE_TOLERATED_MISSES: u32 = 3;

/// Maximum accepted frame body (tag + payload) — guards the decoder against
/// a corrupt or hostile length prefix.
pub const MAX_FRAME_LEN: usize = 64 * 1024 * 1024;

/// Bytes of framing before the body: u32 length + u32 CRC32.
pub const FRAME_HEADER_LEN: usize = 8;

/// CRC32 (IEEE 802.3, reflected, polynomial 0xEDB88320) over `bytes`.
///
/// Guards every frame body against in-flight corruption; a single flipped
/// bit anywhere in tag or payload is always detected.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut c = !0u32;
    for &b in bytes {
        // Infallible: the index is masked to 0..=255 and TABLE has 256
        // entries. cwc-lint: allow(panic_safety)
        c = TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        // Infallible: const-evaluated with i < 256. cwc-lint: allow(panic_safety)
        table[i] = c;
        i += 1;
    }
    table
}

/// Whether `tag` (the first body byte of an encoded frame) belongs to the
/// connection-setup/teardown vocabulary. Fault-injection harnesses use this
/// to spare the handshake: chaos on the data phase exercises recovery, chaos
/// on registration only prevents the run from starting.
pub fn is_handshake_tag(t: u8) -> bool {
    matches!(
        t,
        tag::REGISTER | tag::REGISTER_ACK | tag::BW_PROBE | tag::BW_REPORT | tag::SHUTDOWN
    )
}

/// One protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Phone → server: join the fleet, reporting hardware capabilities.
    Register {
        /// Phone identity (assigned out of band, e.g. enrollment).
        phone: PhoneId,
        /// CPU clock in MHz.
        clock_mhz: u32,
        /// CPU core count.
        cores: u32,
        /// Radio technology in use.
        radio: RadioTech,
        /// Usable RAM in KB.
        ram_kb: u64,
    },
    /// Server → phone: registration accepted.
    RegisterAck {
        /// Server wall-clock at acceptance (µs) — lets phones stamp reports.
        server_time_us: u64,
    },
    /// Server → phone: bandwidth probe payload (iperf-style).
    BandwidthProbe {
        /// Correlates probe and report.
        probe_id: u32,
        /// Probe payload size in KB.
        payload_kb: u32,
    },
    /// Phone → server: measured downlink throughput for a probe.
    BandwidthReport {
        /// Correlates probe and report.
        probe_id: u32,
        /// Measured throughput in KB/s.
        kb_per_sec: f64,
    },
    /// Server → phone: ship a task executable (the `.jar` analogue).
    ShipExecutable {
        /// Job whose program this is.
        job: JobId,
        /// Program name for the device-side registry (reflection analogue).
        program: String,
        /// Executable size in KB (`E_j`).
        exe_kb: u64,
    },
    /// Server → phone: ship an input partition and start execution.
    ShipInput {
        /// Job being executed.
        job: JobId,
        /// Server-assigned task sequence number; the phone echoes it in the
        /// matching [`Frame::TaskComplete`]/[`Frame::TaskFailed`] so the
        /// server can discard duplicated or stale reports (idempotency
        /// under frame duplication and retries).
        seq: u64,
        /// Offset of this partition within the job input, in KB.
        offset_kb: u64,
        /// Partition length in KB (`l_ij`).
        len_kb: u64,
        /// Migration state to resume from, if this partition continues a
        /// previously failed execution.
        resume_from: Option<Bytes>,
        /// Trace id of the chunk's span tree (the originating job).
        trace_id: u64,
        /// Span id minted by the coordinator for this placement.
        span_id: u64,
        /// Parent span id, or 0 for a root placement (initial schedule).
        parent_span: u64,
        /// Whether this partition is a redundant copy (risk-driven replica
        /// or speculative re-execution) of work in flight elsewhere. Purely
        /// informational to the worker — execution is identical — but it
        /// lets device-side accounting distinguish primary from backup
        /// work.
        replica: bool,
        /// The partition payload. Empty in simulated deployments (where
        /// only sizes matter); carries the real input bytes in live mode.
        data: Bytes,
    },
    /// Phone → server: a partition finished.
    TaskComplete {
        /// Job that finished.
        job: JobId,
        /// Echo of the [`Frame::ShipInput`] sequence number this report
        /// answers; reports that do not match the in-flight sequence are
        /// duplicates and are dropped by the server.
        seq: u64,
        /// Locally measured execution time in ms (feeds prediction update).
        exec_ms: u64,
        /// Serialized partial result for server-side aggregation.
        result: Bytes,
    },
    /// Phone → server: an *online failure* — the phone was unplugged but
    /// still has connectivity, so it reports how far it got plus the
    /// JavaGO-style continuation state.
    TaskFailed {
        /// Job that was interrupted.
        job: JobId,
        /// Echo of the [`Frame::ShipInput`] sequence number (see
        /// [`Frame::TaskComplete::seq`]).
        seq: u64,
        /// Input KB already processed before the failure instant.
        processed_kb: u64,
        /// Serialized continuation (checkpoint) for migration.
        checkpoint: Bytes,
    },
    /// Server → phone: liveness probe.
    KeepAlive {
        /// Monotonic sequence number.
        seq: u64,
    },
    /// Phone → server: liveness answer.
    KeepAliveAck {
        /// Echoed sequence number.
        seq: u64,
    },
    /// Phone → server: plugged into a charger (eligible for work).
    Plugged,
    /// Phone → server: unplugged (will stop computing; tasks migrate).
    Unplugged,
    /// Server → phone: abandon an in-flight (or still-buffered) partition —
    /// its first-result-wins twin already completed elsewhere. Workers
    /// that predate this frame skip-and-warn it; their late report is
    /// absorbed by the server's stale-sequence dedup.
    CancelTask {
        /// Job whose partition is withdrawn.
        job: JobId,
        /// Ship sequence number of the withdrawn partition.
        seq: u64,
    },
    /// Either direction: orderly connection shutdown.
    Shutdown,
}

mod tag {
    pub const REGISTER: u8 = 1;
    pub const REGISTER_ACK: u8 = 2;
    pub const BW_PROBE: u8 = 3;
    pub const BW_REPORT: u8 = 4;
    pub const SHIP_EXE: u8 = 5;
    pub const SHIP_INPUT: u8 = 6;
    pub const TASK_COMPLETE: u8 = 7;
    pub const TASK_FAILED: u8 = 8;
    pub const KEEPALIVE: u8 = 9;
    pub const KEEPALIVE_ACK: u8 = 10;
    pub const PLUGGED: u8 = 11;
    pub const UNPLUGGED: u8 = 12;
    pub const SHUTDOWN: u8 = 13;
    pub const CANCEL_TASK: u8 = 14;
}

fn radio_to_u8(r: RadioTech) -> u8 {
    match r {
        RadioTech::Wifi80211a => 0,
        RadioTech::Wifi80211g => 1,
        RadioTech::Edge => 2,
        RadioTech::ThreeG => 3,
        RadioTech::FourG => 4,
    }
}

fn radio_from_u8(v: u8) -> CwcResult<RadioTech> {
    Ok(match v {
        0 => RadioTech::Wifi80211a,
        1 => RadioTech::Wifi80211g,
        2 => RadioTech::Edge,
        3 => RadioTech::ThreeG,
        4 => RadioTech::FourG,
        other => return Err(CwcError::Protocol(format!("bad radio tag {other}"))),
    })
}

fn put_string(buf: &mut BytesMut, s: &str) {
    let bytes = s.as_bytes();
    assert!(bytes.len() <= u16::MAX as usize, "string too long for wire");
    buf.put_u16(bytes.len() as u16);
    buf.put_slice(bytes);
}

fn put_blob(buf: &mut BytesMut, b: &[u8]) {
    assert!(b.len() <= u32::MAX as usize);
    buf.put_u32(b.len() as u32);
    buf.put_slice(b);
}

/// Bounds-checked primitive readers over the body buffer.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// The one primitive every reader goes through: consume exactly `n`
    /// bytes or fail. Built on `slice::get`, so a truncated or hostile
    /// frame yields a protocol error, never a panic.
    fn take(&mut self, n: usize) -> CwcResult<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or_else(|| CwcError::Protocol(format!("length overflow at offset {}", self.pos)))?;
        match self.buf.get(self.pos..end) {
            Some(slice) => {
                self.pos = end;
                Ok(slice)
            }
            None => Err(CwcError::Protocol(format!(
                "truncated frame: need {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len()
            ))),
        }
    }

    /// Fixed-size read. `copy_from_slice` is infallible here: `take`
    /// returned exactly `N` bytes.
    fn array<const N: usize>(&mut self) -> CwcResult<[u8; N]> {
        let slice = self.take(N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(slice);
        Ok(out)
    }

    fn u8(&mut self) -> CwcResult<u8> {
        self.array::<1>().map(|[b]| b)
    }

    fn u16(&mut self) -> CwcResult<u16> {
        self.array().map(u16::from_be_bytes)
    }

    fn u32(&mut self) -> CwcResult<u32> {
        self.array().map(u32::from_be_bytes)
    }

    fn u64(&mut self) -> CwcResult<u64> {
        self.array().map(u64::from_be_bytes)
    }

    fn f64(&mut self) -> CwcResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn string(&mut self) -> CwcResult<String> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        Ok(std::str::from_utf8(bytes)
            .map_err(|e| CwcError::Protocol(format!("invalid UTF-8 in frame: {e}")))?
            .to_owned())
    }

    fn blob(&mut self) -> CwcResult<Bytes> {
        let len = self.u32()? as usize;
        Ok(Bytes::copy_from_slice(self.take(len)?))
    }

    fn finish(self) -> CwcResult<()> {
        if self.pos != self.buf.len() {
            Err(CwcError::Protocol(format!(
                "{} trailing bytes after frame payload",
                self.buf.len() - self.pos
            )))
        } else {
            Ok(())
        }
    }
}

impl Frame {
    /// Encodes the frame (with its length prefix) into `out`.
    pub fn encode(&self, out: &mut BytesMut) {
        let mut body = BytesMut::with_capacity(32);
        match self {
            Frame::Register {
                phone,
                clock_mhz,
                cores,
                radio,
                ram_kb,
            } => {
                body.put_u8(tag::REGISTER);
                body.put_u32(phone.0);
                body.put_u32(*clock_mhz);
                body.put_u32(*cores);
                body.put_u8(radio_to_u8(*radio));
                body.put_u64(*ram_kb);
            }
            Frame::RegisterAck { server_time_us } => {
                body.put_u8(tag::REGISTER_ACK);
                body.put_u64(*server_time_us);
            }
            Frame::BandwidthProbe {
                probe_id,
                payload_kb,
            } => {
                body.put_u8(tag::BW_PROBE);
                body.put_u32(*probe_id);
                body.put_u32(*payload_kb);
            }
            Frame::BandwidthReport {
                probe_id,
                kb_per_sec,
            } => {
                body.put_u8(tag::BW_REPORT);
                body.put_u32(*probe_id);
                body.put_u64(kb_per_sec.to_bits());
            }
            Frame::ShipExecutable {
                job,
                program,
                exe_kb,
            } => {
                body.put_u8(tag::SHIP_EXE);
                body.put_u32(job.0);
                put_string(&mut body, program);
                body.put_u64(*exe_kb);
            }
            Frame::ShipInput {
                job,
                seq,
                offset_kb,
                len_kb,
                resume_from,
                trace_id,
                span_id,
                parent_span,
                replica,
                data,
            } => {
                body.put_u8(tag::SHIP_INPUT);
                body.put_u32(job.0);
                body.put_u64(*seq);
                body.put_u64(*offset_kb);
                body.put_u64(*len_kb);
                match resume_from {
                    Some(state) => {
                        body.put_u8(1);
                        put_blob(&mut body, state);
                    }
                    None => body.put_u8(0),
                }
                body.put_u64(*trace_id);
                body.put_u64(*span_id);
                body.put_u64(*parent_span);
                body.put_u8(u8::from(*replica));
                put_blob(&mut body, data);
            }
            Frame::TaskComplete {
                job,
                seq,
                exec_ms,
                result,
            } => {
                body.put_u8(tag::TASK_COMPLETE);
                body.put_u32(job.0);
                body.put_u64(*seq);
                body.put_u64(*exec_ms);
                put_blob(&mut body, result);
            }
            Frame::TaskFailed {
                job,
                seq,
                processed_kb,
                checkpoint,
            } => {
                body.put_u8(tag::TASK_FAILED);
                body.put_u32(job.0);
                body.put_u64(*seq);
                body.put_u64(*processed_kb);
                put_blob(&mut body, checkpoint);
            }
            Frame::KeepAlive { seq } => {
                body.put_u8(tag::KEEPALIVE);
                body.put_u64(*seq);
            }
            Frame::KeepAliveAck { seq } => {
                body.put_u8(tag::KEEPALIVE_ACK);
                body.put_u64(*seq);
            }
            Frame::Plugged => body.put_u8(tag::PLUGGED),
            Frame::Unplugged => body.put_u8(tag::UNPLUGGED),
            Frame::CancelTask { job, seq } => {
                body.put_u8(tag::CANCEL_TASK);
                body.put_u32(job.0);
                body.put_u64(*seq);
            }
            Frame::Shutdown => body.put_u8(tag::SHUTDOWN),
        }
        out.put_u32(body.len() as u32);
        out.put_u32(crc32(&body));
        out.put_slice(&body);
    }

    /// Decodes one frame body (without the length prefix).
    fn decode_body(body: &[u8]) -> CwcResult<Frame> {
        let mut r = Reader::new(body);
        let t = r.u8()?;
        let frame = match t {
            tag::REGISTER => Frame::Register {
                phone: PhoneId(r.u32()?),
                clock_mhz: r.u32()?,
                cores: r.u32()?,
                radio: radio_from_u8(r.u8()?)?,
                ram_kb: r.u64()?,
            },
            tag::REGISTER_ACK => Frame::RegisterAck {
                server_time_us: r.u64()?,
            },
            tag::BW_PROBE => Frame::BandwidthProbe {
                probe_id: r.u32()?,
                payload_kb: r.u32()?,
            },
            tag::BW_REPORT => Frame::BandwidthReport {
                probe_id: r.u32()?,
                kb_per_sec: r.f64()?,
            },
            tag::SHIP_EXE => Frame::ShipExecutable {
                job: JobId(r.u32()?),
                program: r.string()?,
                exe_kb: r.u64()?,
            },
            tag::SHIP_INPUT => {
                let job = JobId(r.u32()?);
                let seq = r.u64()?;
                let offset_kb = r.u64()?;
                let len_kb = r.u64()?;
                let resume_from = match r.u8()? {
                    0 => None,
                    1 => Some(r.blob()?),
                    other => {
                        return Err(CwcError::Protocol(format!(
                            "bad option discriminant {other}"
                        )))
                    }
                };
                let trace_id = r.u64()?;
                let span_id = r.u64()?;
                let parent_span = r.u64()?;
                let replica = match r.u8()? {
                    0 => false,
                    1 => true,
                    other => {
                        return Err(CwcError::Protocol(format!(
                            "bad replica discriminant {other}"
                        )))
                    }
                };
                let data = r.blob()?;
                Frame::ShipInput {
                    job,
                    seq,
                    offset_kb,
                    len_kb,
                    resume_from,
                    trace_id,
                    span_id,
                    parent_span,
                    replica,
                    data,
                }
            }
            tag::TASK_COMPLETE => Frame::TaskComplete {
                job: JobId(r.u32()?),
                seq: r.u64()?,
                exec_ms: r.u64()?,
                result: r.blob()?,
            },
            tag::TASK_FAILED => Frame::TaskFailed {
                job: JobId(r.u32()?),
                seq: r.u64()?,
                processed_kb: r.u64()?,
                checkpoint: r.blob()?,
            },
            tag::KEEPALIVE => Frame::KeepAlive { seq: r.u64()? },
            tag::KEEPALIVE_ACK => Frame::KeepAliveAck { seq: r.u64()? },
            tag::PLUGGED => Frame::Plugged,
            tag::UNPLUGGED => Frame::Unplugged,
            tag::CANCEL_TASK => Frame::CancelTask {
                job: JobId(r.u32()?),
                seq: r.u64()?,
            },
            tag::SHUTDOWN => Frame::Shutdown,
            other => return Err(CwcError::Protocol(format!("unknown frame tag {other}"))),
        };
        r.finish()?;
        Ok(frame)
    }
}

/// Incremental decoder over a growing byte buffer.
///
/// Feed raw socket bytes with [`FrameCodec::extend`]; pull complete frames
/// with [`FrameCodec::next_frame`] until it returns `Ok(None)` (incomplete
/// tail remains buffered).
///
/// Frames whose CRC32 does not match their body are *skipped whole* rather
/// than surfaced as errors: the length prefix keeps the stream framed, the
/// rejection lands on [`FrameCodec::crc_rejections`], and the sender's
/// message simply never arrives — the same failure mode as a dropped
/// frame, which the coordination layer above already recovers from. Only
/// structural damage (a corrupt length prefix, a post-CRC malformed body)
/// is an error, because framing itself is then lost.
#[derive(Debug, Default)]
pub struct FrameCodec {
    buf: BytesMut,
    crc_rejected: u64,
}

impl FrameCodec {
    /// Creates an empty codec.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends newly received bytes.
    pub fn extend(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Bytes currently buffered but not yet decoded.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// How many complete frames were rejected (and skipped) because their
    /// CRC32 did not match the received body.
    pub fn crc_rejections(&self) -> u64 {
        self.crc_rejected
    }

    /// Attempts to decode the next complete, integrity-checked frame.
    pub fn next_frame(&mut self) -> CwcResult<Option<Frame>> {
        loop {
            if self.buf.len() < FRAME_HEADER_LEN {
                return Ok(None);
            }
            let (Some(len), Some(want_crc)) = (be_u32_at(&self.buf, 0), be_u32_at(&self.buf, 4))
            else {
                // Unreachable given the header-length check above, but a
                // missing header must never be able to panic the codec.
                return Ok(None);
            };
            let len = len as usize;
            if len == 0 || len > MAX_FRAME_LEN {
                return Err(CwcError::Protocol(format!("bad frame length {len}")));
            }
            if self.buf.len() < FRAME_HEADER_LEN + len {
                return Ok(None);
            }
            self.buf.advance(FRAME_HEADER_LEN);
            let body = self.buf.split_to(len);
            if crc32(&body) != want_crc {
                self.crc_rejected += 1;
                continue; // reject the corrupt frame; framing survives
            }
            return Frame::decode_body(&body).map(Some);
        }
    }
}

/// Big-endian u32 at byte offset `at`, or `None` past the end.
/// `copy_from_slice` is infallible here: `get` returned exactly 4 bytes.
fn be_u32_at(buf: &[u8], at: usize) -> Option<u32> {
    let slice = buf.get(at..at.checked_add(4)?)?;
    let mut b = [0u8; 4];
    b.copy_from_slice(slice);
    Some(u32::from_be_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Wraps a hand-built body in correct framing (length + CRC), so tests
    /// can target *decode* failures rather than tripping the CRC gate.
    fn raw_frame(body: &[u8]) -> Vec<u8> {
        let mut raw = Vec::with_capacity(FRAME_HEADER_LEN + body.len());
        raw.extend_from_slice(&(body.len() as u32).to_be_bytes());
        raw.extend_from_slice(&crc32(body).to_be_bytes());
        raw.extend_from_slice(body);
        raw
    }

    fn round_trip(f: &Frame) -> Frame {
        let mut buf = BytesMut::new();
        f.encode(&mut buf);
        let mut codec = FrameCodec::new();
        codec.extend(&buf);
        let out = codec.next_frame().expect("decode ok").expect("complete");
        assert_eq!(codec.buffered(), 0, "no leftovers");
        out
    }

    #[test]
    fn round_trips_all_variants() {
        let frames = vec![
            Frame::Register {
                phone: PhoneId(3),
                clock_mhz: 1200,
                cores: 2,
                radio: RadioTech::ThreeG,
                ram_kb: 1_048_576,
            },
            Frame::RegisterAck { server_time_us: 42 },
            Frame::BandwidthProbe {
                probe_id: 7,
                payload_kb: 256,
            },
            Frame::BandwidthReport {
                probe_id: 7,
                kb_per_sec: 812.75,
            },
            Frame::ShipExecutable {
                job: JobId(9),
                program: "wordcount".into(),
                exe_kb: 30,
            },
            Frame::ShipInput {
                job: JobId(9),
                seq: 11,
                offset_kb: 100,
                len_kb: 500,
                resume_from: None,
                trace_id: 9,
                span_id: 4,
                parent_span: 0,
                replica: false,
                data: Bytes::new(),
            },
            Frame::ShipInput {
                job: JobId(9),
                seq: 12,
                offset_kb: 0,
                len_kb: 250,
                resume_from: Some(Bytes::from_static(b"state")),
                trace_id: 9,
                span_id: 7,
                parent_span: 4,
                replica: true,
                data: Bytes::from_static(b"payload bytes"),
            },
            Frame::TaskComplete {
                job: JobId(9),
                seq: 11,
                exec_ms: 1234,
                result: Bytes::from_static(b"42"),
            },
            Frame::TaskFailed {
                job: JobId(9),
                seq: 12,
                processed_kb: 77,
                checkpoint: Bytes::from_static(b"ckpt"),
            },
            Frame::KeepAlive { seq: 1 },
            Frame::KeepAliveAck { seq: 1 },
            Frame::Plugged,
            Frame::Unplugged,
            Frame::CancelTask {
                job: JobId(9),
                seq: 12,
            },
            Frame::Shutdown,
        ];
        for f in &frames {
            assert_eq!(&round_trip(f), f);
        }
    }

    #[test]
    fn streaming_decode_across_fragment_boundaries() {
        let mut wire = BytesMut::new();
        let a = Frame::KeepAlive { seq: 5 };
        let b = Frame::TaskComplete {
            job: JobId(1),
            seq: 3,
            exec_ms: 10,
            result: Bytes::from_static(b"abcdef"),
        };
        a.encode(&mut wire);
        b.encode(&mut wire);

        // Feed a byte at a time; frames must pop exactly when complete.
        let mut codec = FrameCodec::new();
        let mut decoded = Vec::new();
        for byte in wire.iter() {
            codec.extend(std::slice::from_ref(byte));
            while let Some(f) = codec.next_frame().unwrap() {
                decoded.push(f);
            }
        }
        assert_eq!(decoded, vec![a, b]);
    }

    #[test]
    fn two_frames_in_one_read() {
        let mut wire = BytesMut::new();
        Frame::Plugged.encode(&mut wire);
        Frame::Unplugged.encode(&mut wire);
        let mut codec = FrameCodec::new();
        codec.extend(&wire);
        assert_eq!(codec.next_frame().unwrap(), Some(Frame::Plugged));
        assert_eq!(codec.next_frame().unwrap(), Some(Frame::Unplugged));
        assert_eq!(codec.next_frame().unwrap(), None);
    }

    #[test]
    fn rejects_unknown_tag() {
        let mut codec = FrameCodec::new();
        codec.extend(&raw_frame(&[200]));
        assert!(codec.next_frame().is_err());
    }

    #[test]
    fn rejects_zero_and_huge_lengths() {
        let mut codec = FrameCodec::new();
        codec.extend(&[0, 0, 0, 0, 0, 0, 0, 0]);
        assert!(codec.next_frame().is_err());

        let mut codec = FrameCodec::new();
        codec.extend(&[0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0]);
        assert!(codec.next_frame().is_err());
    }

    #[test]
    fn rejects_trailing_garbage_inside_frame() {
        // A KeepAlive body with an extra junk byte, reframed with a correct
        // CRC so the failure is the decoder's, not the integrity gate's.
        let mut wire = BytesMut::new();
        Frame::KeepAlive { seq: 1 }.encode(&mut wire);
        let mut body = wire[FRAME_HEADER_LEN..].to_vec();
        body.push(0xAB);
        let mut codec = FrameCodec::new();
        codec.extend(&raw_frame(&body));
        assert!(codec.next_frame().is_err());
    }

    #[test]
    fn rejects_truncated_string() {
        // ShipExecutable with a string length pointing past the body.
        let mut body = BytesMut::new();
        body.put_u8(5); // SHIP_EXE
        body.put_u32(1);
        body.put_u16(100); // claims 100 bytes
        body.put_slice(b"abc"); // provides 3
        let mut codec = FrameCodec::new();
        codec.extend(&raw_frame(&body));
        assert!(codec.next_frame().is_err());
    }

    #[test]
    fn rejects_bad_radio_and_bad_option() {
        let mut body = BytesMut::new();
        body.put_u8(1); // REGISTER
        body.put_u32(0);
        body.put_u32(1000);
        body.put_u32(2);
        body.put_u8(99); // bad radio
        body.put_u64(0);
        let mut codec = FrameCodec::new();
        codec.extend(&raw_frame(&body));
        assert!(codec.next_frame().is_err());
    }

    #[test]
    fn corrupt_frame_is_skipped_and_framing_survives() {
        // Three frames; flip one payload bit in the middle one. The codec
        // must reject exactly that frame and still decode its neighbors.
        let mut wire = BytesMut::new();
        Frame::KeepAlive { seq: 1 }.encode(&mut wire);
        let corrupt_at = wire.len() + FRAME_HEADER_LEN + 2; // inside frame 2's body
        Frame::KeepAlive { seq: 2 }.encode(&mut wire);
        Frame::KeepAlive { seq: 3 }.encode(&mut wire);
        let mut raw = wire.to_vec();
        raw[corrupt_at] ^= 0x10;

        let mut codec = FrameCodec::new();
        codec.extend(&raw);
        assert_eq!(
            codec.next_frame().unwrap(),
            Some(Frame::KeepAlive { seq: 1 })
        );
        // The corrupt frame 2 is skipped transparently; frame 3 comes next.
        assert_eq!(
            codec.next_frame().unwrap(),
            Some(Frame::KeepAlive { seq: 3 })
        );
        assert_eq!(codec.next_frame().unwrap(), None);
        assert_eq!(codec.crc_rejections(), 1);
    }

    #[test]
    fn crc_catches_single_bit_flips_anywhere_in_body() {
        let mut wire = BytesMut::new();
        Frame::TaskComplete {
            job: JobId(4),
            seq: 9,
            exec_ms: 123,
            result: Bytes::from_static(b"result bytes"),
        }
        .encode(&mut wire);
        let clean = wire.to_vec();
        for byte in FRAME_HEADER_LEN..clean.len() {
            for bit in 0..8 {
                let mut raw = clean.clone();
                raw[byte] ^= 1 << bit;
                let mut codec = FrameCodec::new();
                codec.extend(&raw);
                assert_eq!(
                    codec.next_frame().unwrap(),
                    None,
                    "flip at byte {byte} bit {bit} must be rejected"
                );
                assert_eq!(codec.crc_rejections(), 1);
            }
        }
    }

    #[test]
    fn crc32_reference_vector() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn handshake_tags_are_classified() {
        assert!(is_handshake_tag(tag::REGISTER));
        assert!(is_handshake_tag(tag::BW_REPORT));
        assert!(is_handshake_tag(tag::SHUTDOWN));
        assert!(!is_handshake_tag(tag::SHIP_INPUT));
        assert!(!is_handshake_tag(tag::TASK_COMPLETE));
        assert!(!is_handshake_tag(tag::KEEPALIVE));
    }

    #[test]
    fn keepalive_constants_match_prototype() {
        assert_eq!(KEEPALIVE_PERIOD.as_secs_f64(), 30.0);
        assert_eq!(KEEPALIVE_TOLERATED_MISSES, 3);
    }
}
