//! Blocking framed-TCP transport for the live deployment mode.
//!
//! The paper's prototype keeps a persistent TCP connection per phone
//! (Java NIO on the server, `SO_KEEPALIVE` plus application-layer
//! keep-alives). This transport is its Rust analogue for the loopback
//! cluster example: one [`FramedTcp`] per phone connection, blocking sends,
//! and receives with an optional timeout so the caller can multiplex
//! keep-alive bookkeeping with data handling.
//!
//! `std::net` does not expose `SO_KEEPALIVE` portably; CWC's own
//! application-layer keep-alives ([`crate::protocol::KEEPALIVE_PERIOD`])
//! are the load-bearing liveness mechanism anyway — exactly as in the
//! paper, where they double as the offline-failure detector.

use crate::fault::{SendVerdict, WireFault, WireOp};
use crate::protocol::{Frame, FrameCodec};
use bytes::BytesMut;
use cwc_types::{CwcError, CwcResult};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A frame-oriented wrapper over a blocking [`TcpStream`].
pub struct FramedTcp {
    stream: TcpStream,
    codec: FrameCodec,
    scratch: Vec<u8>,
    fault: Option<Box<dyn WireFault>>,
}

impl std::fmt::Debug for FramedTcp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FramedTcp")
            .field("stream", &self.stream)
            .field("buffered", &self.codec.buffered())
            .field("fault", &self.fault.is_some())
            .finish()
    }
}

impl FramedTcp {
    /// Connects to a listening CWC endpoint.
    pub fn connect(addr: impl ToSocketAddrs) -> CwcResult<Self> {
        let stream =
            TcpStream::connect(addr).map_err(|e| CwcError::Transport(format!("connect: {e}")))?;
        Self::from_stream(stream)
    }

    /// Wraps an accepted stream.
    pub fn from_stream(stream: TcpStream) -> CwcResult<Self> {
        // Frames are small and latency-sensitive (keep-alives, completion
        // reports); Nagle would add nothing but delay.
        stream
            .set_nodelay(true)
            .map_err(|e| CwcError::Transport(format!("set_nodelay: {e}")))?;
        Ok(FramedTcp {
            stream,
            codec: FrameCodec::new(),
            scratch: vec![0u8; 64 * 1024],
            fault: None,
        })
    }

    /// Installs (or clears) a fault-injection hook on the send path. With a
    /// hook installed, every outbound frame is routed through
    /// [`WireFault::on_send`] and the verdict decides what hits the socket.
    pub fn set_fault(&mut self, fault: Option<Box<dyn WireFault>>) {
        self.fault = fault;
    }

    /// How many inbound frames this connection's codec has rejected on CRC.
    pub fn crc_rejections(&self) -> u64 {
        self.codec.crc_rejections()
    }

    /// Peer address, for diagnostics.
    pub fn peer_addr(&self) -> CwcResult<SocketAddr> {
        self.stream
            .peer_addr()
            .map_err(|e| CwcError::Transport(format!("peer_addr: {e}")))
    }

    /// Sends one frame, blocking until fully written.
    ///
    /// With a [`WireFault`] installed the frame may instead be dropped,
    /// duplicated, mutated, delayed, partially written, or turned into a
    /// transport error — that's the fault-injection surface the chaos
    /// harness drives.
    pub fn send(&mut self, frame: &Frame) -> CwcResult<()> {
        let mut buf = BytesMut::with_capacity(64);
        frame.encode(&mut buf);
        let Some(fault) = self.fault.as_mut() else {
            return self
                .stream
                .write_all(&buf)
                .map_err(|e| CwcError::Transport(format!("send: {e}")));
        };
        match fault.on_send(&buf) {
            SendVerdict::Deliver(ops) => {
                for op in ops {
                    match op {
                        WireOp::Write(bytes) => self
                            .stream
                            .write_all(&bytes)
                            .map_err(|e| CwcError::Transport(format!("send: {e}")))?,
                        WireOp::Sleep(d) => std::thread::sleep(d),
                    }
                }
                Ok(())
            }
            SendVerdict::Fail(why) => {
                Err(CwcError::Transport(format!("injected send failure: {why}")))
            }
            SendVerdict::ResetAfter(prefix) => {
                // Fault injection: simulate a connection dying mid-frame.
                // The write and shutdown failing IS the scenario under
                // test; the injected error below is the only one reported.
                let _ = self.stream.write_all(&prefix); // cwc-lint: allow(error_swallowing)
                let _ = self.stream.shutdown(std::net::Shutdown::Both); // cwc-lint: allow(error_swallowing)
                Err(CwcError::Transport("injected connection reset".into()))
            }
        }
    }

    /// Receives the next frame, blocking indefinitely.
    pub fn recv(&mut self) -> CwcResult<Frame> {
        self.stream
            .set_read_timeout(None)
            .map_err(|e| CwcError::Transport(format!("set_read_timeout: {e}")))?;
        loop {
            if let Some(frame) = self.codec.next_frame()? {
                return Ok(frame);
            }
            self.fill()?;
        }
    }

    /// Receives the next frame, waiting at most `timeout`.
    ///
    /// Returns `Ok(None)` on timeout. A closed connection is an error —
    /// for CWC a vanished phone is a failure event, never business as
    /// usual.
    pub fn recv_timeout(&mut self, timeout: Duration) -> CwcResult<Option<Frame>> {
        if let Some(frame) = self.codec.next_frame()? {
            return Ok(Some(frame));
        }
        self.stream
            .set_read_timeout(Some(timeout.max(Duration::from_millis(1))))
            .map_err(|e| CwcError::Transport(format!("set_read_timeout: {e}")))?;
        match self.fill() {
            Ok(()) => self.codec.next_frame(),
            Err(CwcError::Transport(msg)) if msg == "timeout" => Ok(None),
            Err(other) => Err(other),
        }
    }

    /// Reads at least one byte into the codec.
    fn fill(&mut self) -> CwcResult<()> {
        match self.stream.read(&mut self.scratch) {
            Ok(0) => Err(CwcError::Transport("connection closed by peer".into())),
            Ok(n) => {
                // `read` contracts n <= scratch.len(); .get() keeps a
                // misbehaving Read impl from panicking us.
                self.codec
                    .extend(self.scratch.get(..n).unwrap_or(&self.scratch));
                Ok(())
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                Err(CwcError::Transport("timeout".into()))
            }
            Err(e) => Err(CwcError::Transport(format!("read: {e}"))),
        }
    }

    /// Shuts down the write half, signalling an orderly goodbye.
    pub fn shutdown(&self) -> CwcResult<()> {
        self.stream
            .shutdown(std::net::Shutdown::Both)
            .map_err(|e| CwcError::Transport(format!("shutdown: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use cwc_types::JobId;
    use std::net::TcpListener;
    use std::thread;

    fn pair() -> (FramedTcp, FramedTcp) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let join = thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            FramedTcp::from_stream(stream).unwrap()
        });
        let client = FramedTcp::connect(addr).unwrap();
        let server = join.join().unwrap();
        (client, server)
    }

    #[test]
    fn frames_cross_a_real_socket() {
        let (mut client, mut server) = pair();
        client.send(&Frame::KeepAlive { seq: 1 }).unwrap();
        client
            .send(&Frame::TaskComplete {
                job: JobId(4),
                seq: 1,
                exec_ms: 250,
                result: Bytes::from_static(b"partial"),
            })
            .unwrap();
        assert_eq!(server.recv().unwrap(), Frame::KeepAlive { seq: 1 });
        match server.recv().unwrap() {
            Frame::TaskComplete {
                job,
                exec_ms,
                result,
                ..
            } => {
                assert_eq!(job, JobId(4));
                assert_eq!(exec_ms, 250);
                assert_eq!(&result[..], b"partial");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn injected_drop_swallows_the_frame() {
        use crate::fault::SendVerdict;
        let (mut client, mut server) = pair();
        client.set_fault(Some(Box::new(|_: &[u8]| SendVerdict::Deliver(vec![]))));
        client.send(&Frame::Plugged).unwrap(); // "succeeds", delivers nothing
        client.set_fault(None);
        client.send(&Frame::Unplugged).unwrap();
        assert_eq!(server.recv().unwrap(), Frame::Unplugged);
    }

    #[test]
    fn injected_failure_is_a_transport_error() {
        use crate::fault::SendVerdict;
        let (mut client, _server) = pair();
        client.set_fault(Some(Box::new(|_: &[u8]| SendVerdict::Fail("flaky".into()))));
        let err = client.send(&Frame::Plugged).unwrap_err();
        assert!(err.to_string().contains("injected send failure"));
    }

    #[test]
    fn injected_reset_tears_the_connection_down() {
        use crate::fault::SendVerdict;
        let (mut client, mut server) = pair();
        client.set_fault(Some(Box::new(|encoded: &[u8]| {
            SendVerdict::ResetAfter(encoded[..3].to_vec())
        })));
        assert!(client.send(&Frame::Plugged).is_err());
        // The server sees a truncated stream then EOF: an error, no frame.
        assert!(server.recv().is_err());
    }

    #[test]
    fn recv_timeout_returns_none_when_idle() {
        let (_client, mut server) = pair();
        let got = server.recv_timeout(Duration::from_millis(50)).unwrap();
        assert!(got.is_none());
    }

    #[test]
    fn recv_timeout_returns_frame_when_available() {
        let (mut client, mut server) = pair();
        client.send(&Frame::Plugged).unwrap();
        // Allow the kernel to deliver.
        let mut got = None;
        for _ in 0..100 {
            if let Some(f) = server.recv_timeout(Duration::from_millis(20)).unwrap() {
                got = Some(f);
                break;
            }
        }
        assert_eq!(got, Some(Frame::Plugged));
    }

    #[test]
    fn closed_peer_is_an_error() {
        let (client, mut server) = pair();
        client.shutdown().unwrap();
        drop(client);
        let err = server.recv();
        assert!(err.is_err(), "expected error, got {err:?}");
    }

    #[test]
    fn bidirectional_exchange() {
        let (mut client, mut server) = pair();
        client
            .send(&Frame::Register {
                phone: cwc_types::PhoneId(1),
                clock_mhz: 1200,
                cores: 2,
                radio: cwc_types::RadioTech::FourG,
                ram_kb: 1 << 20,
            })
            .unwrap();
        match server.recv().unwrap() {
            Frame::Register { phone, .. } => assert_eq!(phone, cwc_types::PhoneId(1)),
            other => panic!("unexpected {other:?}"),
        }
        server
            .send(&Frame::RegisterAck { server_time_us: 7 })
            .unwrap();
        assert_eq!(
            client.recv().unwrap(),
            Frame::RegisterAck { server_time_us: 7 }
        );
    }
}
