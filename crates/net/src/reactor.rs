//! Readiness-based event-loop substrate: a dependency-light epoll wrapper,
//! non-blocking framed connections, and a deadline-ordered timer wheel.
//!
//! The blocking transports ([`crate::tcp::FramedTcp`], [`crate::mux`]) cap a
//! fleet at OS-thread scale — one parked thread per phone. This module is the
//! single-threaded alternative (DESIGN.md §14): a [`Poller`] multiplexes
//! readiness for thousands of sockets from one thread, each connection is a
//! [`Conn`] holding the streaming [`crate::protocol::FrameCodec`] plus an
//! ordered outbound write queue with explicit backpressure accounting, and a
//! [`TimerWheel`] keeps every deadline (keep-alives, retries, paced writes) in
//! one deterministic earliest-first order.
//!
//! Division of labour: this module owns *readiness and buffering only*. It
//! never reads a clock, never sleeps, and never spawns — time enters as
//! explicit [`Micros`]/[`Duration`] arguments, and pacing is expressed as
//! [`Conn::queue_pause`] markers that the caller converts into wheel timers.
//! That keeps the reactor testable at the same sans-IO standard as the
//! coordinator kernel (`cwc-lint`'s `sans_io` rule holds this file to the
//! reduced token set: no threads, no wall clocks).
//!
//! The syscall surface is deliberately tiny — `epoll_create1` / `epoll_ctl` /
//! `epoll_wait` / `close`, declared directly against the C library the Rust
//! standard library already links (no new dependency). Level-triggered mode
//! is used throughout: a socket with unread bytes or writable space keeps
//! reporting ready, so a capped drain per tick (bounding worst-case loop
//! latency) never loses an edge. The shim is Linux-only; other platforms
//! would add a kqueue/poll variant behind the same [`Poller`] API.

use crate::protocol::{Frame, FrameCodec};
use cwc_types::{CwcError, CwcResult, Micros};
use std::collections::{BTreeMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

/// The raw syscall shim. All `unsafe` in `cwc-net` lives inside this module:
/// four libc entry points and two structs with the kernel's ABI. Everything
/// above it is safe Rust.
#[allow(unsafe_code)]
#[cfg(target_os = "linux")]
mod sys {
    use std::os::raw::c_int;

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    /// `struct epoll_event` — packed only on x86-64, exactly as the kernel
    /// uapi (and libc) define it: other architectures use natural alignment,
    /// so a 12-byte packed stride there would corrupt the `epoll_wait` buffer.
    /// Fields are read by value only, never by reference.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    pub const RLIMIT_NOFILE: c_int = 7;

    /// `struct rlimit` on 64-bit Linux.
    #[repr(C)]
    pub struct Rlimit {
        pub cur: u64,
        pub max: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
        fn getrlimit(resource: c_int, rlim: *mut Rlimit) -> c_int;
        fn setrlimit(resource: c_int, rlim: *const Rlimit) -> c_int;
    }

    pub fn create() -> std::io::Result<c_int> {
        // SAFETY: no pointers involved; the return value is checked.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(fd)
    }

    pub fn ctl(epfd: c_int, op: c_int, fd: c_int, events: u32, data: u64) -> std::io::Result<()> {
        let mut ev = EpollEvent { events, data };
        let ptr = if op == EPOLL_CTL_DEL {
            std::ptr::null_mut()
        } else {
            &mut ev as *mut EpollEvent
        };
        // SAFETY: `ev` outlives the call; a null event is only passed for
        // DEL, where the kernel ignores it.
        if unsafe { epoll_ctl(epfd, op, fd, ptr) } < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(())
    }

    pub fn wait(epfd: c_int, buf: &mut [EpollEvent], timeout_ms: c_int) -> std::io::Result<usize> {
        let cap = c_int::try_from(buf.len()).unwrap_or(c_int::MAX).max(1);
        // SAFETY: the buffer pointer and capacity describe `buf` exactly; the
        // kernel writes at most `cap` entries.
        let n = unsafe { epoll_wait(epfd, buf.as_mut_ptr(), cap, timeout_ms) };
        if n < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(n as usize)
    }

    pub fn close_fd(fd: c_int) {
        // SAFETY: callers pass an fd they own exactly once (Poller::drop).
        let _ = unsafe { close(fd) }; // cwc-lint: allow(error_swallowing)
    }

    pub fn nofile_limits() -> std::io::Result<(u64, u64)> {
        let mut rl = Rlimit { cur: 0, max: 0 };
        // SAFETY: `rl` outlives the call and matches the C struct layout.
        if unsafe { getrlimit(RLIMIT_NOFILE, &mut rl as *mut Rlimit) } < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok((rl.cur, rl.max))
    }

    pub fn set_nofile_soft(cur: u64, max: u64) -> std::io::Result<()> {
        let rl = Rlimit { cur, max };
        // SAFETY: `rl` outlives the call and matches the C struct layout.
        if unsafe { setrlimit(RLIMIT_NOFILE, &rl as *const Rlimit) } < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(())
    }
}

#[cfg(not(target_os = "linux"))]
compile_error!(
    "cwc-net's reactor currently ships only the Linux epoll shim; \
     add a kqueue/poll variant in reactor::sys for this platform"
);

/// Retries `op` for as long as it fails with `EINTR` — the signal-interrupted
/// syscall case every readiness loop must absorb rather than surface.
pub fn retry_eintr<T>(mut op: impl FnMut() -> std::io::Result<T>) -> std::io::Result<T> {
    loop {
        match op() {
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            other => return other,
        }
    }
}

/// Which readiness classes a registration asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd has bytes (or a pending accept) to read.
    pub readable: bool,
    /// Wake when the fd has socket-buffer space to write into.
    pub writable: bool,
}

impl Interest {
    /// Read-readiness only — the steady state of an idle connection.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };

    /// Read plus write readiness — while a write queue has pending bytes.
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };

    fn flags(self) -> u32 {
        let mut f = sys::EPOLLRDHUP;
        if self.readable {
            f |= sys::EPOLLIN;
        }
        if self.writable {
            f |= sys::EPOLLOUT;
        }
        f
    }
}

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct PollEvent {
    /// The caller-chosen registration token.
    pub token: u64,
    /// The fd is readable (data, pending accept, or EOF).
    pub readable: bool,
    /// The fd is writable.
    pub writable: bool,
    /// The peer hung up or the socket errored; a read will surface the
    /// specific condition.
    pub hangup: bool,
}

/// Default number of readiness events drained per [`Poller::wait`] call.
const WAIT_BATCH: usize = 1024;

/// A level-triggered epoll instance: register fds with a token, wait for
/// readiness. One `Poller` serves an entire fleet from one thread.
pub struct Poller {
    fd: std::os::raw::c_int,
    buf: Vec<sys::EpollEvent>,
}

impl std::fmt::Debug for Poller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Poller").field("fd", &self.fd).finish()
    }
}

impl Poller {
    /// A fresh epoll instance (close-on-exec).
    pub fn new() -> CwcResult<Self> {
        let fd = sys::create().map_err(|e| CwcError::Transport(format!("epoll_create1: {e}")))?;
        Ok(Poller {
            fd,
            buf: vec![sys::EpollEvent { events: 0, data: 0 }; WAIT_BATCH],
        })
    }

    /// Registers `fd` under `token` with the given interest.
    pub fn register(&self, fd: i32, token: u64, interest: Interest) -> CwcResult<()> {
        sys::ctl(self.fd, sys::EPOLL_CTL_ADD, fd, interest.flags(), token)
            .map_err(|e| CwcError::Transport(format!("epoll_ctl(add): {e}")))
    }

    /// Changes the interest set of an already-registered fd.
    pub fn reregister(&self, fd: i32, token: u64, interest: Interest) -> CwcResult<()> {
        sys::ctl(self.fd, sys::EPOLL_CTL_MOD, fd, interest.flags(), token)
            .map_err(|e| CwcError::Transport(format!("epoll_ctl(mod): {e}")))
    }

    /// Removes an fd from the interest set. Harmless if the fd was already
    /// closed (the kernel auto-removes closed fds).
    pub fn deregister(&self, fd: i32) -> CwcResult<()> {
        match sys::ctl(self.fd, sys::EPOLL_CTL_DEL, fd, 0, 0) {
            Ok(()) => Ok(()),
            // ENOENT/EBADF after a close is the expected race, not a bug.
            Err(e) if matches!(e.raw_os_error(), Some(2) | Some(9)) => Ok(()),
            Err(e) => Err(CwcError::Transport(format!("epoll_ctl(del): {e}"))),
        }
    }

    /// Waits for readiness, appending up to one batch of events to `out`.
    /// `timeout` of `None` blocks indefinitely; `Some(d)` waits at most `d`
    /// (rounded up to a whole millisecond so short timeouts don't spin).
    /// `EINTR` is retried internally. Returns the number of events appended.
    pub fn wait(
        &mut self,
        out: &mut Vec<PollEvent>,
        timeout: Option<Duration>,
    ) -> CwcResult<usize> {
        let timeout_ms: i32 = match timeout {
            None => -1,
            Some(d) => {
                let ms = d.as_micros().div_ceil(1000);
                i32::try_from(ms).unwrap_or(i32::MAX)
            }
        };
        let n = retry_eintr(|| sys::wait(self.fd, &mut self.buf, timeout_ms))
            .map_err(|e| CwcError::Transport(format!("epoll_wait: {e}")))?;
        for ev in self.buf.iter().take(n) {
            let bits = ev.events;
            out.push(PollEvent {
                token: ev.data,
                readable: bits & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0,
                writable: bits & sys::EPOLLOUT != 0,
                hangup: bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0,
            });
        }
        Ok(n)
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        sys::close_fd(self.fd);
    }
}

/// Raises the process's soft open-file limit to its hard limit and returns
/// the resulting soft limit. Connection-scale benches call this first: a
/// 10k-worker fleet needs ~10k sockets per process, and default soft limits
/// (1024 on stock CI runners) are far below that.
pub fn raise_nofile_limit() -> CwcResult<u64> {
    let (cur, max) =
        sys::nofile_limits().map_err(|e| CwcError::Transport(format!("getrlimit(NOFILE): {e}")))?;
    if cur >= max {
        return Ok(cur);
    }
    sys::set_nofile_soft(max, max)
        .map_err(|e| CwcError::Transport(format!("setrlimit(NOFILE): {e}")))?;
    Ok(max)
}

/// Accepts queued connections off a non-blocking listener until it would
/// block or `max` are taken. Accepted streams are appended to `out`;
/// returns how many arrived. `EINTR` is retried; a full backlog drains in
/// one call — this is the accept-burst path of the event loop.
pub fn accept_burst(
    listener: &TcpListener,
    max: usize,
    out: &mut Vec<TcpStream>,
) -> CwcResult<usize> {
    let mut taken = 0usize;
    while taken < max {
        match listener.accept() {
            Ok((stream, _peer)) => {
                out.push(stream);
                taken += 1;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(CwcError::Transport(format!("accept: {e}"))),
        }
    }
    Ok(taken)
}

/// One step of a connection's outbound queue.
enum WriteStep {
    /// Raw pre-encoded bytes (frame boundaries are irrelevant here — fault
    /// injection may split or merge them deliberately).
    Bytes(Vec<u8>),
    /// Hold the queue for this long (injected wire delay / slow-loris). The
    /// caller turns this into a timer and calls [`Conn::resume`] when it
    /// fires; the reactor itself never sleeps.
    Pause(Duration),
    /// Tear the connection down once everything before this marker is out
    /// (injected mid-frame reset).
    Close,
}

/// What [`Conn::flush`] accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushStatus {
    /// Queue fully drained; write interest can be dropped.
    Clean,
    /// The socket buffer filled up mid-queue; keep write interest and flush
    /// again on the next writable event.
    Blocked,
    /// A pause marker was reached: arm a timer for the given duration and
    /// call [`Conn::resume`] when it fires.
    Paused(Duration),
    /// A close marker was reached (or the connection was already closed);
    /// the socket has been shut down.
    Closed,
    /// The queue is suspended by an earlier pause; nothing was written.
    Held,
}

/// What [`Conn::fill`] observed on the read side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadStatus {
    /// The stream is still open (buffered frames may be pending).
    Open,
    /// The peer closed its write half; decode whatever is buffered, then
    /// treat the connection as gone.
    Eof,
}

/// Per-read scratch size. Frames can be larger; the codec reassembles.
/// Kept small because every connection owns one scratch buffer and a
/// 10k-worker fleet holds 10k of them.
const READ_CHUNK: usize = 8 * 1024;

/// How many scratch reads a single [`Conn::fill`] performs before yielding
/// back to the event loop. Level-triggered polling re-reports the fd, so a
/// fast sender cannot monopolise one tick.
const MAX_READS_PER_TICK: usize = 16;

/// A non-blocking framed connection: the streaming CRC32 codec on the read
/// side, an ordered byte/pause/close queue on the write side, and explicit
/// backpressure accounting ([`Conn::queued_bytes`]) so the driver can decide
/// when a slow peer has fallen too far behind.
pub struct Conn {
    stream: TcpStream,
    codec: FrameCodec,
    scratch: Vec<u8>,
    queue: VecDeque<WriteStep>,
    /// Byte offset already written within the queue's front `Bytes` step.
    head_written: usize,
    /// Unwritten bytes across the whole queue (pauses excluded).
    queued_bytes: usize,
    paused: bool,
    closed: bool,
}

impl std::fmt::Debug for Conn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Conn")
            .field("queued_bytes", &self.queued_bytes)
            .field("paused", &self.paused)
            .field("closed", &self.closed)
            .finish()
    }
}

impl Conn {
    /// Wraps an accepted or connected stream, switching it to non-blocking
    /// mode with Nagle disabled (frames are small and latency-sensitive).
    pub fn from_stream(stream: TcpStream) -> CwcResult<Self> {
        stream
            .set_nonblocking(true)
            .map_err(|e| CwcError::Transport(format!("set_nonblocking: {e}")))?;
        stream
            .set_nodelay(true)
            .map_err(|e| CwcError::Transport(format!("set_nodelay: {e}")))?;
        Ok(Conn {
            stream,
            codec: FrameCodec::new(),
            scratch: vec![0u8; READ_CHUNK],
            queue: VecDeque::new(),
            head_written: 0,
            queued_bytes: 0,
            paused: false,
            closed: false,
        })
    }

    /// The raw fd, for [`Poller`] registration.
    pub fn fd(&self) -> i32 {
        use std::os::fd::AsRawFd;
        self.stream.as_raw_fd()
    }

    /// Appends pre-encoded bytes to the outbound queue. Call
    /// [`Conn::flush`] afterwards to start draining.
    pub fn queue_bytes(&mut self, bytes: Vec<u8>) {
        if bytes.is_empty() {
            return;
        }
        self.queued_bytes = self.queued_bytes.saturating_add(bytes.len());
        self.queue.push_back(WriteStep::Bytes(bytes));
    }

    /// Appends a pause marker: flushing stops here until [`Conn::resume`].
    pub fn queue_pause(&mut self, d: Duration) {
        self.queue.push_back(WriteStep::Pause(d));
    }

    /// Appends a close marker: the connection is torn down once everything
    /// queued before it has been written.
    pub fn queue_close(&mut self) {
        self.queue.push_back(WriteStep::Close);
    }

    /// Unwritten outbound bytes — the backpressure signal.
    pub fn queued_bytes(&self) -> usize {
        self.queued_bytes
    }

    /// Whether the queue still holds work and is not paused — i.e. whether
    /// the driver should keep write interest registered.
    pub fn wants_write(&self) -> bool {
        !self.closed && !self.paused && !self.queue.is_empty()
    }

    /// Whether a pause marker currently suspends the queue.
    pub fn is_paused(&self) -> bool {
        self.paused
    }

    /// Whether the connection has been torn down (close marker reached or
    /// fatal socket error observed).
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Marks the connection dead without queueing anything further.
    pub fn mark_closed(&mut self) {
        self.closed = true;
    }

    /// Lifts the current pause; call [`Conn::flush`] next to keep draining.
    pub fn resume(&mut self) {
        self.paused = false;
    }

    /// Drains the outbound queue into the socket until it empties, the
    /// socket blocks, or a pause/close marker is reached.
    pub fn flush(&mut self) -> CwcResult<FlushStatus> {
        if self.closed {
            return Ok(FlushStatus::Closed);
        }
        if self.paused {
            return Ok(FlushStatus::Held);
        }
        loop {
            let Some(step) = self.queue.front() else {
                return Ok(FlushStatus::Clean);
            };
            match step {
                WriteStep::Bytes(buf) => {
                    while self.head_written < buf.len() {
                        let rest = buf.get(self.head_written..).unwrap_or(&[]);
                        match self.stream.write(rest) {
                            Ok(0) => {
                                self.closed = true;
                                return Err(CwcError::Transport("write: socket closed".into()));
                            }
                            Ok(n) => {
                                self.head_written += n;
                                self.queued_bytes = self.queued_bytes.saturating_sub(n);
                            }
                            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                                return Ok(FlushStatus::Blocked)
                            }
                            Err(e) if e.kind() == ErrorKind::Interrupted => {}
                            Err(e) => {
                                self.closed = true;
                                return Err(CwcError::Transport(format!("write: {e}")));
                            }
                        }
                    }
                    self.queue.pop_front();
                    self.head_written = 0;
                }
                WriteStep::Pause(d) => {
                    let d = *d;
                    self.queue.pop_front();
                    self.paused = true;
                    return Ok(FlushStatus::Paused(d));
                }
                WriteStep::Close => {
                    self.queue.pop_front();
                    self.closed = true;
                    // Tearing down a possibly-already-dead socket: failure IS
                    // the expected case. cwc-lint: allow(error_swallowing)
                    self.stream.shutdown(std::net::Shutdown::Both).ok();
                    return Ok(FlushStatus::Closed);
                }
            }
        }
    }

    /// Reads whatever the socket holds into the frame codec (bounded per
    /// call; level-triggered polling re-reports leftovers). Decode the
    /// results with [`Conn::next_frame`].
    pub fn fill(&mut self) -> CwcResult<ReadStatus> {
        for _ in 0..MAX_READS_PER_TICK {
            match self.stream.read(&mut self.scratch) {
                Ok(0) => return Ok(ReadStatus::Eof),
                Ok(n) => {
                    self.codec
                        .extend(self.scratch.get(..n).unwrap_or(&self.scratch));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(ReadStatus::Open),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(CwcError::Transport(format!("read: {e}"))),
            }
        }
        Ok(ReadStatus::Open)
    }

    /// Decodes the next complete frame out of the read buffer, if any.
    /// Corrupt frames are skipped whole (counted on
    /// [`Conn::crc_rejections`]); a malformed length prefix is an error.
    pub fn next_frame(&mut self) -> CwcResult<Option<Frame>> {
        self.codec.next_frame()
    }

    /// Inbound frames rejected on CRC so far.
    pub fn crc_rejections(&self) -> u64 {
        self.codec.crc_rejections()
    }
}

/// A caller-opaque handle to one armed timer, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct TimerKey {
    at: Micros,
    seq: u64,
}

/// A deadline-ordered timer wheel: every wall-clock wait the event loop
/// owes anyone (kernel timers, retry backoffs, paced writes) lives here,
/// ordered by `(deadline, arming sequence)` so same-instant timers fire in
/// the order they were armed — the same deterministic tie-break the
/// blocking driver used.
#[derive(Debug)]
pub struct TimerWheel<T> {
    entries: BTreeMap<(Micros, u64), T>,
    seq: u64,
}

impl<T> Default for TimerWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TimerWheel<T> {
    /// An empty wheel.
    pub fn new() -> Self {
        TimerWheel {
            entries: BTreeMap::new(),
            seq: 0,
        }
    }

    /// Arms `item` to fire at `at`. Returns a key usable with
    /// [`TimerWheel::cancel`].
    pub fn arm(&mut self, at: Micros, item: T) -> TimerKey {
        self.seq += 1;
        self.entries.insert((at, self.seq), item);
        TimerKey { at, seq: self.seq }
    }

    /// Disarms a timer; returns its payload if it had not fired yet.
    pub fn cancel(&mut self, key: TimerKey) -> Option<T> {
        self.entries.remove(&(key.at, key.seq))
    }

    /// The earliest armed deadline, if any — the event loop's poll timeout.
    pub fn next_deadline(&self) -> Option<Micros> {
        self.entries.keys().next().map(|&(at, _)| at)
    }

    /// Removes and returns the earliest timer with `deadline <= now`.
    /// Call in a loop to drain everything due.
    pub fn pop_due(&mut self, now: Micros) -> Option<T> {
        let &(at, seq) = self.entries.keys().next()?;
        if at > now {
            return None;
        }
        self.entries.remove(&(at, seq))
    }

    /// Armed timers outstanding.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no timers are armed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;
    use std::time::Instant;

    fn wait_readable(poller: &mut Poller, token: u64) -> Vec<PollEvent> {
        let mut out = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(5);
        while Instant::now() < deadline {
            poller
                .wait(&mut out, Some(Duration::from_millis(50)))
                .unwrap();
            if out.iter().any(|e| e.token == token && e.readable) {
                return out;
            }
            out.clear();
        }
        panic!("token {token} never became readable");
    }

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn partial_frame_across_two_readiness_events() {
        let (mut client, server) = pair();
        let mut conn = Conn::from_stream(server).unwrap();
        let mut poller = Poller::new().unwrap();
        poller.register(conn.fd(), 7, Interest::READ).unwrap();

        let mut encoded = BytesMut::new();
        Frame::KeepAlive { seq: 42 }.encode(&mut encoded);
        let cut = encoded.len() / 2;

        // First half: readable, fills the codec, but no frame yet.
        client.write_all(&encoded[..cut]).unwrap();
        client.flush().unwrap();
        wait_readable(&mut poller, 7);
        assert_eq!(conn.fill().unwrap(), ReadStatus::Open);
        assert!(conn.next_frame().unwrap().is_none(), "half a frame decoded");

        // Second half: a fresh readiness event completes the frame.
        client.write_all(&encoded[cut..]).unwrap();
        client.flush().unwrap();
        wait_readable(&mut poller, 7);
        assert_eq!(conn.fill().unwrap(), ReadStatus::Open);
        assert_eq!(
            conn.next_frame().unwrap(),
            Some(Frame::KeepAlive { seq: 42 })
        );
        assert!(conn.next_frame().unwrap().is_none());
    }

    #[test]
    fn write_buffer_backpressure_on_a_slow_peer() {
        let (client, server) = pair();
        let mut conn = Conn::from_stream(server).unwrap();

        // A peer that never reads: the socket buffer fills and the queue
        // backs up instead of blocking the thread.
        let chunk = vec![0xABu8; 256 * 1024];
        let mut status = FlushStatus::Clean;
        for _ in 0..64 {
            conn.queue_bytes(chunk.clone());
            status = conn.flush().unwrap();
            if status == FlushStatus::Blocked {
                break;
            }
        }
        assert_eq!(status, FlushStatus::Blocked, "16 MB never filled loopback");
        let backlog = conn.queued_bytes();
        assert!(backlog > 0, "blocked flush must leave queued bytes");

        // The driver watches queued_bytes() against its cap — here we play
        // the driver and declare this peer too slow.
        assert!(backlog > 64 * 1024);

        // Once the peer drains, writable readiness lets the queue empty.
        let mut poller = Poller::new().unwrap();
        poller.register(conn.fd(), 1, Interest::READ_WRITE).unwrap();
        let drainer = std::thread::spawn(move || {
            use std::io::Read as _;
            let mut sink = client;
            sink.set_read_timeout(Some(Duration::from_millis(500)))
                .unwrap();
            let mut buf = vec![0u8; 1 << 20];
            let mut total = 0usize;
            loop {
                match sink.read(&mut buf) {
                    Ok(0) => break,
                    Ok(n) => total += n,
                    Err(e)
                        if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut =>
                    {
                        break
                    }
                    Err(e) => panic!("drain: {e}"),
                }
            }
            total
        });
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut events = Vec::new();
        while conn.queued_bytes() > 0 && Instant::now() < deadline {
            events.clear();
            poller
                .wait(&mut events, Some(Duration::from_millis(20)))
                .unwrap();
            if events.iter().any(|e| e.writable) {
                match conn.flush().unwrap() {
                    FlushStatus::Clean => break,
                    FlushStatus::Blocked => {}
                    other => panic!("unexpected {other:?}"),
                }
            }
        }
        assert_eq!(conn.queued_bytes(), 0, "queue must drain once peer reads");
        drop(conn); // closes the socket so the drainer sees EOF
        assert!(drainer.join().unwrap() > 0);
    }

    #[test]
    fn eintr_is_retried_not_surfaced() {
        let mut attempts = 0;
        let out = retry_eintr(|| {
            attempts += 1;
            if attempts < 3 {
                Err(std::io::Error::from(ErrorKind::Interrupted))
            } else {
                Ok(attempts)
            }
        })
        .unwrap();
        assert_eq!(out, 3, "two EINTRs then success");

        // Non-EINTR errors pass straight through.
        let err = retry_eintr(|| -> std::io::Result<()> {
            Err(std::io::Error::from(ErrorKind::ConnectionReset))
        })
        .unwrap_err();
        assert_eq!(err.kind(), ErrorKind::ConnectionReset);
    }

    #[test]
    fn accept_burst_drains_a_thousand_connections() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();
        let mut poller = Poller::new().unwrap();
        {
            use std::os::fd::AsRawFd;
            poller
                .register(listener.as_raw_fd(), 99, Interest::READ)
                .unwrap();
        }

        const N: usize = 1000;
        let dialer = std::thread::spawn(move || {
            let mut held = Vec::with_capacity(N);
            for _ in 0..N {
                held.push(TcpStream::connect(addr).unwrap());
            }
            held
        });

        let mut accepted = Vec::new();
        let mut events = Vec::new();
        let mut max_burst = 0usize;
        let deadline = Instant::now() + Duration::from_secs(30);
        while accepted.len() < N && Instant::now() < deadline {
            events.clear();
            poller
                .wait(&mut events, Some(Duration::from_millis(50)))
                .unwrap();
            if events.iter().any(|e| e.token == 99 && e.readable) {
                let burst = accept_burst(&listener, N, &mut accepted).unwrap();
                max_burst = max_burst.max(burst);
            }
        }
        assert_eq!(accepted.len(), N, "all {N} connections must be accepted");
        assert!(
            max_burst > 1,
            "bursts should drain multiple queued connections per tick"
        );
        drop(dialer.join().unwrap());
    }

    #[test]
    fn paused_queue_preserves_byte_order() {
        let (client, server) = pair();
        let mut conn = Conn::from_stream(server).unwrap();
        conn.queue_bytes(b"first".to_vec());
        conn.queue_pause(Duration::from_millis(5));
        conn.queue_bytes(b"second".to_vec());

        // Flush runs up to the pause marker and reports it.
        match conn.flush().unwrap() {
            FlushStatus::Paused(d) => assert_eq!(d, Duration::from_millis(5)),
            other => panic!("unexpected {other:?}"),
        }
        assert!(conn.is_paused());
        assert_eq!(conn.flush().unwrap(), FlushStatus::Held);
        assert!(!conn.wants_write());

        // The "timer fires": resume and drain the rest.
        conn.resume();
        assert_eq!(conn.flush().unwrap(), FlushStatus::Clean);

        let mut got = vec![0u8; 11];
        let mut rd = client;
        rd.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        use std::io::Read as _;
        rd.read_exact(&mut got).unwrap();
        assert_eq!(&got, b"firstsecond");
    }

    #[test]
    fn close_marker_tears_the_connection_down() {
        let (client, server) = pair();
        let mut conn = Conn::from_stream(server).unwrap();
        conn.queue_bytes(b"tail".to_vec());
        conn.queue_close();
        assert_eq!(conn.flush().unwrap(), FlushStatus::Closed);
        assert!(conn.is_closed());
        // Peer reads the prefix then EOF.
        use std::io::Read as _;
        let mut rd = client;
        rd.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut got = Vec::new();
        rd.read_to_end(&mut got).unwrap();
        assert_eq!(&got, b"tail");
    }

    #[test]
    fn timer_wheel_orders_by_deadline_then_arming_sequence() {
        let mut wheel = TimerWheel::new();
        wheel.arm(Micros(300), "late");
        let k_a = wheel.arm(Micros(100), "a");
        wheel.arm(Micros(100), "b");
        wheel.arm(Micros(200), "mid");
        assert_eq!(wheel.next_deadline(), Some(Micros(100)));
        assert_eq!(wheel.len(), 4);

        // Nothing due before its deadline.
        assert!(wheel.pop_due(Micros(99)).is_none());
        // Same-deadline timers fire in arming order.
        assert_eq!(wheel.pop_due(Micros(100)), Some("a"));
        assert_eq!(wheel.pop_due(Micros(100)), Some("b"));
        assert!(wheel.pop_due(Micros(100)).is_none());
        assert_eq!(wheel.pop_due(Micros(1000)), Some("mid"));
        assert_eq!(wheel.pop_due(Micros(1000)), Some("late"));
        assert!(wheel.is_empty());

        // Cancelled timers never fire.
        let mut wheel = TimerWheel::new();
        let key = wheel.arm(Micros(10), "x");
        assert_eq!(wheel.cancel(key), Some("x"));
        assert!(wheel.pop_due(Micros(1000)).is_none());
        let _ = k_a;
    }

    #[test]
    fn poller_wait_times_out_empty() {
        let mut poller = Poller::new().unwrap();
        let mut out = Vec::new();
        let n = poller
            .wait(&mut out, Some(Duration::from_millis(5)))
            .unwrap();
        assert_eq!(n, 0);
        assert!(out.is_empty());
    }

    #[test]
    fn frames_round_trip_through_a_nonblocking_pair() {
        let (client, server) = pair();
        let mut a = Conn::from_stream(client).unwrap();
        let mut b = Conn::from_stream(server).unwrap();
        let mut encoded = BytesMut::new();
        Frame::Plugged.encode(&mut encoded);
        Frame::KeepAlive { seq: 9 }.encode(&mut encoded);
        a.queue_bytes(encoded.to_vec());
        assert_eq!(a.flush().unwrap(), FlushStatus::Clean);

        let mut poller = Poller::new().unwrap();
        poller.register(b.fd(), 1, Interest::READ).unwrap();
        wait_readable(&mut poller, 1);
        assert_eq!(b.fill().unwrap(), ReadStatus::Open);
        assert_eq!(b.next_frame().unwrap(), Some(Frame::Plugged));
        assert_eq!(b.next_frame().unwrap(), Some(Frame::KeepAlive { seq: 9 }));
        assert!(b.next_frame().unwrap().is_none());
    }

    #[test]
    fn raise_nofile_limit_reports_a_usable_ceiling() {
        let limit = raise_nofile_limit().unwrap();
        assert!(limit >= 1024, "soft limit after raise: {limit}");
        // Idempotent.
        assert_eq!(raise_nofile_limit().unwrap(), limit);
    }
}
