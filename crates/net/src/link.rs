//! Wireless link models.
//!
//! The paper's key networking observation (§3.1) is twofold:
//!
//! 1. **A stationary, charging phone has a stable link** (Fig. 4) — WiFi
//!    bandwidth measured over 600 s barely moves, so infrequent periodic
//!    measurements suffice; cellular links are less stable.
//! 2. **Bandwidth varies hugely *across* phones** (1–70 ms/KB) — which is
//!    why the scheduler must be bandwidth-aware (Fig. 5).
//!
//! [`LinkModel`] captures both: a per-technology mean throughput with an
//! AR(1) (first-order autoregressive) fading process around it. The AR(1)
//! parameters give WiFi a small stationary coefficient of variation and
//! cellular a larger one, matching the measured behavior.

use cwc_sim::Distributions;
use cwc_types::{KiloBytes, Micros, MsPerKb, RadioTech};
use rand::rngs::StdRng;

/// Parameters of a link's throughput process.
#[derive(Debug, Clone, Copy)]
pub struct LinkConfig {
    /// Radio technology (determines defaults; kept for reporting).
    pub tech: RadioTech,
    /// Long-run mean throughput in KB/s.
    pub mean_kb_per_sec: f64,
    /// Stationary coefficient of variation (σ/µ) of the fading process.
    pub jitter_frac: f64,
    /// AR(1) correlation per sample step, in `[0, 1)`. Values near 1 make
    /// fades persist (slow fading); 0 gives white noise.
    pub corr: f64,
    /// Interval between AR(1) steps.
    pub sample_period: Micros,
}

impl LinkConfig {
    /// Typical parameters for a technology, calibrated so the resulting
    /// `b_i` values span the paper's measured 1–70 ms/KB range:
    ///
    /// | tech     | mean KB/s | b_i (ms/KB) | stationary CV |
    /// |----------|-----------|-------------|---------------|
    /// | 802.11a  | 950       | ≈1.1        | 2% (clean 5 GHz band) |
    /// | 802.11g  | 520       | ≈1.9        | 6% (interfering APs)  |
    /// | 4G       | 310       | ≈3.2        | 18%           |
    /// | 3G       | 95        | ≈10.5       | 22%           |
    /// | EDGE     | 15        | ≈67         | 25%           |
    pub fn typical(tech: RadioTech) -> Self {
        let (mean, cv) = match tech {
            RadioTech::Wifi80211a => (950.0, 0.02),
            RadioTech::Wifi80211g => (520.0, 0.06),
            RadioTech::FourG => (310.0, 0.18),
            RadioTech::ThreeG => (95.0, 0.22),
            RadioTech::Edge => (15.0, 0.25),
        };
        LinkConfig {
            tech,
            mean_kb_per_sec: mean,
            jitter_frac: cv,
            corr: 0.9,
            sample_period: Micros::from_secs(1),
        }
    }

    /// Overrides the mean throughput (builder-style).
    pub fn with_mean(mut self, kb_per_sec: f64) -> Self {
        assert!(kb_per_sec > 0.0);
        self.mean_kb_per_sec = kb_per_sec;
        self
    }

    /// Overrides the stationary CV (builder-style).
    pub fn with_jitter(mut self, frac: f64) -> Self {
        assert!((0.0..1.0).contains(&frac));
        self.jitter_frac = frac;
        self
    }
}

/// The throughput process of one phone's link to the central server.
///
/// The model is an AR(1) process over throughput `x`:
/// `x' = µ + φ(x − µ) + ε`, with `ε` scaled so the stationary standard
/// deviation equals `µ · jitter_frac`. Throughput is floored at 5% of the
/// mean so a deep fade slows — never deadlocks — a transfer.
#[derive(Debug, Clone)]
pub struct LinkModel {
    cfg: LinkConfig,
    rng: StdRng,
    current_kbps: f64,
    last_step_at: Micros,
}

impl LinkModel {
    /// Creates a link at its stationary mean.
    pub fn new(cfg: LinkConfig, rng: StdRng) -> Self {
        LinkModel {
            current_kbps: cfg.mean_kb_per_sec,
            cfg,
            rng,
            last_step_at: Micros::ZERO,
        }
    }

    /// The configuration this link runs with.
    pub fn config(&self) -> &LinkConfig {
        &self.cfg
    }

    /// Advances the fading process to `now` and returns the instantaneous
    /// throughput in KB/s.
    pub fn rate_at(&mut self, now: Micros) -> f64 {
        let period = self.cfg.sample_period.0.max(1);
        let elapsed = now.saturating_sub(self.last_step_at).0;
        let steps = elapsed / period;
        if steps > 0 {
            // Innovation σ chosen so the stationary σ is µ·CV:
            // stationary var = σ² / (1 − φ²).
            let phi = self.cfg.corr;
            let stat_sigma = self.cfg.mean_kb_per_sec * self.cfg.jitter_frac;
            let innov_sigma = stat_sigma * (1.0 - phi * phi).sqrt();
            let mu = self.cfg.mean_kb_per_sec;
            // For long gaps, iterating millions of AR steps is pointless —
            // beyond ~64 steps the process has mixed; resample from the
            // stationary distribution instead.
            let effective = steps.min(64);
            for _ in 0..effective {
                let eps = self.rng.normal(0.0, innov_sigma);
                self.current_kbps = mu + phi * (self.current_kbps - mu) + eps;
            }
            if steps > 64 {
                self.current_kbps = self.rng.normal(mu, stat_sigma);
            }
            self.current_kbps = self.current_kbps.max(mu * 0.05);
            self.last_step_at = now;
        }
        self.current_kbps
    }

    /// Current `b_i` (ms per KB) at `now`.
    pub fn ms_per_kb(&mut self, now: Micros) -> MsPerKb {
        MsPerKb::from_kb_per_sec(self.rate_at(now))
    }

    /// Time to transfer `size` starting at `now`, integrating the fading
    /// process over the transfer.
    ///
    /// A long transfer rides through multiple fades, so its effective
    /// rate is close to the link's mean — exactly why the paper's
    /// once-per-round `b_i` measurement is good enough. Sampling only the
    /// instant the transfer starts would overweight deep fades and make
    /// simulated makespans noisier than the testbed's.
    pub fn transfer_time(&mut self, now: Micros, size: KiloBytes) -> Micros {
        let mut remaining = size.as_f64(); // KB
        let mut t = now;
        let step = self.cfg.sample_period;
        // Cap the walk; beyond it, finish at the mean rate (a transfer
        // this long is hours — precision there is irrelevant).
        for _ in 0..4096 {
            if remaining <= 0.0 {
                return t.saturating_sub(now);
            }
            let rate = self.rate_at(t); // KB/s
            let sendable = rate * step.as_secs_f64();
            if sendable >= remaining {
                let frac = remaining / sendable;
                t += step.scale(frac);
                return t.saturating_sub(now);
            }
            remaining -= sendable;
            t += step;
        }
        t += Micros::from_secs_f64(remaining / self.cfg.mean_kb_per_sec);
        t.saturating_sub(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwc_sim::RngStreams;

    fn link(tech: RadioTech, seed: u64) -> LinkModel {
        LinkModel::new(
            LinkConfig::typical(tech),
            RngStreams::new(seed).stream("link-test"),
        )
    }

    #[test]
    fn typical_configs_span_paper_bandwidth_range() {
        // b_i between roughly 1 and 70 ms/KB across technologies.
        let fast =
            MsPerKb::from_kb_per_sec(LinkConfig::typical(RadioTech::Wifi80211a).mean_kb_per_sec);
        let slow = MsPerKb::from_kb_per_sec(LinkConfig::typical(RadioTech::Edge).mean_kb_per_sec);
        assert!(fast.0 < 1.5, "fastest b_i {fast}");
        assert!(slow.0 > 60.0 && slow.0 < 70.5, "slowest b_i {slow}");
    }

    #[test]
    fn wifi_is_more_stable_than_cellular() {
        let mut wifi = link(RadioTech::Wifi80211a, 1);
        let mut cell = link(RadioTech::ThreeG, 1);
        let cv = |samples: &[f64]| {
            let mean = samples.iter().sum::<f64>() / samples.len() as f64;
            let var =
                samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / samples.len() as f64;
            var.sqrt() / mean
        };
        let wifi_s: Vec<f64> = (1..600)
            .map(|s| wifi.rate_at(Micros::from_secs(s)))
            .collect();
        let cell_s: Vec<f64> = (1..600)
            .map(|s| cell.rate_at(Micros::from_secs(s)))
            .collect();
        assert!(
            cv(&wifi_s) < cv(&cell_s),
            "wifi CV {} should be below cellular CV {}",
            cv(&wifi_s),
            cv(&cell_s)
        );
        assert!(cv(&wifi_s) < 0.05, "wifi CV {} too high", cv(&wifi_s));
    }

    #[test]
    fn rate_stays_positive_through_deep_fades() {
        let mut l = link(RadioTech::Edge, 99);
        for s in 1..10_000 {
            let r = l.rate_at(Micros::from_secs(s));
            assert!(r > 0.0, "rate must stay positive, got {r}");
        }
    }

    #[test]
    fn long_gap_resamples_from_stationary() {
        let mut l = link(RadioTech::Wifi80211g, 7);
        let r1 = l.rate_at(Micros::from_secs(1));
        // Jump 10 hours ahead: must not iterate 36k steps (fast), and must
        // return a plausible stationary sample.
        let r2 = l.rate_at(Micros::from_hours(10));
        let mu = l.config().mean_kb_per_sec;
        assert!((r2 - mu).abs() < mu * 0.5, "r2 {r2} far from mean {mu}");
        assert!(r1 > 0.0);
    }

    #[test]
    fn same_seed_is_deterministic() {
        let mut a = link(RadioTech::FourG, 5);
        let mut b = link(RadioTech::FourG, 5);
        for s in 1..100 {
            assert_eq!(
                a.rate_at(Micros::from_secs(s)),
                b.rate_at(Micros::from_secs(s))
            );
        }
    }

    #[test]
    fn transfer_time_scales_with_size() {
        let mut l = link(RadioTech::Wifi80211a, 3);
        let t1 = l.transfer_time(Micros::from_secs(1), KiloBytes(100));
        let t2 = l.transfer_time(Micros::from_secs(1), KiloBytes(200));
        // Same instant, both inside one fading step → same rate → double
        // (up to µs rounding).
        assert!(
            (t2.0 as i64 - 2 * t1.0 as i64).abs() <= 2,
            "{t2:?} vs 2x{t1:?}"
        );
    }

    #[test]
    fn builders_apply() {
        let cfg = LinkConfig::typical(RadioTech::ThreeG)
            .with_mean(200.0)
            .with_jitter(0.01);
        assert_eq!(cfg.mean_kb_per_sec, 200.0);
        assert_eq!(cfg.jitter_frac, 0.01);
    }
}
