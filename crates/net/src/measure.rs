//! Bandwidth measurement — the iperf analogue.
//!
//! Before scheduling, CWC runs a short throughput test from each phone to
//! the server and uses the inverse of the measured rate as `b_i` (§6:
//! *"we initiate iperf sessions from each phone to the EC2 server and log
//! the measured data rate in KBps (the inverse of this value is used as
//! b_i)"*). This module reproduces that procedure against a [`LinkModel`]
//! and computes the stability statistics behind Fig. 4.

use crate::link::LinkModel;
use cwc_types::{Micros, MsPerKb};

/// One throughput sample from a measurement session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandwidthSample {
    /// Sample timestamp.
    pub at: Micros,
    /// Instantaneous throughput in KB/s.
    pub kb_per_sec: f64,
}

/// Summary of a measurement session.
#[derive(Debug, Clone)]
pub struct MeasurementReport {
    /// The raw time series (for Fig. 4-style plots).
    pub samples: Vec<BandwidthSample>,
    /// Mean throughput in KB/s.
    pub mean_kb_per_sec: f64,
    /// Standard deviation of the throughput in KB/s.
    pub std_dev: f64,
}

impl MeasurementReport {
    /// Coefficient of variation (σ/µ) — the paper's stability criterion.
    pub fn coefficient_of_variation(&self) -> f64 {
        self.std_dev / self.mean_kb_per_sec
    }

    /// The `b_i` estimate the scheduler consumes: 1 / mean rate.
    pub fn ms_per_kb(&self) -> MsPerKb {
        MsPerKb::from_kb_per_sec(self.mean_kb_per_sec)
    }
}

/// Runs an iperf-style session against `link`, sampling once per
/// `interval` from `start` for `duration`.
///
/// ```
/// use cwc_net::link::{LinkConfig, LinkModel};
/// use cwc_net::measure::measure_link;
/// use cwc_sim::RngStreams;
/// use cwc_types::{Micros, RadioTech};
///
/// let mut link = LinkModel::new(
///     LinkConfig::typical(RadioTech::Wifi80211a),
///     RngStreams::new(7).stream("doc"),
/// );
/// let report = measure_link(&mut link, Micros::ZERO,
///                           Micros::from_secs(60), Micros::from_secs(1));
/// // Stationary WiFi: low variation (the Fig. 4 claim), and the b_i the
/// // scheduler will use is just the inverse mean rate.
/// assert!(report.coefficient_of_variation() < 0.1);
/// assert!(report.ms_per_kb().0 > 0.0);
/// ```
///
/// # Panics
/// Panics if `interval` is zero or `duration < interval`.
pub fn measure_link(
    link: &mut LinkModel,
    start: Micros,
    duration: Micros,
    interval: Micros,
) -> MeasurementReport {
    assert!(interval.0 > 0, "interval must be nonzero");
    assert!(duration.0 >= interval.0, "duration shorter than interval");
    let n = duration.0 / interval.0;
    let mut samples = Vec::with_capacity(n as usize);
    for k in 1..=n {
        let at = start + Micros(interval.0 * k);
        samples.push(BandwidthSample {
            at,
            kb_per_sec: link.rate_at(at),
        });
    }
    let mean = samples.iter().map(|s| s.kb_per_sec).sum::<f64>() / samples.len() as f64;
    let var = samples
        .iter()
        .map(|s| (s.kb_per_sec - mean).powi(2))
        .sum::<f64>()
        / samples.len() as f64;
    MeasurementReport {
        samples,
        mean_kb_per_sec: mean,
        std_dev: var.sqrt(),
    }
}

/// Like [`measure_link`], recording the probe through `obs`: a
/// `net.probes` counter, a `net.probe_kb_per_sec` histogram of the mean
/// rate, and a `net.probe` event carrying the Fig. 4 stability statistics.
pub fn measure_link_observed(
    link: &mut LinkModel,
    start: Micros,
    duration: Micros,
    interval: Micros,
    obs: &cwc_obs::Obs,
) -> MeasurementReport {
    let report = measure_link(link, start, duration, interval);
    obs.metrics.inc("net.probes");
    obs.metrics
        .observe("net.probe_kb_per_sec", report.mean_kb_per_sec);
    obs.emit(
        cwc_obs::Event::sim(start.0, "net", "probe")
            .field("samples", report.samples.len())
            .field("mean_kb_per_sec", report.mean_kb_per_sec)
            .field("cv", report.coefficient_of_variation())
            .field("ms_per_kb", report.ms_per_kb().0),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkConfig;
    use cwc_sim::RngStreams;
    use cwc_types::RadioTech;

    fn wifi_link(seed: u64) -> LinkModel {
        LinkModel::new(
            LinkConfig::typical(RadioTech::Wifi80211g),
            RngStreams::new(seed).stream("measure-test"),
        )
    }

    #[test]
    fn paper_style_600s_session() {
        let mut link = wifi_link(4);
        let report = measure_link(
            &mut link,
            Micros::ZERO,
            Micros::from_secs(600),
            Micros::from_secs(1),
        );
        assert_eq!(report.samples.len(), 600);
        // Stationary WiFi: CV stays below ~10%.
        assert!(
            report.coefficient_of_variation() < 0.10,
            "cv {}",
            report.coefficient_of_variation()
        );
        // b_i near 1000/520 ≈ 1.9 ms/KB.
        let b = report.ms_per_kb().0;
        assert!((1.0..4.0).contains(&b), "b_i {b}");
    }

    #[test]
    fn sample_timestamps_are_monotonic() {
        let mut link = wifi_link(8);
        let report = measure_link(
            &mut link,
            Micros::from_secs(100),
            Micros::from_secs(10),
            Micros::from_secs(2),
        );
        assert_eq!(report.samples.len(), 5);
        for pair in report.samples.windows(2) {
            assert!(pair[0].at < pair[1].at);
        }
        assert!(report.samples[0].at > Micros::from_secs(100));
    }

    #[test]
    #[should_panic(expected = "interval must be nonzero")]
    fn zero_interval_panics() {
        let mut link = wifi_link(1);
        measure_link(&mut link, Micros::ZERO, Micros::from_secs(1), Micros::ZERO);
    }

    #[test]
    fn observed_probe_records_metrics() {
        let mut link = wifi_link(3);
        let obs = cwc_obs::Obs::new();
        let report = measure_link_observed(
            &mut link,
            Micros::ZERO,
            Micros::from_secs(30),
            Micros::from_secs(1),
            &obs,
        );
        assert_eq!(obs.metrics.counter_value("net.probes"), 1);
        let h = obs.metrics.histogram("net.probe_kb_per_sec");
        assert_eq!(h.count(), 1);
        assert!((h.sum() - report.mean_kb_per_sec).abs() < 1e-9);
    }

    #[test]
    fn statistics_match_samples() {
        let mut link = wifi_link(2);
        let report = measure_link(
            &mut link,
            Micros::ZERO,
            Micros::from_secs(50),
            Micros::from_secs(1),
        );
        let mean =
            report.samples.iter().map(|s| s.kb_per_sec).sum::<f64>() / report.samples.len() as f64;
        assert!((mean - report.mean_kb_per_sec).abs() < 1e-9);
    }
}
