//! Transport-level fault hooks.
//!
//! The live transports ([`crate::tcp::FramedTcp`], and through it every
//! [`crate::mux::MuxWriter`]) accept an optional [`WireFault`] — a pluggable
//! interceptor that sees every encoded outbound frame and decides what
//! *actually* reaches the socket. `cwc-chaos` implements this trait with a
//! deterministic, seed-driven fault plan; production code leaves the hook
//! empty, in which case the send path is exactly the unhooked write.
//!
//! The verdict vocabulary covers the wire-level half of the failure
//! taxonomy the CWC testbed would see (§6 of the paper): lost frames,
//! duplicated frames, delayed delivery, bit corruption, partial writes and
//! connection resets, and transient send failures (the input to the
//! server's retry-with-backoff policy).

use std::time::Duration;

/// One step of what goes onto the wire for a single logical send.
#[derive(Debug, Clone, PartialEq)]
pub enum WireOp {
    /// Write these bytes (possibly mutated, duplicated, or reordered).
    Write(Vec<u8>),
    /// Sleep before the next op — delayed delivery / slow-loris pacing.
    Sleep(Duration),
}

/// What a [`WireFault`] decided about one outbound frame.
#[derive(Debug, Clone, PartialEq)]
pub enum SendVerdict {
    /// Apply the ops in order. An empty list drops the frame silently —
    /// the caller believes the send succeeded.
    Deliver(Vec<WireOp>),
    /// Fail this send with a *transient* transport error; the connection
    /// stays up and a retry may succeed.
    Fail(String),
    /// Write these bytes (typically a truncated prefix of the frame), then
    /// hard-reset the connection.
    ResetAfter(Vec<u8>),
}

impl SendVerdict {
    /// The no-fault verdict: deliver the frame unchanged.
    pub fn clean(encoded: &[u8]) -> Self {
        SendVerdict::Deliver(vec![WireOp::Write(encoded.to_vec())])
    }
}

/// Byte-level interception of outbound frame writes.
///
/// Implementations must be deterministic given their own seeded state —
/// the chaos soak tests replay identical fault sequences from a seed.
pub trait WireFault: Send {
    /// Decides the fate of one encoded frame (`length + crc + body` bytes).
    fn on_send(&mut self, encoded: &[u8]) -> SendVerdict;
}

/// A [`WireFault`] from a plain closure — convenient in tests.
impl<F> WireFault for F
where
    F: FnMut(&[u8]) -> SendVerdict + Send,
{
    fn on_send(&mut self, encoded: &[u8]) -> SendVerdict {
        self(encoded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_verdict_is_identity() {
        let v = SendVerdict::clean(b"abc");
        assert_eq!(
            v,
            SendVerdict::Deliver(vec![WireOp::Write(b"abc".to_vec())])
        );
    }

    #[test]
    fn closures_are_wire_faults() {
        let mut drop_all = |_: &[u8]| SendVerdict::Deliver(vec![]);
        assert_eq!(
            WireFault::on_send(&mut drop_all, b"x"),
            SendVerdict::Deliver(vec![])
        );
    }
}
