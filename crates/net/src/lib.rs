//! # cwc-net — wire protocol, wireless link models, and transports
//!
//! Networking substrate for CWC, covering both worlds the server runs in:
//!
//! * **Simulated**: [`link::LinkModel`] reproduces the bandwidth behavior of
//!   the paper's testbed radios (802.11a/g WiFi, EDGE, 3G, 4G) including
//!   temporal fading, and [`measure`] implements the iperf-style bandwidth
//!   probe CWC runs before scheduling (`b_i` estimation, §3.1/Fig. 4).
//! * **Live**: [`protocol::Frame`] defines the binary message vocabulary
//!   between the central server and phones (registration, executable and
//!   input shipping, completion/failure reports, keep-alives, migration
//!   state), with a streaming length-prefixed, CRC32-checked codec
//!   ([`protocol::FrameCodec`] — corrupt frames are rejected whole, never
//!   decoded into garbage), a blocking framed-TCP transport
//!   ([`tcp::FramedTcp`]), and a many-connections-one-event-stream
//!   [`mux::Multiplexer`] — the analogue of the prototype's multi-threaded
//!   Java NIO server. Both transports accept a [`fault::WireFault`] hook,
//!   the injection surface the `cwc-chaos` harness drives.
//! * **Event-loop**: [`reactor`] is the single-threaded readiness path
//!   (DESIGN.md §14): a dependency-light epoll [`reactor::Poller`],
//!   non-blocking framed connections ([`reactor::Conn`]) with explicit
//!   write-backpressure accounting, and a deadline-ordered
//!   [`reactor::TimerWheel`] — the substrate that lets one thread serve
//!   tens of thousands of workers.
//!
//! The paper's prototype keeps a persistent TCP connection per phone with
//! `SO_KEEPALIVE` plus application-layer keep-alives every 30 s, declaring a
//! phone failed after 3 unanswered probes; [`protocol::KEEPALIVE_PERIOD`] and
//! [`protocol::KEEPALIVE_TOLERATED_MISSES`] encode those constants.

// `deny` rather than `forbid`: the reactor's syscall shim is the one audited
// `#[allow(unsafe_code)]` region in the crate (see `reactor::sys`).
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod link;
pub mod measure;
pub mod mux;
pub mod protocol;
pub mod reactor;
pub mod tcp;

pub use fault::{SendVerdict, WireFault, WireOp};
pub use link::{LinkConfig, LinkModel};
pub use measure::{measure_link, measure_link_observed, BandwidthSample, MeasurementReport};
pub use mux::{ConnId, Multiplexer, MuxEvent, MuxWriter};
pub use protocol::{
    crc32, is_handshake_tag, Frame, FrameCodec, FRAME_HEADER_LEN, KEEPALIVE_PERIOD,
    KEEPALIVE_TOLERATED_MISSES, MAX_FRAME_LEN,
};
pub use reactor::{
    accept_burst, raise_nofile_limit, retry_eintr, Conn, FlushStatus, Interest, PollEvent, Poller,
    ReadStatus, TimerKey, TimerWheel,
};
pub use tcp::FramedTcp;
