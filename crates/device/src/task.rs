//! Task programs, execution state, and the dynamic registry.
//!
//! In the prototype, a developer writes a plain Java `Task` class (Fig. 8),
//! the server compiles and packages it into a `.jar`, ships it, and the
//! phone loads it at runtime with the reflection API (Fig. 9) inside an
//! Android service — no human in the loop. The Rust analogue:
//!
//! * [`TaskProgram`] — the "class": knows how to create fresh execution
//!   state, restore state from a migration checkpoint, and aggregate
//!   partial results at the server (the logical merge step of §4).
//! * [`TaskState`] — the "object": consumes input chunk by chunk,
//!   checkpoints itself into bytes (the JavaGO `undock` analogue), and
//!   produces a partial result.
//! * [`TaskRegistry`] — the class loader: maps the program name shipped in
//!   a [`ShipExecutable`](cwc_net::Frame::ShipExecutable) frame to an
//!   implementation; a missing entry is the `ClassNotFoundException` of
//!   this world.
//!
//! The chunk-oriented interface is what makes migration *cheap*: after any
//! chunk boundary the state is a complete, serializable description of the
//! computation so far, so an unplugged phone loses at most one chunk of
//! work.

use cwc_types::{CwcError, CwcResult};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A runnable CWC task program (the shipped "executable").
pub trait TaskProgram: Send + Sync {
    /// Registry name (what [`cwc_net::Frame::ShipExecutable`] carries).
    fn name(&self) -> &str;

    /// Profiled execution cost on the baseline (806 MHz) phone, in ms per
    /// KB of input — `T_s` from §4.1. Used to seed the scheduler's
    /// prediction; the real execution below is what actually runs.
    fn baseline_ms_per_kb(&self) -> f64;

    /// Fresh state for processing a partition from its beginning.
    fn new_state(&self) -> Box<dyn TaskState>;

    /// Restores state from a checkpoint taken on another phone
    /// (migration). Must be the exact inverse of
    /// [`TaskState::checkpoint`].
    fn restore_state(&self, checkpoint: &[u8]) -> CwcResult<Box<dyn TaskState>>;

    /// Server-side logical aggregation of partial results (§4's "the
    /// server can simply sum the occurrences reported by each phone").
    fn aggregate(&self, partials: &[Vec<u8>]) -> CwcResult<Vec<u8>>;
}

/// Mutable execution state of one task over one input partition.
pub trait TaskState: Send {
    /// Consumes the next input chunk.
    fn process_chunk(&mut self, chunk: &[u8]) -> CwcResult<()>;

    /// Serializes the full computation state (JavaGO `undock`).
    fn checkpoint(&self) -> Vec<u8>;

    /// Produces the partial result to report to the server.
    fn partial_result(&self) -> Vec<u8>;
}

/// The device-side program registry — the reflection class loader
/// analogue.
///
/// ```
/// use cwc_device::TaskRegistry;
/// use cwc_types::CwcError;
///
/// let registry = TaskRegistry::new();
/// // Loading an unshipped program is the ClassNotFoundException analogue.
/// assert!(matches!(
///     registry.load("mystery"),
///     Err(CwcError::UnknownProgram(_))
/// ));
/// ```
#[derive(Clone, Default)]
pub struct TaskRegistry {
    programs: HashMap<String, Arc<dyn TaskProgram>>,
}

impl fmt::Debug for TaskRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut names: Vec<&str> = self.programs.keys().map(String::as_str).collect();
        names.sort_unstable();
        f.debug_struct("TaskRegistry")
            .field("programs", &names)
            .finish()
    }
}

impl TaskRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a program. Re-registering a name replaces the old program
    /// (shipping a newer executable version).
    pub fn register(&mut self, program: Arc<dyn TaskProgram>) {
        self.programs.insert(program.name().to_owned(), program);
    }

    /// Looks a program up by name — the dynamic load step.
    pub fn load(&self, name: &str) -> CwcResult<Arc<dyn TaskProgram>> {
        self.programs
            .get(name)
            .cloned()
            .ok_or_else(|| CwcError::UnknownProgram(name.to_owned()))
    }

    /// Whether `name` is installed.
    pub fn contains(&self, name: &str) -> bool {
        self.programs.contains_key(name)
    }

    /// Registered program names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.programs.keys().cloned().collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    //! A minimal deterministic program used by executor tests: sums all
    //! input bytes; the state is the running sum.

    use super::*;

    pub struct ByteSum;

    pub struct ByteSumState {
        pub sum: u64,
    }

    impl TaskProgram for ByteSum {
        fn name(&self) -> &str {
            "bytesum"
        }

        fn baseline_ms_per_kb(&self) -> f64 {
            2.0
        }

        fn new_state(&self) -> Box<dyn TaskState> {
            Box::new(ByteSumState { sum: 0 })
        }

        fn restore_state(&self, checkpoint: &[u8]) -> CwcResult<Box<dyn TaskState>> {
            let bytes: [u8; 8] = checkpoint
                .try_into()
                .map_err(|_| CwcError::Migration("bad bytesum checkpoint".into()))?;
            Ok(Box::new(ByteSumState {
                sum: u64::from_be_bytes(bytes),
            }))
        }

        fn aggregate(&self, partials: &[Vec<u8>]) -> CwcResult<Vec<u8>> {
            let mut total = 0u64;
            for p in partials {
                let bytes: [u8; 8] = p
                    .as_slice()
                    .try_into()
                    .map_err(|_| CwcError::Migration("bad bytesum partial".into()))?;
                total += u64::from_be_bytes(bytes);
            }
            Ok(total.to_be_bytes().to_vec())
        }
    }

    impl TaskState for ByteSumState {
        fn process_chunk(&mut self, chunk: &[u8]) -> CwcResult<()> {
            self.sum += chunk.iter().map(|&b| u64::from(b)).sum::<u64>();
            Ok(())
        }

        fn checkpoint(&self) -> Vec<u8> {
            self.sum.to_be_bytes().to_vec()
        }

        fn partial_result(&self) -> Vec<u8> {
            self.checkpoint()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::ByteSum;
    use super::*;

    #[test]
    fn registry_loads_registered_program() {
        let mut reg = TaskRegistry::new();
        reg.register(Arc::new(ByteSum));
        assert!(reg.contains("bytesum"));
        let p = reg.load("bytesum").unwrap();
        assert_eq!(p.name(), "bytesum");
    }

    #[test]
    fn missing_program_is_unknown_program_error() {
        let reg = TaskRegistry::new();
        match reg.load("nope") {
            Err(CwcError::UnknownProgram(name)) => assert_eq!(name, "nope"),
            Err(other) => panic!("unexpected error {other:?}"),
            Ok(_) => panic!("expected UnknownProgram error"),
        }
    }

    #[test]
    fn reregistering_replaces() {
        let mut reg = TaskRegistry::new();
        reg.register(Arc::new(ByteSum));
        reg.register(Arc::new(ByteSum));
        assert_eq!(reg.names(), vec!["bytesum".to_owned()]);
    }

    #[test]
    fn state_checkpoint_round_trip() {
        let p = ByteSum;
        let mut s = p.new_state();
        s.process_chunk(&[1, 2, 3]).unwrap();
        let ck = s.checkpoint();
        let restored = p.restore_state(&ck).unwrap();
        assert_eq!(restored.partial_result(), s.partial_result());
    }

    #[test]
    fn restore_rejects_garbage() {
        let p = ByteSum;
        assert!(p.restore_state(&[1, 2, 3]).is_err());
    }

    #[test]
    fn aggregate_sums_partials() {
        let p = ByteSum;
        let a = 10u64.to_be_bytes().to_vec();
        let b = 32u64.to_be_bytes().to_vec();
        let total = p.aggregate(&[a, b]).unwrap();
        assert_eq!(total, 42u64.to_be_bytes().to_vec());
    }

    #[test]
    fn debug_lists_programs() {
        let mut reg = TaskRegistry::new();
        reg.register(Arc::new(ByteSum));
        assert!(format!("{reg:?}").contains("bytesum"));
    }
}
