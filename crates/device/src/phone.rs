//! The composite phone: spec + link + battery + plug state.
//!
//! A [`Phone`] is the unit the fleet simulator manages. It bundles the
//! ground-truth models (CPU efficiency, link fading, battery) behind the
//! same observable surface the paper's server sees: registration info, a
//! bandwidth measurement, task completion times, and plug/unplug events.

use crate::battery::{BatteryModel, BatteryParams};
use crate::cpu::CpuModel;
use cwc_net::link::LinkModel;
use cwc_net::measure::measure_link;
use cwc_types::{KiloBytes, Micros, MsPerKb, PhoneId, PhoneInfo, RadioTech};

/// Charging-connection state (the three states the profiling app logs,
/// §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlugState {
    /// On the charger — eligible for CWC work.
    Plugged,
    /// Detached from the charger — any running task is interrupted and
    /// migrated; the paper treats this as a node failure.
    Unplugged,
    /// Powered off (rare: 3% of the study's log entries).
    Shutdown,
}

impl PlugState {
    /// Whether CWC may execute tasks in this state.
    pub fn can_compute(self) -> bool {
        matches!(self, PlugState::Plugged)
    }
}

/// Static description of a phone in the fleet.
#[derive(Debug, Clone)]
pub struct PhoneSpec {
    /// Fleet identity.
    pub id: PhoneId,
    /// Human-readable handset model.
    pub model: String,
    /// CPU ground truth (advertised spec + efficiency residual).
    pub cpu: CpuModel,
    /// Radio technology.
    pub radio: RadioTech,
    /// Usable RAM in KB.
    pub ram_kb: u64,
    /// Battery/charger character.
    pub battery: BatteryParams,
}

/// Handset models in the paper's testbed era, with typical clocks/cores.
/// The testbed spans 806 MHz to 1.5 GHz (§6).
pub const PHONE_MODELS: [(&str, u32, u32); 8] = [
    ("HTC G2", 806, 1),
    ("Nexus S", 1000, 1),
    ("LG Optimus 2X", 1000, 2),
    ("Motorola Atrix", 1000, 2),
    ("HTC Sensation", 1200, 2),
    ("Samsung Galaxy S2", 1200, 2),
    ("Galaxy Nexus", 1200, 2),
    ("HTC Rezound", 1500, 2),
];

/// A live phone: models plus mutable state.
#[derive(Debug, Clone)]
pub struct Phone {
    spec: PhoneSpec,
    link: LinkModel,
    battery: BatteryModel,
    plug: PlugState,
}

impl Phone {
    /// Creates a plugged-in phone with the given initial charge.
    pub fn new(spec: PhoneSpec, link: LinkModel, initial_charge_pct: f64) -> Self {
        let battery = BatteryModel::new(spec.battery, initial_charge_pct);
        Phone {
            spec,
            link,
            battery,
            plug: PlugState::Plugged,
        }
    }

    /// Fleet identity.
    pub fn id(&self) -> PhoneId {
        self.spec.id
    }

    /// Static spec.
    pub fn spec(&self) -> &PhoneSpec {
        &self.spec
    }

    /// Current plug state.
    pub fn plug_state(&self) -> PlugState {
        self.plug
    }

    /// Applies a plug-state transition (driven by user behavior or
    /// failure injection).
    pub fn set_plug_state(&mut self, state: PlugState) {
        self.plug = state;
    }

    /// Battery state (read-only).
    pub fn battery(&self) -> &BatteryModel {
        &self.battery
    }

    /// Advances the battery while plugged.
    pub fn charge_step(&mut self, dt: Micros, cpu_util: f64) {
        if self.plug == PlugState::Plugged {
            self.battery.step(dt, cpu_util);
        }
    }

    /// Ground-truth time to receive `size` from the server starting now.
    pub fn transfer_time(&mut self, now: Micros, size: KiloBytes) -> Micros {
        self.link.transfer_time(now, size)
    }

    /// Runs the short iperf-style bandwidth test CWC performs before
    /// scheduling and returns the measured `b_i`.
    pub fn measure_bandwidth(&mut self, now: Micros) -> MsPerKb {
        // A brief session is enough on a stationary link (Fig. 4): 10
        // one-second samples.
        let report = measure_link(
            &mut self.link,
            now,
            Micros::from_secs(10),
            Micros::from_secs(1),
        );
        report.ms_per_kb()
    }

    /// Ground-truth execution time for `input` KB of a task profiled at
    /// `baseline_ms_per_kb` on the 806 MHz phone. Includes this phone's
    /// efficiency residual — the quantity the phone *reports* back to the
    /// server after completing a task.
    pub fn exec_time(&self, baseline_ms_per_kb: f64, input: KiloBytes) -> Micros {
        self.spec.cpu.exec_time(baseline_ms_per_kb, input)
    }

    /// The registration + measurement snapshot the scheduler consumes.
    pub fn info(&mut self, now: Micros) -> PhoneInfo {
        PhoneInfo {
            id: self.spec.id,
            cpu: self.spec.cpu.spec,
            radio: self.spec.radio,
            bandwidth: self.measure_bandwidth(now),
            ram_kb: self.spec.ram_kb,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwc_net::link::LinkConfig;
    use cwc_sim::RngStreams;
    use cwc_types::CpuSpec;

    fn phone(clock: u32, radio: RadioTech) -> Phone {
        let spec = PhoneSpec {
            id: PhoneId(1),
            model: "HTC Sensation".into(),
            cpu: CpuModel::ideal(CpuSpec::new(clock, 2)),
            radio,
            ram_kb: 1 << 20,
            battery: BatteryParams::htc_sensation(),
        };
        let link = LinkModel::new(
            LinkConfig::typical(radio),
            RngStreams::new(9).stream("phone-test"),
        );
        Phone::new(spec, link, 50.0)
    }

    #[test]
    fn plug_state_gates_compute() {
        assert!(PlugState::Plugged.can_compute());
        assert!(!PlugState::Unplugged.can_compute());
        assert!(!PlugState::Shutdown.can_compute());
    }

    #[test]
    fn new_phone_is_plugged() {
        let p = phone(1200, RadioTech::Wifi80211g);
        assert_eq!(p.plug_state(), PlugState::Plugged);
    }

    #[test]
    fn unplug_transition() {
        let mut p = phone(1200, RadioTech::Wifi80211g);
        p.set_plug_state(PlugState::Unplugged);
        assert!(!p.plug_state().can_compute());
    }

    #[test]
    fn charging_only_happens_while_plugged() {
        let mut p = phone(1200, RadioTech::Wifi80211g);
        let before = p.battery().charge_pct();
        p.set_plug_state(PlugState::Unplugged);
        p.charge_step(Micros::from_mins(10), 0.0);
        assert_eq!(p.battery().charge_pct(), before);
        p.set_plug_state(PlugState::Plugged);
        p.charge_step(Micros::from_mins(10), 0.0);
        assert!(p.battery().charge_pct() > before);
    }

    #[test]
    fn measured_bandwidth_tracks_radio_class() {
        let mut wifi = phone(1200, RadioTech::Wifi80211a);
        let mut edge = phone(1200, RadioTech::Edge);
        let b_wifi = wifi.measure_bandwidth(Micros::from_secs(100)).0;
        let b_edge = edge.measure_bandwidth(Micros::from_secs(100)).0;
        assert!(
            b_wifi < b_edge,
            "WiFi b_i ({b_wifi}) must beat EDGE b_i ({b_edge})"
        );
        assert!(b_wifi > 0.5 && b_wifi < 2.5, "wifi b_i {b_wifi}");
        assert!(b_edge > 40.0 && b_edge < 100.0, "edge b_i {b_edge}");
    }

    #[test]
    fn exec_time_scales_with_clock() {
        let slow = phone(806, RadioTech::Wifi80211g);
        let fast = phone(1612, RadioTech::Wifi80211g);
        let kb = KiloBytes(100);
        let t_slow = slow.exec_time(10.0, kb);
        let t_fast = fast.exec_time(10.0, kb);
        assert_eq!(t_slow.0, 2 * t_fast.0);
    }

    #[test]
    fn info_snapshot_reflects_spec() {
        let mut p = phone(1200, RadioTech::ThreeG);
        let info = p.info(Micros::from_secs(60));
        assert_eq!(info.id, PhoneId(1));
        assert_eq!(info.cpu.clock_mhz, 1200);
        assert_eq!(info.radio, RadioTech::ThreeG);
        assert!(info.bandwidth.is_valid());
    }

    #[test]
    fn model_catalog_spans_testbed_clocks() {
        let clocks: Vec<u32> = PHONE_MODELS.iter().map(|&(_, c, _)| c).collect();
        assert_eq!(*clocks.iter().min().unwrap(), 806);
        assert_eq!(*clocks.iter().max().unwrap(), 1500);
    }
}
