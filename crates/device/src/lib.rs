//! # cwc-device — the smartphone model
//!
//! Everything that happens *on the phone* in CWC, modelled faithfully
//! enough that the scheduler, migration, and throttling logic above it
//! cannot tell simulation from testbed:
//!
//! * [`cpu`] — execution-time model: CPU-clock scaling from the slowest
//!   profiled phone (§4.1), plus a per-device efficiency factor that
//!   reproduces the paper's observation that a few phones beat their
//!   clock-ratio prediction (Fig. 6's off-diagonal points).
//! * [`coremark`] — a real CoreMark-like compute kernel (linked-list
//!   shuffling, matrix arithmetic, CRC-16 state machine) used to regenerate
//!   Fig. 1's CPU comparison with genuine computation.
//! * [`battery`] — the charging model: linear residual-charge growth whose
//!   rate is degraded by CPU load (heavy compute stretches a 100-minute
//!   HTC Sensation charge to ~135 minutes, §4.3).
//! * [`throttle`] — the adaptive MIMD duty-cycle controller that keeps the
//!   charging profile indistinguishable from idle (Fig. 10).
//! * [`task`] — the [`TaskProgram`]/[`TaskState`] abstraction and the
//!   [`TaskRegistry`]: the Rust analogue of shipping a `.jar` and loading
//!   it via reflection, with JavaGO-style checkpoints for migration.
//! * [`executor`] — chunk-at-a-time execution of real task code with
//!   interrupt/checkpoint/resume semantics.
//! * [`phone`] — the composite [`Phone`]: spec + link + battery + plug
//!   state, the unit the fleet simulator manages.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod battery;
pub mod coremark;
pub mod cpu;
pub mod executor;
pub mod phone;
pub mod task;
pub mod throttle;

pub use battery::{BatteryModel, BatteryParams};
pub use coremark::{coremark_kernel, scaled_scores, CpuCatalogEntry, CPU_CATALOG};
pub use cpu::{CpuModel, BASELINE_CLOCK_MHZ};
pub use executor::{ExecutionOutcome, Executor};
pub use phone::{Phone, PhoneSpec, PlugState, PHONE_MODELS};
pub use task::{TaskProgram, TaskRegistry, TaskState};
pub use throttle::{MimdThrottle, ThrottleConfig, ThrottleDecision};
