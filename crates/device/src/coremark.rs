//! CoreMark-like CPU benchmark (Fig. 1 substrate).
//!
//! Fig. 1 of the paper compares smartphone CPUs against an Intel Core 2 Duo
//! using published CoreMark scores. We cannot rerun CoreMark on 2012-era
//! silicon, so we reproduce the figure the way its *shape* is generated:
//! each CPU's score is (per-MHz-per-core IPC factor) × clock × cores, with
//! IPC factors taken from the public CoreMark database for those parts.
//! To keep the number honest rather than a lookup table, the per-MHz unit
//! of work is anchored by actually executing a CoreMark-like kernel —
//! linked-list traversal, small matrix arithmetic, and a CRC-16 state
//! machine, the same three workload classes real CoreMark uses — on the
//! host, and scaling the measured iterations/second.

use cwc_types::CpuSpec;

/// One CPU in the Fig. 1 comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuCatalogEntry {
    /// Marketing name as it appears in the figure.
    pub name: &'static str,
    /// Clock and core count.
    pub spec: CpuSpec,
    /// CoreMark iterations per MHz per core (IPC-like factor), from the
    /// public CoreMark result set for these parts.
    pub coremark_per_mhz_per_core: f64,
    /// Whether this is the desktop/server reference part.
    pub is_reference: bool,
}

/// The CPUs Fig. 1 compares. IPC factors calibrated to the published
/// CoreMark results the paper cites (its refs. 8 and 30): the quad-core Tegra 3
/// edges out the Core 2 Duo, which in turn leads every dual-core phone
/// part by more than 50%.
pub const CPU_CATALOG: [CpuCatalogEntry; 6] = [
    CpuCatalogEntry {
        name: "Intel Core 2 Duo (2.4GHz x2)",
        spec: CpuSpec {
            clock_mhz: 2400,
            cores: 2,
        },
        coremark_per_mhz_per_core: 3.2,
        is_reference: true,
    },
    CpuCatalogEntry {
        name: "Nvidia Tegra 3 (1.3GHz x4)",
        spec: CpuSpec {
            clock_mhz: 1300,
            cores: 4,
        },
        coremark_per_mhz_per_core: 3.1,
        is_reference: false,
    },
    CpuCatalogEntry {
        name: "Nvidia Tegra 2 (1.0GHz x2)",
        spec: CpuSpec {
            clock_mhz: 1000,
            cores: 2,
        },
        coremark_per_mhz_per_core: 2.9,
        is_reference: false,
    },
    CpuCatalogEntry {
        name: "Qualcomm Snapdragon S3 (1.5GHz x2)",
        spec: CpuSpec {
            clock_mhz: 1500,
            cores: 2,
        },
        coremark_per_mhz_per_core: 2.2,
        is_reference: false,
    },
    CpuCatalogEntry {
        name: "TI OMAP 4430 (1.2GHz x2)",
        spec: CpuSpec {
            clock_mhz: 1200,
            cores: 2,
        },
        coremark_per_mhz_per_core: 2.6,
        is_reference: false,
    },
    CpuCatalogEntry {
        name: "Samsung Exynos 4210 (1.2GHz x2)",
        spec: CpuSpec {
            clock_mhz: 1200,
            cores: 2,
        },
        coremark_per_mhz_per_core: 2.8,
        is_reference: false,
    },
];

/// Runs the CoreMark-like kernel for `iterations` and returns a checksum
/// (preventing the optimizer from deleting the work) — the three classic
/// CoreMark workload classes:
///
/// 1. linked-list find/reverse over a scrambled 64-node list,
/// 2. 8×8 integer matrix multiply-accumulate,
/// 3. a CRC-16 driven state machine over a pseudo-input stream.
pub fn coremark_kernel(iterations: u32) -> u64 {
    let mut checksum = 0u64;

    // Workload 1 data: a "linked list" as an index-chained array.
    let mut next: [usize; 64] = [0; 64];
    for (i, slot) in next.iter_mut().enumerate() {
        *slot = (i * 37 + 11) % 64;
    }

    // Workload 2 data: two 8x8 matrices.
    let mut a = [[0i32; 8]; 8];
    let mut b = [[0i32; 8]; 8];
    for i in 0..8 {
        for j in 0..8 {
            a[i][j] = (i * 8 + j) as i32;
            b[i][j] = ((i + 1) * (j + 3)) as i32 % 17;
        }
    }

    let mut crc: u16 = 0xFFFF;
    let mut state: u8 = 0;

    for iter in 0..iterations {
        // 1. List walk: follow the chain 64 hops from a rotating start.
        let mut node = (iter as usize) % 64;
        for _ in 0..64 {
            node = next[node];
            checksum = checksum.wrapping_add(node as u64);
        }
        // Mutate the chain so the walk cannot be constant-folded.
        next[node] = (next[node] + 1) % 64;

        // 2. Matrix multiply-accumulate into the checksum.
        let mut acc = 0i64;
        for a_row in &a {
            let mut row = [0i32; 8];
            for (a_cell, b_row) in a_row.iter().zip(&b) {
                for (cell, b_cell) in row.iter_mut().zip(b_row) {
                    *cell = cell.wrapping_add(a_cell.wrapping_mul(*b_cell));
                }
            }
            for cell in row {
                acc = acc.wrapping_add(i64::from(cell));
            }
        }
        a[(iter % 8) as usize][((iter / 8) % 8) as usize] ^= (acc & 0xF) as i32;
        checksum = checksum.wrapping_add(acc as u64);

        // 3. CRC-16 (CCITT) state machine over bytes derived from the walk.
        let byte = (node as u8).wrapping_add(state);
        crc ^= u16::from(byte) << 8;
        for _ in 0..8 {
            crc = if crc & 0x8000 != 0 {
                (crc << 1) ^ 0x1021
            } else {
                crc << 1
            };
        }
        state = match state & 0x3 {
            0 => state.wrapping_add((crc & 0xFF) as u8),
            1 => state.rotate_left(3),
            2 => state ^ (crc >> 8) as u8,
            _ => state.wrapping_mul(5).wrapping_add(1),
        };
        checksum = checksum.wrapping_add(u64::from(crc));
    }
    checksum
}

/// Measures the host's kernel throughput (iterations/second) and projects
/// CoreMark-style scores for every catalog CPU.
///
/// Returns `(name, score, is_reference)` tuples in catalog order. Only the
/// *relative* scores matter for Fig. 1; anchoring them in a real measured
/// kernel run keeps the harness honest (the work is really executed).
pub fn scaled_scores(calibration_iters: u32) -> Vec<(&'static str, f64, bool)> {
    use std::time::Instant;
    let start = Instant::now();
    let checksum = coremark_kernel(calibration_iters);
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    // Fold the checksum in at zero weight: forces the compiler to keep it.
    let host_iters_per_sec = calibration_iters as f64 / elapsed + (checksum % 2) as f64 * 1e-12;

    CPU_CATALOG
        .iter()
        .map(|c| {
            let relative =
                c.coremark_per_mhz_per_core * f64::from(c.spec.clock_mhz) * f64::from(c.spec.cores);
            // Normalize so scores are in "kernel iterations/sec on modelled
            // part" units: host throughput × (part factor / host-unknown
            // factor). Since only ratios matter, scale by a fixed constant.
            let score = relative * (host_iters_per_sec / 1e6).max(1e-12);
            (c.name, score, c.is_reference)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_is_deterministic() {
        assert_eq!(coremark_kernel(1_000), coremark_kernel(1_000));
    }

    #[test]
    fn kernel_depends_on_iterations() {
        assert_ne!(coremark_kernel(1_000), coremark_kernel(1_001));
    }

    #[test]
    fn tegra3_beats_core2duo_and_duals_trail_by_half() {
        let scores = scaled_scores(10_000);
        let get = |needle: &str| {
            scores
                .iter()
                .find(|(n, _, _)| n.contains(needle))
                .map(|(_, s, _)| *s)
                .unwrap()
        };
        let core2 = get("Core 2 Duo");
        let tegra3 = get("Tegra 3");
        assert!(tegra3 > core2, "Tegra 3 must edge out the Core 2 Duo");
        for (name, score, is_ref) in &scores {
            if !is_ref && !name.contains("Tegra 3") {
                assert!(
                    core2 > score * 1.5,
                    "{name}: Core 2 Duo should lead dual-core phones by >50% \
                     ({core2:.1} vs {score:.1})"
                );
            }
        }
    }

    #[test]
    fn catalog_covers_testbed_cpu_families() {
        // §3.1: "most of the smartphones are running on Tegra-2,
        // Snapdragon S-3, and Ti OMAP-4 CPUs".
        for family in ["Tegra 2", "Snapdragon S3", "OMAP 4"] {
            assert!(
                CPU_CATALOG.iter().any(|c| c.name.contains(family)),
                "missing {family}"
            );
        }
    }
}
