//! The adaptive MIMD CPU throttle (§4.3, Fig. 10).
//!
//! Root constraint: DVFS needs root, so CWC cannot touch voltage or
//! frequency. Instead it duty-cycles the task — run, sleep, run, sleep —
//! and adapts the sleep length multiplicatively:
//!
//! 1. Measure δ (*target charging parameter*): the time for the residual
//!    charge to gain 1% with no task running.
//! 2. Run the task for δ/2, sleep for δ/2; repeat until the charge has
//!    gained 1%. Call that elapsed time β (*actual charging parameter*).
//! 3. If β = δ (charging unharmed), there may be spare outlet power:
//!    **decrease** the sleep window by ×0.75. If β > δ, the CPU is eating
//!    into the charge current: **increase** the sleep window by ×2.
//! 4. Recompute δ whenever the residual charge has moved by 5% (the
//!    profile can drift with battery level, other apps, or the charger).
//!
//! The controller here is exactly that state machine; a driver
//! ([`simulate_charge`]) closes the loop against a [`BatteryModel`] and
//! produces the Fig. 10 series.

use crate::battery::{BatteryModel, BatteryParams};
use cwc_types::Micros;

/// Throttle tuning. Defaults are the paper's values.
#[derive(Debug, Clone, Copy)]
pub struct ThrottleConfig {
    /// Multiplier applied to the sleep window when β > δ (paper: 2.0).
    pub sleep_increase: f64,
    /// Multiplier applied when β ≈ δ (paper: 0.75).
    pub sleep_decrease: f64,
    /// Relative tolerance for "β equals δ".
    pub equality_tolerance: f64,
    /// Recalibrate δ after the charge moves this many percent (paper: 5).
    pub recalibrate_every_pct: f64,
}

impl Default for ThrottleConfig {
    fn default() -> Self {
        ThrottleConfig {
            sleep_increase: 2.0,
            sleep_decrease: 0.75,
            equality_tolerance: 0.02,
            recalibrate_every_pct: 5.0,
        }
    }
}

/// What the CPU should do for the next instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThrottleDecision {
    /// Execute the task.
    Run,
    /// Leave the CPU idle.
    Sleep,
}

/// The MIMD duty-cycle controller.
#[derive(Debug, Clone)]
pub struct MimdThrottle {
    cfg: ThrottleConfig,
    /// Target charging parameter δ.
    delta: Micros,
    /// Current sleep window length.
    sleep_window: Micros,
    /// Remaining time in the current phase.
    phase_left: Micros,
    /// Whether the current phase is a run phase.
    running: bool,
    /// Charge percent at the start of the current β measurement.
    beta_anchor_pct: f64,
    /// Time at the start of the current β measurement.
    beta_anchor_at: Micros,
    /// Charge percent at the last δ recalibration.
    recal_anchor_pct: f64,
    /// Optional observability: duty-cycle adjustments and charge-delta
    /// observations are reported here when set.
    obs: Option<cwc_obs::Obs>,
}

impl MimdThrottle {
    /// Creates a controller with a freshly measured δ, starting at the
    /// paper's initial 50% duty cycle (run δ/2, sleep δ/2).
    pub fn new(cfg: ThrottleConfig, delta: Micros, now: Micros, charge_pct: f64) -> Self {
        assert!(delta.0 > 0, "delta must be positive");
        let half = Micros(delta.0 / 2);
        MimdThrottle {
            cfg,
            delta,
            sleep_window: half,
            phase_left: half,
            running: true,
            beta_anchor_pct: charge_pct,
            beta_anchor_at: now,
            recal_anchor_pct: charge_pct,
            obs: None,
        }
    }

    /// Reports duty-cycle adjustments (`throttle.sleep_increase` /
    /// `throttle.sleep_decrease` counters), β/δ ratios and duty-cycle
    /// gauges through `obs` (builder style).
    pub fn with_obs(mut self, obs: cwc_obs::Obs) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Current δ.
    pub fn delta(&self) -> Micros {
        self.delta
    }

    /// Current sleep-window length.
    pub fn sleep_window(&self) -> Micros {
        self.sleep_window
    }

    /// Instantaneous duty cycle implied by the current windows.
    pub fn duty_cycle(&self) -> f64 {
        let run = (self.delta.0 / 2) as f64;
        run / (run + self.sleep_window.0 as f64)
    }

    /// Whether a δ recalibration is due (charge moved ≥ 5% since last).
    pub fn recalibration_due(&self, charge_pct: f64) -> bool {
        (charge_pct - self.recal_anchor_pct).abs() >= self.cfg.recalibrate_every_pct
    }

    /// Installs a freshly measured δ (the driver obtains it from the
    /// device's stored charging profile, or by idling for 1%).
    pub fn recalibrate(&mut self, new_delta: Micros, charge_pct: f64) {
        assert!(new_delta.0 > 0);
        // Preserve the learned duty cycle across recalibration: scale the
        // sleep window by the δ ratio.
        let ratio = new_delta.0 as f64 / self.delta.0 as f64;
        self.sleep_window = Micros((self.sleep_window.0 as f64 * ratio).round() as u64);
        self.delta = new_delta;
        self.recal_anchor_pct = charge_pct;
        if let Some(obs) = &self.obs {
            obs.metrics.inc("throttle.recalibrations");
            obs.metrics
                .observe("throttle.delta_s", new_delta.as_secs_f64());
        }
    }

    /// Advances the controller by `dt`, observing the current charge, and
    /// returns what the CPU should do during that interval.
    ///
    /// The β logic fires on every 1% charge gain: compare the elapsed time
    /// against δ and adjust the sleep window multiplicatively.
    pub fn tick(&mut self, now: Micros, dt: Micros, charge_pct: f64) -> ThrottleDecision {
        // 1% crossing → β measurement complete.
        if charge_pct - self.beta_anchor_pct >= 1.0 {
            let beta = now.saturating_sub(self.beta_anchor_at);
            let threshold = self.delta.scale(1.0 + self.cfg.equality_tolerance);
            let increased = beta > threshold;
            if increased {
                self.sleep_window = self.sleep_window.scale(self.cfg.sleep_increase);
            } else {
                self.sleep_window = self.sleep_window.scale(self.cfg.sleep_decrease);
            }
            // Clamp to keep the duty cycle in a sane band.
            let min_sleep = Micros((self.delta.0 / 512).max(1));
            let max_sleep = Micros(self.delta.0 * 8);
            self.sleep_window = Micros(self.sleep_window.0.clamp(min_sleep.0, max_sleep.0));
            self.beta_anchor_pct = charge_pct;
            self.beta_anchor_at = now;
            if let Some(obs) = &self.obs {
                obs.metrics.inc(if increased {
                    "throttle.sleep_increase"
                } else {
                    "throttle.sleep_decrease"
                });
                obs.metrics.observe(
                    "throttle.beta_over_delta",
                    beta.0 as f64 / self.delta.0.max(1) as f64,
                );
                obs.metrics
                    .set_gauge("throttle.duty_cycle", self.duty_cycle());
                obs.emit(
                    cwc_obs::Event::sim(now.0, "throttle", "beta.measured")
                        .severity(cwc_obs::Severity::Debug)
                        .field("beta_us", beta.0)
                        .field("delta_us", self.delta.0)
                        .field("increased_sleep", increased)
                        .field("sleep_window_us", self.sleep_window.0)
                        .field("charge_pct", charge_pct),
                );
            }
        }

        // Phase machine.
        let decision = if self.running {
            ThrottleDecision::Run
        } else {
            ThrottleDecision::Sleep
        };
        if dt >= self.phase_left {
            self.running = !self.running;
            self.phase_left = if self.running {
                Micros(self.delta.0 / 2)
            } else {
                self.sleep_window
            };
        } else {
            self.phase_left -= dt;
        }
        decision
    }
}

/// Charging policy for [`simulate_charge`].
#[derive(Debug, Clone, Copy)]
pub enum ChargePolicy {
    /// No tasks: the paper's "ideal charging profile".
    Idle,
    /// Task pegged at 100% utilization: the paper's "heavily utilized" run.
    Heavy,
    /// The MIMD throttle.
    Throttled(ThrottleConfig),
}

/// Result of a charging simulation.
#[derive(Debug, Clone)]
pub struct ChargeOutcome {
    /// Sampled `(time, charge %)` series — the Fig. 10 curves.
    pub timeline: Vec<(Micros, f64)>,
    /// Time at which the battery reached 100%.
    pub full_at: Micros,
    /// Total CPU-running time accumulated (compute throughput proxy).
    pub cpu_time: Micros,
}

impl ChargeOutcome {
    /// The compute-time overhead of this policy relative to `baseline`
    /// for the *same amount of work*: if this run accumulates CPU time at
    /// rate `u` (utilization) and the baseline at rate `u₀`, a fixed job
    /// takes `u₀/u − 1` longer here. For throttled-vs-heavy this is the
    /// paper's "24.5% increase in computation time".
    pub fn compute_overhead_vs(&self, baseline: &ChargeOutcome) -> f64 {
        let self_util = self.cpu_time.0 as f64 / self.full_at.0.max(1) as f64;
        let base_util = baseline.cpu_time.0 as f64 / baseline.full_at.0.max(1) as f64;
        base_util / self_util - 1.0
    }
}

/// Simulates a full charge from `start_pct` under a policy, sampling the
/// timeline every `sample_every`.
///
/// ```
/// use cwc_device::throttle::{simulate_charge, ChargePolicy, ThrottleConfig};
/// use cwc_device::BatteryParams;
/// use cwc_types::Micros;
///
/// let params = BatteryParams::htc_sensation();
/// let idle = simulate_charge(params, ChargePolicy::Idle, 0.0, Micros::from_mins(10));
/// let heavy = simulate_charge(params, ChargePolicy::Heavy, 0.0, Micros::from_mins(10));
/// let throttled = simulate_charge(
///     params,
///     ChargePolicy::Throttled(ThrottleConfig::default()),
///     0.0,
///     Micros::from_mins(10),
/// );
/// // The Fig. 10 ordering: heavy is slowest; the throttle tracks idle.
/// assert!(idle.full_at <= throttled.full_at);
/// assert!(throttled.full_at < heavy.full_at);
/// ```
pub fn simulate_charge(
    params: BatteryParams,
    policy: ChargePolicy,
    start_pct: f64,
    sample_every: Micros,
) -> ChargeOutcome {
    simulate_charge_inner(params, policy, start_pct, sample_every, None)
}

/// Like [`simulate_charge`], reporting throttle adjustments and the final
/// utilization through `obs` (see [`MimdThrottle::with_obs`]).
pub fn simulate_charge_observed(
    params: BatteryParams,
    policy: ChargePolicy,
    start_pct: f64,
    sample_every: Micros,
    obs: &cwc_obs::Obs,
) -> ChargeOutcome {
    simulate_charge_inner(params, policy, start_pct, sample_every, Some(obs.clone()))
}

fn simulate_charge_inner(
    params: BatteryParams,
    policy: ChargePolicy,
    start_pct: f64,
    sample_every: Micros,
    obs: Option<cwc_obs::Obs>,
) -> ChargeOutcome {
    let mut battery = BatteryModel::new(params, start_pct);
    let dt = Micros::from_millis(250);
    let mut now = Micros::ZERO;
    let mut cpu_time = Micros::ZERO;
    let mut timeline = vec![(now, battery.charge_pct())];
    let mut next_sample = sample_every;

    // The throttle first measures δ with no task running (1% idle gain).
    let mut throttle = match policy {
        ChargePolicy::Throttled(cfg) => {
            let delta = params.time_to_gain(1.0, 0.0);
            let t = MimdThrottle::new(cfg, delta, now, battery.charge_pct());
            Some(match &obs {
                Some(obs) => t.with_obs(obs.clone()),
                None => t,
            })
        }
        _ => None,
    };

    while !battery.is_full() {
        let util = match (&policy, &mut throttle) {
            (ChargePolicy::Idle, _) => 0.0,
            (ChargePolicy::Heavy, _) => 1.0,
            (ChargePolicy::Throttled(_), Some(t)) => {
                if t.recalibration_due(battery.charge_pct()) {
                    // Fresh δ from the device's stored idle charging
                    // profile at the current battery level.
                    let delta = params.time_to_gain(1.0, 0.0);
                    t.recalibrate(delta, battery.charge_pct());
                }
                match t.tick(now, dt, battery.charge_pct()) {
                    ThrottleDecision::Run => 1.0,
                    ThrottleDecision::Sleep => 0.0,
                }
            }
            (ChargePolicy::Throttled(_), None) => unreachable!(),
        };
        battery.step(dt, util);
        now += dt;
        if util > 0.0 {
            cpu_time += dt;
        }
        if now >= next_sample {
            timeline.push((now, battery.charge_pct()));
            next_sample += sample_every;
        }
    }
    timeline.push((now, battery.charge_pct()));
    if let Some(obs) = &obs {
        obs.metrics
            .set_gauge("throttle.full_charge_min", now.as_hours_f64() * 60.0);
        obs.metrics.set_gauge(
            "throttle.utilization",
            cpu_time.0 as f64 / now.0.max(1) as f64,
        );
        obs.emit(
            cwc_obs::Event::sim(now.0, "throttle", "charge.full")
                .field("minutes", now.as_hours_f64() * 60.0)
                .field("cpu_time_s", cpu_time.as_secs_f64()),
        );
    }
    ChargeOutcome {
        timeline,
        full_at: now,
        cpu_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mins(m: f64) -> Micros {
        Micros::from_secs_f64(m * 60.0)
    }

    #[test]
    fn idle_policy_matches_ideal_profile() {
        let out = simulate_charge(
            BatteryParams::htc_sensation(),
            ChargePolicy::Idle,
            0.0,
            mins(5.0),
        );
        let full_min = out.full_at.as_hours_f64() * 60.0;
        assert!(
            (full_min - 100.0).abs() < 1.0,
            "idle full at {full_min} min"
        );
        assert_eq!(out.cpu_time, Micros::ZERO);
    }

    #[test]
    fn heavy_policy_stretches_charge_35_percent() {
        let out = simulate_charge(
            BatteryParams::htc_sensation(),
            ChargePolicy::Heavy,
            0.0,
            mins(5.0),
        );
        let full_min = out.full_at.as_hours_f64() * 60.0;
        assert!(
            (full_min - 135.0).abs() < 1.5,
            "heavy full at {full_min} min"
        );
    }

    #[test]
    fn throttled_charges_nearly_like_idle() {
        let out = simulate_charge(
            BatteryParams::htc_sensation(),
            ChargePolicy::Throttled(ThrottleConfig::default()),
            0.0,
            mins(5.0),
        );
        let full_min = out.full_at.as_hours_f64() * 60.0;
        // Fig. 10: "almost the same as in the ideal case" — well under the
        // 135-minute heavy run and within a few minutes of 100.
        assert!(
            full_min < 112.0,
            "throttled full charge took {full_min} min (want ≈100)"
        );
        assert!(full_min >= 99.0);
    }

    #[test]
    fn throttled_compute_overhead_near_paper_value() {
        let params = BatteryParams::htc_sensation();
        let heavy = simulate_charge(params, ChargePolicy::Heavy, 0.0, mins(5.0));
        let throttled = simulate_charge(
            params,
            ChargePolicy::Throttled(ThrottleConfig::default()),
            0.0,
            mins(5.0),
        );
        let overhead = throttled.compute_overhead_vs(&heavy);
        // Paper: ≈24.5% more compute time than the heavy run. Accept a
        // generous band — the claim is "tens of percent, not 2x".
        assert!(
            (0.10..=0.50).contains(&overhead),
            "compute overhead {overhead}"
        );
    }

    #[test]
    fn g2_throttle_converges_to_high_duty() {
        // With full headroom, β never exceeds δ, so sleep keeps shrinking.
        let params = BatteryParams::htc_g2();
        let out = simulate_charge(
            params,
            ChargePolicy::Throttled(ThrottleConfig::default()),
            0.0,
            mins(10.0),
        );
        let util = out.cpu_time.0 as f64 / out.full_at.0 as f64;
        assert!(
            util > 0.9,
            "G2 should compute nearly continuously, util {util}"
        );
    }

    #[test]
    fn timeline_is_monotone_in_time_and_charge() {
        let out = simulate_charge(
            BatteryParams::htc_sensation(),
            ChargePolicy::Throttled(ThrottleConfig::default()),
            20.0,
            mins(2.0),
        );
        for pair in out.timeline.windows(2) {
            assert!(pair[0].0 < pair[1].0);
            assert!(pair[0].1 <= pair[1].1 + 1e-9);
        }
        assert!((out.timeline.last().unwrap().1 - 100.0).abs() < 1e-6);
    }

    #[test]
    fn controller_increases_sleep_when_beta_exceeds_delta() {
        let cfg = ThrottleConfig::default();
        let delta = Micros::from_secs(60);
        let mut t = MimdThrottle::new(cfg, delta, Micros::ZERO, 50.0);
        let w0 = t.sleep_window();
        // Simulate a 1% gain that took 2δ (charging clearly degraded).
        t.tick(Micros::from_secs(120), Micros::from_millis(250), 51.0);
        assert_eq!(t.sleep_window().0, w0.0 * 2, "sleep should double");
    }

    #[test]
    fn controller_decreases_sleep_when_beta_matches_delta() {
        let cfg = ThrottleConfig::default();
        let delta = Micros::from_secs(60);
        let mut t = MimdThrottle::new(cfg, delta, Micros::ZERO, 50.0);
        let w0 = t.sleep_window();
        // 1% gained in exactly δ: charging unharmed → trim sleep by 0.75.
        t.tick(Micros::from_secs(60), Micros::from_millis(250), 51.0);
        assert_eq!(t.sleep_window().0, (w0.0 as f64 * 0.75).round() as u64);
    }

    #[test]
    fn observed_throttle_counts_adjustments() {
        let obs = cwc_obs::Obs::new();
        let delta = Micros::from_secs(60);
        let mut t = MimdThrottle::new(ThrottleConfig::default(), delta, Micros::ZERO, 50.0)
            .with_obs(obs.clone());
        // One degraded measurement (β = 2δ), one healthy one (β = δ).
        t.tick(Micros::from_secs(120), Micros::from_millis(250), 51.0);
        t.tick(Micros::from_secs(180), Micros::from_millis(250), 52.0);
        assert_eq!(obs.metrics.counter_value("throttle.sleep_increase"), 1);
        assert_eq!(obs.metrics.counter_value("throttle.sleep_decrease"), 1);
        assert_eq!(obs.metrics.histogram("throttle.beta_over_delta").count(), 2);
        assert!(obs.metrics.gauge_value("throttle.duty_cycle").is_some());
    }

    #[test]
    fn observed_simulation_reports_utilization() {
        let obs = cwc_obs::Obs::new();
        let out = simulate_charge_observed(
            BatteryParams::htc_sensation(),
            ChargePolicy::Throttled(ThrottleConfig::default()),
            0.0,
            mins(5.0),
            &obs,
        );
        let total = obs.metrics.counter_value("throttle.sleep_increase")
            + obs.metrics.counter_value("throttle.sleep_decrease");
        assert!(total > 0, "a full charge must adjust the duty cycle");
        let util = obs.metrics.gauge_value("throttle.utilization").unwrap();
        assert!((util - out.cpu_time.0 as f64 / out.full_at.0 as f64).abs() < 1e-12);
    }

    #[test]
    fn recalibration_preserves_duty_cycle() {
        let mut t = MimdThrottle::new(
            ThrottleConfig::default(),
            Micros::from_secs(60),
            Micros::ZERO,
            50.0,
        );
        let duty_before = t.duty_cycle();
        assert!(t.recalibration_due(55.0));
        assert!(!t.recalibration_due(52.0));
        t.recalibrate(Micros::from_secs(120), 55.0);
        // Duty cycle ratio is kept: both run and sleep scale with δ.
        assert!((t.duty_cycle() - duty_before).abs() < 1e-6);
        assert_eq!(t.delta(), Micros::from_secs(120));
    }
}
