//! Chunk-at-a-time task execution with interrupt/checkpoint/resume.
//!
//! The executor is the device-side loop that the prototype's Android
//! service runs: pull the next input chunk, hand it to the task state,
//! repeat — and if the phone is unplugged mid-partition, stop at the next
//! chunk boundary, checkpoint, and report an online failure with the
//! processed-KB watermark so the server can migrate the *remainder* to
//! another phone (§5, "Handling Failures").
//!
//! Chunks are 1 KB, matching the granularity of the paper's cost model
//! (`c_ij` is defined per KB of input).

use crate::task::{TaskProgram, TaskState};
use cwc_types::{CwcResult, KiloBytes};

/// Input chunk size: the cost model's unit.
pub const CHUNK_BYTES: usize = 1024;

/// Why an execution stopped.
#[derive(Debug)]
pub enum ExecutionOutcome {
    /// The whole partition was processed; here is the partial result.
    Completed {
        /// Serialized partial result for server-side aggregation.
        result: Vec<u8>,
        /// KB processed (== the partition size).
        processed: KiloBytes,
    },
    /// Execution was interrupted (unplug); the checkpoint resumes it.
    Interrupted {
        /// JavaGO-style continuation state.
        checkpoint: Vec<u8>,
        /// KB processed before the interruption.
        processed: KiloBytes,
    },
}

/// Executes task programs over in-memory input partitions.
#[derive(Debug, Default)]
pub struct Executor;

impl Executor {
    /// Runs `program` over `input` from scratch.
    ///
    /// `interrupt_after` bounds how many KB may be processed before the
    /// run is cut (simulating an unplug at that watermark); `None` runs to
    /// completion.
    pub fn run(
        &self,
        program: &dyn TaskProgram,
        input: &[u8],
        interrupt_after: Option<KiloBytes>,
    ) -> CwcResult<ExecutionOutcome> {
        let state = program.new_state();
        self.drive(state, input, KiloBytes::ZERO, |done| {
            interrupt_after.is_some_and(|limit| done >= limit)
        })
    }

    /// Resumes an interrupted run on (conceptually) another phone: restore
    /// the checkpoint, skip the already-processed prefix, continue.
    pub fn resume(
        &self,
        program: &dyn TaskProgram,
        input: &[u8],
        checkpoint: &[u8],
        already_processed: KiloBytes,
        interrupt_after: Option<KiloBytes>,
    ) -> CwcResult<ExecutionOutcome> {
        let state = program.restore_state(checkpoint)?;
        self.drive(state, input, already_processed, |done| {
            interrupt_after.is_some_and(|limit| done >= limit)
        })
    }

    /// Runs with a caller-supplied interrupt predicate, checked at every
    /// chunk boundary with the KB processed so far — this is how the live
    /// worker polls its unplug flag. `resume_from` restores a migration
    /// checkpoint first (the input must then be the *remaining* slice).
    pub fn run_guarded(
        &self,
        program: &dyn TaskProgram,
        input: &[u8],
        resume_from: Option<&[u8]>,
        should_stop: impl FnMut(KiloBytes) -> bool,
    ) -> CwcResult<ExecutionOutcome> {
        let state = match resume_from {
            Some(ck) => program.restore_state(ck)?,
            None => program.new_state(),
        };
        self.drive(state, input, KiloBytes::ZERO, should_stop)
    }

    fn drive(
        &self,
        mut state: Box<dyn TaskState>,
        input: &[u8],
        skip: KiloBytes,
        mut should_stop: impl FnMut(KiloBytes) -> bool,
    ) -> CwcResult<ExecutionOutcome> {
        let start = (skip.0 as usize) * CHUNK_BYTES;
        let mut processed = skip;
        let mut offset = start.min(input.len());
        while offset < input.len() {
            if should_stop(processed) {
                return Ok(ExecutionOutcome::Interrupted {
                    checkpoint: state.checkpoint(),
                    processed,
                });
            }
            let end = (offset + CHUNK_BYTES).min(input.len());
            state.process_chunk(&input[offset..end])?;
            offset = end;
            processed += KiloBytes(1);
        }
        Ok(ExecutionOutcome::Completed {
            result: state.partial_result(),
            processed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::test_support::ByteSum;

    fn input(len_kb: usize) -> Vec<u8> {
        (0..len_kb * CHUNK_BYTES).map(|i| (i % 251) as u8).collect()
    }

    fn expected_sum(data: &[u8]) -> u64 {
        data.iter().map(|&b| u64::from(b)).sum()
    }

    #[test]
    fn uninterrupted_run_completes_with_correct_result() {
        let data = input(8);
        match Executor.run(&ByteSum, &data, None).unwrap() {
            ExecutionOutcome::Completed { result, processed } => {
                assert_eq!(processed, KiloBytes(8));
                assert_eq!(result, expected_sum(&data).to_be_bytes().to_vec());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn interrupt_checkpoints_at_watermark() {
        let data = input(8);
        match Executor.run(&ByteSum, &data, Some(KiloBytes(3))).unwrap() {
            ExecutionOutcome::Interrupted {
                checkpoint,
                processed,
            } => {
                assert_eq!(processed, KiloBytes(3));
                let expect = expected_sum(&data[..3 * CHUNK_BYTES]);
                assert_eq!(checkpoint, expect.to_be_bytes().to_vec());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn resume_equals_uninterrupted_execution() {
        // The migration invariant: interrupt anywhere, resume on "another
        // phone", and the final result is identical to a straight run.
        let data = input(16);
        let straight = match Executor.run(&ByteSum, &data, None).unwrap() {
            ExecutionOutcome::Completed { result, .. } => result,
            other => panic!("unexpected {other:?}"),
        };
        for cut in [1u64, 5, 8, 15] {
            let (ck, processed) = match Executor.run(&ByteSum, &data, Some(KiloBytes(cut))).unwrap()
            {
                ExecutionOutcome::Interrupted {
                    checkpoint,
                    processed,
                } => (checkpoint, processed),
                other => panic!("unexpected {other:?}"),
            };
            match Executor
                .resume(&ByteSum, &data, &ck, processed, None)
                .unwrap()
            {
                ExecutionOutcome::Completed { result, .. } => {
                    assert_eq!(result, straight, "cut at {cut} KB diverged");
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn double_interruption_still_converges() {
        let data = input(12);
        let straight = match Executor.run(&ByteSum, &data, None).unwrap() {
            ExecutionOutcome::Completed { result, .. } => result,
            other => panic!("unexpected {other:?}"),
        };
        // First phone dies at 4 KB, second at 9 KB, third finishes.
        let (ck1, p1) = match Executor.run(&ByteSum, &data, Some(KiloBytes(4))).unwrap() {
            ExecutionOutcome::Interrupted {
                checkpoint,
                processed,
            } => (checkpoint, processed),
            other => panic!("unexpected {other:?}"),
        };
        let (ck2, p2) = match Executor
            .resume(&ByteSum, &data, &ck1, p1, Some(KiloBytes(9)))
            .unwrap()
        {
            ExecutionOutcome::Interrupted {
                checkpoint,
                processed,
            } => (checkpoint, processed),
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(p2, KiloBytes(9));
        match Executor.resume(&ByteSum, &data, &ck2, p2, None).unwrap() {
            ExecutionOutcome::Completed { result, .. } => assert_eq!(result, straight),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn interrupt_beyond_input_completes() {
        let data = input(2);
        match Executor.run(&ByteSum, &data, Some(KiloBytes(10))).unwrap() {
            ExecutionOutcome::Completed { processed, .. } => {
                assert_eq!(processed, KiloBytes(2));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn partial_final_chunk_is_processed() {
        // 2.5 KB input: final half-chunk still counts (rounded up to a
        // chunk boundary by the loop).
        let mut data = input(2);
        data.extend_from_slice(&vec![7u8; CHUNK_BYTES / 2]);
        match Executor.run(&ByteSum, &data, None).unwrap() {
            ExecutionOutcome::Completed { result, .. } => {
                assert_eq!(result, expected_sum(&data).to_be_bytes().to_vec());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn immediate_interrupt_checkpoints_fresh_state() {
        let data = input(4);
        match Executor
            .run(&ByteSum, &data, Some(KiloBytes::ZERO))
            .unwrap()
        {
            ExecutionOutcome::Interrupted {
                checkpoint,
                processed,
            } => {
                assert_eq!(processed, KiloBytes::ZERO);
                assert_eq!(checkpoint, 0u64.to_be_bytes().to_vec());
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
