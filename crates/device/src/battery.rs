//! Battery charging model (§4.3).
//!
//! Two experimental facts from the paper anchor the model:
//!
//! * Residual charge grows **linearly** with time while plugged ("the
//!   residual battery percentage exhibits a predictable linear change with
//!   respect to time"), at a device-and-charger-specific rate.
//! * Heavy CPU use can stretch the charge time — a full HTC Sensation
//!   charge takes ~100 min idle but ~135 min under continuous compute
//!   (+35%), while the HTC G2 shows no significant effect.
//!
//! The mechanism is power headroom: the charger supplies more power than
//! the battery draws, so CPU utilization below a *headroom fraction* is
//! free; beyond it, every extra watt of CPU comes out of the charging
//! current. That is exactly the structure the MIMD throttle exploits: it
//! seeks the highest utilization that leaves the charging profile intact.

use cwc_types::Micros;

/// Device-specific charging parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatteryParams {
    /// Time for a full 0→100% charge with no tasks running.
    pub idle_full_charge: Micros,
    /// Time for a full 0→100% charge with the CPU pegged at 100%.
    pub busy_full_charge: Micros,
    /// *Sustained* CPU utilization below which charging is unaffected
    /// (charger power headroom), in `[0, 1]`.
    pub headroom: f64,
    /// Thermal/controller smoothing time constant: the charging penalty
    /// responds to utilization averaged over roughly this window, not to
    /// instantaneous bursts. This is why duty-cycling works at all — a
    /// 30 s run / 30 s sleep cycle looks like 50% sustained load to the
    /// charge controller, which is inside the headroom.
    pub smoothing: Micros,
}

impl BatteryParams {
    /// HTC Sensation: 100 → 135 minutes under load (§4.3), with enough
    /// headroom that ~80% utilization charges like idle — consistent with
    /// the paper's reported 24.5% compute-time overhead for the throttled
    /// run (`1/0.8 − 1 ≈ 25%`).
    pub fn htc_sensation() -> Self {
        BatteryParams {
            idle_full_charge: Micros::from_mins(100),
            busy_full_charge: Micros::from_mins(135),
            headroom: 0.8,
            smoothing: Micros::from_secs(90),
        }
    }

    /// HTC G2: the paper found no significant charging-time effect from
    /// CPU load — full headroom.
    pub fn htc_g2() -> Self {
        BatteryParams {
            idle_full_charge: Micros::from_mins(110),
            busy_full_charge: Micros::from_mins(112),
            headroom: 1.0,
            smoothing: Micros::from_secs(90),
        }
    }

    /// Validates parameter sanity.
    pub fn validate(&self) -> Result<(), String> {
        if self.idle_full_charge.0 == 0 || self.busy_full_charge < self.idle_full_charge {
            return Err("busy charge time must be >= idle charge time > 0".into());
        }
        if !(0.0..=1.0).contains(&self.headroom) {
            return Err(format!("headroom {} outside [0,1]", self.headroom));
        }
        if self.smoothing.0 == 0 {
            return Err("smoothing time constant must be nonzero".into());
        }
        Ok(())
    }

    /// Idle charging rate in percent per microsecond.
    fn idle_rate(&self) -> f64 {
        100.0 / self.idle_full_charge.0 as f64
    }

    /// Charging rate (%/µs) at a given CPU utilization.
    ///
    /// Piecewise linear: flat at the idle rate up to `headroom`, then
    /// descending to the busy rate at utilization 1.
    pub fn rate_at_utilization(&self, util: f64) -> f64 {
        let util = util.clamp(0.0, 1.0);
        let idle = self.idle_rate();
        if util <= self.headroom {
            return idle;
        }
        let busy = 100.0 / self.busy_full_charge.0 as f64;
        if self.headroom >= 1.0 {
            return idle;
        }
        let frac = (util - self.headroom) / (1.0 - self.headroom);
        idle + frac * (busy - idle)
    }

    /// Analytic time for the battery to gain `pct` percent at constant
    /// utilization.
    pub fn time_to_gain(&self, pct: f64, util: f64) -> Micros {
        assert!(pct > 0.0);
        Micros::from_ms_f64(pct / self.rate_at_utilization(util) / 1_000.0)
    }
}

/// Mutable battery state: residual charge while plugged.
#[derive(Debug, Clone, Copy)]
pub struct BatteryModel {
    params: BatteryParams,
    charge_pct: f64,
    /// EWMA of recent CPU utilization — what the charging penalty sees.
    util_smoothed: f64,
}

impl BatteryModel {
    /// Creates a battery at `initial_pct` residual charge, thermally cold
    /// (smoothed utilization zero).
    ///
    /// # Panics
    /// Panics if parameters are invalid or the charge is outside [0, 100].
    pub fn new(params: BatteryParams, initial_pct: f64) -> Self {
        params.validate().expect("invalid battery params");
        assert!((0.0..=100.0).contains(&initial_pct));
        BatteryModel {
            params,
            charge_pct: initial_pct,
            util_smoothed: 0.0,
        }
    }

    /// Current residual charge in percent.
    pub fn charge_pct(&self) -> f64 {
        self.charge_pct
    }

    /// Whether the battery reads 100%.
    pub fn is_full(&self) -> bool {
        self.charge_pct >= 100.0 - 1e-9
    }

    /// The parameters this battery charges with.
    pub fn params(&self) -> &BatteryParams {
        &self.params
    }

    /// Smoothed utilization the charging penalty currently sees.
    pub fn smoothed_utilization(&self) -> f64 {
        self.util_smoothed
    }

    /// Advances charging by `dt` at the given instantaneous CPU
    /// utilization. The charging penalty responds to the *smoothed*
    /// utilization (thermal/controller time constant), so short bursts
    /// below the headroom on average do not slow charging. Charge
    /// saturates at 100%.
    pub fn step(&mut self, dt: Micros, cpu_util: f64) {
        let cpu_util = cpu_util.clamp(0.0, 1.0);
        let alpha = 1.0 - (-(dt.0 as f64) / self.params.smoothing.0 as f64).exp();
        self.util_smoothed += (cpu_util - self.util_smoothed) * alpha;
        let gained = self.params.rate_at_utilization(self.util_smoothed) * dt.0 as f64;
        self.charge_pct = (self.charge_pct + gained).min(100.0);
    }

    /// Time to reach 100% at a constant utilization, from the current
    /// charge.
    pub fn time_to_full(&self, util: f64) -> Micros {
        if self.is_full() {
            return Micros::ZERO;
        }
        self.params.time_to_gain(100.0 - self.charge_pct, util)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sensation_idle_charges_in_100_minutes() {
        let b = BatteryModel::new(BatteryParams::htc_sensation(), 0.0);
        let t = b.time_to_full(0.0);
        assert_eq!(t, Micros::from_mins(100));
    }

    #[test]
    fn sensation_busy_charges_in_135_minutes() {
        let b = BatteryModel::new(BatteryParams::htc_sensation(), 0.0);
        let t = b.time_to_full(1.0);
        let mins = t.as_hours_f64() * 60.0;
        assert!((mins - 135.0).abs() < 0.5, "busy charge {mins} min");
    }

    #[test]
    fn utilization_below_headroom_is_free() {
        let p = BatteryParams::htc_sensation();
        assert_eq!(p.rate_at_utilization(0.0), p.rate_at_utilization(0.79));
        assert!(p.rate_at_utilization(0.9) < p.rate_at_utilization(0.8));
    }

    #[test]
    fn g2_is_load_insensitive() {
        let p = BatteryParams::htc_g2();
        // Full headroom: rate identical at any utilization.
        assert_eq!(p.rate_at_utilization(0.0), p.rate_at_utilization(1.0));
    }

    #[test]
    fn stepping_matches_analytic_time() {
        let mut b = BatteryModel::new(BatteryParams::htc_sensation(), 40.0);
        let dt = Micros::from_secs(1);
        let mut elapsed = Micros::ZERO;
        while !b.is_full() {
            b.step(dt, 0.0);
            elapsed += dt;
        }
        // 60% at 1%/min = 60 minutes.
        let mins = elapsed.as_hours_f64() * 60.0;
        assert!((mins - 60.0).abs() < 0.1, "stepped to full in {mins} min");
    }

    #[test]
    fn charge_saturates_at_100() {
        let mut b = BatteryModel::new(BatteryParams::htc_g2(), 99.9);
        b.step(Micros::from_mins(30), 0.0);
        assert_eq!(b.charge_pct(), 100.0);
        assert!(b.is_full());
    }

    #[test]
    fn linear_growth_between_steps() {
        let mut b = BatteryModel::new(BatteryParams::htc_sensation(), 0.0);
        b.step(Micros::from_mins(25), 0.0);
        assert!((b.charge_pct() - 25.0).abs() < 1e-9);
        b.step(Micros::from_mins(25), 0.0);
        assert!((b.charge_pct() - 50.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "invalid battery params")]
    fn busy_faster_than_idle_rejected() {
        let _ = BatteryModel::new(
            BatteryParams {
                idle_full_charge: Micros::from_mins(100),
                busy_full_charge: Micros::from_mins(90),
                headroom: 0.5,
                smoothing: Micros::from_secs(90),
            },
            0.0,
        );
    }

    #[test]
    fn duty_cycled_bursts_below_headroom_charge_like_idle() {
        // 30 s full-tilt / 30 s sleep = 50% sustained load, inside the
        // Sensation's 80% headroom → charging must be unaffected.
        let mut cycled = BatteryModel::new(BatteryParams::htc_sensation(), 0.0);
        let dt = Micros::from_millis(500);
        let mut now = Micros::ZERO;
        while !cycled.is_full() {
            let in_run_phase = (now.0 / 30_000_000) % 2 == 0;
            cycled.step(dt, if in_run_phase { 1.0 } else { 0.0 });
            now += dt;
        }
        let mins = now.as_hours_f64() * 60.0;
        assert!(
            (mins - 100.0).abs() < 2.0,
            "duty-cycled charge took {mins} min"
        );
    }

    #[test]
    fn sustained_load_is_not_masked_by_smoothing() {
        let mut b = BatteryModel::new(BatteryParams::htc_sensation(), 0.0);
        let dt = Micros::from_millis(500);
        let mut now = Micros::ZERO;
        while !b.is_full() {
            b.step(dt, 1.0);
            now += dt;
        }
        let mins = now.as_hours_f64() * 60.0;
        assert!(
            mins > 130.0,
            "sustained load must slow charging, took {mins} min"
        );
        assert!(b.smoothed_utilization() > 0.99);
    }

    #[test]
    fn time_to_gain_scales_with_pct() {
        let p = BatteryParams::htc_sensation();
        let one = p.time_to_gain(1.0, 0.0);
        let five = p.time_to_gain(5.0, 0.0);
        assert_eq!(five.0, one.0 * 5);
    }
}
