//! Execution-time model — the paper's CPU-clock scaling (§4.1).
//!
//! CWC profiles each task once, on the *slowest* phone in the fleet
//! (HTC G2, 806 MHz in the testbed), measuring `T_s` ms per KB of input.
//! A phone clocked at `A` MHz is then predicted to need `T_s · S / A`
//! ms/KB. Fig. 6 validates the model: most phones land on the y=x line,
//! a few run *faster* than predicted. [`CpuModel::efficiency`] captures
//! that residual: actual time = predicted time × efficiency, with
//! efficiency < 1 for the pleasant surprises.

use cwc_types::{CpuSpec, KiloBytes, Micros};

/// Clock of the profiling baseline phone (HTC G2) in MHz.
pub const BASELINE_CLOCK_MHZ: u32 = 806;

/// A phone CPU as the execution model sees it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuModel {
    /// Advertised spec (what the phone reports at registration — all the
    /// *scheduler* ever sees).
    pub spec: CpuSpec,
    /// Ground-truth multiplicative deviation from the clock-scaling
    /// prediction: actual = predicted × efficiency. 1.0 means the
    /// prediction is exact; 0.8 means the phone is 25% faster than its
    /// clock suggests (better IPC, faster flash, bigger cache).
    pub efficiency: f64,
}

impl CpuModel {
    /// A CPU that exactly follows the clock-scaling prediction.
    pub fn ideal(spec: CpuSpec) -> Self {
        CpuModel {
            spec,
            efficiency: 1.0,
        }
    }

    /// A CPU with an explicit efficiency factor.
    ///
    /// # Panics
    /// Panics unless `0 < efficiency <= 2`.
    pub fn with_efficiency(spec: CpuSpec, efficiency: f64) -> Self {
        assert!(
            efficiency > 0.0 && efficiency <= 2.0,
            "implausible efficiency {efficiency}"
        );
        CpuModel { spec, efficiency }
    }

    /// Predicted per-KB execution time in ms, given the task's profiled
    /// baseline cost (`T_s`, ms/KB on the 806 MHz phone). This is what the
    /// *scheduler* believes.
    pub fn predicted_ms_per_kb(&self, baseline_ms_per_kb: f64) -> f64 {
        baseline_ms_per_kb * f64::from(BASELINE_CLOCK_MHZ) / f64::from(self.spec.clock_mhz)
    }

    /// Ground-truth per-KB execution time in ms — what the phone actually
    /// takes, including the efficiency residual.
    pub fn actual_ms_per_kb(&self, baseline_ms_per_kb: f64) -> f64 {
        self.predicted_ms_per_kb(baseline_ms_per_kb) * self.efficiency
    }

    /// Ground-truth time to execute a task over `input` KB of data.
    pub fn exec_time(&self, baseline_ms_per_kb: f64, input: KiloBytes) -> Micros {
        Micros::from_ms_f64(self.actual_ms_per_kb(baseline_ms_per_kb) * input.as_f64())
    }

    /// Measured speedup of this CPU over the baseline for a task — the
    /// quantity on Fig. 6's y-axis.
    pub fn measured_speedup(&self, baseline_ms_per_kb: f64) -> f64 {
        baseline_ms_per_kb / self.actual_ms_per_kb(baseline_ms_per_kb)
    }

    /// Predicted speedup from clock ratio alone — Fig. 6's x-axis.
    pub fn predicted_speedup(&self) -> f64 {
        f64::from(self.spec.clock_mhz) / f64::from(BASELINE_CLOCK_MHZ)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpu(clock: u32) -> CpuModel {
        CpuModel::ideal(CpuSpec::new(clock, 2))
    }

    #[test]
    fn baseline_predicts_itself() {
        let c = cpu(BASELINE_CLOCK_MHZ);
        assert!((c.predicted_ms_per_kb(10.0) - 10.0).abs() < 1e-12);
        assert!((c.predicted_speedup() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn faster_clock_scales_linearly() {
        let c = cpu(1612); // exactly 2x the baseline
        assert!((c.predicted_ms_per_kb(10.0) - 5.0).abs() < 1e-12);
        assert!((c.predicted_speedup() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn efficiency_below_one_beats_prediction() {
        let fast = CpuModel::with_efficiency(CpuSpec::new(1200, 2), 0.8);
        let ideal = CpuModel::ideal(CpuSpec::new(1200, 2));
        assert!(fast.actual_ms_per_kb(10.0) < ideal.actual_ms_per_kb(10.0));
        assert!(fast.measured_speedup(10.0) > fast.predicted_speedup());
        // Ideal phone: measured == predicted speedup.
        assert!((ideal.measured_speedup(10.0) - ideal.predicted_speedup()).abs() < 1e-12);
    }

    #[test]
    fn exec_time_is_cost_times_size() {
        let c = cpu(806);
        // 10 ms/KB × 100 KB = 1 s.
        assert_eq!(c.exec_time(10.0, KiloBytes(100)), Micros::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "implausible efficiency")]
    fn zero_efficiency_rejected() {
        let _ = CpuModel::with_efficiency(CpuSpec::new(1000, 2), 0.0);
    }
}
