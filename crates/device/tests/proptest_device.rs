//! Property tests for the device models: battery monotonicity and
//! ordering, throttle convergence, CPU-model consistency.

use cwc_device::throttle::{simulate_charge, ChargePolicy, ThrottleConfig};
use cwc_device::{BatteryModel, BatteryParams, CpuModel};
use cwc_types::{CpuSpec, KiloBytes, Micros};
use proptest::prelude::*;

fn params_strategy() -> impl Strategy<Value = BatteryParams> {
    (60u64..180, 0u64..80, 0.3..1.0f64, 30u64..300).prop_map(
        |(idle_min, extra_min, headroom, smooth_s)| BatteryParams {
            idle_full_charge: Micros::from_mins(idle_min),
            busy_full_charge: Micros::from_mins(idle_min + extra_min),
            headroom,
            smoothing: Micros::from_secs(smooth_s),
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn charge_is_monotone_under_any_utilization_trace(
        params in params_strategy(),
        utils in proptest::collection::vec(0.0..1.0f64, 1..200),
        start in 0.0..99.0f64,
    ) {
        let mut b = BatteryModel::new(params, start);
        let mut last = b.charge_pct();
        for u in utils {
            b.step(Micros::from_secs(30), u);
            prop_assert!(b.charge_pct() >= last - 1e-12, "charge went down");
            prop_assert!(b.charge_pct() <= 100.0);
            prop_assert!((0.0..=1.0).contains(&b.smoothed_utilization()));
            last = b.charge_pct();
        }
    }

    #[test]
    fn busier_is_never_faster(params in params_strategy(), u1 in 0.0..1.0f64, u2 in 0.0..1.0f64) {
        let (lo, hi) = if u1 <= u2 { (u1, u2) } else { (u2, u1) };
        // Higher sustained utilization can never *increase* the charge rate.
        prop_assert!(
            params.rate_at_utilization(hi) <= params.rate_at_utilization(lo) + 1e-18
        );
    }

    #[test]
    fn throttled_charge_completes_between_idle_and_heavy(params in params_strategy()) {
        let sample = Micros::from_mins(10);
        let idle = simulate_charge(params, ChargePolicy::Idle, 0.0, sample);
        let heavy = simulate_charge(params, ChargePolicy::Heavy, 0.0, sample);
        let throttled = simulate_charge(
            params,
            ChargePolicy::Throttled(ThrottleConfig::default()),
            0.0,
            sample,
        );
        prop_assert!(idle.full_at <= heavy.full_at);
        // Allow a small discretization slack on both ends.
        prop_assert!(
            throttled.full_at >= idle.full_at.saturating_sub(Micros::from_secs(5)),
            "throttled {} beat idle {}", throttled.full_at, idle.full_at
        );
        prop_assert!(
            throttled.full_at <= heavy.full_at + Micros::from_secs(5),
            "throttled {} lost to heavy {}", throttled.full_at, heavy.full_at
        );
        // The throttle always gets *some* compute done.
        prop_assert!(throttled.cpu_time > Micros::ZERO);
    }

    #[test]
    fn cpu_exec_time_scales_linearly_in_input(
        clock in 500u32..2_000,
        eff in 0.5..1.5f64,
        base in 1.0..200.0f64,
        kb in 1u64..5_000,
    ) {
        let cpu = CpuModel::with_efficiency(CpuSpec::new(clock, 2), eff);
        let one = cpu.exec_time(base, KiloBytes(kb));
        let two = cpu.exec_time(base, KiloBytes(kb * 2));
        let ratio = two.0 as f64 / one.0.max(1) as f64;
        prop_assert!((ratio - 2.0).abs() < 0.01, "ratio {ratio}");
        // Faster clock → strictly less time (same efficiency).
        let faster = CpuModel::with_efficiency(CpuSpec::new(clock * 2, 2), eff);
        prop_assert!(faster.exec_time(base, KiloBytes(kb)) < one);
    }

    #[test]
    fn measured_speedup_inverts_efficiency(
        clock in 807u32..2_000,
        eff in 0.5..1.5f64,
        base in 1.0..200.0f64,
    ) {
        let cpu = CpuModel::with_efficiency(CpuSpec::new(clock, 2), eff);
        let expected = cpu.predicted_speedup() / eff;
        prop_assert!((cpu.measured_speedup(base) - expected).abs() < 1e-9);
    }
}
