//! The §3.1 bandwidth-variability experiment (Fig. 5).
//!
//! Setup from the paper: a central server holds 600 files; 6 phones with
//! *identical CPU clocks* but different wireless bandwidths process them
//! (each file's task: find the largest integer). Dispatch is
//! first-come-first-served — the next queued file goes to the first phone
//! that becomes idle; the first 6 files ship in parallel. The measured
//! *turnaround* of a file is (result-returned time − enqueue time).
//!
//! Finding: with all 6 phones, the 90th-percentile turnaround is worse
//! than with only the 4 fast-linked phones — wireless bandwidth must be a
//! scheduling input, which is exactly what distinguishes CWC from
//! Condor-style CPU-only scheduling.

use cwc_device::Phone;
use cwc_types::{KiloBytes, Micros};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One file-processing record.
#[derive(Debug, Clone, Copy)]
pub struct FileRecord {
    /// Which phone processed it (fleet index).
    pub phone: usize,
    /// Turnaround: transfer + processing time of the file on its phone
    /// (the per-file service time Fig. 5 plots; the paper's 600 files
    /// queue at the server and dispatch as phones free up, so queueing
    /// shows up as `queue_wait`, not in the turnaround CDF).
    pub turnaround: Micros,
    /// Time the file waited before a phone picked it up.
    pub queue_wait: Micros,
}

/// Runs the FCFS dispatch experiment: `files` file sizes over `phones`,
/// with per-file compute cost `exec_ms_per_kb` at the phones' (identical)
/// clock. Returns per-file records in completion order.
pub fn fcfs_dispatch(
    phones: &mut [Phone],
    files: &[KiloBytes],
    baseline_ms_per_kb: f64,
) -> Vec<FileRecord> {
    assert!(!phones.is_empty());
    // (next idle time, phone index) min-heap.
    let mut idle: BinaryHeap<Reverse<(Micros, usize)>> = (0..phones.len())
        .map(|i| Reverse((Micros::ZERO, i)))
        .collect();
    let mut records = Vec::with_capacity(files.len());
    for &size in files {
        let Reverse((free_at, i)) = idle.pop().expect("heap never empties");
        let xfer = phones[i].transfer_time(free_at, size);
        let exec = phones[i].exec_time(baseline_ms_per_kb, size);
        let done = free_at + xfer + exec;
        records.push(FileRecord {
            phone: i,
            turnaround: xfer + exec,
            queue_wait: free_at,
        });
        idle.push(Reverse((done, i)));
    }
    records
}

/// Sorted turnaround values in ms (for CDF plotting).
pub fn turnaround_cdf_ms(records: &[FileRecord]) -> Vec<f64> {
    let mut v: Vec<f64> = records.iter().map(|r| r.turnaround.as_ms_f64()).collect();
    v.sort_by(f64::total_cmp);
    v
}

/// The value at percentile `p` (0–100) of a sorted series.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty());
    let idx = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwc_device::{BatteryParams, CpuModel, PhoneSpec};
    use cwc_net::link::{LinkConfig, LinkModel};
    use cwc_sim::RngStreams;
    use cwc_types::{CpuSpec, PhoneId, RadioTech};

    /// Six phones, identical 1.2 GHz CPUs, mixed link speeds (the paper's
    /// §3.1 configuration).
    fn fig5_phones(seed: u64) -> Vec<Phone> {
        let radios = [
            RadioTech::Wifi80211a,
            RadioTech::Wifi80211g,
            RadioTech::FourG,
            RadioTech::ThreeG,
            RadioTech::ThreeG,
            RadioTech::Edge,
        ];
        let streams = RngStreams::new(seed);
        radios
            .iter()
            .enumerate()
            .map(|(i, &radio)| {
                let spec = PhoneSpec {
                    id: PhoneId::from_index(i),
                    model: "HTC Sensation".into(),
                    cpu: CpuModel::ideal(CpuSpec::new(1200, 2)),
                    radio,
                    ram_kb: 1 << 20,
                    battery: BatteryParams::htc_sensation(),
                };
                let link = LinkModel::new(
                    LinkConfig::typical(radio),
                    streams.indexed_stream("fig5", i),
                );
                Phone::new(spec, link, 50.0)
            })
            .collect()
    }

    fn files(n: usize) -> Vec<KiloBytes> {
        (0..n)
            .map(|k| KiloBytes(20 + (k as u64 % 5) * 10))
            .collect()
    }

    #[test]
    fn every_file_is_processed_exactly_once() {
        let mut phones = fig5_phones(1);
        let records = fcfs_dispatch(&mut phones, &files(600), 2.0);
        assert_eq!(records.len(), 600);
    }

    #[test]
    fn dropping_slow_links_improves_tail_latency() {
        // Paper: 6 phones → 90th pct ≈ 1200 ms; best 4 links → ≈ 700 ms.
        let f = files(600);
        let mut all6 = fig5_phones(2);
        let all_records = fcfs_dispatch(&mut all6, &f, 2.0);
        let all_cdf = turnaround_cdf_ms(&all_records);

        let mut fast4: Vec<Phone> = fig5_phones(2)
            .into_iter()
            .filter(|p| p.spec().radio != RadioTech::Edge && p.spec().radio != RadioTech::ThreeG)
            .collect();
        // Keep exactly 4: the two WiFi + 4G... fig5_phones has 2×3G;
        // filter removed three phones, leaving 3 — re-add one 3G.
        if fast4.len() < 4 {
            let extra = fig5_phones(2)
                .into_iter()
                .find(|p| p.spec().radio == RadioTech::ThreeG)
                .unwrap();
            fast4.push(extra);
        }
        assert_eq!(fast4.len(), 4);
        let fast_records = fcfs_dispatch(&mut fast4, &f, 2.0);
        let fast_cdf = turnaround_cdf_ms(&fast_records);

        let p90_all = percentile(&all_cdf, 90.0);
        let p90_fast = percentile(&fast_cdf, 90.0);
        assert!(
            p90_fast < p90_all,
            "4 fast phones p90 {p90_fast:.0}ms should beat 6 phones p90 {p90_all:.0}ms"
        );
        // ...at the price of more queueing (the paper's caveat).
        let wait = |records: &[FileRecord]| {
            records
                .iter()
                .map(|r| r.queue_wait.as_ms_f64())
                .sum::<f64>()
                / records.len() as f64
        };
        assert!(
            wait(&fast_records) > wait(&all_records),
            "fewer phones must queue longer"
        );
    }

    #[test]
    fn slowest_link_dominates_the_tail() {
        let mut phones = fig5_phones(3);
        let records = fcfs_dispatch(&mut phones, &files(300), 2.0);
        let cdf = turnaround_cdf_ms(&records);
        // The EDGE phone's turnarounds should populate the top decile.
        let p99 = percentile(&cdf, 99.0);
        let edge_max = records
            .iter()
            .filter(|r| r.phone == 5)
            .map(|r| r.turnaround.as_ms_f64())
            .fold(0.0f64, f64::max);
        assert!(edge_max >= p99 * 0.8, "edge max {edge_max} vs p99 {p99}");
    }

    #[test]
    fn percentile_helper() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 50.0), 3.0);
        assert_eq!(percentile(&v, 100.0), 5.0);
    }
}
