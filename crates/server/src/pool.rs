//! A small dependency-free work-stealing thread pool for shard drivers.
//!
//! The sharded fleet driver ([`crate::shard`]) runs N independent kernel
//! shards; this pool executes their closures on a few OS threads with
//! classic work stealing: each worker owns a deque of task indices, pops
//! its own work LIFO, and steals FIFO from the busiest sibling when it
//! runs dry. Results are returned **by task index**, so the output is
//! identical no matter which worker ran what — thread interleaving can
//! never leak into a sharded run's output (the byte-identity contract of
//! DESIGN.md §15).
//!
//! Deliberately std-only (`thread::scope` + `Mutex`): the workspace
//! vendors no real crossbeam, and the pool runs a handful of coarse
//! shard-sized tasks, so deque contention is irrelevant.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One task slot: the closure goes in, the result comes out.
type TaskCell<F, T> = Mutex<(Option<F>, Option<T>)>;

/// What the pool observed while draining one batch.
#[derive(Debug, Clone, Default)]
pub struct PoolStats {
    /// Tasks a worker executed after stealing them from a sibling's deque.
    pub steals: u64,
    /// Tasks executed per worker, indexed by worker id.
    pub executed_by: Vec<u64>,
}

/// A fixed-width fork-join pool; see the module docs.
#[derive(Debug, Clone, Copy)]
pub struct WorkerPool {
    threads: usize,
}

impl WorkerPool {
    /// A pool of `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        WorkerPool {
            threads: threads.max(1),
        }
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every task to completion and returns the results in task
    /// order, plus steal statistics. Panics in a task propagate.
    pub fn run<T, F>(&self, tasks: Vec<F>) -> (Vec<T>, PoolStats)
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let n = tasks.len();
        let workers = self.threads.min(n.max(1));
        // Every slot is locked exactly twice (take, store), never contended.
        let cells: Vec<TaskCell<F, T>> = tasks
            .into_iter()
            .map(|f| Mutex::new((Some(f), None)))
            .collect();
        // Tasks are dealt round-robin so a contiguous prefix of slow
        // shards cannot pile onto one worker.
        let deques: Vec<Mutex<VecDeque<usize>>> = (0..workers)
            .map(|w| Mutex::new((w..n).step_by(workers).collect()))
            .collect();
        let steals = AtomicU64::new(0);
        let executed: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();

        let run_one = |idx: usize| {
            let mut cell = cells[idx].lock().expect("pool task cell poisoned");
            let task = cell.0.take().expect("pool task executed twice");
            cell.1 = Some(task());
        };
        std::thread::scope(|scope| {
            for w in 1..workers {
                let deques = &deques;
                let steals = &steals;
                let executed = &executed;
                let run_one = &run_one;
                scope.spawn(move || {
                    worker_loop(w, workers, deques, steals, &executed[w], run_one);
                });
            }
            // The caller's thread is worker 0.
            worker_loop(0, workers, &deques, &steals, &executed[0], &run_one);
        });

        let results = cells
            .into_iter()
            .map(|cell| {
                cell.into_inner()
                    .expect("pool task cell poisoned")
                    .1
                    .expect("pool task left no result")
            })
            .collect();
        let stats = PoolStats {
            steals: steals.load(Ordering::Relaxed),
            executed_by: executed.iter().map(|e| e.load(Ordering::Relaxed)).collect(),
        };
        (results, stats)
    }
}

/// One worker: drain own deque (LIFO), then steal (FIFO) until every
/// deque is empty. Termination is safe because tasks never spawn tasks —
/// once all deques are empty the batch is done.
fn worker_loop(
    me: usize,
    workers: usize,
    deques: &[Mutex<VecDeque<usize>>],
    steals: &AtomicU64,
    executed: &AtomicU64,
    run_one: &(impl Fn(usize) + Sync),
) {
    loop {
        let own = deques[me].lock().expect("pool deque poisoned").pop_back();
        if let Some(idx) = own {
            executed.fetch_add(1, Ordering::Relaxed);
            run_one(idx);
            continue;
        }
        // Steal from the sibling with the longest backlog (oldest first).
        let mut victim: Option<usize> = None;
        let mut backlog = 0;
        for (v, deque) in deques.iter().enumerate().take(workers) {
            if v == me {
                continue;
            }
            let len = deque.lock().expect("pool deque poisoned").len();
            if len > backlog {
                backlog = len;
                victim = Some(v);
            }
        }
        let Some(v) = victim else {
            return; // every deque empty: batch drained
        };
        let stolen = deques[v].lock().expect("pool deque poisoned").pop_front();
        if let Some(idx) = stolen {
            steals.fetch_add(1, Ordering::Relaxed);
            executed.fetch_add(1, Ordering::Relaxed);
            run_one(idx);
        }
        // Lost the race for the victim's last task: rescan.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_task_order() {
        let pool = WorkerPool::new(4);
        let tasks: Vec<_> = (0..32).map(|i| move || i * 10).collect();
        let (out, stats) = pool.run(tasks);
        assert_eq!(out, (0..32).map(|i| i * 10).collect::<Vec<_>>());
        assert_eq!(stats.executed_by.iter().sum::<u64>(), 32);
    }

    #[test]
    fn single_thread_pool_runs_everything_inline() {
        let pool = WorkerPool::new(1);
        let (out, stats) = pool.run((0..10).map(|i| move || i).collect::<Vec<_>>());
        assert_eq!(out.len(), 10);
        assert_eq!(stats.steals, 0);
        assert_eq!(stats.executed_by, vec![10]);
    }

    #[test]
    fn uneven_tasks_get_stolen() {
        // Worker 0 is dealt tasks {0, 2, 4, ...}; make its first task slow
        // so the sibling must steal the rest of its deque.
        let pool = WorkerPool::new(2);
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..16)
            .map(|i| {
                let f: Box<dyn FnOnce() -> usize + Send> = if i == 0 {
                    Box::new(move || {
                        std::thread::sleep(std::time::Duration::from_millis(50));
                        i
                    })
                } else {
                    Box::new(move || i)
                };
                f
            })
            .collect();
        let (out, _stats) = pool.run(tasks);
        assert_eq!(out, (0..16).collect::<Vec<_>>());
        // Steal count is timing-dependent on a 1-CPU host, so only the
        // result order is asserted here; determinism of the *output* is
        // the contract, not the interleaving.
    }

    #[test]
    fn more_threads_than_tasks_is_fine() {
        let pool = WorkerPool::new(8);
        let (out, _) = pool.run(vec![|| 1, || 2]);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn empty_batch() {
        let pool = WorkerPool::new(4);
        let (out, stats) = pool.run(Vec::<fn() -> u8>::new());
        assert!(out.is_empty());
        assert_eq!(stats.steals, 0);
    }
}
