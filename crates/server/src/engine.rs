//! The simulated central server: the paper's full control loop on the
//! discrete-event substrate.
//!
//! One `Engine::run` models an evaluation run end to end:
//!
//! 1. **Measure** — every phone runs the iperf-style bandwidth probe; the
//!    results become the `b_i` of this round.
//! 2. **Schedule** — the chosen algorithm (greedy / equal-split /
//!    round-robin) places all jobs.
//! 3. **Ship & execute** — per phone, strictly one partition at a time:
//!    copy executable (first time per phone–job pair) + input, then
//!    execute, then report; the report's measured runtime feeds the
//!    predictor (§4.1's online update).
//! 4. **Fail & migrate** — injected unplug events interrupt work. Online
//!    failures report progress + checkpoint immediately; offline failures
//!    surface only after 3 missed 30-second keep-alives, losing the
//!    partition's partial state. Residuals wait for the next scheduling
//!    instant and are packed over the still-available phones (§5).
//!
//! Everything observable (transfer/execute segments, completions,
//! reschedules, keep-alive timeouts) is emitted as structured events and
//! metrics on [`EngineConfig::obs`]; the Fig. 12 timelines come from the
//! recorded [`Segment`]s or, equivalently, from a JSONL event sink.

use crate::fleet::FleetBuilder;
use cwc_core::{RuntimePredictor, SchedProblem, Scheduler, SchedulerKind};
use cwc_device::Phone;
use cwc_sim::Simulation;
use cwc_types::{CwcError, CwcResult, JobId, JobKind, JobSpec, KiloBytes, Micros, PhoneId};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Engine knobs. Defaults follow the prototype (§6).
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Scheduling algorithm under test.
    pub scheduler: SchedulerKind,
    /// Application keep-alive period (30 s).
    pub keepalive_period: Micros,
    /// Missed keep-alives before an offline failure is declared (3).
    pub keepalive_misses: u32,
    /// Delay from failure detection to the next scheduling instant —
    /// the §5 grace period that lets briefly-unplugged phones return.
    pub reschedule_delay: Micros,
    /// Profiled baseline costs: program → `T_s` ms/KB on the 806 MHz
    /// phone.
    pub baselines: BTreeMap<String, f64>,
    /// Optional failure-prediction profile (the §3.1 extension): per
    /// phone (by fleet index), the probability of unplugging during the
    /// run, and how aggressively to price it (0 = ignore, 1 = full
    /// expected-rework inflation). Applied at every scheduling instant.
    pub reliability: Option<(Vec<f64>, f64)>,
    /// Record a human-readable event trace of the run (scheduling
    /// rounds, failures, migrations, completions). Off by default: the
    /// Fig. 13 sweep runs thousands of engines.
    pub trace_enabled: bool,
    /// Hard stop (safety net against unfinishable runs).
    pub horizon: Micros,
    /// Observability: the run emits structured events and metrics through
    /// this handle regardless of `trace_enabled` (which only controls the
    /// [`EngineOutcome::trace`] transcript). The default bundle has no
    /// sinks attached, so emission is a near-free no-op; attach a sink
    /// (e.g. [`cwc_obs::JsonlSink`]) to capture the run.
    pub obs: cwc_obs::Obs,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            scheduler: SchedulerKind::Greedy,
            keepalive_period: cwc_net::KEEPALIVE_PERIOD,
            keepalive_misses: cwc_net::KEEPALIVE_TOLERATED_MISSES,
            reschedule_delay: Micros::from_secs(60),
            baselines: paper_baselines(),
            reliability: None,
            trace_enabled: false,
            horizon: Micros::from_hours(12),
            obs: cwc_obs::Obs::new(),
        }
    }
}

/// Profiled `T_s` values for the evaluation programs, calibrated to the
/// prototype's Dalvik-era execution speeds (the paper's 150-task run
/// takes ≈1100 s on 18 phones; interpreted Java on 2012 handsets is an
/// order of magnitude slower than native code).
pub fn paper_baselines() -> BTreeMap<String, f64> {
    [
        ("primecount", 180.0),
        ("wordcount", 80.0),
        ("photoblur", 120.0),
        ("largestint", 25.0),
        ("logscan", 50.0),
        ("render", 400.0),
    ]
    .into_iter()
    .map(|(k, v)| (k.to_owned(), v))
    .collect()
}

/// An injected plug-state failure.
#[derive(Debug, Clone, Copy)]
pub struct FailureInjection {
    /// When the phone is unplugged.
    pub at: Micros,
    /// Which phone.
    pub phone: PhoneId,
    /// `true`: connectivity is lost too (offline failure — detected by
    /// keep-alive timeout, partial state lost). `false`: the phone
    /// reports the failure and its migration state (online failure).
    pub offline: bool,
    /// If set, the phone is plugged back in at this time.
    pub replug_at: Option<Micros>,
}

/// What a phone was doing during a recorded interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentKind {
    /// Receiving executable and/or input from the server (Fig. 12a's
    /// black stripes).
    Transfer,
    /// Executing locally (the white stretches).
    Execute,
}

/// One interval of phone activity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// The phone.
    pub phone: PhoneId,
    /// The *original* job this work belongs to.
    pub job: JobId,
    /// Transfer or execute.
    pub kind: SegmentKind,
    /// Interval start.
    pub start: Micros,
    /// Interval end.
    pub end: Micros,
    /// Whether this work item was a post-failure reassignment
    /// (Fig. 12c's shaded executions).
    pub rescheduled: bool,
}

/// Result of an engine run.
#[derive(Debug, Clone)]
pub struct EngineOutcome {
    /// Time the last job completed (the measured makespan).
    pub makespan: Micros,
    /// The scheduler's predicted makespan for the initial schedule, ms.
    pub predicted_makespan_ms: f64,
    /// Per-phone completion time of their initially assigned queues.
    pub phone_completion: Vec<Micros>,
    /// All recorded activity intervals.
    pub segments: Vec<Segment>,
    /// Pieces each original job was executed in (splits + reassignments).
    pub partitions_per_job: BTreeMap<JobId, usize>,
    /// Jobs fully processed.
    pub completed_jobs: usize,
    /// Total jobs submitted.
    pub total_jobs: usize,
    /// Number of work items that went through failure rescheduling.
    pub rescheduled_items: usize,
    /// The recorded event trace (empty unless
    /// [`EngineConfig::trace_enabled`]).
    pub trace: Vec<cwc_sim::TraceEntry>,
}

impl EngineOutcome {
    /// Fig. 12b's series: per-job split counts (pieces − 1), ascending.
    pub fn split_counts_sorted(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self
            .partitions_per_job
            .values()
            .map(|&n| n.saturating_sub(1))
            .collect();
        v.sort_unstable();
        v
    }

    /// Completion time of the last *non-rescheduled* work item — the
    /// "original makespan" against which Fig. 12c's +113 s is measured.
    pub fn original_work_makespan(&self) -> Micros {
        self.segments
            .iter()
            .filter(|s| !s.rescheduled)
            .map(|s| s.end)
            .max()
            .unwrap_or(Micros::ZERO)
    }
}

/// One shippable work item (an input partition bound to a phone).
#[derive(Debug, Clone)]
struct Work {
    original: JobId,
    program: String,
    exe_kb: KiloBytes,
    kb: KiloBytes,
    base_offset: KiloBytes,
    /// Migration state shipped with the partition. The timing model does
    /// not open it (live mode does), but it documents what travels and
    /// future link models may charge for its size.
    #[allow(dead_code)]
    resume: Option<Vec<u8>>,
    rescheduled: bool,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    Transferring,
    Executing { total: Micros },
}

#[derive(Debug)]
struct Active {
    work: Work,
    phase: Phase,
    started: Micros,
}

struct Rt {
    phone: Phone,
    queue: VecDeque<Work>,
    active: Option<Active>,
    /// Guards stale events after interruption.
    token: u64,
    connected: bool,
    /// Programs whose executable this phone already holds.
    has_exe: BTreeSet<String>,
}

/// A residual awaiting the next scheduling instant.
#[derive(Debug, Clone)]
struct PendingResidual {
    original: JobId,
    program: String,
    exe_kb: KiloBytes,
    kind: JobKind,
    kb: KiloBytes,
    base_offset: KiloBytes,
    resume: Option<Vec<u8>>,
}

#[derive(Debug)]
enum Ev {
    TransferDone { phone: usize, token: u64 },
    ExecDone { phone: usize, token: u64 },
    Inject { idx: usize },
    Replug { phone: usize },
    DetectOffline { phone: usize, token: u64 },
    ScheduleInstant,
}

/// The simulated central server.
pub struct Engine {
    config: EngineConfig,
    rts: Vec<Rt>,
    catalog: BTreeMap<JobId, JobSpec>,
    injections: Vec<FailureInjection>,
    predictor: RuntimePredictor,

    // Run state.
    progress: BTreeMap<JobId, u64>,
    completed_at: BTreeMap<JobId, Micros>,
    segments: Vec<Segment>,
    partitions: BTreeMap<JobId, usize>,
    failed: Vec<PendingResidual>,
    instant_pending: bool,
    reschedule_rounds: usize,
    rescheduled_items: usize,
    phone_completion: Vec<Micros>,
    predicted_makespan_ms: f64,
    /// Residuals from offline failures, parked until keep-alive timeout.
    pending_offline: Vec<(usize, u64, Vec<PendingResidual>)>,
}

impl Engine {
    /// Creates an engine over a fleet and a job batch.
    pub fn new(
        fleet: Vec<Phone>,
        jobs: Vec<JobSpec>,
        injections: Vec<FailureInjection>,
        config: EngineConfig,
    ) -> CwcResult<Self> {
        if fleet.is_empty() {
            return Err(CwcError::Config("empty fleet".into()));
        }
        let mut predictor = RuntimePredictor::new();
        for job in &jobs {
            let base = config.baselines.get(&job.program).ok_or_else(|| {
                CwcError::Config(format!("no profiled baseline for {:?}", job.program))
            })?;
            predictor.set_baseline(&job.program, *base);
        }
        let n = fleet.len();
        Ok(Engine {
            rts: fleet
                .into_iter()
                .map(|phone| Rt {
                    phone,
                    queue: VecDeque::new(),
                    active: None,
                    token: 0,
                    connected: true,
                    has_exe: Default::default(),
                })
                .collect(),
            catalog: jobs.iter().map(|j| (j.id, j.clone())).collect(),
            injections,
            predictor,
            progress: jobs.iter().map(|j| (j.id, 0)).collect(),
            completed_at: BTreeMap::new(),
            segments: Vec::new(),
            partitions: BTreeMap::new(),
            failed: Vec::new(),
            instant_pending: false,
            reschedule_rounds: 0,
            rescheduled_items: 0,
            phone_completion: vec![Micros::ZERO; n],
            predicted_makespan_ms: 0.0,
            pending_offline: Vec::new(),
            config,
        })
    }

    /// Runs the experiment to completion (or the horizon) and reports.
    pub fn run(self) -> CwcResult<EngineOutcome> {
        self.run_inner(false)
    }

    /// Ablation entry point: schedules as if every phone had the fleet's
    /// *mean* bandwidth (a Condor-style CPU-only scheduler) while the
    /// execution still pays the real per-phone link costs — quantifying
    /// what bandwidth-awareness buys (§3.1's argument).
    pub fn run_bandwidth_blind(self) -> CwcResult<EngineOutcome> {
        self.run_inner(true)
    }

    fn run_inner(mut self, bandwidth_blind: bool) -> CwcResult<EngineOutcome> {
        let mut sim: Simulation<Ev> = Simulation::new();

        // When tracing, collect this run's events off the (possibly
        // shared) bus; the collector is detached again before returning.
        let collector = if self.config.trace_enabled {
            let sink = std::sync::Arc::new(cwc_obs::MemorySink::new());
            let id = self.config.obs.bus.attach(sink.clone());
            Some((sink, id))
        } else {
            None
        };
        self.config.obs.emit(
            cwc_obs::Event::sim(0, "engine", "run.start")
                .field("phones", self.rts.len())
                .field("jobs", self.catalog.len())
                .field("scheduler", self.config.scheduler.label()),
        );

        // 1. Bandwidth measurement + initial schedule.
        let jobs: Vec<JobSpec> = {
            let mut v: Vec<JobSpec> = self.catalog.values().cloned().collect();
            v.sort_by_key(|j| j.id);
            v
        };
        // Only phones on a charger and connected participate in the
        // initial round (an overnight fleet may have late arrivals, which
        // join at later scheduling instants).
        let avail: Vec<usize> = (0..self.rts.len())
            .filter(|&i| self.rts[i].connected && self.rts[i].phone.plug_state().can_compute())
            .collect();
        if avail.is_empty() {
            return Err(CwcError::Infeasible(
                "no phone is plugged in at the initial scheduling instant".into(),
            ));
        }
        let mut infos = Vec::with_capacity(avail.len());
        for &i in &avail {
            infos.push(self.rts[i].phone.info(Micros::ZERO));
        }
        if bandwidth_blind {
            let mean = infos.iter().map(|i| i.bandwidth.0).sum::<f64>() / infos.len() as f64;
            for info in &mut infos {
                info.bandwidth = cwc_types::MsPerKb(mean);
            }
        }
        let programs: Vec<&str> = jobs.iter().map(|j| j.program.as_str()).collect();
        let mut c = Vec::with_capacity(infos.len());
        for info in &infos {
            c.push(
                programs
                    .iter()
                    .map(|p| self.predictor.c_ij(info, p))
                    .collect::<Vec<f64>>(),
            );
        }
        let mut problem = SchedProblem::new(infos, jobs, c)?;
        if let Some((probs, aggressiveness)) = &self.config.reliability {
            let per_avail: Vec<f64> = avail
                .iter()
                .map(|&i| probs.get(i).copied().unwrap_or(0.0))
                .collect();
            problem = cwc_core::derisk(&problem, &per_avail, *aggressiveness)?;
        }
        let schedule = cwc_obs::timed(&self.config.obs.metrics, "span.schedule_us", || {
            Scheduler::run_observed(self.config.scheduler, &problem, &self.config.obs)
        })?;
        schedule.validate(&problem)?;
        self.predicted_makespan_ms = schedule.predicted_makespan_ms;
        self.config.obs.emit(
            cwc_obs::Event::sim(0, "sched", "schedule.initial")
                .field("assignments", schedule.num_assignments())
                .field("phones", avail.len())
                .field("predicted_makespan_ms", schedule.predicted_makespan_ms)
                .field(
                    "msg",
                    format!(
                        "initial schedule: {} assignments over {} phones, predicted makespan {:.0} ms",
                        schedule.num_assignments(),
                        avail.len(),
                        schedule.predicted_makespan_ms
                    ),
                ),
        );

        for (slot, queue) in schedule.per_phone.iter().enumerate() {
            let i = avail[slot];
            for a in queue {
                let spec = &self.catalog[&a.job];
                self.rts[i].queue.push_back(Work {
                    original: a.job,
                    program: spec.program.clone(),
                    exe_kb: spec.exe_kb,
                    kb: a.input_kb,
                    base_offset: a.offset_kb,
                    resume: None,
                    rescheduled: false,
                });
            }
        }

        // 2. Kick off shipping and failure injections.
        for i in 0..self.rts.len() {
            self.start_next(&mut sim, i);
        }
        for idx in 0..self.injections.len() {
            let inj = self.injections[idx];
            sim.schedule_at(inj.at, Ev::Inject { idx });
            if let Some(replug) = inj.replug_at {
                let phone = self.phone_index(inj.phone)?;
                sim.schedule_at(replug, Ev::Replug { phone });
            }
        }

        // 3. Main loop.
        let horizon = self.config.horizon;
        let mut engine = self;
        sim.run_until(horizon, |sim, ev| engine.handle(sim, ev));

        // 4. Report.
        let completed_jobs = engine.completed_at.len();
        let makespan = engine
            .completed_at
            .values()
            .copied()
            .max()
            .unwrap_or(Micros::ZERO);
        let obs = &engine.config.obs;
        obs.emit(
            cwc_obs::Event::sim(sim.now().0, "engine", "run.complete")
                .field("completed_jobs", completed_jobs)
                .field("makespan_ms", makespan.as_ms_f64())
                .field("reschedule_rounds", engine.reschedule_rounds),
        );
        obs.metrics
            .set_gauge("engine.makespan_ms", makespan.as_ms_f64());
        obs.metrics
            .set_gauge("engine.completed_jobs", completed_jobs as f64);
        let trace = match collector {
            Some((sink, id)) => {
                obs.bus.detach(id);
                sink.take()
                    .into_iter()
                    // The transcript is a sim-time story; wall-clock
                    // events (scheduler convergence spans) stay on the
                    // bus-level sinks only.
                    .filter(|e| e.clock == cwc_obs::Clock::Sim)
                    .map(|e| cwc_sim::TraceEntry {
                        at: Micros(e.time_us),
                        message: e.message(),
                        scope: e.scope,
                    })
                    .collect()
            }
            None => Vec::new(),
        };
        Ok(EngineOutcome {
            makespan,
            predicted_makespan_ms: engine.predicted_makespan_ms,
            phone_completion: engine.phone_completion.clone(),
            segments: engine.segments.clone(),
            partitions_per_job: engine.partitions.clone(),
            completed_jobs,
            total_jobs: engine
                .catalog
                .values()
                .filter(|j| j.id.0 < RESIDUAL_BASE)
                .count(),
            rescheduled_items: engine.rescheduled_items,
            trace,
        })
    }

    fn phone_index(&self, id: PhoneId) -> CwcResult<usize> {
        self.rts
            .iter()
            .position(|rt| rt.phone.id() == id)
            .ok_or(CwcError::UnknownPhone(id))
    }

    /// Starts shipping the next queued work item on phone `i`, if idle,
    /// plugged and connected.
    fn start_next(&mut self, sim: &mut Simulation<Ev>, i: usize) {
        let now = sim.now();
        let rt = &mut self.rts[i];
        if rt.active.is_some() || !rt.connected || !rt.phone.plug_state().can_compute() {
            return;
        }
        let Some(work) = rt.queue.pop_front() else {
            return;
        };
        // Executable shipped once per phone–program pair.
        let exe = if rt.has_exe.contains(&work.program) {
            KiloBytes::ZERO
        } else {
            work.exe_kb
        };
        let xfer = rt.phone.transfer_time(now, exe + work.kb);
        rt.token += 1;
        let token = rt.token;
        rt.active = Some(Active {
            work,
            phase: Phase::Transferring,
            started: now,
        });
        sim.schedule_after(xfer, Ev::TransferDone { phone: i, token });
    }

    fn handle(&mut self, sim: &mut Simulation<Ev>, ev: Ev) {
        match ev {
            Ev::TransferDone { phone, token } => self.on_transfer_done(sim, phone, token),
            Ev::ExecDone { phone, token } => self.on_exec_done(sim, phone, token),
            Ev::Inject { idx } => self.on_inject(sim, idx),
            Ev::Replug { phone } => self.on_replug(sim, phone),
            Ev::DetectOffline { phone, token } => self.on_detect_offline(sim, phone, token),
            Ev::ScheduleInstant => self.on_schedule_instant(sim),
        }
    }

    fn on_transfer_done(&mut self, sim: &mut Simulation<Ev>, i: usize, token: u64) {
        let now = sim.now();
        let rt = &mut self.rts[i];
        if rt.token != token {
            return; // stale: the work was interrupted
        }
        let Some(active) = rt.active.as_mut() else {
            return;
        };
        debug_assert_eq!(active.phase, Phase::Transferring);
        self.segments.push(Segment {
            phone: rt.phone.id(),
            job: active.work.original,
            kind: SegmentKind::Transfer,
            start: active.started,
            end: now,
            rescheduled: active.work.rescheduled,
        });
        // Executable bytes count only when this transfer actually carried
        // the program (once per phone–program pair).
        let shipped_exe = !rt.has_exe.contains(&active.work.program);
        let kb = active.work.kb
            + if shipped_exe {
                active.work.exe_kb
            } else {
                KiloBytes::ZERO
            };
        let obs = &self.config.obs;
        obs.metrics.observe(
            "span.transfer_ms",
            now.saturating_sub(active.started).as_ms_f64(),
        );
        obs.metrics
            .add(&format!("net.kb_transferred.{}", rt.phone.id()), kb.0);
        obs.emit(
            cwc_obs::Event::sim(now.0, "engine", "segment.transfer")
                .severity(cwc_obs::Severity::Debug)
                .field("phone", rt.phone.id().to_string())
                .field("job", active.work.original.to_string())
                .field("start_us", active.started.0)
                .field("kb", kb.0)
                .field("rescheduled", active.work.rescheduled),
        );
        rt.has_exe.insert(active.work.program.clone());
        // Ground-truth execution time, including this phone's efficiency
        // residual (what the scheduler cannot see).
        let baseline = self.config.baselines[&active.work.program];
        let total = rt.phone.exec_time(baseline, active.work.kb);
        active.phase = Phase::Executing { total };
        active.started = now;
        sim.schedule_after(total, Ev::ExecDone { phone: i, token });
    }

    fn on_exec_done(&mut self, sim: &mut Simulation<Ev>, i: usize, token: u64) {
        let now = sim.now();
        let rt = &mut self.rts[i];
        if rt.token != token {
            return;
        }
        let Some(active) = rt.active.take() else {
            return;
        };
        let Phase::Executing { total } = active.phase else {
            return;
        };
        self.segments.push(Segment {
            phone: rt.phone.id(),
            job: active.work.original,
            kind: SegmentKind::Execute,
            start: active.started,
            end: now,
            rescheduled: active.work.rescheduled,
        });
        self.config
            .obs
            .metrics
            .observe("span.execute_ms", total.as_ms_f64());
        self.config.obs.emit(
            cwc_obs::Event::sim(now.0, "engine", "segment.execute")
                .severity(cwc_obs::Severity::Debug)
                .field("phone", rt.phone.id().to_string())
                .field("job", active.work.original.to_string())
                .field("start_us", active.started.0)
                .field("kb", active.work.kb.0)
                .field("rescheduled", active.work.rescheduled),
        );
        if active.work.rescheduled {
            self.rescheduled_items += 1;
        }
        // The phone reports its measured local runtime; the predictor
        // refines c_ij (§4.1's online update).
        let info = rt.phone.info(now);
        self.predictor.observe(
            &info,
            &active.work.program,
            active.work.kb,
            total.as_ms_f64(),
        );

        *self.partitions.entry(active.work.original).or_insert(0) += 1;
        let done = self
            .progress
            .get_mut(&active.work.original)
            .expect("progress tracked for every original job");
        *done += active.work.kb.0;
        let target = self.catalog[&active.work.original].input_kb.0;
        debug_assert!(
            *done <= target,
            "over-completion of {}",
            active.work.original
        );
        if *done == target {
            self.completed_at.insert(active.work.original, now);
            self.config.obs.emit(
                cwc_obs::Event::sim(now.0, "engine", "job.complete")
                    .field("job", active.work.original.to_string())
                    .field("phone", rt.phone.id().to_string())
                    .field(
                        "msg",
                        format!("{} complete on {}", active.work.original, rt.phone.id()),
                    ),
            );
        }
        self.phone_completion[i] = now;
        self.start_next(sim, i);
    }

    fn on_inject(&mut self, sim: &mut Simulation<Ev>, idx: usize) {
        let now = sim.now();
        let inj = self.injections[idx];
        let Ok(i) = self.phone_index(inj.phone) else {
            return;
        };
        let rt = &mut self.rts[i];
        if !rt.phone.plug_state().can_compute() {
            return; // already failed
        }
        rt.phone.set_plug_state(cwc_device::PlugState::Unplugged);
        rt.token += 1; // invalidate in-flight events
        self.config.obs.metrics.inc("engine.failures_injected");
        self.config.obs.emit(
            cwc_obs::Event::sim(now.0, "failure", "phone.unplugged")
                .severity(cwc_obs::Severity::Warn)
                .field("phone", inj.phone.to_string())
                .field("offline", inj.offline)
                .field(
                    "msg",
                    format!(
                        "{} unplugged ({})",
                        inj.phone,
                        if inj.offline { "offline" } else { "online" }
                    ),
                ),
        );

        // Interrupted active work → residual.
        let active = rt.active.take();
        let mut residuals: Vec<PendingResidual> = Vec::new();
        if let Some(active) = active {
            let (processed, resume) = match (inj.offline, active.phase) {
                // Online executing failure: report watermark + checkpoint.
                (false, Phase::Executing { total }) => {
                    let elapsed = now.saturating_sub(active.started);
                    let kb = ((elapsed.0 as u128 * active.work.kb.0 as u128)
                        / total.0.max(1) as u128) as u64;
                    let kb = kb.min(active.work.kb.0.saturating_sub(1));
                    // Record the partial execution for the timeline.
                    self.segments.push(Segment {
                        phone: rt.phone.id(),
                        job: active.work.original,
                        kind: SegmentKind::Execute,
                        start: active.started,
                        end: now,
                        rescheduled: active.work.rescheduled,
                    });
                    (KiloBytes(kb), Some(vec![]))
                }
                // Everything else restarts the partition from scratch:
                // transfers carry no state, offline failures lose theirs.
                _ => (KiloBytes::ZERO, None),
            };
            // The checkpoint preserves the processed prefix: that work is
            // done and must count toward the job's coverage (the resumed
            // execution will only ever report the remainder).
            if !processed.is_zero() {
                *self
                    .progress
                    .get_mut(&active.work.original)
                    .expect("progress tracked for every original job") += processed.0;
            }
            let remaining = active.work.kb.saturating_sub(processed);
            if !remaining.is_zero() {
                residuals.push(PendingResidual {
                    original: active.work.original,
                    program: active.work.program.clone(),
                    exe_kb: active.work.exe_kb,
                    kind: self.catalog[&active.work.original].kind,
                    kb: remaining,
                    base_offset: active.work.base_offset + processed,
                    resume,
                });
            }
        }
        // Everything still queued fails with it (§5: "last_i and all the
        // remaining tasks in X_i").
        for w in rt.queue.drain(..) {
            residuals.push(PendingResidual {
                original: w.original,
                program: w.program,
                exe_kb: w.exe_kb,
                kind: self.catalog[&w.original].kind,
                kb: w.kb,
                base_offset: w.base_offset,
                resume: None,
            });
        }

        if inj.offline {
            rt.connected = false;
            // The server only learns at the keep-alive timeout.
            let detect =
                Micros(self.config.keepalive_period.0 * u64::from(self.config.keepalive_misses));
            let token = rt.token;
            self.failed_later(sim, residuals, detect, i, token);
        } else {
            self.failed.extend(residuals);
            self.request_instant(sim);
        }
    }

    /// Offline failures surface after the keep-alive timeout; park the
    /// residuals until then.
    fn failed_later(
        &mut self,
        sim: &mut Simulation<Ev>,
        residuals: Vec<PendingResidual>,
        delay: Micros,
        phone: usize,
        token: u64,
    ) {
        // Stash on the side keyed by phone; delivered in DetectOffline.
        self.pending_offline.push((phone, token, residuals));
        sim.schedule_after(delay, Ev::DetectOffline { phone, token });
    }

    fn on_detect_offline(&mut self, sim: &mut Simulation<Ev>, phone: usize, token: u64) {
        let Some(pos) = self
            .pending_offline
            .iter()
            .position(|(p, t, _)| *p == phone && *t == token)
        else {
            return;
        };
        let (_, _, residuals) = self.pending_offline.remove(pos);
        // The sim collapses the keep-alive probes into one timeout event;
        // the counter still reflects the individual misses that elapsed.
        let misses = u64::from(self.config.keepalive_misses);
        self.config.obs.metrics.add("engine.keepalive_miss", misses);
        let id = self.rts[phone].phone.id();
        self.config.obs.emit(
            cwc_obs::Event::sim(sim.now().0, "engine", "phone.offline_detected")
                .severity(cwc_obs::Severity::Warn)
                .field("phone", id.to_string())
                .field("keepalive_misses", misses)
                .field("lost_residuals", residuals.len())
                .field(
                    "msg",
                    format!("{id} declared offline after {misses} missed keep-alives"),
                ),
        );
        self.failed.extend(residuals);
        self.request_instant(sim);
    }

    fn on_replug(&mut self, sim: &mut Simulation<Ev>, i: usize) {
        let rt = &mut self.rts[i];
        rt.phone.set_plug_state(cwc_device::PlugState::Plugged);
        rt.connected = true;
        // Re-eligible at the next instant; if it still has nothing, any
        // pending failures will find it available.
        self.start_next(sim, i);
    }

    fn request_instant(&mut self, sim: &mut Simulation<Ev>) {
        if !self.instant_pending && !self.failed.is_empty() {
            self.instant_pending = true;
            sim.schedule_after(self.config.reschedule_delay, Ev::ScheduleInstant);
        }
    }

    fn on_schedule_instant(&mut self, sim: &mut Simulation<Ev>) {
        self.instant_pending = false;
        if self.failed.is_empty() {
            return;
        }
        self.reschedule_rounds += 1;
        if self.reschedule_rounds > 64 {
            return; // refuse to loop forever on an unschedulable residue
        }
        let now = sim.now();

        // Available phones: plugged and connected.
        let avail: Vec<usize> = (0..self.rts.len())
            .filter(|&i| self.rts[i].connected && self.rts[i].phone.plug_state().can_compute())
            .collect();
        if avail.is_empty() {
            // Try again later; maybe someone replugs.
            self.instant_pending = true;
            sim.schedule_after(self.config.reschedule_delay, Ev::ScheduleInstant);
            return;
        }

        // Build the residual scheduling problem. Fresh scheduling ids map
        // back to the residual records.
        let residuals = std::mem::take(&mut self.failed);
        let specs: Vec<JobSpec> = residuals
            .iter()
            .enumerate()
            .map(|(k, r)| JobSpec {
                id: JobId(RESIDUAL_BASE + k as u32),
                // A checkpointed residual is one continuation → atomic.
                kind: if r.resume.is_some() || r.kind.is_atomic() {
                    JobKind::Atomic
                } else {
                    JobKind::Breakable
                },
                program: r.program.clone(),
                exe_kb: r.exe_kb,
                input_kb: r.kb,
            })
            .collect();
        let infos: Vec<_> = avail.iter().map(|&i| self.rts[i].phone.info(now)).collect();
        let mut c = Vec::with_capacity(infos.len());
        for info in &infos {
            c.push(
                specs
                    .iter()
                    .map(|s| self.predictor.c_ij(info, &s.program))
                    .collect::<Vec<f64>>(),
            );
        }
        let problem = match SchedProblem::new(infos, specs, c) {
            Ok(p) => p,
            Err(_) => {
                self.failed = residuals;
                return;
            }
        };
        let problem = match &self.config.reliability {
            Some((probs, aggressiveness)) => {
                let per_avail: Vec<f64> = avail
                    .iter()
                    .map(|&i| probs.get(i).copied().unwrap_or(0.0))
                    .collect();
                match cwc_core::derisk(&problem, &per_avail, *aggressiveness) {
                    Ok(p) => p,
                    Err(_) => problem,
                }
            }
            None => problem,
        };
        let scheduled = cwc_obs::timed(&self.config.obs.metrics, "span.schedule_us", || {
            Scheduler::run_observed(self.config.scheduler, &problem, &self.config.obs)
        });
        let schedule = match scheduled {
            Ok(s) => s,
            Err(_) => {
                // Unschedulable right now; retry later.
                self.failed = residuals;
                self.instant_pending = true;
                sim.schedule_after(self.config.reschedule_delay, Ev::ScheduleInstant);
                return;
            }
        };
        // Runtime invariant check (debug builds and tests): the residual
        // round must requeue every failed chunk exactly once, and the
        // schedule built over the residuals must satisfy every SCH
        // constraint (atomic unsplit, RAM capacity, full coverage).
        if cfg!(debug_assertions) {
            if let Err(violation) = cwc_core::schedule::validate_requeue(
                residuals
                    .iter()
                    .map(|r| (r.original, r.base_offset.0, r.kb.0)),
            ) {
                panic!(
                    "reschedule round {}: requeue invariant violated: {violation}",
                    self.reschedule_rounds
                );
            }
            if let Err(violation) = cwc_core::schedule::validate(&schedule, &problem) {
                panic!(
                    "reschedule round {}: invalid residual schedule: {violation}",
                    self.reschedule_rounds
                );
            }
        }
        self.config.obs.metrics.inc("engine.reschedule_rounds");
        self.config.obs.emit(
            cwc_obs::Event::sim(now.0, "sched", "schedule.round")
                .field("round", self.reschedule_rounds)
                .field("residuals", schedule.num_assignments())
                .field("phones", avail.len())
                .field(
                    "msg",
                    format!(
                        "reschedule round {}: {} residuals over {} phones",
                        self.reschedule_rounds,
                        schedule.num_assignments(),
                        avail.len()
                    ),
                ),
        );
        for (slot, queue) in schedule.per_phone.iter().enumerate() {
            let i = avail[slot];
            for a in queue {
                let r = &residuals[(a.job.0 - RESIDUAL_BASE) as usize];
                self.rts[i].queue.push_back(Work {
                    original: r.original,
                    program: r.program.clone(),
                    exe_kb: r.exe_kb,
                    kb: a.input_kb,
                    base_offset: r.base_offset + a.offset_kb,
                    resume: r.resume.clone(),
                    rescheduled: true,
                });
            }
            self.start_next(sim, i);
        }
    }
}

/// Scheduling-id namespace for residuals (original job ids stay small).
const RESIDUAL_BASE: u32 = 1_000_000;

impl Engine {
    /// Convenience: build the paper's default 18-phone fleet and run the
    /// given jobs with this config.
    pub fn run_on_testbed(
        seed: u64,
        jobs: Vec<JobSpec>,
        injections: Vec<FailureInjection>,
        config: EngineConfig,
    ) -> CwcResult<EngineOutcome> {
        let fleet = FleetBuilder::new(seed).build();
        Engine::new(fleet, jobs, injections, config)?.run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{paper_workload, WorkloadBuilder};

    fn small_jobs(n: usize) -> Vec<JobSpec> {
        WorkloadBuilder::new(1)
            .breakable(n, "primecount", 30, 100, 400)
            .build()
    }

    #[test]
    fn completes_all_jobs_without_failures() {
        let out =
            Engine::run_on_testbed(1, small_jobs(10), vec![], EngineConfig::default()).unwrap();
        assert_eq!(out.completed_jobs, 10);
        assert!(out.makespan > Micros::ZERO);
        assert!(!out.segments.is_empty());
        assert_eq!(out.rescheduled_items, 0);
    }

    #[test]
    fn segments_are_well_formed() {
        let out =
            Engine::run_on_testbed(2, small_jobs(8), vec![], EngineConfig::default()).unwrap();
        for s in &out.segments {
            assert!(s.end >= s.start, "segment ends before it starts");
        }
        // Per phone: non-overlapping, ordered activity.
        for i in 0..18u32 {
            let mut last_end = Micros::ZERO;
            for s in out.segments.iter().filter(|s| s.phone == PhoneId(i)) {
                assert!(s.start >= last_end, "overlapping segments on phone {i}");
                last_end = s.end;
            }
        }
    }

    #[test]
    fn prediction_is_in_the_ballpark_of_reality() {
        // Fig. 12a: predicted 1120 s vs actual 1100 s (≈2%). Allow a
        // wider band: the efficiency outliers make phones finish early.
        let out =
            Engine::run_on_testbed(3, paper_workload(3), vec![], EngineConfig::default()).unwrap();
        let predicted = out.predicted_makespan_ms / 1_000.0;
        let actual = out.makespan.as_secs_f64();
        assert!(out.completed_jobs == 150);
        let ratio = predicted / actual;
        assert!(
            (0.8..1.35).contains(&ratio),
            "predicted {predicted:.0}s vs actual {actual:.0}s (ratio {ratio:.2})"
        );
    }

    #[test]
    fn online_failure_is_rescheduled_and_everything_completes() {
        // Enough work that every phone holds a queue, failed early enough
        // that the victims are mid-flight.
        let jobs = WorkloadBuilder::new(1)
            .breakable(40, "primecount", 30, 300, 900)
            .build();
        let injections = vec![
            FailureInjection {
                at: Micros::from_secs(5),
                phone: PhoneId(0),
                offline: false,
                replug_at: None,
            },
            FailureInjection {
                at: Micros::from_secs(8),
                phone: PhoneId(7),
                offline: false,
                replug_at: None,
            },
        ];
        let out = Engine::run_on_testbed(4, jobs, injections, EngineConfig::default()).unwrap();
        assert_eq!(
            out.completed_jobs, 40,
            "all jobs must finish despite the failures"
        );
        // The failed phones' residuals ran somewhere.
        assert!(out.segments.iter().any(|s| s.rescheduled));
        assert!(out.rescheduled_items > 0);
    }

    #[test]
    fn offline_failure_detected_after_keepalive_timeout() {
        let jobs = small_jobs(12);
        let injections = vec![FailureInjection {
            at: Micros::from_secs(30),
            phone: PhoneId(1),
            offline: true,
            replug_at: None,
        }];
        let cfg = EngineConfig::default();
        let detect_after = Micros(cfg.keepalive_period.0 * u64::from(cfg.keepalive_misses));
        let out = Engine::run_on_testbed(5, jobs, injections, cfg).unwrap();
        assert_eq!(out.completed_jobs, 12);
        // No rescheduled work can *start* before the offline detection +
        // grace delay (30 s + 90 s + 60 s = 180 s).
        let earliest = out
            .segments
            .iter()
            .filter(|s| s.rescheduled)
            .map(|s| s.start)
            .min();
        if let Some(earliest) = earliest {
            assert!(
                earliest >= Micros::from_secs(30) + detect_after,
                "rescheduled work started at {earliest} before detection"
            );
        }
    }

    #[test]
    fn failed_phone_executes_nothing_after_unplug() {
        let jobs = WorkloadBuilder::new(2)
            .breakable(40, "primecount", 30, 300, 900)
            .build();
        let fail_at = Micros::from_secs(20);
        let injections = vec![FailureInjection {
            at: fail_at,
            phone: PhoneId(2),
            offline: false,
            replug_at: None,
        }];
        let out = Engine::run_on_testbed(6, jobs, injections, EngineConfig::default()).unwrap();
        for s in out.segments.iter().filter(|s| s.phone == PhoneId(2)) {
            assert!(
                s.end <= fail_at || s.start < fail_at,
                "phone-2 activity after unplug: {s:?}"
            );
        }
        assert_eq!(out.completed_jobs, 40);
    }

    #[test]
    fn replug_allows_failed_phone_to_work_again() {
        let jobs = small_jobs(30);
        let injections = vec![FailureInjection {
            at: Micros::from_secs(10),
            phone: PhoneId(0),
            offline: false,
            replug_at: Some(Micros::from_secs(40)),
        }];
        let out = Engine::run_on_testbed(7, jobs, injections, EngineConfig::default()).unwrap();
        assert_eq!(out.completed_jobs, 30);
    }

    #[test]
    fn greedy_beats_baselines_on_the_paper_workload() {
        let jobs = paper_workload(11);
        let mut makespans = std::collections::HashMap::new();
        for kind in SchedulerKind::ALL {
            let cfg = EngineConfig {
                scheduler: kind,
                ..Default::default()
            };
            let out = Engine::run_on_testbed(11, jobs.clone(), vec![], cfg).unwrap();
            assert_eq!(out.completed_jobs, 150, "{kind:?} incomplete");
            makespans.insert(kind, out.makespan.as_secs_f64());
        }
        let greedy = makespans[&SchedulerKind::Greedy];
        let eq = makespans[&SchedulerKind::EqualSplit];
        let rr = makespans[&SchedulerKind::RoundRobin];
        // Paper: greedy ≈1.6× faster than both.
        assert!(
            eq / greedy > 1.2,
            "equal-split {eq:.0}s vs greedy {greedy:.0}s"
        );
        assert!(
            rr / greedy > 1.2,
            "round-robin {rr:.0}s vs greedy {greedy:.0}s"
        );
    }

    #[test]
    fn partition_counts_cover_every_job() {
        let out =
            Engine::run_on_testbed(8, paper_workload(8), vec![], EngineConfig::default()).unwrap();
        assert_eq!(out.partitions_per_job.len(), 150);
        // Fig. 12b: ~90% of tasks unpartitioned under greedy.
        let splits = out.split_counts_sorted();
        let unsplit = splits.iter().filter(|&&s| s == 0).count();
        assert!(
            unsplit * 100 >= splits.len() * 70,
            "only {unsplit}/150 tasks unsplit"
        );
    }
}
