//! The simulated central server: a thin discrete-event driver around the
//! sans-IO coordinator kernel ([`crate::coord`]).
//!
//! One `Engine::run` models an evaluation run end to end:
//!
//! 1. **Measure** — every phone runs the iperf-style bandwidth probe; the
//!    results become the `b_i` of this round.
//! 2. **Schedule** — the chosen algorithm (greedy / equal-split /
//!    round-robin) places all jobs.
//! 3. **Ship & execute** — per phone, strictly one partition at a time:
//!    copy executable (first time per phone–job pair) + input, then
//!    execute, then report; the report's measured runtime feeds the
//!    predictor (§4.1's online update).
//! 4. **Fail & migrate** — injected unplug events interrupt work. Online
//!    failures report progress + checkpoint immediately; offline failures
//!    surface only after 3 missed 30-second keep-alives, losing the
//!    partition's partial state. Residuals wait for the next scheduling
//!    instant and are packed over the still-available phones (§5).
//!    Rescheduling instants under the solver policy warm-start the
//!    greedy capacity search from the previous instant's converged
//!    window ([`cwc_core::WarmStart`], DESIGN.md §10), cutting packing
//!    work without changing any schedule the cold search would accept.
//!
//! All of that *logic* lives in the kernel; this module only owns what a
//! driver must — the phone physics (transfer/execute durations, link and
//! efficiency randomness), the discrete-event queue that delivers kernel
//! timers, and the [`Segment`] timeline the Fig. 12 plots are drawn from.
//! Everything observable is emitted as structured events and metrics on
//! [`EngineConfig::obs`].

use crate::coord::{
    CoordCommand, CoordEvent, DriverStyle, Kernel, KernelConfig, ReschedulePolicy, TimerKind,
    RESIDUAL_BASE,
};
use crate::fleet::FleetBuilder;
use cwc_core::SchedulerKind;
use cwc_device::Phone;
use cwc_sim::Simulation;
use cwc_types::{CwcError, CwcResult, JobId, JobSpec, KiloBytes, Micros, PhoneId};
use std::collections::BTreeMap;

/// Engine knobs. Defaults follow the prototype (§6).
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Scheduling algorithm under test.
    pub scheduler: SchedulerKind,
    /// Application keep-alive period (30 s).
    pub keepalive_period: Micros,
    /// Missed keep-alives before an offline failure is declared (3).
    pub keepalive_misses: u32,
    /// Delay from failure detection to the next scheduling instant —
    /// the §5 grace period that lets briefly-unplugged phones return.
    pub reschedule_delay: Micros,
    /// Profiled baseline costs: program → `T_s` ms/KB on the 806 MHz
    /// phone.
    pub baselines: BTreeMap<String, f64>,
    /// Optional failure-prediction profile (the §3.1 extension): per
    /// phone (by fleet index), the probability of unplugging during the
    /// run, and how aggressively to price it (0 = ignore, 1 = full
    /// expected-rework inflation). Applied at every scheduling instant.
    pub reliability: Option<(Vec<f64>, f64)>,
    /// Per-job service classes (DESIGN.md §12): `Deadline` jobs are
    /// admitted/shipped ahead of best-effort work at every scheduling
    /// instant, and their completion is scored against the deadline.
    pub slo: BTreeMap<JobId, cwc_types::SloClass>,
    /// Risk-driven replication of atomic placements (DESIGN.md §12):
    /// requires `reliability` to supply the per-phone unplug predictions.
    pub replication: Option<cwc_core::ReplicationPolicy>,
    /// Speculative re-execution of stragglers (DESIGN.md §12).
    pub speculation: Option<cwc_core::SpeculationPolicy>,
    /// Record a human-readable event trace of the run (scheduling
    /// rounds, failures, migrations, completions). Off by default: the
    /// Fig. 13 sweep runs thousands of engines.
    pub trace_enabled: bool,
    /// Hard stop (safety net against unfinishable runs).
    pub horizon: Micros,
    /// Observability: the run emits structured events and metrics through
    /// this handle regardless of `trace_enabled` (which only controls the
    /// [`EngineOutcome::trace`] transcript). The default bundle has no
    /// sinks attached, so emission is a near-free no-op; attach a sink
    /// (e.g. [`cwc_obs::JsonlSink`]) to capture the run.
    pub obs: cwc_obs::Obs,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            scheduler: SchedulerKind::Greedy,
            keepalive_period: cwc_net::KEEPALIVE_PERIOD,
            keepalive_misses: cwc_net::KEEPALIVE_TOLERATED_MISSES,
            reschedule_delay: Micros::from_secs(60),
            baselines: paper_baselines(),
            reliability: None,
            slo: BTreeMap::new(),
            replication: None,
            speculation: None,
            trace_enabled: false,
            horizon: Micros::from_hours(12),
            obs: cwc_obs::Obs::new(),
        }
    }
}

/// Profiled `T_s` values for the evaluation programs, calibrated to the
/// prototype's Dalvik-era execution speeds (the paper's 150-task run
/// takes ≈1100 s on 18 phones; interpreted Java on 2012 handsets is an
/// order of magnitude slower than native code).
pub fn paper_baselines() -> BTreeMap<String, f64> {
    [
        ("primecount", 180.0),
        ("wordcount", 80.0),
        ("photoblur", 120.0),
        ("largestint", 25.0),
        ("logscan", 50.0),
        ("render", 400.0),
    ]
    .into_iter()
    .map(|(k, v)| (k.to_owned(), v))
    .collect()
}

/// An injected plug-state failure.
#[derive(Debug, Clone, Copy)]
pub struct FailureInjection {
    /// When the phone is unplugged.
    pub at: Micros,
    /// Which phone.
    pub phone: PhoneId,
    /// `true`: connectivity is lost too (offline failure — detected by
    /// keep-alive timeout, partial state lost). `false`: the phone
    /// reports the failure and its migration state (online failure).
    pub offline: bool,
    /// If set, the phone is plugged back in at this time.
    pub replug_at: Option<Micros>,
}

/// What a phone was doing during a recorded interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentKind {
    /// Receiving executable and/or input from the server (Fig. 12a's
    /// black stripes).
    Transfer,
    /// Executing locally (the white stretches).
    Execute,
}

/// One interval of phone activity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// The phone.
    pub phone: PhoneId,
    /// The *original* job this work belongs to.
    pub job: JobId,
    /// Transfer or execute.
    pub kind: SegmentKind,
    /// Interval start.
    pub start: Micros,
    /// Interval end.
    pub end: Micros,
    /// Whether this work item was a post-failure reassignment
    /// (Fig. 12c's shaded executions).
    pub rescheduled: bool,
}

/// Result of an engine run.
#[derive(Debug, Clone)]
pub struct EngineOutcome {
    /// Time the last job completed (the measured makespan).
    pub makespan: Micros,
    /// The scheduler's predicted makespan for the initial schedule, ms.
    pub predicted_makespan_ms: f64,
    /// Per-phone completion time of their initially assigned queues.
    pub phone_completion: Vec<Micros>,
    /// All recorded activity intervals.
    pub segments: Vec<Segment>,
    /// Pieces each original job was executed in (splits + reassignments).
    pub partitions_per_job: BTreeMap<JobId, usize>,
    /// Jobs fully processed.
    pub completed_jobs: usize,
    /// Total jobs submitted.
    pub total_jobs: usize,
    /// Number of work items that went through failure rescheduling.
    pub rescheduled_items: usize,
    /// Per-job completion times, keyed by job id. The sharded driver
    /// ([`crate::shard`]) merges these across kernels; `makespan` is
    /// their maximum.
    pub completed_at: BTreeMap<JobId, Micros>,
    /// The kernel's graceful-degradation summary when the whole fleet
    /// died with work outstanding (`None` on any run with a survivor).
    /// Feeds the cross-shard residual-stealing protocol.
    pub fleet_loss: Option<crate::coord::FleetLoss>,
    /// Phones still marked dead when the run ended (a replugged phone is
    /// alive again and not counted). Under the solver reschedule policy
    /// a fully-dead fleet parks its residuals waiting for a replug that
    /// may never come, so `fleet_loss` alone understates shard death —
    /// the sharded driver reads this to classify steal-round survivors.
    pub workers_lost: usize,
    /// Of the phones ever lost, how many the circuit breaker quarantined.
    pub quarantined_workers: usize,
    /// The recorded event trace (empty unless
    /// [`EngineConfig::trace_enabled`]).
    pub trace: Vec<cwc_sim::TraceEntry>,
}

impl EngineOutcome {
    /// Fig. 12b's series: per-job split counts (pieces − 1), ascending.
    pub fn split_counts_sorted(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self
            .partitions_per_job
            .values()
            .map(|&n| n.saturating_sub(1))
            .collect();
        v.sort_unstable();
        v
    }

    /// Completion time of the last *non-rescheduled* work item — the
    /// "original makespan" against which Fig. 12c's +113 s is measured.
    pub fn original_work_makespan(&self) -> Micros {
        self.segments
            .iter()
            .filter(|s| !s.rescheduled)
            .map(|s| s.end)
            .max()
            .unwrap_or(Micros::ZERO)
    }
}

/// What a phone is doing right now, from the driver's point of view.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    Transferring,
    Executing { total: Micros },
}

/// The driver-side mirror of one in-flight `ShipInput`: just enough to
/// model the physics (durations) and draw the timeline. The authoritative
/// task state lives in the kernel.
#[derive(Debug)]
struct Flight {
    seq: u64,
    job: JobId,
    program: String,
    kb: KiloBytes,
    /// Input + executable actually on the wire (for the transfer metric).
    shipped_kb: KiloBytes,
    rescheduled: bool,
    started: Micros,
    phase: Phase,
    /// Causal context from the kernel's `ShipInput`; stamped onto the
    /// transfer/execute segment events so sim lifecycles form span trees.
    trace: cwc_obs::TraceCtx,
}

struct Rt {
    phone: Phone,
    flight: Option<Flight>,
}

#[derive(Debug)]
enum Ev {
    TransferDone {
        slot: usize,
        seq: u64,
    },
    ExecDone {
        slot: usize,
        seq: u64,
    },
    Inject {
        idx: usize,
    },
    Replug {
        slot: usize,
    },
    Timer {
        kind: TimerKind,
        slot: usize,
        token: u64,
    },
}

/// The simulated central server.
pub struct Engine {
    config: EngineConfig,
    fleet: Vec<Phone>,
    jobs: Vec<JobSpec>,
    injections: Vec<FailureInjection>,
}

impl Engine {
    /// Creates an engine over a fleet and a job batch.
    pub fn new(
        fleet: Vec<Phone>,
        jobs: Vec<JobSpec>,
        injections: Vec<FailureInjection>,
        config: EngineConfig,
    ) -> CwcResult<Self> {
        if fleet.is_empty() {
            return Err(CwcError::Config("empty fleet".into()));
        }
        for job in &jobs {
            if !config.baselines.contains_key(&job.program) {
                return Err(CwcError::Config(format!(
                    "no profiled baseline for {:?}",
                    job.program
                )));
            }
        }
        Ok(Engine {
            config,
            fleet,
            jobs,
            injections,
        })
    }

    /// Runs the experiment to completion (or the horizon) and reports.
    pub fn run(self) -> CwcResult<EngineOutcome> {
        self.run_inner(false)
    }

    /// Ablation entry point: schedules as if every phone had the fleet's
    /// *mean* bandwidth (a Condor-style CPU-only scheduler) while the
    /// execution still pays the real per-phone link costs — quantifying
    /// what bandwidth-awareness buys (§3.1's argument).
    pub fn run_bandwidth_blind(self) -> CwcResult<EngineOutcome> {
        self.run_inner(true)
    }

    fn run_inner(self, bandwidth_blind: bool) -> CwcResult<EngineOutcome> {
        let mut sim: Simulation<Ev> = Simulation::new();

        // When tracing, collect this run's events off the (possibly
        // shared) bus; the collector is detached again before returning.
        let collector = if self.config.trace_enabled {
            let sink = std::sync::Arc::new(cwc_obs::MemorySink::new());
            let id = self.config.obs.bus.attach(sink.clone());
            Some((sink, id))
        } else {
            None
        };
        self.config.obs.emit(
            cwc_obs::Event::sim(0, "engine", "run.start")
                .field("phones", self.fleet.len())
                .field("jobs", self.jobs.len())
                .field("scheduler", self.config.scheduler.label()),
        );

        let total_jobs = self.jobs.iter().filter(|j| j.id.0 < RESIDUAL_BASE).count();
        let kernel = Kernel::new(KernelConfig {
            scheduler: self.config.scheduler,
            jobs: self.jobs,
            baselines: self.config.baselines.clone(),
            keepalive_period: self.config.keepalive_period,
            tolerated_misses: self.config.keepalive_misses,
            reschedule: ReschedulePolicy::Solver {
                delay: self.config.reschedule_delay,
            },
            stall_timeout: None,
            breaker: None,
            reliability: self.config.reliability.clone(),
            slo: self.config.slo.clone(),
            replication: self.config.replication,
            speculation: self.config.speculation,
            bandwidth_blind,
            style: DriverStyle::Sim,
            obs: self.config.obs.clone(),
        })?;
        let mut driver = SimDriver {
            rts: self
                .fleet
                .into_iter()
                .map(|phone| Rt {
                    phone,
                    flight: None,
                })
                .collect(),
            kernel,
            baselines: self.config.baselines,
            injections: self.injections,
            segments: Vec::new(),
            obs: self.config.obs.clone(),
        };

        // 1. Bandwidth measurement: only phones on a charger participate
        // in the initial round (an overnight fleet may have late
        // arrivals, which join at later scheduling instants). The Start
        // event triggers the initial schedule and the first shipments.
        for i in 0..driver.rts.len() {
            if driver.rts[i].phone.plug_state().can_compute() {
                let info = driver.rts[i].phone.info(Micros::ZERO);
                driver.feed(&mut sim, CoordEvent::Probe { slot: i, info });
            }
        }
        driver.feed(&mut sim, CoordEvent::Start);
        if let Some(e) = driver.kernel.take_fatal() {
            return Err(e);
        }

        // 2. Failure injections.
        for idx in 0..driver.injections.len() {
            let inj = driver.injections[idx];
            sim.schedule_at(inj.at, Ev::Inject { idx });
            if let Some(replug) = inj.replug_at {
                let slot = driver.phone_index(inj.phone)?;
                sim.schedule_at(replug, Ev::Replug { slot });
            }
        }

        // 3. Main loop.
        let horizon = self.config.horizon;
        sim.run_until(horizon, |sim, ev| driver.handle(sim, ev));

        // 4. Report.
        let completed_jobs = driver.kernel.completed_at().len();
        let makespan = driver
            .kernel
            .completed_at()
            .values()
            .copied()
            .max()
            .unwrap_or(Micros::ZERO);
        let obs = &self.config.obs;
        obs.emit(
            cwc_obs::Event::sim(sim.now().0, "engine", "run.complete")
                .field("completed_jobs", completed_jobs)
                .field("makespan_ms", makespan.as_ms_f64())
                .field("reschedule_rounds", driver.kernel.reschedule_rounds()),
        );
        obs.metrics
            .set_gauge("engine.makespan_ms", makespan.as_ms_f64());
        obs.metrics
            .set_gauge("engine.completed_jobs", completed_jobs as f64);
        let trace = match collector {
            Some((sink, id)) => {
                obs.bus.detach(id);
                sink.take()
                    .into_iter()
                    // The transcript is a sim-time story; wall-clock
                    // events (scheduler convergence spans) stay on the
                    // bus-level sinks only.
                    .filter(|e| e.clock == cwc_obs::Clock::Sim)
                    .map(|e| cwc_sim::TraceEntry {
                        at: Micros(e.time_us),
                        message: e.message(),
                        scope: e.scope,
                    })
                    .collect()
            }
            None => Vec::new(),
        };
        Ok(EngineOutcome {
            makespan,
            predicted_makespan_ms: driver.kernel.predicted_makespan_ms(),
            phone_completion: (0..driver.rts.len())
                .map(|i| driver.kernel.last_completion(i))
                .collect(),
            segments: driver.segments,
            partitions_per_job: driver.kernel.partitions_per_job().clone(),
            completed_jobs,
            total_jobs,
            rescheduled_items: driver.kernel.rescheduled_items(),
            completed_at: driver.kernel.completed_at().clone(),
            workers_lost: driver.kernel.workers_lost(),
            quarantined_workers: driver.kernel.quarantined(),
            fleet_loss: driver.kernel.take_fleet_loss(),
            trace,
        })
    }

    /// Convenience: build the paper's default 18-phone fleet and run the
    /// given jobs with this config.
    pub fn run_on_testbed(
        seed: u64,
        jobs: Vec<JobSpec>,
        injections: Vec<FailureInjection>,
        config: EngineConfig,
    ) -> CwcResult<EngineOutcome> {
        let fleet = FleetBuilder::new(seed).build();
        Engine::new(fleet, jobs, injections, config)?.run()
    }
}

/// The discrete-event driver: phone physics + timeline recording. The
/// control loop itself lives in [`Kernel`].
struct SimDriver {
    rts: Vec<Rt>,
    kernel: Kernel,
    baselines: BTreeMap<String, f64>,
    injections: Vec<FailureInjection>,
    segments: Vec<Segment>,
    obs: cwc_obs::Obs,
}

impl SimDriver {
    fn phone_index(&self, id: PhoneId) -> CwcResult<usize> {
        self.rts
            .iter()
            .position(|rt| rt.phone.id() == id)
            .ok_or(CwcError::UnknownPhone(id))
    }

    /// Feeds one event to the kernel and executes every command it emits
    /// (probes synchronously, which may cascade into further commands).
    fn feed(&mut self, sim: &mut Simulation<Ev>, ev: CoordEvent) {
        let now = sim.now();
        let mut queue: std::collections::VecDeque<CoordCommand> = self.kernel.step(now, ev).into();
        while let Some(cmd) = queue.pop_front() {
            match cmd {
                CoordCommand::SendProbe { slot } => {
                    // The round's fresh b_i measurement, on the spot.
                    let info = self.rts[slot].phone.info(now);
                    queue.extend(self.kernel.step(now, CoordEvent::Probe { slot, info }));
                }
                // A replica transfers exactly like a primary: the split
                // only matters to the kernel's bookkeeping, not to the
                // phone physics.
                CoordCommand::ShipInput {
                    slot,
                    seq,
                    job,
                    program,
                    exe_kb,
                    offset_kb: _,
                    len_kb,
                    resume: _,
                    rescheduled,
                    trace,
                }
                | CoordCommand::ShipReplica {
                    slot,
                    seq,
                    job,
                    program,
                    exe_kb,
                    offset_kb: _,
                    len_kb,
                    resume: _,
                    rescheduled,
                    trace,
                } => {
                    let rt = &mut self.rts[slot];
                    let shipped_kb = KiloBytes(exe_kb + len_kb);
                    let xfer = rt.phone.transfer_time(now, shipped_kb);
                    rt.flight = Some(Flight {
                        seq,
                        job,
                        program,
                        kb: KiloBytes(len_kb),
                        shipped_kb,
                        rescheduled,
                        started: now,
                        phase: Phase::Transferring,
                        trace,
                    });
                    sim.schedule_after(xfer, Ev::TransferDone { slot, seq });
                }
                // First-result-wins dedup: the other copy already
                // reported, so this slot's in-flight work is dropped on
                // the floor (its TransferDone/ExecDone become stale).
                CoordCommand::CancelTask { slot, job: _, seq } => {
                    let rt = &mut self.rts[slot];
                    if rt.flight.as_ref().is_some_and(|f| f.seq == seq) {
                        rt.flight = None;
                    }
                }
                CoordCommand::StartTimer {
                    kind,
                    slot,
                    token,
                    after,
                } => {
                    sim.schedule_after(after, Ev::Timer { kind, slot, token });
                }
                // The timing model carries no payloads, and the sim needs
                // no sockets poked: these are live-driver concerns.
                CoordCommand::RecordResult { .. }
                | CoordCommand::SendKeepAlive { .. }
                | CoordCommand::Finished
                | CoordCommand::Halt => {}
            }
        }
    }

    fn handle(&mut self, sim: &mut Simulation<Ev>, ev: Ev) {
        match ev {
            Ev::TransferDone { slot, seq } => self.on_transfer_done(sim, slot, seq),
            Ev::ExecDone { slot, seq } => self.on_exec_done(sim, slot, seq),
            Ev::Inject { idx } => self.on_inject(sim, idx),
            Ev::Replug { slot } => {
                self.rts[slot]
                    .phone
                    .set_plug_state(cwc_device::PlugState::Plugged);
                self.feed(sim, CoordEvent::Replugged { slot });
            }
            Ev::Timer { kind, slot, token } => {
                self.feed(sim, CoordEvent::TimerFired { kind, slot, token });
            }
        }
    }

    fn on_transfer_done(&mut self, sim: &mut Simulation<Ev>, slot: usize, seq: u64) {
        let now = sim.now();
        let rt = &mut self.rts[slot];
        let Some(flight) = rt.flight.as_mut() else {
            return; // stale: the work was interrupted
        };
        if flight.seq != seq {
            return;
        }
        debug_assert_eq!(flight.phase, Phase::Transferring);
        self.segments.push(Segment {
            phone: rt.phone.id(),
            job: flight.job,
            kind: SegmentKind::Transfer,
            start: flight.started,
            end: now,
            rescheduled: flight.rescheduled,
        });
        self.obs.metrics.observe(
            "span.transfer_ms",
            now.saturating_sub(flight.started).as_ms_f64(),
        );
        self.obs.metrics.add(
            &format!("net.kb_transferred.{}", rt.phone.id()),
            flight.shipped_kb.0,
        );
        self.obs.emit(
            flight
                .trace
                .stamp(cwc_obs::Event::sim(now.0, "engine", "segment.transfer"))
                .severity(cwc_obs::Severity::Debug)
                .field("phone", rt.phone.id().to_string())
                .field("job", flight.job.to_string())
                .field("start_us", flight.started.0)
                .field("kb", flight.shipped_kb.0)
                .field("rescheduled", flight.rescheduled),
        );
        // Ground-truth execution time, including this phone's efficiency
        // residual (what the scheduler cannot see).
        let baseline = self.baselines[&flight.program];
        let total = rt.phone.exec_time(baseline, flight.kb);
        flight.phase = Phase::Executing { total };
        flight.started = now;
        sim.schedule_after(total, Ev::ExecDone { slot, seq });
    }

    fn on_exec_done(&mut self, sim: &mut Simulation<Ev>, slot: usize, seq: u64) {
        let now = sim.now();
        let rt = &mut self.rts[slot];
        if rt.flight.as_ref().is_none_or(|f| f.seq != seq) {
            return;
        }
        let Some(flight) = rt.flight.take() else {
            return;
        };
        let Phase::Executing { total } = flight.phase else {
            return;
        };
        self.segments.push(Segment {
            phone: rt.phone.id(),
            job: flight.job,
            kind: SegmentKind::Execute,
            start: flight.started,
            end: now,
            rescheduled: flight.rescheduled,
        });
        self.obs.emit(
            flight
                .trace
                .stamp(cwc_obs::Event::sim(now.0, "engine", "segment.execute"))
                .severity(cwc_obs::Severity::Debug)
                .field("phone", rt.phone.id().to_string())
                .field("job", flight.job.to_string())
                .field("start_us", flight.started.0)
                .field("kb", flight.kb.0)
                .field("rescheduled", flight.rescheduled),
        );
        // The phone's report carries its measured runtime and a fresh
        // bandwidth reading; both refine the predictor (§4.1).
        let info = rt.phone.info(now);
        self.feed(sim, CoordEvent::Probe { slot, info });
        self.feed(
            sim,
            CoordEvent::ReportOk {
                slot,
                seq,
                job: flight.job,
                exec_ms: total.as_ms_f64(),
            },
        );
    }

    fn on_inject(&mut self, sim: &mut Simulation<Ev>, idx: usize) {
        let now = sim.now();
        let inj = self.injections[idx];
        let Ok(slot) = self.phone_index(inj.phone) else {
            return;
        };
        let rt = &mut self.rts[slot];
        if !rt.phone.plug_state().can_compute() {
            return; // already failed
        }
        rt.phone.set_plug_state(cwc_device::PlugState::Unplugged);
        self.obs.metrics.inc("engine.failures_injected");
        self.obs.emit(
            cwc_obs::Event::sim(now.0, "failure", "phone.unplugged")
                .severity(cwc_obs::Severity::Warn)
                .field("phone", inj.phone.to_string())
                .field("offline", inj.offline)
                .field(
                    "msg",
                    format!(
                        "{} unplugged ({})",
                        inj.phone,
                        if inj.offline { "offline" } else { "online" }
                    ),
                ),
        );
        let flight = rt.flight.take();
        if inj.offline {
            // Silent unplug: no report reaches the server; the kernel
            // parks the work until the keep-alive timeout fires.
            self.feed(sim, CoordEvent::WentDark { slot });
            return;
        }
        match flight {
            // Online executing failure: the phone reports its watermark
            // and checkpoint before going away.
            Some(f) => {
                if let Phase::Executing { total } = f.phase {
                    let elapsed = now.saturating_sub(f.started);
                    let kb = ((elapsed.0 as u128 * f.kb.0 as u128) / total.0.max(1) as u128) as u64;
                    let kb = kb.min(f.kb.0.saturating_sub(1));
                    // Record the partial execution for the timeline.
                    self.segments.push(Segment {
                        phone: self.rts[slot].phone.id(),
                        job: f.job,
                        kind: SegmentKind::Execute,
                        start: f.started,
                        end: now,
                        rescheduled: f.rescheduled,
                    });
                    self.feed(
                        sim,
                        CoordEvent::ReportFailed {
                            slot,
                            seq: f.seq,
                            job: f.job,
                            processed_kb: kb,
                            checkpoint: Some(vec![]),
                        },
                    );
                } else {
                    // Interrupted mid-transfer: nothing processed, the
                    // partition restarts from scratch elsewhere.
                    self.feed(
                        sim,
                        CoordEvent::ReportFailed {
                            slot,
                            seq: f.seq,
                            job: f.job,
                            processed_kb: 0,
                            checkpoint: None,
                        },
                    );
                }
            }
            // Idle phone: only its queue fails with it.
            None => self.feed(
                sim,
                CoordEvent::ConnectionLost {
                    slot,
                    why: String::new(),
                },
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{paper_workload, WorkloadBuilder};

    fn small_jobs(n: usize) -> Vec<JobSpec> {
        WorkloadBuilder::new(1)
            .breakable(n, "primecount", 30, 100, 400)
            .build()
    }

    #[test]
    fn completes_all_jobs_without_failures() {
        let out =
            Engine::run_on_testbed(1, small_jobs(10), vec![], EngineConfig::default()).unwrap();
        assert_eq!(out.completed_jobs, 10);
        assert!(out.makespan > Micros::ZERO);
        assert!(!out.segments.is_empty());
        assert_eq!(out.rescheduled_items, 0);
    }

    #[test]
    fn segments_are_well_formed() {
        let out =
            Engine::run_on_testbed(2, small_jobs(8), vec![], EngineConfig::default()).unwrap();
        for s in &out.segments {
            assert!(s.end >= s.start, "segment ends before it starts");
        }
        // Per phone: non-overlapping, ordered activity.
        for i in 0..18u32 {
            let mut last_end = Micros::ZERO;
            for s in out.segments.iter().filter(|s| s.phone == PhoneId(i)) {
                assert!(s.start >= last_end, "overlapping segments on phone {i}");
                last_end = s.end;
            }
        }
    }

    #[test]
    fn prediction_is_in_the_ballpark_of_reality() {
        // Fig. 12a: predicted 1120 s vs actual 1100 s (≈2%). Allow a
        // wider band: the efficiency outliers make phones finish early.
        let out =
            Engine::run_on_testbed(3, paper_workload(3), vec![], EngineConfig::default()).unwrap();
        let predicted = out.predicted_makespan_ms / 1_000.0;
        let actual = out.makespan.as_secs_f64();
        assert!(out.completed_jobs == 150);
        let ratio = predicted / actual;
        assert!(
            (0.8..1.35).contains(&ratio),
            "predicted {predicted:.0}s vs actual {actual:.0}s (ratio {ratio:.2})"
        );
    }

    #[test]
    fn online_failure_is_rescheduled_and_everything_completes() {
        // Enough work that every phone holds a queue, failed early enough
        // that the victims are mid-flight.
        let jobs = WorkloadBuilder::new(1)
            .breakable(40, "primecount", 30, 300, 900)
            .build();
        let injections = vec![
            FailureInjection {
                at: Micros::from_secs(5),
                phone: PhoneId(0),
                offline: false,
                replug_at: None,
            },
            FailureInjection {
                at: Micros::from_secs(8),
                phone: PhoneId(7),
                offline: false,
                replug_at: None,
            },
        ];
        let out = Engine::run_on_testbed(4, jobs, injections, EngineConfig::default()).unwrap();
        assert_eq!(
            out.completed_jobs, 40,
            "all jobs must finish despite the failures"
        );
        // The failed phones' residuals ran somewhere.
        assert!(out.segments.iter().any(|s| s.rescheduled));
        assert!(out.rescheduled_items > 0);
    }

    #[test]
    fn offline_failure_detected_after_keepalive_timeout() {
        let jobs = small_jobs(12);
        let injections = vec![FailureInjection {
            at: Micros::from_secs(30),
            phone: PhoneId(1),
            offline: true,
            replug_at: None,
        }];
        let cfg = EngineConfig::default();
        let detect_after = Micros(cfg.keepalive_period.0 * u64::from(cfg.keepalive_misses));
        let out = Engine::run_on_testbed(5, jobs, injections, cfg).unwrap();
        assert_eq!(out.completed_jobs, 12);
        // No rescheduled work can *start* before the offline detection +
        // grace delay (30 s + 90 s + 60 s = 180 s).
        let earliest = out
            .segments
            .iter()
            .filter(|s| s.rescheduled)
            .map(|s| s.start)
            .min();
        if let Some(earliest) = earliest {
            assert!(
                earliest >= Micros::from_secs(30) + detect_after,
                "rescheduled work started at {earliest} before detection"
            );
        }
    }

    #[test]
    fn failed_phone_executes_nothing_after_unplug() {
        let jobs = WorkloadBuilder::new(2)
            .breakable(40, "primecount", 30, 300, 900)
            .build();
        let fail_at = Micros::from_secs(20);
        let injections = vec![FailureInjection {
            at: fail_at,
            phone: PhoneId(2),
            offline: false,
            replug_at: None,
        }];
        let out = Engine::run_on_testbed(6, jobs, injections, EngineConfig::default()).unwrap();
        for s in out.segments.iter().filter(|s| s.phone == PhoneId(2)) {
            assert!(
                s.end <= fail_at || s.start < fail_at,
                "phone-2 activity after unplug: {s:?}"
            );
        }
        assert_eq!(out.completed_jobs, 40);
    }

    #[test]
    fn replug_allows_failed_phone_to_work_again() {
        let jobs = small_jobs(30);
        let injections = vec![FailureInjection {
            at: Micros::from_secs(10),
            phone: PhoneId(0),
            offline: false,
            replug_at: Some(Micros::from_secs(40)),
        }];
        let out = Engine::run_on_testbed(7, jobs, injections, EngineConfig::default()).unwrap();
        assert_eq!(out.completed_jobs, 30);
    }

    #[test]
    fn greedy_beats_baselines_on_the_paper_workload() {
        let jobs = paper_workload(11);
        let mut makespans = std::collections::HashMap::new();
        for kind in SchedulerKind::ALL {
            let cfg = EngineConfig {
                scheduler: kind,
                ..Default::default()
            };
            let out = Engine::run_on_testbed(11, jobs.clone(), vec![], cfg).unwrap();
            assert_eq!(out.completed_jobs, 150, "{kind:?} incomplete");
            makespans.insert(kind, out.makespan.as_secs_f64());
        }
        let greedy = makespans[&SchedulerKind::Greedy];
        let eq = makespans[&SchedulerKind::EqualSplit];
        let rr = makespans[&SchedulerKind::RoundRobin];
        // Paper: greedy ≈1.6× faster than both.
        assert!(
            eq / greedy > 1.2,
            "equal-split {eq:.0}s vs greedy {greedy:.0}s"
        );
        assert!(
            rr / greedy > 1.2,
            "round-robin {rr:.0}s vs greedy {greedy:.0}s"
        );
    }

    #[test]
    fn partition_counts_cover_every_job() {
        let out =
            Engine::run_on_testbed(8, paper_workload(8), vec![], EngineConfig::default()).unwrap();
        assert_eq!(out.partitions_per_job.len(), 150);
        // Fig. 12b: ~90% of tasks unpartitioned under greedy.
        let splits = out.split_counts_sorted();
        let unsplit = splits.iter().filter(|&&s| s == 0).count();
        assert!(
            unsplit * 100 >= splits.len() * 70,
            "only {unsplit}/150 tasks unsplit"
        );
    }
}
