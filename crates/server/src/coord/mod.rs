//! Sans-IO coordinator kernel for the CWC control loop.
//!
//! The paper's central server runs one control loop (§4–§5): measure
//! `b_i`, schedule with greedy CBP, ship partitions, fold online and
//! offline failures into the next scheduling instant. This module holds
//! that loop exactly once, as a pure event-in/command-out state machine:
//!
//! - [`CoordEvent`] — everything that can happen (probe replies, reports,
//!   keep-alives, disconnects, timer expiries),
//! - [`CoordCommand`] — everything the loop wants done (ship a partition,
//!   send a keep-alive, arm a timer, record a result),
//! - [`Kernel`] — the state machine between them,
//! - [`script`] — record/replay of event streams for offline debugging,
//! - [`fleet`] — the sharding layer above N kernels: phone partitioning
//!   by site/charging cluster and the cross-shard [`FleetAllocator`]
//!   (job splitting, loss aggregation, residual stealing). Sans-IO like
//!   the kernel — the thread pool driving the shards lives outside, in
//!   `crate::shard`.
//!
//! **Driver contract.** A driver owns all I/O and all clocks. It feeds
//! each stimulus to [`Kernel::step`] together with its own notion of
//! `now` (sim time or wall micros), executes every returned command, and
//! delivers [`CoordEvent::TimerFired`] when a requested timer elapses
//! (stale tokens are fine — the kernel ignores them). The simulator's
//! engine drives the kernel from a discrete-event queue; the live path
//! drives the same kernel from TCP frames and receive timeouts. Given
//! the same event sequence, both obtain byte-identical command streams —
//! which is what `tests/determinism.rs` asserts.

pub mod command;
pub mod event;
pub mod fleet;
pub mod kernel;
pub mod script;

pub use command::{CoordCommand, TimerKind};
pub use event::CoordEvent;
pub use fleet::{charging_cluster_keys, cluster_key, plan_shards, FleetAllocator, ShardPlan};
pub use kernel::{DriverStyle, FleetLoss, Kernel, KernelConfig, ReschedulePolicy, RESIDUAL_BASE};

#[cfg(feature = "check")]
pub use kernel::{CheckView, ChunkView, GroupView, SlotCheckView};
