//! Inputs to the coordinator kernel.
//!
//! A driver translates whatever its substrate produces — discrete-event
//! callbacks in the simulator, TCP frames and elapsed timeouts in the
//! live path — into this one vocabulary. The kernel never sees a socket,
//! a clock, or a thread: time only enters as the `now` argument of
//! [`crate::coord::Kernel::step`] and as [`CoordEvent::TimerFired`]
//! notifications for timers the kernel itself requested.

use crate::coord::command::TimerKind;
use cwc_types::{JobId, PhoneInfo};

/// One input to [`crate::coord::Kernel::step`].
///
/// Slots are dense driver-chosen indices (fleet index in the simulator,
/// connection index in the live path); the kernel learns about a slot the
/// first time an event mentions it.
#[derive(Debug, Clone, PartialEq)]
pub enum CoordEvent {
    /// A bandwidth measurement for a slot (registration in the live path,
    /// the iperf-style probe round in the simulator). Also the reply the
    /// kernel expects after emitting
    /// [`crate::coord::CoordCommand::SendProbe`].
    Probe {
        /// Which slot was measured.
        slot: usize,
        /// The full scheduler-facing snapshot, including the fresh `b_i`.
        info: PhoneInfo,
    },
    /// All initially-available slots have been probed: compute the initial
    /// schedule and start shipping.
    Start,
    /// A slot reported a completed partition.
    ReportOk {
        /// Reporting slot.
        slot: usize,
        /// Echoed `ShipInput` sequence number.
        seq: u64,
        /// Echoed job id.
        job: JobId,
        /// Measured execution time (feeds the §4.1 online predictor).
        exec_ms: f64,
    },
    /// A slot reported an interrupted partition (online failure): the
    /// phone was unplugged but connectivity survived long enough to ship
    /// the watermark and checkpoint.
    ReportFailed {
        /// Reporting slot.
        slot: usize,
        /// Echoed `ShipInput` sequence number.
        seq: u64,
        /// Echoed job id.
        job: JobId,
        /// KB processed before the interruption.
        processed_kb: u64,
        /// Checkpoint for the continuation (`None`: restart from scratch).
        checkpoint: Option<Vec<u8>>,
    },
    /// A keep-alive acknowledgement (or any other proof of life the
    /// driver wants credited).
    KeepAliveSeen {
        /// Answering slot.
        slot: usize,
    },
    /// Silent unplug (simulator only): the slot went dark without a
    /// report. The kernel parks its work and arms the keep-alive
    /// detection timer; nothing surfaces until that fires (§5's offline
    /// failure).
    WentDark {
        /// The slot that lost connectivity.
        slot: usize,
    },
    /// The driver observed the slot's transport die (connection closed,
    /// send failed): an immediate offline failure.
    ConnectionLost {
        /// The failed slot.
        slot: usize,
        /// Driver-formatted account, used verbatim in the failure event.
        why: String,
    },
    /// The slot sent something protocol-violating; the per-slot breaker
    /// decides whether it gets quarantined.
    Misbehaved {
        /// The offending slot.
        slot: usize,
        /// Driver-formatted account, used verbatim in the event.
        why: String,
    },
    /// A previously failed slot is plugged back in and reachable; it
    /// becomes eligible at the next scheduling instant.
    Replugged {
        /// The returning slot.
        slot: usize,
    },
    /// A timer previously requested via
    /// [`crate::coord::CoordCommand::StartTimer`] elapsed.
    TimerFired {
        /// Which timer family.
        kind: TimerKind,
        /// The slot it was armed for (0 for fleet-wide timers).
        slot: usize,
        /// The token stamped on the request; stale tokens are ignored.
        token: u64,
    },
}
