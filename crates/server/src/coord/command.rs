//! Outputs of the coordinator kernel.
//!
//! Commands are *instructions to the driver*: perform this I/O, arm this
//! timer, record this result. The kernel has already updated its own
//! state tables when a command is emitted; a driver that executes every
//! command (and feeds the resulting events back in) implements the full
//! CWC control loop.

use cwc_types::Micros;

/// Timer families the kernel can request. The kernel never reads a
/// clock; it asks the driver to wake it back up via
/// [`crate::coord::CoordEvent::TimerFired`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimerKind {
    /// Periodic liveness probe for one slot (live driver).
    KeepAlive,
    /// Watchdog for one in-flight `ShipInput` (live driver); the token is
    /// the ship sequence number.
    Stall,
    /// Keep-alive-timeout detection for a slot that went dark (sim
    /// driver): fires `period × tolerated_misses` after the silence began.
    OfflineDetect,
    /// The §5 scheduling instant: fold accumulated residuals into a fresh
    /// solver round after the grace delay.
    Reschedule,
    /// Straggler check for one in-flight `ShipInput` (DESIGN.md §12): the
    /// token is the ship sequence number; if the chunk is still in flight
    /// when this fires, the kernel launches a speculative copy.
    Speculate,
}

/// One output of [`crate::coord::Kernel::step`].
#[derive(Debug, Clone, PartialEq)]
pub enum CoordCommand {
    /// Measure this slot's bandwidth and reply with
    /// [`crate::coord::CoordEvent::Probe`]. Emitted at every solver-based
    /// scheduling instant (the simulator's per-round `b_i` refresh).
    SendProbe {
        /// Slot to measure.
        slot: usize,
    },
    /// Ship one partition: executable (when `exe_kb > 0`, the binary has
    /// not reached this slot yet) followed by the input slice. The live
    /// driver maps this onto `ShipExecutable` + `ShipInput` frames; the
    /// sim driver starts a transfer of `exe_kb + len_kb` KB.
    ShipInput {
        /// Destination slot.
        slot: usize,
        /// Sequence number reports must echo.
        seq: u64,
        /// Original (catalog) job id.
        job: cwc_types::JobId,
        /// Program name (the worker maps job → program).
        program: String,
        /// Executable KB riding along (0 once the slot has the program).
        exe_kb: u64,
        /// Partition offset into the job's input.
        offset_kb: u64,
        /// Partition length.
        len_kb: u64,
        /// Checkpoint to resume from, for migrated continuations.
        resume: Option<Vec<u8>>,
        /// Whether this item was placed by a reschedule round.
        rescheduled: bool,
        /// Causal identity of this chunk: minted by the kernel, carried
        /// over the wire, and stamped onto every event the chunk touches.
        trace: cwc_obs::TraceCtx,
    },
    /// Ship a redundant copy of a partition that is (or may become)
    /// in flight elsewhere: a risk-driven replica or a speculative
    /// straggler re-execution (DESIGN.md §12). Field-for-field identical
    /// to [`CoordCommand::ShipInput`]; drivers transfer it the same way
    /// (the live driver additionally marks the wire frame as a replica).
    /// Kept as a distinct command so command streams — and therefore
    /// record/replay byte-identity — make every proactive decision
    /// explicit.
    ShipReplica {
        /// Destination slot.
        slot: usize,
        /// Sequence number reports must echo.
        seq: u64,
        /// Original (catalog) job id.
        job: cwc_types::JobId,
        /// Program name (the worker maps job → program).
        program: String,
        /// Executable KB riding along (0 once the slot has the program).
        exe_kb: u64,
        /// Partition offset into the job's input.
        offset_kb: u64,
        /// Partition length.
        len_kb: u64,
        /// Checkpoint to resume from, for migrated continuations.
        resume: Option<Vec<u8>>,
        /// Whether this item was placed by a reschedule round.
        rescheduled: bool,
        /// Causal identity: a child span of the primary copy's placement.
        trace: cwc_obs::TraceCtx,
    },
    /// Withdraw an in-flight partition from a slot: its replica (or the
    /// primary it duplicated) already completed elsewhere, so the loser's
    /// work is no longer wanted. The sim driver aborts the flight; the
    /// live driver sends a `CancelTask` frame (old workers skip-and-warn
    /// it, and their late report is absorbed as a stale duplicate).
    CancelTask {
        /// Slot holding the cancelled work.
        slot: usize,
        /// Job being cancelled.
        job: cwc_types::JobId,
        /// Ship sequence number of the cancelled partition.
        seq: u64,
    },
    /// Send an application-layer keep-alive probe to this slot.
    SendKeepAlive {
        /// Destination slot.
        slot: usize,
        /// Keep-alive sequence number.
        seq: u64,
    },
    /// Arm a timer: deliver `TimerFired { kind, slot, token }` after
    /// `after` of driver time has elapsed.
    StartTimer {
        /// Timer family.
        kind: TimerKind,
        /// Slot the timer belongs to (0 for fleet-wide timers).
        slot: usize,
        /// Token to echo; the kernel ignores stale generations.
        token: u64,
        /// Delay from now.
        after: Micros,
    },
    /// A partition report was accepted: the driver should file the result
    /// payload it is holding under this job at this offset.
    RecordResult {
        /// Slot whose report was accepted.
        slot: usize,
        /// Job the partition belongs to.
        job: cwc_types::JobId,
        /// Offset of the accepted partition.
        offset_kb: u64,
    },
    /// Every job's input is fully covered: the batch is done.
    Finished,
    /// The kernel hit a fatal setup error (infeasible problem, invalid
    /// schedule); the driver should stop and surface
    /// [`crate::coord::Kernel::take_fatal`].
    Halt,
}
