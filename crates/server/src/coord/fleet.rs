//! Fleet sharding: phone partitioning and the cross-shard allocator
//! (DESIGN.md §15).
//!
//! A million-phone fleet cannot be scheduled by one kernel — the greedy
//! CBP pack costs ~|P|·|J| per probe, so one coordinator caps scheduling
//! throughput no matter how fast PR 5 made the packer. This module holds
//! the **sans-IO** half of the sharding layer:
//!
//! * [`plan_shards`] — deterministic phone→shard assignment that keeps
//!   site/charging-pattern clusters together ([`cluster_key`] buckets a
//!   phone by its site and its profiler-predicted unplug probability, the
//!   same statistic `overnight::OvernightPlan::fail_prob` derives from
//!   the behavioral study), so a house-wide outage or a morning unplug
//!   wave lands on few shards instead of all of them;
//! * [`FleetAllocator`] — the bookkeeping state machine over per-shard
//!   results: it splits the job batch via [`cwc_core::partition_jobs`],
//!   merges per-shard completions and [`FleetLoss`] summaries in job-id
//!   order (BTreeMap discipline), and turns the shortfall of a dead
//!   shard into a **residual batch** for the survivors — the work-
//!   stealing protocol between shards.
//!
//! The thread pool, engines, and clocks live *outside* this module (in
//! [`crate::shard`]); everything here is pure state, which is what keeps
//! the determinism and sans-IO lint families and the byte-identity
//! proofs applicable to the allocator exactly as they are to the kernel.

use super::kernel::FleetLoss;
use cwc_core::{partition_jobs, JobPartition};
use cwc_types::{CwcResult, JobId, JobSpec, KiloBytes, Micros};
use std::collections::BTreeMap;

/// Buckets a phone for shard planning: phones that share a site and a
/// charging-risk quartile belong to the same cluster. `unplug_prob` is
/// the profiler-derived probability of unplugging during the run window
/// (0 when no behavioral history is available).
pub fn cluster_key(site: u64, unplug_prob: f64) -> u64 {
    let quartile = (unplug_prob.clamp(0.0, 1.0) * 4.0).min(3.0) as u64;
    site * 4 + quartile
}

/// Convenience over [`cluster_key`] for a whole fleet: `sites[i]` is
/// phone `i`'s site (house / AP), `unplug[i]` its predicted unplug
/// probability (all zero when `None`).
pub fn charging_cluster_keys(sites: &[u64], unplug: Option<&[f64]>) -> Vec<u64> {
    sites
        .iter()
        .enumerate()
        .map(|(i, &site)| {
            let p = unplug.and_then(|u| u.get(i).copied()).unwrap_or(0.0);
            cluster_key(site, p)
        })
        .collect()
}

/// Deterministic phone→shard assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// Per shard: member phone indices, ascending. Some trailing shards
    /// may be empty when there are fewer phones than shards.
    pub members: Vec<Vec<usize>>,
}

impl ShardPlan {
    /// Number of shards with at least one phone.
    pub fn active_shards(&self) -> usize {
        self.members.iter().filter(|m| !m.is_empty()).count()
    }

    /// The shard owning phone index `phone`, if any.
    pub fn shard_of(&self, phone: usize) -> Option<usize> {
        self.members
            .iter()
            .position(|m| m.binary_search(&phone).is_ok())
    }
}

/// Partitions phone indices `0..keys.len()` across `shards` shards.
///
/// Phones are grouped by cluster key; clusters are laid out in ascending
/// key order and cut into contiguous runs of `ceil(n / shards)`, so a
/// cluster is kept whole unless it alone exceeds a shard's share. With
/// one shard the plan is the identity (the sharded-equivalence anchor).
pub fn plan_shards(keys: &[u64], shards: usize) -> ShardPlan {
    let shards = shards.max(1);
    let n = keys.len();
    if shards == 1 {
        return ShardPlan {
            members: vec![(0..n).collect()],
        };
    }
    let mut clusters: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    for (idx, &key) in keys.iter().enumerate() {
        clusters.entry(key).or_default().push(idx);
    }
    let target = n.div_ceil(shards);
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); shards];
    let mut shard = 0;
    for (_, cluster) in clusters {
        for idx in cluster {
            if members[shard].len() >= target && shard + 1 < shards {
                shard += 1;
            }
            members[shard].push(idx);
        }
    }
    for m in &mut members {
        m.sort_unstable();
    }
    ShardPlan { members }
}

/// Cross-shard bookkeeping: job splitting, completion merging, loss
/// aggregation, and the residual-stealing protocol. Pure state — the
/// driver in [`crate::shard`] owns every thread and clock.
///
/// Mutation discipline: like the kernel's bookkeeping, the allocator's
/// accounting fields may only be assigned from `impl FleetAllocator`
/// (enforced by cwc-lint's `state_mutation` family), so the conservation
/// invariant — every KB of every job is exactly one of *done*, *pending
/// residual*, or *lost* — survives refactors of the drivers around it.
#[derive(Debug, Clone)]
pub struct FleetAllocator {
    /// Parent specs by id (program, executable, kind) for residual
    /// reconstruction.
    catalog: BTreeMap<JobId, JobSpec>,
    /// Total input KB per job, from the original batch.
    expected_kb: BTreeMap<JobId, u64>,
    /// Input KB confirmed completed, per job, across all shards and
    /// steal rounds.
    done_kb: BTreeMap<JobId, u64>,
    /// Shortfall awaiting redistribution (filled by `record_shard`,
    /// drained by `residual_batch`).
    pending_kb: BTreeMap<JobId, u64>,
    /// Workers lost across all shards (aggregated `FleetLoss`).
    lost_workers: usize,
    /// Of those, quarantined by shard circuit breakers.
    lost_quarantined: usize,
    /// Human-readable per-shard loss accounts.
    loss_detail: Vec<String>,
    /// Residual chunks handed to survivor shards so far.
    chunks_stolen: u64,
    /// Completed steal rounds.
    rounds_stolen: u32,
}

impl FleetAllocator {
    /// An allocator over the original job batch.
    pub fn new(jobs: &[JobSpec]) -> FleetAllocator {
        FleetAllocator {
            catalog: jobs.iter().map(|j| (j.id, j.clone())).collect(),
            expected_kb: jobs.iter().map(|j| (j.id, j.input_kb.0)).collect(),
            done_kb: BTreeMap::new(),
            pending_kb: BTreeMap::new(),
            lost_workers: 0,
            lost_quarantined: 0,
            loss_detail: Vec::new(),
            chunks_stolen: 0,
            rounds_stolen: 0,
        }
    }

    /// Splits `jobs` across shards by capacity weight — a thin veneer
    /// over [`cwc_core::partition_jobs`] so drivers have one entry point.
    pub fn split(jobs: &[JobSpec], weights: &[f64]) -> CwcResult<JobPartition> {
        partition_jobs(jobs, weights)
    }

    /// Folds one shard's outcome into the fleet account. `assigned` is
    /// the slice list that shard ran, `completed` the per-job completion
    /// times its kernel reported, `loss` its graceful-degradation summary
    /// (if its fleet died). Any slice neither completed nor covered by
    /// the loss shortfall becomes a pending residual too — an unfinished
    /// slice must be re-run somewhere regardless of why it stalled.
    pub fn record_shard(
        &mut self,
        shard: usize,
        assigned: &[JobSpec],
        completed: &BTreeMap<JobId, Micros>,
        loss: Option<&FleetLoss>,
    ) {
        for slice in assigned {
            let slice_kb = slice.input_kb.0;
            if completed.contains_key(&slice.id) {
                *self.done_kb.entry(slice.id).or_default() += slice_kb;
                continue;
            }
            let shortfall = loss
                .map(|l| l.unprocessed_kb.get(&slice.id).copied().unwrap_or(slice_kb))
                .unwrap_or(slice_kb)
                .min(slice_kb);
            *self.done_kb.entry(slice.id).or_default() += slice_kb - shortfall;
            if shortfall > 0 {
                *self.pending_kb.entry(slice.id).or_default() += shortfall;
            }
        }
        if let Some(l) = loss {
            self.lost_workers += l.workers_lost;
            self.lost_quarantined += l.quarantined;
            self.loss_detail
                .push(format!("shard {shard}: {}", l.detail));
        }
    }

    /// Accounts worker losses a shard's kernel observed without reaching
    /// its graceful-degradation summary (under the solver reschedule
    /// policy a fully-dead shard parks residuals waiting for a replug, so
    /// its engine ends with dead slots but no [`FleetLoss`]). Callers
    /// pass this *instead of* `record_shard`'s `loss` accounting, never
    /// in addition — double-reporting the same phones would inflate the
    /// fleet summary.
    pub fn note_lost_workers(&mut self, shard: usize, workers: usize, quarantined: usize) {
        if workers == 0 {
            return;
        }
        self.lost_workers += workers;
        self.lost_quarantined += quarantined;
        self.loss_detail
            .push(format!("shard {shard}: {workers} worker(s) lost"));
    }

    /// Drains the pending shortfall into a residual job batch for the
    /// survivor shards (the steal protocol): per job, one chunk of the
    /// missing KB, atomic jobs staying atomic, ids preserved so later
    /// completions merge onto the same accounts. Returns an empty vec
    /// when nothing is pending; otherwise bumps the steal counters.
    pub fn residual_batch(&mut self) -> Vec<JobSpec> {
        if self.pending_kb.is_empty() {
            return Vec::new();
        }
        let pending = std::mem::take(&mut self.pending_kb);
        let mut batch = Vec::with_capacity(pending.len());
        for (id, kb) in pending {
            let Some(parent) = self.catalog.get(&id) else {
                continue; // unknown id: drop rather than invent a spec
            };
            let spec = if parent.kind.is_atomic() {
                JobSpec::atomic(id, parent.program.as_str(), parent.exe_kb, KiloBytes(kb))
            } else {
                JobSpec::breakable(id, parent.program.as_str(), parent.exe_kb, KiloBytes(kb))
            };
            batch.push(spec);
        }
        self.chunks_stolen += batch.len() as u64;
        self.rounds_stolen += 1;
        batch
    }

    /// Whether any shortfall is awaiting a steal round.
    pub fn has_pending(&self) -> bool {
        !self.pending_kb.is_empty()
    }

    /// Residual chunks redistributed so far.
    pub fn stolen_chunks(&self) -> u64 {
        self.chunks_stolen
    }

    /// Steal rounds executed so far.
    pub fn steal_rounds(&self) -> u32 {
        self.rounds_stolen
    }

    /// Jobs whose every KB completed.
    pub fn completed_jobs(&self) -> usize {
        self.expected_kb
            .iter()
            .filter(|(id, &kb)| self.done_kb.get(id).copied().unwrap_or(0) >= kb)
            .count()
    }

    /// Total jobs in the original batch.
    pub fn total_jobs(&self) -> usize {
        self.expected_kb.len()
    }

    /// The aggregated cross-shard failure summary, if any KB of any job
    /// is still unprocessed (and not pending a steal round). `None`
    /// means the fleet completed everything.
    pub fn fleet_summary(&self) -> Option<FleetLoss> {
        let mut unprocessed: BTreeMap<JobId, u64> = BTreeMap::new();
        for (&id, &expected) in &self.expected_kb {
            let done = self.done_kb.get(&id).copied().unwrap_or(0);
            let pending = self.pending_kb.get(&id).copied().unwrap_or(0);
            let missing = expected.saturating_sub(done + pending);
            if missing > 0 {
                unprocessed.insert(id, missing);
            }
        }
        if unprocessed.is_empty() && self.lost_workers == 0 {
            return None;
        }
        Some(FleetLoss {
            workers_lost: self.lost_workers,
            quarantined: self.lost_quarantined,
            unprocessed_kb: unprocessed,
            detail: self.loss_detail.join("; "),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jobs() -> Vec<JobSpec> {
        vec![
            JobSpec::breakable(JobId(0), "primecount", KiloBytes(30), KiloBytes(600)),
            JobSpec::atomic(JobId(1), "photoblur", KiloBytes(40), KiloBytes(300)),
            JobSpec::breakable(JobId(2), "primecount", KiloBytes(30), KiloBytes(500)),
        ]
    }

    #[test]
    fn one_shard_plan_is_identity() {
        let plan = plan_shards(&[5, 5, 7, 7, 7, 9], 1);
        assert_eq!(plan.members, vec![vec![0, 1, 2, 3, 4, 5]]);
    }

    #[test]
    fn clusters_stay_together_when_they_fit() {
        // Two clusters of 3 over 2 shards: one cluster per shard.
        let keys = [4u64, 9, 4, 9, 4, 9];
        let plan = plan_shards(&keys, 2);
        assert_eq!(plan.members[0], vec![0, 2, 4], "key-4 cluster");
        assert_eq!(plan.members[1], vec![1, 3, 5], "key-9 cluster");
    }

    #[test]
    fn oversized_cluster_is_cut_contiguously() {
        let keys = [1u64; 10];
        let plan = plan_shards(&keys, 4);
        assert_eq!(
            plan.members.iter().map(Vec::len).collect::<Vec<_>>(),
            vec![3, 3, 3, 1]
        );
        assert_eq!(plan.active_shards(), 4);
    }

    #[test]
    fn more_shards_than_phones_leaves_trailing_shards_empty() {
        let plan = plan_shards(&[1, 2], 4);
        assert_eq!(plan.active_shards(), 2);
        assert_eq!(plan.members.len(), 4);
        assert_eq!(plan.shard_of(1), Some(1));
        assert_eq!(plan.shard_of(7), None);
    }

    #[test]
    fn cluster_key_buckets_by_risk_quartile() {
        assert_eq!(cluster_key(3, 0.0), 12);
        assert_eq!(cluster_key(3, 0.3), 13);
        assert_eq!(cluster_key(3, 0.99), 15);
        assert_eq!(cluster_key(3, 1.0), 15, "p=1 stays in the top quartile");
    }

    #[test]
    fn allocator_merges_clean_completion() {
        let jobs = jobs();
        let mut alloc = FleetAllocator::new(&jobs);
        let split = FleetAllocator::split(&jobs, &[1.0, 1.0]).unwrap();
        for shard in 0..2 {
            let done: BTreeMap<JobId, Micros> = split.per_shard[shard]
                .iter()
                .map(|j| (j.id, Micros(1)))
                .collect();
            alloc.record_shard(shard, &split.per_shard[shard], &done, None);
        }
        assert_eq!(alloc.completed_jobs(), 3);
        assert!(alloc.fleet_summary().is_none());
        assert!(!alloc.has_pending());
    }

    #[test]
    fn dead_shard_shortfall_becomes_a_residual_batch() {
        let jobs = jobs();
        let mut alloc = FleetAllocator::new(&jobs);
        let split = FleetAllocator::split(&jobs, &[1.0, 1.0]).unwrap();
        // Shard 0 completes; shard 1 dies having processed nothing.
        let done: BTreeMap<JobId, Micros> = split.per_shard[0]
            .iter()
            .map(|j| (j.id, Micros(1)))
            .collect();
        alloc.record_shard(0, &split.per_shard[0], &done, None);
        let loss = FleetLoss {
            workers_lost: 6,
            quarantined: 1,
            unprocessed_kb: split.per_shard[1]
                .iter()
                .map(|j| (j.id, j.input_kb.0))
                .collect(),
            detail: "all phones unplugged".into(),
        };
        alloc.record_shard(1, &split.per_shard[1], &BTreeMap::new(), Some(&loss));
        assert!(alloc.has_pending());
        let batch = alloc.residual_batch();
        assert_eq!(batch.len(), split.per_shard[1].len());
        assert_eq!(alloc.stolen_chunks(), batch.len() as u64);
        assert_eq!(alloc.steal_rounds(), 1);
        // Kind and id are preserved.
        for residual in &batch {
            let parent = &jobs.iter().find(|j| j.id == residual.id).unwrap();
            assert_eq!(residual.kind.is_atomic(), parent.kind.is_atomic());
        }
        // A survivor completing the batch closes the account.
        let done: BTreeMap<JobId, Micros> = batch.iter().map(|j| (j.id, Micros(2))).collect();
        alloc.record_shard(0, &batch, &done, None);
        assert_eq!(alloc.completed_jobs(), 3);
        // Lost workers keep the summary present even with all KB done.
        let summary = alloc.fleet_summary().unwrap();
        assert_eq!(summary.workers_lost, 6);
        assert!(summary.unprocessed_kb.is_empty());
    }

    #[test]
    fn unfinished_slice_without_loss_is_still_stolen() {
        let jobs = jobs();
        let mut alloc = FleetAllocator::new(&jobs);
        // One shard, nothing completed, no loss report (e.g. horizon hit).
        alloc.record_shard(0, &jobs, &BTreeMap::new(), None);
        let batch = alloc.residual_batch();
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.iter().map(|j| j.input_kb.0).sum::<u64>(), 1_400);
    }
}
